"""E1 — Fig 2: SC'02 read performance, SDSC → Baltimore over FCIP.

Paper: "the transfer rate achieved was over 720 MB/s; a very healthy
fraction of the maximum possible [8 Gb/s]", sustained flat for the run,
over an 80 ms RTT — "the very sustainable character of the peak transfer
rate".
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.topology.sc02 import build_sc02
from repro.util.tables import Table
from repro.util.units import GB, fmt_rate


def run_fig2(
    total_bytes: float = GB(20),
    outstanding: int = 12,
    command_bytes: int = 8 << 20,
) -> ExperimentResult:
    scenario = build_sc02(outstanding=outstanding, command_bytes=command_bytes)
    sim = scenario.sim
    evt = scenario.client.stream_read(total_bytes)
    sim.run(until=evt)
    series = scenario.client.meter.series(t_end=sim.now)
    # drop the ramp-up second for the sustained view
    steady = series.slice(2.0, series.times[-1]) if len(series) > 4 else series
    result = ExperimentResult(
        exp_id="E1",
        title="Fig 2: SC'02 GFS read performance SDSC → show floor",
        paper_claim=">720 MB/s sustained of 8 Gb/s max, 80 ms RTT, flat trace",
    )
    result.series["read MB/s"] = series
    result.metrics["mean_rate"] = steady.mean()
    result.metrics["peak_rate"] = series.max()
    result.metrics["sustained_fraction"] = (
        steady.percentile(10) / steady.mean() if steady.mean() else 0.0
    )
    result.metrics["ceiling"] = scenario.tunnel.usable_rate
    table = Table(["metric", "value"], title="SC'02 FCIP streaming read")
    table.add_row(["mean rate", fmt_rate(result.metrics["mean_rate"])])
    table.add_row(["peak rate", fmt_rate(result.metrics["peak_rate"])])
    table.add_row(["tunnel ceiling", fmt_rate(result.metrics["ceiling"])])
    table.add_row(["RTT (ms)", 80.0])
    result.table = table
    result.notes = (
        f"{outstanding} outstanding x {command_bytes >> 20} MiB SCSI commands "
        "pipelined over the 80 ms path"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_fig2()))
