"""Tests for the application workload generators."""

import numpy as np
import pytest

from repro.util.units import KiB, MB
from repro.workloads import (
    EnzoRun,
    NvoQueryStream,
    ScecRun,
    SortApp,
    VizReader,
    mpiio_collective,
)

from tests.core.testbed import mounted, run_io, small_gfs


def bed(clients=2, blocks_per_nsd=8192):
    g, cluster, fs, client_names = small_gfs(
        clients=clients, blocks_per_nsd=blocks_per_nsd
    )
    mounts = [mounted(g, cluster, node=c) for c in client_names]
    return g, fs, mounts


def make_file(g, mount, path, nbytes):
    def io():
        h = yield mount.open(path, "w", create=True)
        yield mount.write(h, b"\x00" * nbytes)
        yield mount.close(h)

    run_io(g, io())


class TestEnzo:
    def test_dumps_written(self):
        g, fs, mounts = bed()
        run = EnzoRun(
            mounts,
            "/enzo",
            steps=3,
            bytes_per_dump=MB(2),
            compute_seconds=10.0,
        )
        result = g.run(until=run.run())
        assert result.bytes_written == pytest.approx(MB(6))
        assert result.extra["dumps"] == 3
        # three dumps x len(mounts) files
        names = fs.namespace.listdir("/enzo")
        assert len(names) == 3 * len(mounts)

    def test_compute_time_dominates_schedule(self):
        g, fs, mounts = bed()
        run = EnzoRun(mounts, "/enzo", steps=2, bytes_per_dump=MB(1), compute_seconds=100.0)
        result = g.run(until=run.run())
        assert result.elapsed >= 200.0

    def test_validation(self):
        g, fs, mounts = bed()
        with pytest.raises(ValueError):
            EnzoRun([], "/x", bytes_per_dump=1)
        with pytest.raises(ValueError):
            EnzoRun(mounts, "/x", steps=0, bytes_per_dump=1)


class TestViz:
    def test_reads_whole_file(self):
        g, fs, mounts = bed()
        make_file(g, mounts[0], "/data", int(MB(4)))
        viz = VizReader(mounts[1], "/data")
        result = g.run(until=viz.run())
        assert result.bytes_read == MB(4)
        assert result.extra["restarted"] == 0.0

    def test_restart_pauses_and_resumes(self):
        g, fs, mounts = bed()
        make_file(g, mounts[0], "/data", int(MB(4)))
        start = g.sim.now
        viz = VizReader(
            mounts[1], "/data", restart_at=start + 0.01, restart_pause=5.0
        )
        result = g.run(until=viz.run())
        assert result.extra["restarted"] == 1.0
        assert result.elapsed > 5.0  # paid the pause
        assert result.bytes_read == MB(4)  # still read everything

    def test_multiple_passes(self):
        g, fs, mounts = bed()
        make_file(g, mounts[0], "/data", int(MB(1)))
        viz = VizReader(mounts[1], "/data", passes=3)
        result = g.run(until=viz.run())
        assert result.bytes_read == MB(3)


class TestSort:
    def test_reads_and_writes_equal(self):
        g, fs, mounts = bed()
        make_file(g, mounts[0], "/input", int(MB(2)))
        sort = SortApp(mounts[1], "/input", "/output")
        result = g.run(until=sort.run())
        assert result.bytes_read == MB(2)
        assert result.bytes_written == MB(2)
        assert fs.namespace.resolve("/output").size == MB(2)

    def test_phased_alternation(self):
        g, fs, mounts = bed()
        make_file(g, mounts[0], "/input", int(MB(2)))
        sort = SortApp(mounts[1], "/input", "/out", phase_bytes=int(MB(0.5)))
        result = g.run(until=sort.run())
        assert result.bytes_total == MB(4)


class TestNvo:
    def test_partial_access(self):
        g, fs, mounts = bed(blocks_per_nsd=16384)
        make_file(g, mounts[0], "/catalog", int(MB(8)))
        rng = np.random.default_rng(1)
        nvo = NvoQueryStream(mounts[1], "/catalog", queries=20,
                             bytes_per_query=int(KiB(64)), rng=rng)
        result = g.run(until=nvo.run())
        assert result.ops == 20
        assert result.bytes_read == pytest.approx(20 * KiB(64), rel=0.05)
        # touched far less than the whole catalog
        assert result.bytes_read < MB(8) / 2

    def test_zipf_skew_improves_cache(self):
        g, fs, mounts = bed(blocks_per_nsd=16384)
        make_file(g, mounts[0], "/catalog", int(MB(8)))
        uniform = NvoQueryStream(
            mounts[1], "/catalog", 100, int(KiB(16)), np.random.default_rng(2)
        )
        g.run(until=uniform.run())
        uniform_hits = mounts[1].pool.hits
        g2, fs2, mounts2 = bed(blocks_per_nsd=16384)
        make_file(g2, mounts2[0], "/catalog", int(MB(8)))
        skewed = NvoQueryStream(
            mounts2[1], "/catalog", 100, int(KiB(16)),
            np.random.default_rng(2), zipf_regions=16,
        )
        g2.run(until=skewed.run())
        assert mounts2[1].pool.hits >= uniform_hits

    def test_validation(self):
        g, fs, mounts = bed()
        with pytest.raises(ValueError):
            NvoQueryStream(mounts[0], "/c", 0, 1, np.random.default_rng(0))


class TestScec:
    def test_total_written(self):
        g, fs, mounts = bed()
        run = ScecRun(mounts, "/scec", total_bytes=MB(4))
        result = g.run(until=run.run())
        assert result.bytes_written == MB(4)
        assert len(fs.namespace.listdir("/scec")) == len(mounts)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScecRun([], "/x", total_bytes=1)


class TestMpiio:
    def test_write_then_read(self):
        g, fs, mounts = bed(clients=4)
        region = 8 * fs.block_size
        w = g.run(
            until=mpiio_collective(mounts, "/shared", "write",
                                   region_bytes=region,
                                   transfer_bytes=fs.block_size)
        )
        assert w.bytes_written == 4 * region
        assert w.extra["nodes"] == 4
        r = g.run(
            until=mpiio_collective(mounts, "/shared", "read",
                                   region_bytes=region,
                                   transfer_bytes=fs.block_size)
        )
        assert r.bytes_read == 4 * region
        assert r.extra["rate"] > 0

    def test_disjoint_regions_bounded_token_traffic(self):
        # Disjoint regions conflict only while whole-file desired ranges
        # shrink; token traffic must stay O(ranks * log(region)), far below
        # one RPC per transfer.
        g, fs, mounts = bed(clients=4)
        region = 16 * fs.block_size
        g.run(until=mpiio_collective(mounts, "/shared", "write",
                                     region_bytes=region,
                                     transfer_bytes=fs.block_size))
        transfers = 4 * 16
        assert fs.token_manager.grants < transfers / 2
        assert fs.token_manager.revokes <= 4 * 8

    def test_more_nodes_more_aggregate(self):
        g, fs, mounts = bed(clients=4)
        region = 8 * fs.block_size
        r1 = g.run(until=mpiio_collective(mounts[:1], "/f1", "write",
                                          region_bytes=region,
                                          transfer_bytes=fs.block_size))
        r4 = g.run(until=mpiio_collective(mounts, "/f4", "write",
                                          region_bytes=region,
                                          transfer_bytes=fs.block_size))
        assert r4.extra["rate"] > r1.extra["rate"]

    def test_validation(self):
        g, fs, mounts = bed()
        with pytest.raises(ValueError):
            mpiio_collective(mounts, "/x", "append")
        with pytest.raises(ValueError):
            mpiio_collective([], "/x")
        with pytest.raises(ValueError):
            mpiio_collective(mounts, "/x", region_bytes=1, transfer_bytes=2)
