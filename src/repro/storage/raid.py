"""RAID sets (the paper's 8+P RAID-5 groups, Fig 9).

Two fidelity levels, selected per scenario:

* ``detailed=True`` — member :class:`~repro.storage.disk.Disk` objects;
  an IO is chunked across the data disks (plus a parity chunk on writes)
  and completes when every member completes. Used by unit tests and small
  scenarios.
* ``detailed=False`` (default) — one aggregate pipe whose rate is derived
  from the member spec: ``data_disks × disk_rate`` for reads,
  ``data_disks × disk_rate × D/(D+P)`` for full-stripe writes (parity
  share), halved again for partial-stripe (read-modify-write) writes.
  Used by the large scenarios where per-disk events would dominate run
  time without changing the bottleneck arithmetic.
"""

from __future__ import annotations

import enum
from typing import Generator, List, Optional

from repro.sim.kernel import Event, Simulation
from repro.sim.trace import TRACE
from repro.storage.disk import Disk, DiskSpec
from repro.storage.pipes import Pipe
from repro.util.units import KiB, MB


class RaidState(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"  # a member lost, parity covering
    REBUILDING = "rebuilding"  # reconstructing onto a spare
    FAILED = "failed"  # more members lost than parity can cover


class DataLossError(RuntimeError):
    """More failures than the parity scheme tolerates."""


class RaidSet:
    """A D+P RAID-5 group of identical drives."""

    def __init__(
        self,
        sim: Simulation,
        spec: DiskSpec,
        data_disks: int = 8,
        parity_disks: int = 1,
        segment: int = KiB(256),
        detailed: bool = False,
        name: str = "raid",
    ) -> None:
        if data_disks < 1 or parity_disks < 0:
            raise ValueError("need >=1 data disk and >=0 parity disks")
        if segment <= 0:
            raise ValueError("segment must be positive")
        self.sim = sim
        self.spec = spec
        self.data_disks = data_disks
        self.parity_disks = parity_disks
        self.segment = segment
        self.detailed = detailed
        self.name = name
        self.capacity = data_disks * spec.capacity
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.state = RaidState.HEALTHY
        self.failed_members = 0
        #: service-rate multiplier while degraded (reconstruction reads every
        #: surviving member) and during rebuild (spindles shared with the
        #: rebuild stream)
        self.degraded_factor = 0.55
        self.rebuilding_factor = 0.70
        self.rebuild_rate = MB(25)  # per-spindle reconstruction write rate

        self.disks: List[Disk] = []
        self._agg_pipe: Optional[Pipe] = None
        if detailed:
            self.disks = [
                Disk(sim, spec, name=f"{name}.d{i}")
                for i in range(data_disks + parity_disks)
            ]
        else:
            # Aggregate stage at the set's read rate; writes are scaled per-IO.
            self._agg_pipe = Pipe(
                sim, data_disks * spec.read_rate, name=f"{name}.agg"
            )

    @property
    def full_stripe(self) -> int:
        """Bytes in one full stripe (data portion)."""
        return self.data_disks * self.segment

    # -- rate arithmetic (used by aggregate mode and by capacity planners) ----

    def read_rate(self) -> float:
        return self.data_disks * self.spec.read_rate

    def write_rate(self, nbytes: float) -> float:
        """Effective client-visible write rate for one IO of ``nbytes``."""
        total = self.data_disks + self.parity_disks
        base = self.data_disks * self.spec.write_rate
        if self.parity_disks == 0:
            return base
        parity_eff = self.data_disks / total
        if nbytes >= self.full_stripe:
            return base * parity_eff
        # Partial stripe: read-modify-write roughly doubles member work.
        return base * parity_eff / 2.0

    # -- failure & rebuild -------------------------------------------------------

    @property
    def service_factor(self) -> float:
        """Current service-rate multiplier for the set's state."""
        if self.state is RaidState.DEGRADED:
            return self.degraded_factor
        if self.state is RaidState.REBUILDING:
            return self.rebuilding_factor
        return 1.0

    def fail_disk(self) -> None:
        """A member drive dies.

        Within the parity budget the set degrades (reads reconstruct from
        the survivors); past it the set fails and IO raises
        :class:`DataLossError`.
        """
        self.failed_members += 1
        if self.failed_members > self.parity_disks:
            self.state = RaidState.FAILED
        else:
            self.state = RaidState.DEGRADED

    def rebuild(self) -> Event:
        """Reconstruct the failed member onto a spare.

        Duration = member capacity / rebuild rate (hours for 2005 SATA —
        the window the hot spares of Fig 9 exist to shorten). The set
        serves IO throughout at ``rebuilding_factor`` speed.
        """
        if self.state is RaidState.FAILED:
            raise DataLossError(f"{self.name}: cannot rebuild, data lost")
        if self.state is not RaidState.DEGRADED:
            raise ValueError(f"{self.name}: nothing to rebuild")
        self.state = RaidState.REBUILDING
        duration = self.spec.capacity / self.rebuild_rate

        def _proc():
            yield self.sim.timeout(duration)
            self.failed_members -= 1
            self.state = (
                RaidState.HEALTHY if self.failed_members == 0 else RaidState.DEGRADED
            )
            return duration

        return self.sim.process(_proc(), name=f"{self.name}-rebuild")

    # -- IO ---------------------------------------------------------------------

    def io(self, kind: str, nbytes: float, sequential: bool = True) -> Event:
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.state is RaidState.FAILED:
            raise DataLossError(f"{self.name}: RAID set failed, data lost")
        if kind == "read":
            self.bytes_read += nbytes
        else:
            self.bytes_written += nbytes
        if self.detailed:
            return self.sim.process(
                self._detailed_io(kind, nbytes, sequential), name=f"{self.name}-{kind}"
            )
        return self.sim.process(
            self._aggregate_io(kind, nbytes, sequential), name=f"{self.name}-{kind}"
        )

    def _aggregate_io(self, kind: str, nbytes: float, sequential: bool):
        pipe = self._agg_pipe
        assert pipe is not None
        rate = self.read_rate() if kind == "read" else self.write_rate(nbytes)
        rate *= self.service_factor
        # Express the IO as read-rate-equivalent bytes so one pipe can carry
        # both kinds while preserving each kind's service time.
        equiv = nbytes * (pipe.rate / rate)
        seek = 0.0 if sequential else self.spec.seek_time
        tr = TRACE if TRACE.enabled else None
        lane = f"raid:{self.name}"
        with pipe._res.request() as req:
            wid = tr.begin(self.sim, f"wait.{kind}", cat="storage.queue",
                           lane=lane, bytes=nbytes) if tr else 0
            yield req
            if wid:
                tr.end(self.sim, wid)
            sid = tr.begin(self.sim, f"service.{kind}", cat="storage.service",
                           lane=lane, bytes=nbytes,
                           state=self.state.value) if tr else 0
            yield self.sim.timeout(seek + pipe.service_time(equiv))
            if sid:
                tr.end(self.sim, sid)
        pipe.bytes_served += nbytes
        pipe.ios_served += 1

    def _detailed_io(
        self, kind: str, nbytes: float, sequential: bool
    ) -> Generator[Event, None, None]:
        if nbytes == 0:
            yield self.sim.timeout(0.0)
            return
        tr = TRACE if TRACE.enabled else None
        sid = tr.begin(self.sim, f"stripe.{kind}", cat="storage.service",
                       lane=f"raid:{self.name}", bytes=nbytes,
                       state=self.state.value) if tr else 0
        chunk = nbytes / self.data_disks
        # Degraded/rebuilding sets do extra member work (reconstruction
        # reads every survivor; the rebuild stream steals spindle time);
        # expressed as inflated per-member bytes at the current factor.
        chunk /= self.service_factor
        events = []
        rmw = kind == "write" and self.parity_disks > 0 and nbytes < self.full_stripe
        member_bytes = chunk * 2 if rmw else chunk  # RMW: read old + write new
        survivors = self.disks[self.failed_members :] if self.failed_members else self.disks
        data_members = survivors[: self.data_disks]
        parity_members = survivors[self.data_disks :]
        for disk in data_members:
            events.append(disk.io(kind, member_bytes, sequential))
        if kind == "write" and parity_members:
            parity_bytes = chunk * len(parity_members)
            for disk in parity_members:
                events.append(disk.io("write", member_bytes if rmw else parity_bytes, sequential))
        yield self.sim.all_of(events)
        if sid:
            tr.end(self.sim, sid)
