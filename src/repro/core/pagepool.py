"""The client page pool: GPFS's unified block cache.

Per-mount LRU cache of file blocks with dirty tracking. Write-behind and
read-ahead policy live in the mount (:mod:`repro.core.client`); the pool is
the bookkeeping: capacity in bytes, eviction of clean blocks only, and the
per-inode dirty index that token revocation and fsync flush from.

Entries store real bytes when the filesystem keeps data, or lengths in
size-only mode (benchmarks) — the accounting is identical.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

Key = Tuple[int, int]  # (ino, logical block index)


class PoolWedgedError(MemoryError):
    """Every resident block is dirty; nothing can be evicted.

    ``MemoryError`` subclass so existing ``except MemoryError`` handlers
    keep working; the message names the block whose insert wedged.
    """


@dataclass
class CacheEntry:
    data: Optional[bytes]  # None in size-only mode
    length: int
    dirty: bool = False
    #: dirty byte span within the block (for partial-block flushes)
    dirty_lo: int = 0
    dirty_hi: int = 0


class PagePool:
    """Bounded block cache with LRU eviction of clean entries."""

    def __init__(self, capacity_bytes: int, block_size: int) -> None:
        if capacity_bytes < block_size:
            raise ValueError("page pool smaller than one block")
        self.capacity = capacity_bytes
        self.block_size = block_size
        self._entries: "OrderedDict[Key, CacheEntry]" = OrderedDict()
        self._dirty_by_ino: Dict[int, Set[int]] = {}
        self.used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- lookup ---------------------------------------------------------------

    def get(self, ino: int, block: int) -> Optional[CacheEntry]:
        entry = self._entries.get((ino, block))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((ino, block))
        self.hits += 1
        return entry

    def peek(self, ino: int, block: int) -> Optional[CacheEntry]:
        """Lookup without LRU/statistics side effects."""
        return self._entries.get((ino, block))

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    # -- insertion / update -----------------------------------------------------

    def put_clean(self, ino: int, block: int, data: Optional[bytes], length: int) -> None:
        """Install a block fetched from an NSD."""
        key = (ino, block)
        old = self._entries.get(key)
        if old is not None and old.dirty:
            raise ValueError(f"refusing to overwrite dirty block {key}")
        self._insert(key, CacheEntry(data=data, length=length))

    def write(
        self,
        ino: int,
        block: int,
        offset: int,
        data: Optional[bytes],
        length: int,
    ) -> None:
        """Apply a write into the cache, marking the block dirty."""
        if offset < 0 or offset + length > self.block_size:
            raise ValueError("write exceeds block bounds")
        key = (ino, block)
        entry = self._entries.get(key)
        if entry is None:
            entry = CacheEntry(data=None if data is None else b"", length=0)
            self._insert(key, entry)
        if data is not None:
            old = entry.data or b""
            if len(old) < offset:
                old = old + b"\x00" * (offset - len(old))
            entry.data = old[:offset] + data + old[offset + length:]
            entry.length = len(entry.data)
        else:
            entry.length = max(entry.length, offset + length)
        if entry.dirty:
            entry.dirty_lo = min(entry.dirty_lo, offset)
            entry.dirty_hi = max(entry.dirty_hi, offset + length)
        else:
            entry.dirty = True
            entry.dirty_lo = offset
            entry.dirty_hi = offset + length
        self._dirty_by_ino.setdefault(ino, set()).add(block)
        self._entries.move_to_end(key)

    def mark_clean(self, ino: int, block: int) -> None:
        """Called after a successful flush."""
        entry = self._entries.get((ino, block))
        if entry is None:
            return
        entry.dirty = False
        entry.dirty_lo = entry.dirty_hi = 0
        blocks = self._dirty_by_ino.get(ino)
        if blocks is not None:
            blocks.discard(block)
            if not blocks:
                del self._dirty_by_ino[ino]

    def trim_block(self, ino: int, block: int, keep: int) -> None:
        """Drop cached contents of one block beyond ``keep`` bytes (truncate).

        Dirty spans are clamped; a span that fell entirely beyond the keep
        point is discarded (the data it covered no longer exists).
        """
        if not 0 <= keep <= self.block_size:
            raise ValueError("keep out of block bounds")
        entry = self._entries.get((ino, block))
        if entry is None:
            return
        if entry.data is not None and len(entry.data) > keep:
            entry.data = entry.data[:keep]
        entry.length = min(entry.length, keep)
        if entry.dirty:
            entry.dirty_hi = min(entry.dirty_hi, keep)
            if entry.dirty_lo >= entry.dirty_hi:
                self.mark_clean(ino, block)

    def invalidate(self, ino: int, block: Optional[int] = None) -> None:
        """Drop clean entries (all of an ino, or one block). Dirty survive."""
        keys = (
            [(ino, block)]
            if block is not None
            else [k for k in self._entries if k[0] == ino]
        )
        for key in keys:
            entry = self._entries.get(key)
            if entry is not None and not entry.dirty:
                self.used -= self.block_size
                del self._entries[key]

    # -- dirty index ------------------------------------------------------------

    def dirty_blocks(self, ino: int, lo: Optional[int] = None, hi: Optional[int] = None) -> List[int]:
        """Dirty block indices of ``ino`` (optionally intersecting [lo, hi) bytes)."""
        blocks = sorted(self._dirty_by_ino.get(ino, ()))
        if lo is None and hi is None:
            return blocks
        lo = 0 if lo is None else lo
        hi = float("inf") if hi is None else hi
        out = []
        for b in blocks:
            b_lo, b_hi = b * self.block_size, (b + 1) * self.block_size
            if b_lo < hi and lo < b_hi:
                out.append(b)
        return out

    @property
    def dirty_bytes(self) -> int:
        return sum(len(blocks) for blocks in self._dirty_by_ino.values()) * self.block_size

    @property
    def total_dirty_blocks(self) -> int:
        return sum(len(blocks) for blocks in self._dirty_by_ino.values())

    # -- stats ------------------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Snapshot for telemetry (``repro.obs`` scrapes this per mount)."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "used": float(self.used),
            "capacity": float(self.capacity),
            "dirty_blocks": float(self.total_dirty_blocks),
            "hit_ratio": self.hit_ratio,
        }

    # -- internals ---------------------------------------------------------------

    def _insert(self, key: Key, entry: CacheEntry) -> None:
        if key in self._entries:
            old = self._entries[key]
            if old.dirty and not entry.dirty:
                raise ValueError(f"refusing to overwrite dirty block {key}")
            self._entries[key] = entry
            self._entries.move_to_end(key)
            return
        self._evict_for_space(key)
        self._entries[key] = entry
        self.used += self.block_size

    def _evict_for_space(self, incoming: Key) -> None:
        while self.used + self.block_size > self.capacity:
            victim = None
            for key, entry in self._entries.items():  # LRU order
                if not entry.dirty:
                    victim = key
                    break
            if victim is None:
                ino, block = incoming
                raise PoolWedgedError(
                    f"page pool wedged inserting block {block} of ino {ino}: "
                    f"all {len(self._entries)} resident blocks are dirty — "
                    "write-behind cannot keep up (pool too small for the "
                    "dirty throttle?)"
                )
            del self._entries[victim]
            self.used -= self.block_size
            self.evictions += 1
