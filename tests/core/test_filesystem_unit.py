"""Unit tests for the Filesystem object itself."""

import pytest

from repro.core.inode import FileType

from tests.core.testbed import small_gfs


class TestPlacement:
    def test_nsd_id_round_robin_with_rotation(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        ids_file_a = [fs.nsd_id_for(ino=10, block_index=b) for b in range(4)]
        ids_file_b = [fs.nsd_id_for(ino=11, block_index=b) for b in range(4)]
        assert sorted(ids_file_a) == sorted(ids_file_b) == [0, 1, 2, 3]
        assert ids_file_a != ids_file_b  # per-file rotation offset

    def test_ensure_block_idempotent(self):
        g, cluster, fs, _ = small_gfs()
        inode = fs.inodes.allocate(FileType.FILE, now=0.0)
        first = fs.ensure_block(inode, 3)
        second = fs.ensure_block(inode, 3)
        assert first == second
        assert fs.allocation.allocated_blocks == 1

    def test_free_from_block(self):
        g, cluster, fs, _ = small_gfs()
        inode = fs.inodes.allocate(FileType.FILE, now=0.0)
        for b in range(6):
            fs.ensure_block(inode, b)
        freed = fs.free_file_blocks(inode, from_block=4)
        assert freed == 2
        assert sorted(inode.blocks) == [0, 1, 2, 3]

    def test_capacity_accounting(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=2, blocks_per_nsd=10)
        assert fs.capacity == 20 * fs.block_size
        inode = fs.inodes.allocate(FileType.FILE, now=0.0)
        fs.ensure_block(inode, 0)
        assert fs.used_bytes == fs.block_size
        assert fs.free_bytes == 19 * fs.block_size


class TestStats:
    def test_stats_keys(self):
        g, cluster, fs, _ = small_gfs()
        stats = fs.stats()
        for key in ("capacity", "used", "blocks_read", "blocks_written",
                    "token_grants", "token_revokes"):
            assert key in stats


class TestConstruction:
    def test_block_size_mismatch_rejected(self):
        from repro.core.filesystem import Filesystem
        from repro.core.nsd import Nsd

        g, cluster, fs, _ = small_gfs()
        bad_nsd = Nsd(0, "bad", total_blocks=8, block_size=999)
        with pytest.raises(ValueError, match="block size"):
            Filesystem(g.sim, "x", fs.block_size, [bad_nsd], fs.service,
                       g.messages, "nsd0")

    def test_empty_nsds_rejected(self):
        from repro.core.filesystem import Filesystem

        g, cluster, fs, _ = small_gfs()
        with pytest.raises(ValueError, match="at least one NSD"):
            Filesystem(g.sim, "x", fs.block_size, [], fs.service,
                       g.messages, "nsd0")
