"""Property test: replay rebuild == pre-crash token table minus the dead.

Hypothesis drives random acquire sequences against one TokenManager, then
simulates a manager takeover with one client unable to reply. The table
rebuilt from the survivors' replayed mirrors must equal the pre-crash
ghost with exactly the dead client's tokens dropped — nothing else lost,
nothing invented, and still conflict-free.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tokens import RO, RW, TokenManager
from repro.faults.recovery import _table_keys
from repro.net.message import MessageService
from repro.net.topology import Network
from repro.sim import Simulation
from repro.util.units import Gbps

CLIENTS = ["c0", "c1", "c2"]


def noop_handler(ino, lo, hi):
    yield from ()


def build_manager():
    sim = Simulation()
    net = Network()
    net.add_node("sw", kind="switch")
    for n in ["mgr", "mgr2"] + CLIENTS:
        net.add_host(n, "sw", Gbps(1), nic_delay=0.001)
    tm = TokenManager(sim, MessageService(sim, net), "mgr")
    for c in CLIENTS:
        tm.register_client(c, noop_handler)
    return sim, tm


acquire_op = st.tuples(
    st.sampled_from(CLIENTS),
    st.integers(1, 3),  # ino
    st.integers(0, 500),  # start
    st.integers(1, 200),  # length
    st.sampled_from([RO, RW]),
)


def _drive(ops):
    sim, tm = build_manager()
    for client, ino, start, length, mode in ops:
        sim.run(until=tm.acquire(client, ino, start, start + length, mode))
    return sim, tm


def _take_over(tm, crashed):
    ghost = _table_keys(tm._held)
    tm.begin_takeover()
    rebuilt = tm.rebuild_from_replay([c for c in CLIENTS if c != crashed])
    tm.complete_takeover("mgr2")
    return ghost, rebuilt


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(acquire_op, min_size=1, max_size=12),
       crashed=st.sampled_from(CLIENTS))
def test_rebuild_equals_ghost_minus_dead_holder(ops, crashed):
    sim, tm = _drive(ops)
    ghost, rebuilt = _take_over(tm, crashed)
    expected = {}
    for ino, keys in ghost.items():
        kept = {k for k in keys if k[0] != crashed}
        if kept:
            expected[ino] = kept
    assert _table_keys(rebuilt) == expected
    # The rebuilt table is what the manager now serves from.
    assert _table_keys(tm._held) == expected
    assert tm.node == "mgr2"
    assert tm.epoch == 1


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(acquire_op, min_size=1, max_size=12),
       crashed=st.sampled_from(CLIENTS))
def test_rebuilt_table_is_conflict_free_and_grants_again(ops, crashed):
    sim, tm = _drive(ops)
    _ghost, rebuilt = _take_over(tm, crashed)
    for tokens in rebuilt.values():
        for i, a in enumerate(tokens):
            for b in tokens[i + 1:]:
                assert not a.conflicts_with(b.holder, b.mode, b.start, b.end)
    # The successor resumes granting against the rebuilt table.
    survivor = next(c for c in CLIENTS if c != crashed)
    sim.run(until=tm.acquire(survivor, 1, 0, 64, RW))
    held = tm.holders(1)
    for i, a in enumerate(held):
        for b in held[i + 1:]:
            assert not a.conflicts_with(b.holder, b.mode, b.start, b.end)
