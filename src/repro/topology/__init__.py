"""Prebuilt scenarios: the paper's deployments, one builder per section.

* :mod:`repro.topology.sc02`     — SC'02 Baltimore: QFS/SANergy over FCIP
  hardware encoding, 80 ms RTT (paper §2, Figs 1–2)
* :mod:`repro.topology.sc03`     — SC'03 Phoenix: first native WAN-GPFS,
  40 IA64 NSD servers, one 10 GbE uplink (§3, Figs 4–5)
* :mod:`repro.topology.sc04`     — SC'04 Pittsburgh: StorCloud, 3×10 GbE,
  the true grid prototype (§4, Figs 7–8)
* :mod:`repro.topology.teragrid` — the early-2004 TeraGrid map (Fig 6)
* :mod:`repro.topology.sdsc2005` — the 0.5 PB production GFS (§5,
  Figs 9–11) on the TeraGrid map
* :mod:`repro.topology.deisa`    — DEISA's four-core-site MC-GPFS (§7)
"""

from repro.topology.sc02 import build_sc02, Sc02Scenario, SanergyClient
from repro.topology.sc03 import build_sc03, Sc03Scenario
from repro.topology.sc04 import build_sc04, Sc04Scenario
from repro.topology.teragrid import add_teragrid_backbone, TERAGRID_SITES
from repro.topology.sdsc2005 import build_sdsc2005, Sdsc2005Scenario
from repro.topology.deisa import build_deisa, DeisaScenario

__all__ = [
    "build_sc02",
    "Sc02Scenario",
    "SanergyClient",
    "build_sc03",
    "Sc03Scenario",
    "build_sc04",
    "Sc04Scenario",
    "add_teragrid_backbone",
    "TERAGRID_SITES",
    "build_sdsc2005",
    "Sdsc2005Scenario",
    "build_deisa",
    "DeisaScenario",
]
