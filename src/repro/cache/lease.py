"""Revalidation leases: cache consistency layered on the token manager.

The home cluster's token manager already serializes conflicting access
between *clients*; the gateway cache needs a second, cheaper contract
because the gateway itself holds no tokens. The :class:`LeaseServer`
(living on the filesystem manager node) keeps a per-inode **version**
that advances whenever any node is granted an ``rw`` token on the inode
— the earliest moment a write can become visible. Gateways obtain
bounded-lifetime *validity leases* over inodes:

* within a live lease, gateway reads are served from cache with **no WAN
  round trip** (bounded staleness, like NFS attribute caching or AFM's
  revalidation interval);
* an expired lease forces one revalidation round trip: the gateway
  learns the current version and, when a *foreign* writer advanced it,
  drops its clean cached blocks for the inode;
* a conflicting grant while a lease is live triggers an asynchronous
  **invalidation push** from the lease server to the gateway — the lease
  breaks when the message arrives (home-side token revocation has, by
  then, already flushed any dirty edge data, because the grant hook runs
  after revocations complete).

The hook costs nothing when no gateway exists:
``TokenManager.on_grant`` stays ``None`` and the grant path is
byte-for-byte the pre-gateway code — the golden-metrics invariance the
acceptance criteria pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.tokens import RW


@dataclass
class LeaseInfo:
    version: int
    expires_at: float
    validated_at: float


class LeaseServer:
    """Per-inode version authority for one filesystem's gateways."""

    def __init__(self, fs, duration: float = 10.0) -> None:
        if duration <= 0:
            raise ValueError("lease duration must be positive")
        self.fs = fs
        self.sim = fs.sim
        self.node = fs.manager_node
        self.duration = duration
        self._version: Dict[int, int] = {}
        self._writer: Dict[int, str] = {}
        self.gateways: List = []
        self.validations = 0
        self.invalidations = 0
        self.takeover_invalidations = 0
        if fs.token_manager.on_grant is not None:
            raise RuntimeError(
                f"filesystem {fs.name!r} already has a grant hook installed"
            )
        fs.token_manager.on_grant = self._on_grant

    def register(self, gateway) -> None:
        if gateway not in self.gateways:
            self.gateways.append(gateway)

    # -- gateway-facing protocol ------------------------------------------------

    def validate(self, ino: int) -> Tuple[int, str]:
        """Current (version, last-writer) for ``ino``.

        Called by a gateway at the end of its revalidation round trip —
        the WAN latency was already paid by the message exchange, so this
        is plain shared state, not another event.
        """
        self.validations += 1
        return self._version.get(ino, 0), self._writer.get(ino, "")

    # -- token-manager hook -----------------------------------------------------

    def _on_grant(
        self, client: str, ino: int, mode: str, start: int, end: int
    ) -> None:
        """An ``rw`` grant makes a write possible: bump the version and
        push invalidations to every gateway not serving the writer."""
        if mode != RW:
            return
        self._version[ino] = self._version.get(ino, 0) + 1
        self._writer[ino] = client
        version = self._version[ino]
        for gw in self.gateways:
            if client in gw.local_nodes or client in gw.nodes:
                # The write flows *through* this gateway; its cache is
                # updated on the write path, no invalidation needed.
                continue
            target = gw.lease_holder_node(ino)
            if target is None:
                continue  # no live lease, nothing cached to go stale
            self.invalidations += 1
            evt = self.fs.messages.send(self.node, target, nbytes=256)
            evt.callbacks.append(
                lambda _e, g=gw, i=ino, v=version: g.lease_broken(i, v)
            )

    # -- manager takeover --------------------------------------------------------

    def replay_after_takeover(self, inos) -> int:
        """Conservative invalidation after a manager takeover.

        The recovery manager replays the ``on_grant`` registrations it
        rebuilt (every inode with a surviving ``rw`` token) plus every
        inode written during the outage window. Grants and writes that
        raced the crash may never have produced an invalidation push, so
        each such inode's version advances and every gateway holding a
        live lease on it is told — a spurious drop of clean cache beats a
        stale read. ``self.node`` already points at the successor
        (``Filesystem.move_manager`` ran first), so pushes pay the new
        manager's network path.
        """
        pushed = 0
        for ino in sorted(set(inos)):
            self._version[ino] = self._version.get(ino, 0) + 1
            # The pre-crash writer attribution is unknown to the new
            # manager; drop it so every site revalidates.
            self._writer.pop(ino, None)
            version = self._version[ino]
            for gw in self.gateways:
                target = gw.lease_holder_node(ino)
                if target is None:
                    continue
                self.invalidations += 1
                self.takeover_invalidations += 1
                pushed += 1
                evt = self.fs.messages.send(self.node, target, nbytes=256)
                evt.callbacks.append(
                    lambda _e, g=gw, i=ino, v=version: g.lease_broken(i, v)
                )
        return pushed
