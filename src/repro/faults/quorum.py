"""Node quorum over the NSD server set: the split-brain gate.

GPFS keeps a cluster consistent through partitions by letting only the
side holding a *node quorum* (a strict majority of quorum nodes — here,
the NSD server nodes) mutate cluster state. This module implements that
rule as a small pure-query service consulted by two mutators:

* :class:`~repro.core.tokens.TokenManager` refuses to grant byte-range
  tokens while its manager node cannot reach a majority — a minority
  manager parks the grant until heal instead of handing out tokens that
  the majority side could also grant;
* :class:`~repro.faults.detector.DiskLeaseDetector` makes no
  declarations while quorumless — a minority side must not declare the
  (perfectly healthy) majority dead.

With no partition attached every check is ``True`` at zero cost, so the
gate is invisible to nominal runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.partition import PartitionState


class QuorumService:
    """Majority-of-NSD-server-nodes reachability check."""

    def __init__(self, service, partition: Optional[PartitionState] = None) -> None:
        self.service = service  # NsdService: source of the quorum node set
        self.partition = partition
        self.checks = 0
        self.denials = 0

    def member_nodes(self) -> List[str]:
        """The quorum node set: every distinct NSD server node (primaries
        and backups — the nodes whose agreement matters for disk state)."""
        service = self.service
        return list(
            dict.fromkeys(
                [srv.node for srv in service.servers.values()]
                + [b.node for bl in service.backup_servers.values() for b in bl]
            )
        )

    def has_quorum(self, node: str) -> bool:
        """Can ``node`` currently reach a strict majority of members?

        A node always reaches itself; with no active partition the answer
        is trivially yes.
        """
        self.checks += 1
        part = self.partition
        if part is None or not part.active:
            return True
        members = self.member_nodes()
        reachable = sum(1 for m in members if not part.severed(node, m))
        ok = reachable * 2 > len(members)
        if not ok:
            self.denials += 1
        return ok

    def metrics(self) -> Dict[str, float]:
        return {
            "quorum_checks": float(self.checks),
            "quorum_denials": float(self.denials),
        }
