"""Integration tests: harness wiring, invariance, ride-through, determinism."""

from repro.faults import (
    DiskLeaseDetector,
    FaultSchedule,
    NodeHealth,
    RetryPolicy,
    attach_faults,
)

from tests.core.testbed import mounted, run_io, small_gfs

PAYLOAD = 16 * 1024 * 1024  # 16 MiB — 64 blocks, round-robin over 4 NSDs


def _write_file(g, m, nbytes=PAYLOAD, path="/f"):
    payload = b"\0" * int(nbytes)

    def gen():
        h = yield m.open(path, "w", create=True)
        yield m.write(h, payload)
        yield m.close(h)

    run_io(g, gen())


def _read_file(g, m, nbytes=PAYLOAD, path="/f", chunk=1024 * 1024):
    failed = [0]

    def gen():
        h = yield m.open(path, "r")
        pos = 0
        while pos < nbytes:
            n = min(chunk, nbytes - pos)
            try:
                yield m.pread(h, pos, n)
            except ConnectionError:
                failed[0] += 1
            pos += n
        yield m.close(h)

    run_io(g, gen())
    return failed[0]


class TestEmptyScheduleInvariance:
    def _workload(self, with_harness):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        m = mounted(g, cluster, node="c0")
        if with_harness:
            attach_faults(
                g.sim, fs.service, manager_node="nsd0",
                schedule=FaultSchedule(), engine=g.engine,
                network=g.network, lease_duration=1.0,
                retry=RetryPolicy(),
                retry_rng=g.rng.stream("faults.retry"),
                token_managers=[fs.token_manager],
            )
        _write_file(g, m)
        m.pool.invalidate(fs.namespace.resolve("/f").ino)
        assert _read_file(g, m) == 0
        return g.sim.now

    def test_attached_but_empty_changes_nothing(self):
        # Heartbeats are latency-only and the retry wrapper adds no sim
        # time on success, so completion time must be *exactly* equal.
        assert self._workload(False) == self._workload(True)


class TestRideThrough:
    def test_crash_detect_failover_restart_zero_failures(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        m = mounted(g, cluster, node="c0")
        _write_file(g, m, nbytes=64 * 1024 * 1024)
        m.pool.invalidate(fs.namespace.resolve("/f").ino)
        t0 = g.sim.now
        harness = attach_faults(
            g.sim, fs.service, manager_node="nsd0",
            schedule=(
                FaultSchedule()
                .crash_node(t0 + 0.1, "nsd1")
                .restart_node(t0 + 1.2, "nsd1")
            ),
            engine=g.engine, network=g.network, lease_duration=0.4,
            retry=RetryPolicy(),
            retry_rng=g.rng.stream("faults.retry"),
            token_managers=[fs.token_manager],
        )
        failed = _read_file(g, m, nbytes=64 * 1024 * 1024)
        g.run(until=g.sim.timeout(2.0))  # outlive the restart + renewal
        harness.stop()
        assert failed == 0
        metrics = harness.metrics()
        assert metrics["failures_detected"] == 1.0
        # small_gfs has one NSD per server: exactly one transition, no
        # matter how many blocks were re-routed to the backup.
        assert metrics["failovers"] == 1.0
        lease_bound = 0.4 + harness.detector.check_interval + 1e-9
        assert metrics["detection_latency_max"] <= lease_bound
        assert metrics["recoveries"] == 1.0

    def test_harness_metrics_shape(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        harness = attach_faults(
            g.sim, fs.service, manager_node="nsd0",
            schedule=FaultSchedule(), engine=g.engine, network=g.network,
            retry=RetryPolicy(), token_managers=[fs.token_manager],
        )
        m = harness.metrics()
        for key in ("lease_duration", "failovers", "rpc_retries",
                    "rpc_timeouts", "faults_injected",
                    "dead_holder_releases"):
            assert key in m
        g.run(until=g.sim.timeout(0.01))  # let the injector drain
        assert harness.schedule_done


class TestDeadHolderTokens:
    def test_dead_rw_holder_released_after_lease(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4, clients=2)
        m0 = mounted(g, cluster, node="c0")
        m1 = mounted(g, cluster, node="c1")
        _write_file(g, m0, nbytes=256 * 1024)  # c0 holds RW tokens on /f
        health = NodeHealth(g.sim)
        detector = DiskLeaseDetector(
            g.sim, fs.service, health, manager_node="nsd0",
            nodes=["c0"], lease_duration=0.5,
            token_managers=[fs.token_manager],
        )
        fs.token_manager.failure_detector = detector
        detector.start()
        g.run(until=g.sim.timeout(0.2))
        health.crash("c0")
        t_crash = g.sim.now

        def conflicting_write():
            h = yield m1.open("/f", "w")
            yield m1.write(h, b"\1" * (256 * 1024))
            yield m1.close(h)

        run_io(g, conflicting_write())
        detector.stop()
        # The manager waited for the lease declaration instead of
        # messaging the corpse forever: the conflicting write could only
        # complete at/after the declaration instant.
        assert fs.token_manager.dead_holder_releases >= 1
        assert detector.detections and detector.detections[0][0] == "c0"
        assert g.sim.now >= detector.detections[0][1] > t_crash
        assert fs.token_manager.client_ranges(
            fs.namespace.resolve("/f").ino, "c0"
        ) == []


class TestE13Determinism:
    def test_same_seed_identical_metrics(self):
        from repro.experiments.e13_chaos import run_e13_quick

        a = run_e13_quick()
        b = run_e13_quick()
        assert a.metrics == b.metrics  # bit-identical, not approx
        assert a.metrics["reads_failed"] == 0.0
        assert a.metrics["failures_detected"] == 1.0
        assert a.metrics["recoveries"] == 1.0
        assert a.metrics["rpc_retries"] > 0
