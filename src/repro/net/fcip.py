"""FCIP: Fibre Channel frames encapsulated in IP (the SC'02 data path).

Before GPFS could speak TCP/IP natively, the SC'02 demonstration "fooled the
disk environment" with Nishan 4000 boxes encoding FC frames into IP packets.
We model a tunnel as a pair of WAN links whose

* capacity is the box's GbE trunk aggregate (4 × GbE per Nishan pair in
  SC'02, two pairs → 8 Gb/s max), and
* efficiency reflects double framing: FC frame (2112-byte payload, 36+ bytes
  of header/CRC/EOF) inside TCP/IP/GbE — ~90 % usable versus ~94 % for
  plain TCP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import Link
from repro.net.topology import Network
from repro.util.units import Gbps

#: FC-in-IP double-encapsulation efficiency (payload fraction of line rate).
FCIP_EFFICIENCY = 0.90

#: One Nishan 4000's GbE trunk: 4 × 1 GbE channels.
NISHAN_CHANNELS = 4
NISHAN_TRUNK_RATE = NISHAN_CHANNELS * Gbps(1)


@dataclass
class FcipTunnel:
    """An FCIP tunnel between two SAN endpoints across a WAN."""

    a: str
    b: str
    forward: Link
    backward: Link

    @property
    def usable_rate(self) -> float:
        return self.forward.usable_rate


def add_fcip_tunnel(
    network: Network,
    a: str,
    b: str,
    wan_delay: float,
    pairs: int = 1,
    channels: int = NISHAN_CHANNELS,
    efficiency: float = FCIP_EFFICIENCY,
) -> FcipTunnel:
    """Install an FCIP tunnel of ``pairs`` box pairs between existing nodes.

    ``wan_delay`` is the one-way propagation delay of the underlying WAN
    (the paper measured 80 ms round trip SDSC ↔ Baltimore → 0.040 s here).
    """
    if pairs < 1 or channels < 1:
        raise ValueError("pairs and channels must be >= 1")
    rate = pairs * channels * Gbps(1)
    fwd, back = network.add_link(a, b, rate, delay=wan_delay, efficiency=efficiency)
    assert back is not None
    return FcipTunnel(a=a, b=b, forward=fwd, backward=back)
