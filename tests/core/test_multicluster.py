"""Tests for cross-cluster export/import (§6 protocol)."""

import hashlib

import pytest

from repro.core.cluster import Gfs, NsdSpec
from repro.core.multicluster import MountAuthError, unmount
from repro.core.namespace import PermissionDenied
from repro.util.units import Gbps, KiB, MB

from tests.core.testbed import run_io


def wan_gfs(
    server_cipher="AUTHONLY",
    client_cipher="AUTHONLY",
    wan_delay=0.015,
    do_keys=True,
    do_grant="rw",
    block_size=KiB(256),
):
    """Two clusters (sdsc serving, ncsa importing) across a WAN."""
    g = Gfs(seed=3)
    net = g.network
    net.add_node("sdsc-sw", kind="switch")
    net.add_node("ncsa-sw", kind="switch")
    net.add_link("sdsc-sw", "ncsa-sw", Gbps(30), delay=wan_delay)
    sdsc_nodes = [f"s{i}" for i in range(4)]
    ncsa_nodes = [f"n{i}" for i in range(2)]
    for name in sdsc_nodes:
        net.add_host(name, "sdsc-sw", Gbps(1), site="sdsc")
    for name in ncsa_nodes:
        net.add_host(name, "ncsa-sw", Gbps(1), site="ncsa")

    sdsc = g.add_cluster("sdsc", site="sdsc")
    sdsc.add_nodes(sdsc_nodes)
    ncsa = g.add_cluster("ncsa", site="ncsa")
    ncsa.add_nodes(ncsa_nodes)

    fs = sdsc.mmcrfs(
        "gpfs-sdsc",
        [NsdSpec(server=s, blocks=4096) for s in sdsc_nodes],
        block_size=block_size,
    )
    sdsc.mmauth_update(server_cipher)
    ncsa.mmauth_update(client_cipher)
    if do_keys:
        sdsc_pub = sdsc.mmauth_genkey()
        ncsa_pub = ncsa.mmauth_genkey()
        sdsc.mmauth_add("ncsa", ncsa_pub)
        ncsa.mmremotecluster_add("sdsc", sdsc_pub, contact_nodes=["s0"])
    else:
        # still need the cluster definition to attempt a mount
        ncsa.remote_clusters["sdsc"] = type(
            "D", (), {"name": "sdsc", "contact_nodes": ["s0"]}
        )()
    if do_grant:
        sdsc.mmauth_grant("ncsa", "gpfs-sdsc", do_grant)
    ncsa.mmremotefs_add("gpfs-sdsc-remote", "sdsc", "gpfs-sdsc")
    return g, sdsc, ncsa, fs


def patterned(n, seed=7):
    out = bytearray()
    h = hashlib.sha256(str(seed).encode()).digest()
    while len(out) < n:
        out.extend(h)
        h = hashlib.sha256(h).digest()
    return bytes(out[:n])


class TestMountProtocol:
    def test_successful_remote_mount(self):
        g, sdsc, ncsa, fs = wan_gfs()
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0", access="rw")
        mount = g.run(until=evt)
        assert mount.fs is fs
        assert sdsc.active_remote_mounts == 1

    def test_handshake_pays_wan_latency(self):
        g, sdsc, ncsa, fs = wan_gfs(wan_delay=0.040)
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0")
        g.run(until=evt)
        # at least two WAN legs of 40ms each
        assert g.sim.now >= 0.080

    def test_empty_cipher_skips_auth(self):
        g, sdsc, ncsa, fs = wan_gfs(
            server_cipher="EMPTY", client_cipher="EMPTY", do_keys=False
        )
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0")
        mount = g.run(until=evt)
        assert mount.fs is fs

    def test_missing_server_side_key_fails(self):
        g, sdsc, ncsa, fs = wan_gfs()
        sdsc.keystore.revoke("ncsa")  # mmauth add never happened / was removed
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0")
        with pytest.raises(MountAuthError, match="mmauth add"):
            g.run(until=evt)

    def test_serving_cluster_has_no_such_filesystem(self):
        g, sdsc, ncsa, fs = wan_gfs()
        ncsa.mmremotefs_add("ghost", "sdsc", "gpfs-nonexistent")
        evt = ncsa.mmmount("ghost", "n0")
        with pytest.raises(MountAuthError, match="has no filesystem"):
            g.run(until=evt)

    def test_missing_importing_side_key_fails(self):
        # ncsa generated its own keypair but never imported sdsc's
        # public key (mmremotecluster add with the wrong blob / skipped).
        g, sdsc, ncsa, fs = wan_gfs()
        ncsa.keystore.revoke("sdsc")
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0")
        with pytest.raises(MountAuthError, match="mmremotecluster missing"):
            g.run(until=evt)

    def test_missing_keypair_fails(self):
        g, sdsc, ncsa, fs = wan_gfs(
            server_cipher="AUTHONLY", client_cipher="AUTHONLY", do_keys=False
        )
        ncsa.remote_fs  # defined in fixture
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0")
        with pytest.raises(MountAuthError, match="mmauth genkey"):
            g.run(until=evt)

    def test_wrong_key_fails_verification(self):
        g, sdsc, ncsa, fs = wan_gfs()
        # server imports an attacker's key instead of ncsa's real one
        interloper = Gfs(seed=99)
        fake = interloper.add_cluster("fake")
        fake_pub = fake.mmauth_genkey()
        sdsc.mmauth_add("ncsa", fake_pub)
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0")
        with pytest.raises(MountAuthError, match="RSA verification"):
            g.run(until=evt)

    def test_no_grant_fails(self):
        g, sdsc, ncsa, fs = wan_gfs(do_grant=None)
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0")
        with pytest.raises(MountAuthError, match="not granted"):
            g.run(until=evt)

    def test_rw_mount_on_ro_grant_fails(self):
        g, sdsc, ncsa, fs = wan_gfs(do_grant="ro")
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0", access="rw")
        with pytest.raises(MountAuthError, match="read-only"):
            g.run(until=evt)

    def test_ro_grant_allows_ro_mount(self):
        g, sdsc, ncsa, fs = wan_gfs(do_grant="ro")
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n0", access="ro")
        mount = g.run(until=evt)
        assert mount.access == "ro"

    def test_unmount_decrements(self):
        g, sdsc, ncsa, fs = wan_gfs()
        mount = g.run(until=ncsa.mmmount("gpfs-sdsc-remote", "n0"))
        unmount(g, mount)
        assert sdsc.active_remote_mounts == 0
        assert mount not in fs.mounts


class TestCrossClusterIo:
    def test_data_integrity_across_wan(self):
        g, sdsc, ncsa, fs = wan_gfs()
        m_sdsc = g.run(until=sdsc.mmmount("gpfs-sdsc", "s3"))
        m_ncsa = g.run(until=ncsa.mmmount("gpfs-sdsc-remote", "n0"))
        payload = patterned(3 * fs.block_size)

        def io():
            h = yield m_sdsc.open("/dataset", "w", create=True)
            yield m_sdsc.write(h, payload)
            yield m_sdsc.close(h)
            hr = yield m_ncsa.open("/dataset", "r")
            return (yield m_ncsa.read(hr, len(payload)))

        assert run_io(g, io()) == payload

    def test_ro_remote_mount_enforced_at_io(self):
        g, sdsc, ncsa, fs = wan_gfs(do_grant="ro")
        m = g.run(until=ncsa.mmmount("gpfs-sdsc-remote", "n0", access="ro"))

        def io():
            try:
                yield m.open("/newfile", "w", create=True)
            except PermissionDenied:
                return "denied"

        assert run_io(g, io()) == "denied"

    def test_encrypted_cipher_caps_throughput(self):
        # AES128 crypto_rate is 64 MB/s per connection; a single-stream
        # remote read of 64 MB should take ~1s instead of ~GbE speed.
        g, sdsc, ncsa, fs = wan_gfs(server_cipher="AES128", client_cipher="AES128",
                                    block_size=MB(1))
        m_s = g.run(until=sdsc.mmmount("gpfs-sdsc", "s3"))
        m_n = g.run(until=ncsa.mmmount("gpfs-sdsc-remote", "n0"))
        payload = patterned(int(MB(16)))

        def io2():
            h = yield m_s.open("/big", "w", create=True)
            yield m_s.write(h, payload)
            yield m_s.close(h)
            t0 = g.sim.now
            hr = yield m_n.open("/big", "r")
            yield m_n.read(hr, len(payload))
            return g.sim.now - t0

        elapsed = run_io(g, io2())
        # 16 MB over parallel encrypted connections to 4 servers at 64 MB/s
        # each: floor is 16/256 s; must be well below GbE-unencrypted time?
        # Key check: per-connection rate never exceeded the crypto cap.
        # With 4 servers and readahead the transfer uses 4 capped streams.
        assert elapsed >= len(payload) / (4 * 64e6) * 0.9

    def test_intra_cluster_traffic_not_capped(self):
        g, sdsc, ncsa, fs = wan_gfs(server_cipher="AES128", client_cipher="AES128")
        assert g.pair_cipher("s0", "s1") is None
        assert g.pair_cipher("s0", "n0") is not None
        assert g.pair_cipher("s0", "n0").crypto_rate == 64e6


class TestDnOwnership:
    def test_same_dn_different_uids_owns_across_sites(self):
        g, sdsc, ncsa, fs = wan_gfs()
        dn = "/C=US/O=TeraGrid/CN=alice"
        sdsc.add_user("alice", uid=5001, dn=dn)
        ncsa.add_user("amhb", uid=77, dn=dn)  # same human, different account
        id_sdsc = sdsc.identity_for_dn(dn)
        id_ncsa = ncsa.identity_for_dn(dn)
        m_s = g.run(until=sdsc.mmmount("gpfs-sdsc", "s3", identity=id_sdsc))
        m_n = g.run(until=ncsa.mmmount("gpfs-sdsc-remote", "n0", identity=id_ncsa))

        def io():
            h = yield m_s.open("/mine", "w", create=True)
            yield m_s.write(h, b"my data")
            yield m_s.close(h)
            inode = fs.namespace.resolve("/mine")
            inode.mode = 0o600  # owner-only
            hr = yield m_n.open("/mine", "r")  # works: DN matches
            return (yield m_n.read(hr, 10))

        assert run_io(g, io()) == b"my data"

    def test_classic_uid_ownership_breaks_across_sites(self):
        """Without the DN extension the same human is denied at the second site."""
        g, sdsc, ncsa, fs = wan_gfs()
        dn = "/CN=alice"
        sdsc.add_user("alice", uid=5001, dn=dn)
        ncsa.add_user("amhb", uid=77, dn=dn)
        id_sdsc = sdsc.identity_for_dn(dn, use_dn_ownership=False)
        id_ncsa = ncsa.identity_for_dn(dn, use_dn_ownership=False)
        m_s = g.run(until=sdsc.mmmount("gpfs-sdsc", "s3", identity=id_sdsc))
        m_n = g.run(until=ncsa.mmmount("gpfs-sdsc-remote", "n0", identity=id_ncsa))

        def io():
            h = yield m_s.open("/mine", "w", create=True)
            yield m_s.write(h, b"x")
            yield m_s.close(h)
            fs.namespace.resolve("/mine").mode = 0o600
            try:
                yield m_n.open("/mine", "r")
            except PermissionDenied:
                return "denied"

        assert run_io(g, io()) == "denied"
