"""Hierarchical Storage Management: tape archive behind the GFS.

§8 of the paper: "we would like the GFS disk to form an integral part of a
HSM, with an automatic migration of unused data to tape, and the automatic
recall of requested data from deeper archive" — plus the copyright-library
model where "SDSC and the Pittsburgh Supercomputing Center are already
providing remote second copies for each other's archives".

* :mod:`repro.hsm.tape`      — cartridges, drives, robots, the library
* :mod:`repro.hsm.manager`   — migrate/recall, water-mark policy engine
* :mod:`repro.hsm.replicate` — dual-copy remote archive replication
"""

from repro.hsm.tape import TapeCartridge, TapeDrive, TapeLibrary, TapeSpec, LTO2
from repro.hsm.manager import HsmManager, MigrationPolicy, TransparentMount
from repro.hsm.replicate import ArchiveReplicator

__all__ = [
    "TapeCartridge",
    "TapeDrive",
    "TapeLibrary",
    "TapeSpec",
    "LTO2",
    "HsmManager",
    "MigrationPolicy",
    "TransparentMount",
    "ArchiveReplicator",
]
