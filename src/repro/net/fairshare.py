"""Max-min fair bandwidth allocation with per-flow rate caps.

Vectorized progressive filling ("water-filling"). Each iteration either

* fixes every flow whose cap is at or below its current fair share on every
  link of its path (such a flow is cap-limited in the final allocation,
  because fair shares only grow as other flows get fixed below them), or
* saturates the current bottleneck link(s), fixing their flows at the
  bottleneck share.

Each iteration removes at least one link or the whole capped set, so the
loop runs O(links) times; each iteration is dense numpy over an L×F
incidence matrix (see the HPC guide: vectorize the hot loop, profile before
going lower-level — this routine is the simulator's hot spot).

Two entry points share the solver core:

* :func:`max_min_rates` — stateless, rebuilds the incidence matrix per
  call. Fine for one-shot questions and property tests.
* :class:`FairshareState` — persistent incidence state for the flow
  engine's event loop: columns are added/removed as flows come and go
  (amortized growth, freed columns reused), the link-sharing graph is
  partitioned into connected components with a union-find, and
  :meth:`FairshareState.solve` re-runs water-filling only for components
  marked dirty by a membership or capacity change. Adding a flow between
  SDSC and NCSA must not re-solve an untouched DEISA mesh.

The allocation is the unique max-min fair solution, so solving components
independently yields the same rates as one global solve (components share
no links by construction); only float round-off in the last bits differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.sim.profile import PROFILE

#: Relative tolerance when comparing rates.
_REL_EPS = 1e-9


def _water_fill(
    M: np.ndarray,
    Mf: np.ndarray,
    caps: np.ndarray,
    fcaps: np.ndarray,
    rates: np.ndarray,
    unfixed: np.ndarray,
) -> None:
    """Progressive filling over incidence ``M``; writes ``rates`` in place.

    ``M`` is the L×F bool incidence matrix, ``Mf`` its float view (bool @
    bool would be a logical OR, not a count). Only flows in ``unfixed``
    participate; columns outside it must already hold their final rate 0
    contribution (pathless flows never enter here).

    Bit-identity note: the per-flow fair share is a *min* over the links
    of a path and the per-link active count is a sum of 1.0s — both are
    exact in IEEE floats under any evaluation order, so the sparse
    gather/``reduceat``/``bincount`` formulation below produces the same
    bits as the dense ``where(...).min(axis=0)`` / ``Mf @ unfixed`` it
    replaces. The ``remaining`` update, by contrast, is a genuine float
    sum whose rounding depends on association — it stays the exact
    ``Mf @ (rates * mask)`` matvec.
    """
    nlinks, nflows = M.shape
    remaining = caps.copy()

    # CSC view: for each flow (in column order), the link rows it crosses.
    flows_cat, links_cat = np.nonzero(M.T)
    per_flow = np.bincount(flows_cat, minlength=nflows)
    sparse = bool(nflows) and bool(per_flow.all())  # reduceat needs >=1 link/flow
    if sparse:
        starts = np.zeros(nflows, dtype=np.intp)
        np.cumsum(per_flow[:-1], out=starts[1:])

    # Bound: every round fixes at least one flow (either the capped set, or
    # the flows of a newly saturated bottleneck link), so nflows + nlinks
    # rounds always suffice; the +2 covers the empty-set early exits.
    with np.errstate(divide="ignore", invalid="ignore"):
        for _ in range(nflows + nlinks + 2):
            if not unfixed.any():
                break
            if sparse:
                live_entries = unfixed[flows_cat]
                counts = np.bincount(
                    links_cat[live_entries], minlength=nlinks
                ).astype(float)
            else:
                counts = Mf @ unfixed  # active flows per link
            share = np.where(counts > 0, remaining / np.maximum(counts, 1), np.inf)
            # Per-flow fair share: min share over the links of its path.
            if sparse:
                shares_per_flow = np.minimum.reduceat(share[links_cat], starts)
            else:
                shares_per_flow = np.where(M, share[:, None], np.inf).min(axis=0)

            capped = unfixed & (fcaps <= shares_per_flow * (1 + _REL_EPS))
            if capped.any():
                rates[capped] = fcaps[capped]
                np.subtract(remaining, Mf @ (rates * capped), out=remaining)
                np.maximum(remaining, 0.0, out=remaining)
                unfixed &= ~capped
                continue

            live = shares_per_flow[unfixed]
            m = live.min()
            newly = unfixed & (shares_per_flow <= m * (1 + _REL_EPS))
            rates[newly] = np.minimum(shares_per_flow[newly], fcaps[newly])
            np.subtract(remaining, Mf @ (rates * newly), out=remaining)
            np.maximum(remaining, 0.0, out=remaining)
            unfixed &= ~newly
        else:  # pragma: no cover - loop bound is a proof, not a code path
            raise RuntimeError("progressive filling failed to converge")


def max_min_rates(
    link_caps: Sequence[float],
    flow_links: Sequence[Sequence[int]],
    flow_caps: Sequence[float],
) -> np.ndarray:
    """Allocate rates to flows.

    Parameters
    ----------
    link_caps:
        Usable capacity of each link (bytes/s), indexed by link id.
    flow_links:
        For each flow, the link ids on its path (may be empty for loopback
        flows, which then get exactly their cap).
    flow_caps:
        Per-flow rate cap (``inf`` allowed only for flows with a non-empty
        path; a pathless flow must have a finite cap).

    Returns
    -------
    numpy array of allocated rates, same order as ``flow_links``.

    Properties (tested): no link oversubscribed; every flow gets a positive
    rate; a flow is either at its cap or has a bottleneck link that is fully
    used; allocation is max-min fair.
    """
    nflows = len(flow_links)
    caps = np.asarray(link_caps, dtype=float)
    nlinks = caps.shape[0]
    fcaps = np.asarray(flow_caps, dtype=float)
    if fcaps.shape[0] != nflows:
        raise ValueError("flow_caps length must match flow_links")
    if np.any(fcaps <= 0):
        raise ValueError("flow caps must be positive")
    if np.any(caps <= 0):
        raise ValueError("link capacities must be positive")

    rates = np.zeros(nflows)
    if nflows == 0:
        return rates

    # Incidence matrix M[l, f] = flow f crosses link l.
    M = np.zeros((nlinks, nflows), dtype=bool)
    for f, path in enumerate(flow_links):
        for l in path:
            M[l, f] = True

    pathless = ~M.any(axis=0)
    if np.any(pathless & ~np.isfinite(fcaps)):
        raise ValueError("a flow with an empty path must have a finite cap")
    rates[pathless] = fcaps[pathless]

    _water_fill(M, M.astype(np.float64), caps, fcaps, rates, ~pathless)
    return rates


def link_utilization(
    link_caps: Sequence[float],
    flow_links: Sequence[Sequence[int]],
    rates: Sequence[float],
) -> np.ndarray:
    """Per-link used fraction under allocation ``rates`` (diagnostics).

    The single implementation of this accumulation — the flow engine's
    :meth:`~repro.net.flow.FlowEngine.link_utilization` delegates here.
    """
    caps = np.asarray(link_caps, dtype=float)
    used = np.zeros_like(caps)
    lengths = np.fromiter(
        (len(p) for p in flow_links), dtype=np.intp, count=len(flow_links)
    )
    total = int(lengths.sum())
    if total:
        idx = np.fromiter(
            (l for path in flow_links for l in path), dtype=np.intp, count=total
        )
        np.add.at(used, idx, np.repeat(np.asarray(rates, dtype=float), lengths))
    return used / caps


class FairshareState:
    """Persistent incidence/cap arrays + component-partitioned re-solve.

    Owns the L×C incidence matrix the solver runs over, where C is a
    column *capacity* (doubled on demand). A flow occupies one column from
    :meth:`add_flow` until :meth:`remove_flow`; freed columns go on a free
    list and are reused LIFO, so the matrix is built once and patched per
    event instead of rebuilt per solve.

    Links are partitioned by a union-find into connected components of the
    link-sharing graph (two links are connected when some active flow
    crosses both). A membership or capacity change dirties only the
    touched component; :meth:`solve` water-fills dirty components in
    isolation and returns the columns whose rate changed. Flow departures
    never split components eagerly (the partition only coarsens); after
    :attr:`_REBUILD_REMOVALS` removals the partition is rebuilt from the
    active flows, which re-tightens it at amortized O(path) per removal.
    """

    #: Removals tolerated before the (only-coarsening) partition is rebuilt.
    _REBUILD_REMOVALS = 512

    def __init__(self, link_caps: Sequence[float] = (), capacity: int = 64) -> None:
        caps = np.array(link_caps, dtype=float)
        if np.any(caps <= 0):
            raise ValueError("link capacities must be positive")
        self._caps = caps
        self._nlinks = caps.shape[0]
        cap = max(int(capacity), 1)
        self._M = np.zeros((self._nlinks, cap), dtype=bool)
        self._fcaps = np.zeros(cap)
        self._rates = np.zeros(cap)
        self._active = np.zeros(cap, dtype=bool)
        self._paths: List[Optional[List[int]]] = [None] * cap
        # Popped back-first so fresh columns are handed out in index order.
        self._free: List[int] = list(range(cap - 1, -1, -1))
        self.nactive = 0
        # Union-find over link ids; a component's id is its root link.
        self._parent: List[int] = list(range(self._nlinks))
        self._size: List[int] = [1] * self._nlinks
        #: root link id -> set of active columns in that component.
        self._comp_cols: Dict[int, Set[int]] = {}
        self._dirty: Set[int] = set()
        #: columns rated outside solve() (pathless flows), reported once.
        self._fresh: List[int] = []
        self._removals = 0
        #: Always-on solve counters (scraped by repro.obs; PROFILE keeps
        #: the opt-in fine-grained versions).
        self.solves = 0
        self.solved_rows = 0
        self.single_flow_solves = 0

    # -- union-find -----------------------------------------------------------

    def _find(self, l: int) -> int:
        parent = self._parent
        root = l
        while parent[root] != root:
            root = parent[root]
        while parent[l] != root:  # path compression
            parent[l], l = root, parent[l]
        return root

    def _union(self, a: int, b: int) -> int:
        """Merge the components of roots ``a`` and ``b``; return the root."""
        if a == b:
            return a
        # Union by size; smaller root id wins ties for determinism.
        if (self._size[a], -a) < (self._size[b], -b):
            a, b = b, a
        self._parent[b] = a
        self._size[a] += self._size[b]
        cols = self._comp_cols.pop(b, None)
        if cols:
            self._comp_cols.setdefault(a, set()).update(cols)
        if b in self._dirty:
            self._dirty.discard(b)
            self._dirty.add(a)
        return a

    # -- capacity maintenance -------------------------------------------------

    def _grow_cols(self) -> None:
        old = self._M.shape[1]
        new = max(2 * old, 1)
        PROFILE.count("fairshare.matrix_growths")
        M = np.zeros((self._nlinks, new), dtype=bool)
        M[:, :old] = self._M
        self._M = M
        for name in ("_fcaps", "_rates"):
            arr = np.zeros(new)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        active = np.zeros(new, dtype=bool)
        active[:old] = self._active
        self._active = active
        self._paths.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def _grow_links(self, nlinks: int) -> None:
        M = np.zeros((nlinks, self._M.shape[1]), dtype=bool)
        M[: self._nlinks] = self._M
        self._M = M
        self._parent.extend(range(self._nlinks, nlinks))
        self._size.extend([1] * (nlinks - self._nlinks))
        self._nlinks = nlinks

    def set_link_caps(self, link_caps: Sequence[float]) -> None:
        """Adopt the current capacity vector; dirty components that changed.

        Called by the engine before every solve, so ``Link.set_rate``
        changes are picked up at the next event with no further plumbing —
        but only the components containing a changed link re-solve.
        """
        caps = np.asarray(link_caps, dtype=float)
        if caps.shape[0] > self._nlinks:
            self._grow_links(caps.shape[0])
        elif caps.shape[0] < self._nlinks:
            raise ValueError("links cannot be removed from a FairshareState")
        if self._caps.shape[0] == caps.shape[0] and np.array_equal(caps, self._caps):
            return
        if np.any(caps <= 0):
            raise ValueError("link capacities must be positive")
        old = self._caps
        for l in range(caps.shape[0]):
            if l >= old.shape[0] or caps[l] != old[l]:
                root = self._find(l)
                if self._comp_cols.get(root):
                    self._dirty.add(root)
        self._caps = caps.copy()

    # -- flow membership --------------------------------------------------------

    def add_flow(self, path: Sequence[int], fcap: float) -> int:
        """Insert a flow crossing link ids ``path``; returns its column."""
        if fcap <= 0:
            raise ValueError("flow caps must be positive")
        if not self._free:
            self._grow_cols()
        col = self._free.pop()
        self._fcaps[col] = fcap
        self._rates[col] = 0.0
        self._active[col] = True
        self.nactive += 1
        path = list(path)
        self._paths[col] = path
        if path:
            # The network may have grown links since the last solve; row
            # growth happens here, capacities arrive via set_link_caps.
            need = max(path) + 1
            if need > self._nlinks:
                self._grow_links(need)
            self._M[path, col] = True
            root = self._find(path[0])
            for l in path[1:]:
                root = self._union(root, self._find(l))
            self._comp_cols.setdefault(root, set()).add(col)
            self._dirty.add(root)
        else:
            if not np.isfinite(fcap):
                raise ValueError("a flow with an empty path must have a finite cap")
            # Pathless flows are their own trivial component: the rate is
            # the cap, now and forever — rated at the next solve(), no
            # water-filling needed.
            self._fresh.append(col)
        return col

    def remove_flow(self, col: int) -> None:
        """Release ``col``; its component re-solves on the next ``solve()``."""
        if not self._active[col]:
            raise ValueError(f"column {col} is not active")
        path = self._paths[col]
        self._active[col] = False
        self._paths[col] = None
        self._rates[col] = 0.0
        self._fcaps[col] = 0.0
        self.nactive -= 1
        if path:
            self._M[path, col] = False
            root = self._find(path[0])
            cols = self._comp_cols.get(root)
            if cols is not None:
                cols.discard(col)
                if cols:
                    self._dirty.add(root)
                else:
                    del self._comp_cols[root]
                    self._dirty.discard(root)
            self._removals += 1
        self._free.append(col)

    def rate_of(self, col: int) -> float:
        return float(self._rates[col])

    @property
    def rates(self) -> np.ndarray:
        """Current per-column rates (authoritative; do not mutate)."""
        return self._rates

    @property
    def capacity(self) -> int:
        """Current column capacity (callers keeping parallel arrays)."""
        return self._M.shape[1]

    # -- solving ---------------------------------------------------------------

    def _rebuild_partition(self) -> None:
        """Recompute components from the active flows (undoes coarsening)."""
        PROFILE.count("fairshare.partition_rebuilds")
        dirty_cols = [c for r in self._dirty for c in self._comp_cols.get(r, ())]
        self._parent = list(range(self._nlinks))
        self._size = [1] * self._nlinks
        self._comp_cols = {}
        self._dirty = set()
        for col in np.nonzero(self._active)[0]:
            path = self._paths[int(col)]
            if not path:
                continue
            root = self._find(path[0])
            for l in path[1:]:
                root = self._union(root, self._find(l))
            self._comp_cols.setdefault(root, set()).add(int(col))
        for col in dirty_cols:
            path = self._paths[col]
            if path:
                self._dirty.add(self._find(path[0]))
        self._removals = 0

    def solve(self) -> Tuple[np.ndarray, np.ndarray]:
        """Re-solve dirty components.

        Returns ``(cols, old_rates)``: the columns whose rate changed and
        the rates they had before this solve (the new rates are readable
        via :attr:`rates` / :meth:`rate_of`). Untouched components keep
        their rates and do not appear.
        """
        moved_cols: List[np.ndarray] = []
        moved_old: List[np.ndarray] = []
        if self._fresh:
            fresh = np.asarray(self._fresh, dtype=np.intp)
            self._fresh = []
            moved_cols.append(fresh)
            moved_old.append(self._rates[fresh].copy())
            self._rates[fresh] = self._fcaps[fresh]
        if self._removals >= self._REBUILD_REMOVALS:
            self._rebuild_partition()
        for root in sorted(self._dirty):
            cols_set = self._comp_cols.get(root)
            if not cols_set:
                continue
            if len(cols_set) == 1:
                # Single-flow component: water-filling reduces to one round.
                # counts are all 1, so the fair share on each link is its
                # full capacity and the flow's share is the exact min over
                # its path — both order-independent, so this produces the
                # same bits as the general solver below.
                (c,) = cols_set
                path = self._paths[c]
                m = self._caps[path[0]]
                for l in path[1:]:
                    cl = self._caps[l]
                    if cl < m:
                        m = cl
                fcap = self._fcaps[c]
                rate = fcap if fcap <= m * (1 + _REL_EPS) else min(m, fcap)
                self.single_flow_solves += 1
                PROFILE.count("fairshare.single_flow_solves")
                if rate != self._rates[c]:
                    moved = np.asarray([c], dtype=np.intp)
                    moved_cols.append(moved)
                    moved_old.append(self._rates[moved].copy())
                    self._rates[c] = rate
                continue
            cols = np.fromiter(sorted(cols_set), dtype=np.intp, count=len(cols_set))
            sub = self._M[:, cols]
            links = np.nonzero(sub.any(axis=1))[0]
            subM = sub[links]
            fcaps = self._fcaps[cols]
            rates = np.zeros(cols.shape[0])
            self.solves += 1
            self.solved_rows += int(cols.shape[0])
            PROFILE.count("fairshare.solves")
            PROFILE.count("fairshare.solved_rows", cols.shape[0])
            _water_fill(
                subM,
                subM.astype(np.float64),
                self._caps[links],
                fcaps,
                rates,
                np.ones(cols.shape[0], dtype=bool),
            )
            diff = rates != self._rates[cols]
            if diff.any():
                moved = cols[diff]
                moved_cols.append(moved)
                moved_old.append(self._rates[moved].copy())
                self._rates[moved] = rates[diff]
        self._dirty.clear()
        if not moved_cols:
            empty = np.empty(0)
            return empty.astype(np.intp), empty
        return np.concatenate(moved_cols), np.concatenate(moved_old)

    # -- diagnostics ------------------------------------------------------------

    def link_usage(self) -> np.ndarray:
        """Per-link allocated bytes/s under the current rates.

        One dense matvec over the incidence state — the bottleneck-
        attribution layer (``repro.sim.trace``) divides this by the
        capacity vector to find which links are saturated at each rate
        change. Only called when tracing is enabled.
        """
        return self._M @ (self._rates * self._active)

    def component_sizes(self) -> List[int]:
        """Active-flow count per link-sharing component (for tests/benches)."""
        return sorted(len(cols) for cols in self._comp_cols.values() if cols)
