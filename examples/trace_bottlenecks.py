#!/usr/bin/env python
"""Watch the bottleneck move: E8's latency sweep under the flight recorder.

Runs the paper's §2 latency ablation (E8) at two RTTs — a LAN-like 2 ms
and the published 80 ms San Diego → Baltimore path — with 1 and 64
parallel streams, then prints each cell's flow-attribution timeline side
by side. The point the paper argues qualitatively falls out as a measured
tag: at 80 ms a single 2 MiB-window stream is bound by `window/rtt`, while
64 parallel streams shift every flow's bound to the shared link itself.

Run:  python examples/trace_bottlenecks.py
"""

from repro.experiments.e8_latency import run_e8
from repro.sim.trace import TRACE
from repro.util.units import GB

RTTS = (0.002, 0.080)
STREAMS = (1, 64)

TRACE.enable()
result = run_e8(rtts=RTTS, stream_counts=STREAMS, nbytes=GB(1))
TRACE.disable()

# Group flow records by the cell tag E8 stamps on every transfer.
cells = {}
for rec in TRACE.flows:
    for tag in rec.tags:
        cells.setdefault(tag, []).append(rec)


def timeline_str(rec):
    return "; ".join(
        f"{t0:6.2f}-{t1:6.2f}s @ {rate * 8 / 1e9:5.2f} Gb/s  {bound}"
        for t0, t1, rate, bound in rec.timeline()
    )


print(result.table.render())
print()
print("flow attribution timelines (first flow of each cell)")
print("=" * 72)
for streams in STREAMS:
    columns = []
    for rtt in RTTS:
        cell = f"rtt{int(rtt * 1e3)}ms-s{streams}"
        recs = cells[cell]
        bounds = sorted({b for r in recs for _, _, _, b in r.timeline()})
        columns.append((rtt, recs, bounds))
    print(f"\n{streams} stream(s):")
    for rtt, recs, bounds in columns:
        print(f"  RTT {rtt * 1e3:3.0f} ms  ({len(recs)} flows, bounds: {', '.join(bounds)})")
        print(f"      {timeline_str(recs[0])}")

print()
print("flow-seconds per bound (whole sweep)")
print("=" * 72)
for bound, entry in sorted(
    TRACE.bound_summary().items(), key=lambda kv: -kv[1]["sim_seconds"]
):
    print(f"  {bound:<20} {entry['flows']:>5} flows  {entry['sim_seconds']:>10.2f} flow-s")

TRACE.reset()
