"""E4 benchmark — Fig 11: production GFS scaling with node count."""

from repro.experiments.fig11_scaling import run_fig11
from repro.util.units import GB, MiB


def test_fig11_scaling(run_experiment):
    result = run_experiment(
        run_fig11,
        node_counts=(1, 8, 32, 64),
        region_bytes=MiB(64),
        transfer_bytes=MiB(1),
    )
    # paper shape: reads scale up and plateau near (but below) the network
    # ceiling; writes plateau much lower; read >> write at scale
    assert result.metric("max_read") > GB(2.5)
    assert result.metric("max_read") < GB(8)  # 8 GB/s theoretical ceiling
    assert result.metric("max_write") < result.metric("max_read")
    assert result.metric("rw_gap_at_max") > 1.4  # the "not yet understood" gap
    # near-linear scaling at the low end (1 -> 4x nodes ≳ 3x rate)
    assert result.metric("read_scaling_4x") > 3.0
