"""Tests for the tape library."""

import pytest

from repro.hsm.tape import LTO2, TapeCartridge, TapeDrive, TapeLibrary, TapeSpec
from repro.sim import Simulation
from repro.util.units import GB, MB


class TestSpec:
    def test_lto2_profile(self):
        assert LTO2.rate == MB(30)
        assert LTO2.capacity == GB(200)

    def test_validation(self):
        with pytest.raises(ValueError):
            TapeSpec("x", capacity=0, rate=1, load_time=0, seek_time=0)
        with pytest.raises(ValueError):
            TapeSpec("x", capacity=1, rate=1, load_time=-1, seek_time=0)


class TestCartridge:
    def test_append_and_accounting(self):
        c = TapeCartridge("t0", LTO2)
        c.append("seg1", GB(50))
        assert c.used == GB(50)
        assert c.free == GB(150)
        assert c.has("seg1")

    def test_overflow_rejected(self):
        c = TapeCartridge("t0", LTO2)
        with pytest.raises(ValueError):
            c.append("big", GB(201))

    def test_duplicate_token_rejected(self):
        c = TapeCartridge("t0", LTO2)
        c.append("seg", GB(1))
        with pytest.raises(ValueError):
            c.append("seg", GB(1))


class TestDrive:
    def test_io_pays_load_seek_stream(self):
        sim = Simulation()
        drive = TapeDrive(sim, LTO2)
        cart = TapeCartridge("t0", LTO2)
        evt = drive.io(cart, MB(30), "read")
        sim.run(until=evt)
        assert sim.now == pytest.approx(LTO2.load_time + LTO2.seek_time + 1.0)

    def test_mounted_cartridge_skips_load(self):
        sim = Simulation()
        drive = TapeDrive(sim, LTO2)
        cart = TapeCartridge("t0", LTO2)
        sim.run(until=drive.io(cart, MB(30), "read"))
        t0 = sim.now
        sim.run(until=drive.io(cart, MB(30), "read"))
        assert sim.now - t0 == pytest.approx(LTO2.seek_time + 1.0)
        assert drive.mounts == 1

    def test_remount_on_cartridge_change(self):
        sim = Simulation()
        drive = TapeDrive(sim, LTO2)
        c1, c2 = TapeCartridge("t1", LTO2), TapeCartridge("t2", LTO2)
        sim.run(until=drive.io(c1, MB(1), "read"))
        sim.run(until=drive.io(c2, MB(1), "read"))
        assert drive.mounts == 2

    def test_validation(self):
        drive = TapeDrive(Simulation(), LTO2)
        cart = TapeCartridge("t", LTO2)
        with pytest.raises(ValueError):
            drive.io(cart, 10, "erase")
        with pytest.raises(ValueError):
            drive.io(cart, -1, "read")


class TestLibrary:
    def test_archive_and_retrieve_payload(self):
        sim = Simulation()
        lib = TapeLibrary(sim, drives=1, cartridges=2)
        sim.run(until=lib.archive("tok", 1000.0, payload=b"x" * 1000))
        payload, length = sim.run(until=lib.retrieve("tok"))
        assert payload == b"x" * 1000
        assert length == 1000.0
        assert lib.has("tok")

    def test_capacity_accounting(self):
        sim = Simulation()
        lib = TapeLibrary(sim, drives=1, cartridges=3)
        assert lib.capacity == 3 * LTO2.capacity
        sim.run(until=lib.archive("a", GB(10)))
        assert lib.used == GB(10)

    def test_fills_across_cartridges(self):
        sim = Simulation()
        lib = TapeLibrary(sim, drives=1, cartridges=2)
        sim.run(until=lib.archive("a", GB(150)))
        sim.run(until=lib.archive("b", GB(150)))  # doesn't fit on tape 0
        assert lib.cartridges[0].has("a")
        assert lib.cartridges[1].has("b")

    def test_out_of_tape(self):
        sim = Simulation()
        lib = TapeLibrary(sim, drives=1, cartridges=1)
        sim.run(until=lib.archive("a", GB(200)))
        with pytest.raises(ValueError, match="out of tape"):
            lib.archive("b", GB(1))

    def test_duplicate_and_missing_tokens(self):
        sim = Simulation()
        lib = TapeLibrary(sim, drives=1, cartridges=1)
        sim.run(until=lib.archive("a", 100))
        with pytest.raises(ValueError):
            lib.archive("a", 100)
        with pytest.raises(KeyError):
            lib.retrieve("ghost")

    def test_segment_length(self):
        sim = Simulation()
        lib = TapeLibrary(sim)
        sim.run(until=lib.archive("a", 12345))
        assert lib.segment_length("a") == 12345

    def test_validation(self):
        with pytest.raises(ValueError):
            TapeLibrary(Simulation(), drives=0)
