"""Tests for the combined report runner."""

import pytest

from repro.experiments.report import _registry, main

ALL_IDS = [f"E{i}" for i in range(1, 13)] + [f"A{i}" for i in range(1, 7)]


class TestRegistry:
    def test_quick_and_full_cover_every_experiment(self):
        assert sorted(_registry(True)) == sorted(ALL_IDS)
        assert sorted(_registry(False)) == sorted(ALL_IDS)

    def test_entries_are_callable(self):
        for label, thunk in _registry(True).values():
            assert callable(thunk) and label


class TestCli:
    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "E99"])

    def test_single_quick_run(self, capsys, tmp_path):
        out = tmp_path / "report.txt"
        rc = main(["--quick", "--only", "A3", "--out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "A3:" in text
        assert "window" in text

    def test_stdout_contains_result(self, capsys):
        main(["--quick", "--only", "A3"])
        captured = capsys.readouterr()
        assert "ablation" in captured.out
