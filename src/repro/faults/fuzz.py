"""Randomized chaos fuzzing: seeded fault schedules under invariant oracles.

Hand-written chaos experiments (E13, E14, E16) each pin one failure
story. The fuzzer generates *arbitrary* stories — random mixes of node
crashes, manager kills, partitions, WAN loss bursts, link flaps, and
silent bit-rot — and checks that the properties the hand-written
experiments assert one at a time hold under **every** mix:

1. **Token safety** — at no instant do two conflicting byte-range
   tokens coexist in the manager's table (swept periodically and at
   quiesce; takeovers and quorum gates must preserve this).
2. **Acked-write durability** — every write whose ``fsync`` succeeded
   reads back byte-for-byte after the storm. Writes that *failed* are
   allowed to land or not (their ranges are excluded), but success is a
   promise.
3. **No wrong bytes** — a read either returns exactly the acked
   contents or raises. :class:`~repro.core.nsd.ChecksumError` /
   :class:`~repro.core.replication.AllReplicasFailed` are acceptable
   only when the schedule actually injected corruption.
4. **Detection validity** — the lease detector never declares a node
   that the quorum side could actually reach: every declaration must be
   backed by a real crash, an active partition cut, or a downed access
   link (renewals physically could not flow) within one lease-expiry
   window.

Everything is seeded: ``random_schedule`` consumes a ``random.Random``,
the workload derives per-client streams from the case seed, and the
cluster itself is built from the seed — so a failing seed replays
bit-identically (the CI fuzz-smoke job relies on this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cluster import Gfs, NsdSpec
from repro.core.nsd import ChecksumError
from repro.core.replication import AllReplicasFailed, ReplicationPolicy
from repro.faults.harness import attach_faults
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.sim.kernel import Interrupt
from repro.util.units import Gbps, KiB

__all__ = [
    "FuzzReport",
    "InvariantOracle",
    "Violation",
    "random_schedule",
    "run_fuzz",
    "run_fuzz_case",
]


# ======================================================================
# Schedule generation
# ======================================================================

def random_schedule(
    rng: random.Random,
    *,
    server_nodes: Sequence[str],
    manager_node: Optional[str] = None,
    t0: float = 0.0,
    duration: float = 8.0,
    links: Sequence[str] = (),
    nsds: Sequence[str] = (),
    max_crashes: int = 2,
    manager_crash_prob: float = 0.5,
    intensity: float = 1.0,
) -> FaultSchedule:
    """One random-but-legal fault schedule inside ``[t0, t0 + duration]``.

    Legality constraints (the injector enforces most of them at runtime,
    so the generator must respect them by construction):

    * crash windows never overlap each other, and every crashed node is
      restarted strictly before the schedule ends — the post-storm
      verification phase runs against a fully healed cluster;
    * the manager node is killed only via ``crash_manager`` (at most
      once), never via plain ``crash_node``, and never partitioned into
      a minority — ordinary declarations always come from a side that
      genuinely has quorum;
    * at most one partition is active at a time (``PartitionState``
      models a single cut) and minorities are strict minorities of the
      server set;
    * loss bursts never overlap (the injector saves/restores one TCP
      model) and each link is flapped or browned out at most once;
    * corruption targets are restricted to NSDs that the caller knows
      hold written blocks (the warmup guarantees this in
      :func:`run_fuzz_case`).
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    servers = list(dict.fromkeys(server_nodes))
    if not servers:
        raise ValueError("random_schedule needs at least one server node")
    schedule = FaultSchedule()
    lo = t0 + 0.10 * duration
    hi = t0 + 0.85 * duration

    def windows(count: int, min_len: float, max_len: float, gap: float = 0.2):
        """Up to ``count`` non-overlapping (start, end) windows in [lo, hi]."""
        out: List[Tuple[float, float]] = []
        cursor = lo + rng.uniform(0.0, 0.3)
        for _ in range(count):
            length = rng.uniform(min_len, min(max_len, hi - lo))
            if cursor + length >= hi:
                break
            start = rng.uniform(cursor, min(cursor + 0.8, hi - length))
            out.append((start, start + length))
            cursor = start + length + gap
        return out

    # -- node crashes (never the manager via this kind) ----------------------
    crash_windows: List[Tuple[float, float]] = []
    victims = [n for n in servers if n != manager_node]
    if victims and max_crashes > 0:
        budget = max(0, min(max_crashes, int(round(max_crashes * intensity))))
        n_crash = rng.randint(0, budget) if budget else 0
        for start, end in windows(n_crash, 1.0, 2.5):
            node = rng.choice(victims)
            schedule.crash_node(start, node)
            schedule.restart_node(end, node)
            crash_windows.append((start, end))

    # -- control-plane kill ---------------------------------------------------
    if manager_node is not None and rng.random() < manager_crash_prob:
        # The manager outage must not overlap an ordinary crash window:
        # the election needs the lowest-id survivors answering, and the
        # docstring's "crash windows never overlap" holds globally.
        for _ in range(8):
            length = rng.uniform(1.2, 2.2)
            start = rng.uniform(lo, max(lo, hi - length))
            end = min(start + length, hi)
            if all(end <= s or e <= start for s, e in crash_windows):
                schedule.crash_manager(start, manager_node)
                schedule.restart_node(end, manager_node)
                crash_windows.append((start, end))
                break

    # -- partitions (one at a time, strict minority, manager on majority) ----
    minority_pool = [n for n in servers if n != manager_node]
    max_minority = (len(servers) - 1) // 2
    if minority_pool and max_minority >= 1 and rng.random() < 0.6 * intensity:
        for start, end in windows(rng.randint(1, 2), 0.8, 2.0):
            size = rng.randint(1, min(max_minority, len(minority_pool)))
            minority = rng.sample(minority_pool, size)
            schedule.partition(start, minority, end - start)

    # -- WAN loss bursts (non-overlapping by construction) --------------------
    if rng.random() < 0.7 * intensity:
        for start, end in windows(rng.randint(1, 2), 0.5, 1.5):
            schedule.loss_burst(start, rng.uniform(0.005, 0.05), end - start)

    # -- link flaps / brownouts (each link at most once) ----------------------
    link_pool = list(links)
    if link_pool:
        for link in rng.sample(link_pool, min(len(link_pool), rng.randint(0, 2))):
            produced = windows(1, 0.3, 1.0)
            if not produced:
                continue
            start, end = produced[0]
            if rng.random() < 0.5:
                schedule.flap_link(start, link, end - start)
            else:
                schedule.brownout_link(
                    start, link, rng.uniform(0.05, 0.5), end - start
                )

    # -- silent bit-rot --------------------------------------------------------
    nsd_pool = list(nsds)
    if nsd_pool:
        for name in rng.sample(nsd_pool, min(len(nsd_pool), rng.randint(0, 3))):
            schedule.corrupt_block(
                rng.uniform(lo, hi), name, index=rng.randrange(32)
            )

    return schedule


# ======================================================================
# Invariant oracle
# ======================================================================

@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    t: float
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[t={self.t:.3f}] {self.kind}: {self.detail}"


class InvariantOracle:
    """Watches one fuzz case for safety violations.

    Conflict sweeps run as a background process; read-back and detection
    checks are driven by the runner. The oracle only *records* — a fuzz
    case never aborts mid-storm, so one seed can surface several
    distinct violations.
    """

    def __init__(
        self,
        sim,
        fs,
        health,
        detector=None,
        partition=None,
        link_downs: Optional[Dict[str, List[Tuple[float, float]]]] = None,
        corruption_expected: bool = False,
        sweep_interval: float = 0.25,
    ) -> None:
        if sweep_interval <= 0:
            raise ValueError(
                f"sweep_interval must be positive, got {sweep_interval}"
            )
        self.sim = sim
        self.fs = fs
        self.health = health
        self.detector = detector
        self.partition = partition
        #: node -> [(t_down, t_restore)] windows where the node's access
        #: link was administratively down (renewals could not flow).
        self.link_downs = dict(link_downs or {})
        self.corruption_expected = corruption_expected
        self.sweep_interval = sweep_interval
        self.violations: List[Violation] = []
        self.conflict_sweeps = 0
        self._proc = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "InvariantOracle":
        if self._proc is not None:
            raise RuntimeError("oracle already started")
        self._proc = self.sim.process(self._sweep_loop(), name="oracle-sweep")
        return self

    def stop(self) -> None:
        if self._proc is not None and not self._proc.triggered:
            self._proc.interrupt("oracle stopped")

    def _sweep_loop(self):
        try:
            while True:
                yield self.sim.timeout(self.sweep_interval)
                self.check_token_conflicts()
        except Interrupt:
            return

    def _flag(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(self.sim.now, kind, detail))

    # -- invariant 1: token safety -------------------------------------------

    def check_token_conflicts(self) -> None:
        """No two conflicting tokens may coexist in the manager's table."""
        self.conflict_sweeps += 1
        tm = self.fs.token_manager
        for ino, tokens in tm._held.items():
            for i, a in enumerate(tokens):
                for b in tokens[i + 1:]:
                    if a.conflicts_with(b.holder, b.mode, b.start, b.end):
                        self._flag(
                            "conflicting_tokens",
                            f"ino {ino}: {a.holder}:{a.mode}"
                            f"[{a.start},{a.end}) vs {b.holder}:{b.mode}"
                            f"[{b.start},{b.end})",
                        )

    # -- invariants 2 + 3: durability and byte-exactness ----------------------

    def record_wrong_bytes(self, where: str) -> None:
        self._flag("wrong_bytes", where)

    def record_lost_write(self, where: str) -> None:
        self._flag("acked_write_lost", where)

    def record_checksum_error(self, where: str) -> None:
        """Detected rot is fine *iff* the schedule injected rot."""
        if not self.corruption_expected:
            self._flag("unexpected_checksum_error", where)

    # -- invariant 4: detection validity --------------------------------------

    def check_detections(self) -> None:
        """Every dead-declaration must be backed by a crash or a cut.

        A declaration at ``t`` is legitimate when the node was actually
        down — or unreachable from the quorum side, via a partition or a
        downed access link — at some point within the preceding
        lease-expiry window (lease duration plus two monitor sweeps of
        slack for in-flight renewals).
        """
        detector = self.detector
        if detector is None:
            return
        slack = detector.lease_duration + 2 * detector.check_interval + 0.1
        for node, t in detector.detections:
            window = (t - slack, t)
            if self._was_down_during(node, *window):
                continue
            if self._was_severed_during(node, *window):
                continue
            if self._link_was_down_during(node, *window):
                continue
            self._flag(
                "bogus_declaration",
                f"{node} declared dead at t={t:.3f} while reachable",
            )

    def _was_down_during(self, node: str, a: float, b: float) -> bool:
        return any(
            start <= b and a <= end
            for start, end in self.health.down_intervals(node)
        )

    def _was_severed_during(self, node: str, a: float, b: float) -> bool:
        partition = self.partition
        if partition is None:
            return False
        cuts = list(partition.history)
        if partition.active:
            cuts.append((partition._started_at, float("inf"), partition.minority))
        return any(
            node in minority and start <= b and a <= end
            for start, end, minority in cuts
        )

    def _link_was_down_during(self, node: str, a: float, b: float) -> bool:
        return any(
            start <= b and a <= end
            for start, end in self.link_downs.get(node, ())
        )


# ======================================================================
# Fuzz case runner
# ======================================================================

#: Fuzz cluster geometry: small blocks keep byte-exact models cheap.
_BLOCK = KiB(32)
_OWN_BLOCKS = 12         # per-client private file, blocks
_STRIPE_BLOCKS = 4       # per-client stripe of the shared file, blocks


@dataclass
class FuzzReport:
    """Outcome of one fuzz case (one seed, one storm)."""

    seed: int
    duration: float
    actions: List[Dict] = field(default_factory=list)
    ops: int = 0
    writes_acked: int = 0
    writes_failed: int = 0
    reads_ok: int = 0
    reads_failed: int = 0
    corrupt_reads_detected: int = 0
    conflict_sweeps: int = 0
    violations: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "passed": self.passed,
            "actions": self.actions,
            "ops": self.ops,
            "writes_acked": self.writes_acked,
            "writes_failed": self.writes_failed,
            "reads_ok": self.reads_ok,
            "reads_failed": self.reads_failed,
            "corrupt_reads_detected": self.corrupt_reads_detected,
            "conflict_sweeps": self.conflict_sweeps,
            "violations": list(self.violations),
            "metrics": dict(self.metrics),
        }


class _FileModel:
    """Byte-exact expectation for one file.

    ``data`` is what acked writes promised; ``known[i]`` is 1 only for
    bytes whose *last* covering write was acknowledged (a failed write
    un-knows its range — it may or may not have landed).
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.data = bytearray(size)
        self.known = bytearray(size)

    def acked(self, offset: int, payload: bytes) -> None:
        end = offset + len(payload)
        self.data[offset:end] = payload
        self.known[offset:end] = b"\x01" * len(payload)

    def failed(self, offset: int, length: int) -> None:
        self.known[offset:offset + length] = b"\x00" * length

    def compare(self, offset: int, got: bytes) -> Optional[str]:
        """First known-byte mismatch in ``got`` vs the model, or None."""
        for i, byte in enumerate(got):
            pos = offset + i
            if pos >= self.size or not self.known[pos]:
                continue
            if byte != self.data[pos]:
                return (
                    f"offset {pos}: got 0x{byte:02x}, "
                    f"expected 0x{self.data[pos]:02x}"
                )
        return None


def _build_fuzz_cluster(
    seed: int,
    servers: int,
    clients: int,
    block_size: int = _BLOCK,
    blocks_per_nsd: int = 1024,
):
    """A self-contained cluster per case (mirrors tests' ``small_gfs``).

    ``store_data=True`` + two-way replication with verified reads: the
    byte oracle needs real payloads, and verification turns injected rot
    into a *detected* event instead of silent wrong bytes.
    """
    g = Gfs(seed=seed)
    net = g.network
    net.add_node("sw", kind="switch")
    server_names = [f"nsd{i}" for i in range(servers)]
    client_names = [f"c{i}" for i in range(clients)]
    for name in server_names + client_names:
        net.add_host(name, "sw", Gbps(1), site="fuzz")
    cluster = g.add_cluster("fuzz")
    cluster.add_nodes(server_names + client_names)
    fs = cluster.mmcrfs(
        f"fuzz{seed}",
        [NsdSpec(server=s, blocks=blocks_per_nsd) for s in server_names],
        block_size=block_size,
        store_data=True,
        replication=ReplicationPolicy(copies=2, verify_reads=True),
    )
    return g, cluster, fs, server_names, client_names


class _FuzzCase:
    """One seeded storm: build, warm up, inject, verify."""

    def __init__(
        self,
        seed: int,
        duration: float,
        servers: int,
        clients: int,
        intensity: float,
        settle: float,
    ) -> None:
        self.seed = seed
        self.duration = duration
        self.intensity = intensity
        self.settle = settle
        self.rng = random.Random(seed)
        (self.g, self.cluster, self.fs,
         self.server_names, self.client_names) = _build_fuzz_cluster(
            seed, servers, clients
        )
        self.sim = self.g.sim
        self.block = self.fs.block_size
        self.own_size = _OWN_BLOCKS * self.block
        self.stripe = _STRIPE_BLOCKS * self.block
        self.report = FuzzReport(seed=seed, duration=duration)
        self.mounts: Dict[str, object] = {}
        self.handles: Dict[Tuple[str, str], object] = {}
        self.own_models: Dict[str, _FileModel] = {}
        self.shared_model = _FileModel(self.stripe * len(self.client_names))
        self.oracle: Optional[InvariantOracle] = None

    # -- helpers ---------------------------------------------------------------

    def _client_rng(self, node: str) -> random.Random:
        return random.Random(f"fuzz:{self.seed}:{node}")

    def _stripe_bounds(self, node: str) -> Tuple[int, int]:
        index = self.client_names.index(node)
        return index * self.stripe, (index + 1) * self.stripe

    def _classify_read_failure(self, exc: BaseException, where: str) -> None:
        self.report.reads_failed += 1
        if isinstance(exc, (ChecksumError, AllReplicasFailed)):
            self.report.corrupt_reads_detected += 1
            self.oracle.record_checksum_error(f"{where}: {exc}")
        # ConnectionError & friends: availability loss, not a safety
        # violation — the read raised instead of returning wrong bytes.

    # -- phases ----------------------------------------------------------------

    def _mount_all(self) -> None:
        for node in self.client_names:
            event = self.cluster.mmmount(self.fs.name, node)
            self.mounts[node] = self.g.run(until=event)

    def _warmup_one(self, node: str):
        """Create + fill this client's file and shared stripe (pre-storm)."""
        rng = self._client_rng(node)
        mount = self.mounts[node]
        own = yield mount.open(f"/own-{node}", "w+", create=True)
        self.handles[(node, "own")] = own
        payload = rng.randbytes(self.own_size)
        yield mount.pwrite(own, 0, payload)
        yield mount.fsync(own)
        model = _FileModel(self.own_size)
        model.acked(0, payload)
        self.own_models[node] = model
        shared = yield mount.open("/shared", "r+", create=True)
        self.handles[(node, "shared")] = shared
        lo, _hi = self._stripe_bounds(node)
        payload = rng.randbytes(self.stripe)
        yield mount.pwrite(shared, lo, payload)
        yield mount.fsync(shared)
        self.shared_model.acked(lo, payload)

    def warmup(self) -> None:
        self._mount_all()
        for node in self.client_names:
            self.g.run(
                until=self.sim.process(
                    self._warmup_one(node), name=f"warmup:{node}"
                )
            )

    def _written_nsds(self) -> List[str]:
        return [
            nsd.name
            for nsd in self.fs.service.nsds.values()
            if nsd._sums or nsd._data
        ]

    # -- the storm workload ----------------------------------------------------

    def _write(self, node: str, which: str, offset: int, payload: bytes):
        mount = self.mounts[node]
        handle = self.handles[(node, which)]
        model = self.own_models[node] if which == "own" else self.shared_model
        try:
            yield mount.pwrite(handle, offset, payload)
            yield mount.fsync(handle)
        except Exception:
            self.report.writes_failed += 1
            model.failed(offset, len(payload))
        else:
            self.report.writes_acked += 1
            model.acked(offset, payload)

    def _read_and_check(self, node: str, which: str, offset: int, length: int,
                        check_lo: int, check_hi: int):
        """Read [offset, offset+length); byte-check only [check_lo, check_hi).

        During the storm a client may only check bytes *it* owns — a
        concurrent writer's ack can race an in-flight read, so foreign
        stripes are exercised for token traffic but verified at quiesce.
        """
        mount = self.mounts[node]
        handle = self.handles[(node, which)]
        model = self.own_models[node] if which == "own" else self.shared_model
        try:
            data = yield mount.pread(handle, offset, length)
        except Exception as exc:
            self._classify_read_failure(exc, f"{node}:{which}@{offset}")
            return
        self.report.reads_ok += 1
        lo = max(offset, check_lo)
        hi = min(offset + len(data), check_hi)
        if lo >= hi:
            return
        mismatch = model.compare(lo, bytes(data[lo - offset:hi - offset]))
        if mismatch is not None:
            self.oracle.record_wrong_bytes(f"{node}:{which}: {mismatch}")

    def _client_loop(self, node: str, t_end: float):
        rng = self._client_rng(node)
        stripe_lo, stripe_hi = self._stripe_bounds(node)
        shared_size = self.shared_model.size
        while self.sim.now < t_end:
            roll = rng.random()
            if roll < 0.35:  # write own file
                length = rng.randint(1, 2 * self.block)
                offset = rng.randrange(0, self.own_size - length)
                yield from self._write(node, "own", offset, rng.randbytes(length))
            elif roll < 0.50:  # write own stripe of the shared file
                length = rng.randint(1, self.stripe // 2)
                offset = stripe_lo + rng.randrange(0, self.stripe - length)
                yield from self._write(node, "shared", offset, rng.randbytes(length))
            elif roll < 0.80:  # read own file (fully checkable)
                length = rng.randint(1, 3 * self.block)
                offset = rng.randrange(0, self.own_size - length)
                yield from self._read_and_check(
                    node, "own", offset, length, 0, self.own_size
                )
            else:  # read anywhere in the shared file (check own stripe only)
                length = rng.randint(1, 3 * self.block)
                offset = rng.randrange(0, shared_size - length)
                yield from self._read_and_check(
                    node, "shared", offset, length, stripe_lo, stripe_hi
                )
            self.report.ops += 1
            yield self.sim.timeout(rng.uniform(0.01, 0.12))

    # -- final verification ----------------------------------------------------

    def _final_readback(self):
        """Post-storm, fully-healed: every known byte must read back."""
        for node in self.client_names:
            yield from self._read_and_check(
                node, "own", 0, self.own_size, 0, self.own_size
            )
        # One reader sweeps the whole shared file: writers are quiescent,
        # so every client's acked stripe bytes are checkable at once.
        auditor = self.client_names[0]
        yield from self._read_and_check(
            auditor, "shared", 0, self.shared_model.size,
            0, self.shared_model.size,
        )

    # -- orchestration ---------------------------------------------------------

    def run(self) -> FuzzReport:
        self.warmup()
        t0 = self.sim.now
        links = [f"{node}<->sw" for node in self.server_names[1:]]
        schedule = random_schedule(
            self.rng,
            server_nodes=self.server_names,
            manager_node=self.fs.manager_node,
            t0=t0,
            duration=self.duration,
            links=links,
            nsds=self._written_nsds(),
            intensity=self.intensity,
        )
        self.report.actions = schedule.to_dicts()
        corruption = any(a.kind == "corrupt_block" for a in schedule)
        needs_fs = any(a.kind == "crash_manager" for a in schedule)
        # A downed access link makes its node legitimately undeclarable-
        # from: renewals can't flow, so a lease expiry there is valid.
        link_downs: Dict[str, List[Tuple[float, float]]] = {}
        down_at: Dict[str, float] = {}
        for action in schedule.ordered():
            if action.kind == "link_down":
                down_at[action.target] = action.at
            elif action.kind == "link_restore" and action.target in down_at:
                node = action.target.split("<->")[0]
                link_downs.setdefault(node, []).append(
                    (down_at.pop(action.target), action.at)
                )
        harness = attach_faults(
            self.sim,
            self.fs.service,
            manager_node=self.fs.manager_node,
            schedule=schedule,
            engine=self.g.engine,
            network=self.g.network,
            retry=RetryPolicy(),
            retry_rng_streams=self.g.rng,
            token_managers=[self.fs.token_manager],
            filesystem=self.fs if needs_fs else None,
        )
        self.oracle = InvariantOracle(
            self.sim,
            self.fs,
            harness.health,
            detector=harness.detector,
            partition=harness.partition,
            link_downs=link_downs,
            corruption_expected=corruption,
        ).start()
        t_end = t0 + self.duration
        loops = [
            self.sim.process(
                self._client_loop(node, t_end), name=f"fuzz-load:{node}"
            )
            for node in self.client_names
        ]
        self.g.run(until=self.sim.all_of(loops))
        # Quiesce: leases re-granted, takeover (if any) completed, parked
        # work drained — then audit every promise the storm left behind.
        self.g.run(until=self.sim.timeout(self.settle))
        self.g.run(
            until=self.sim.process(self._final_readback(), name="fuzz-audit")
        )
        self.oracle.check_token_conflicts()
        self.oracle.check_detections()
        self.oracle.stop()
        harness.stop()
        self.report.conflict_sweeps = self.oracle.conflict_sweeps
        self.report.violations = [str(v) for v in self.oracle.violations]
        self.report.metrics = harness.metrics()
        return self.report


def run_fuzz_case(
    seed: int,
    *,
    duration: float = 6.0,
    servers: int = 4,
    clients: int = 3,
    intensity: float = 1.0,
    settle: float = 4.0,
) -> FuzzReport:
    """Run one seeded storm and return its :class:`FuzzReport`.

    Telemetry is suspended for the storm's lifetime: fuzz verdicts come
    from the oracle, and a fuzz cell riding inside an OBS-enabled
    experiment (E16) must not re-register that experiment's unlabeled
    detector metrics.
    """
    from repro.obs.registry import OBS

    was_enabled = OBS.enabled
    OBS.enabled = False
    try:
        case = _FuzzCase(seed, duration, servers, clients, intensity, settle)
        return case.run()
    finally:
        OBS.enabled = was_enabled


def run_fuzz(
    seeds: Sequence[int] = (),
    *,
    count: int = 0,
    base_seed: int = 0,
    **case_kwargs,
) -> List[FuzzReport]:
    """Run many storms; ``seeds`` wins, else ``base_seed..base_seed+count``."""
    chosen = list(seeds) if seeds else [base_seed + i for i in range(count)]
    return [run_fuzz_case(seed, **case_kwargs) for seed in chosen]
