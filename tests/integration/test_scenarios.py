"""Cross-module integration tests on the paper's scenarios."""

import hashlib


from repro.core.allocation import OutOfSpaceError
from repro.core.cluster import Gfs, NsdSpec
from repro.topology.deisa import build_deisa
from repro.topology.sc04 import build_sc04
from repro.util.units import Gbps, KiB, MiB

from tests.core.testbed import run_io


def patterned(n, seed=3):
    out = bytearray()
    h = hashlib.sha256(str(seed).encode()).digest()
    while len(out) < n:
        out.extend(h)
        h = hashlib.sha256(h).digest()
    return bytes(out[:n])


class TestSc04Integrity:
    """Real bytes written at SDSC read back bit-identical at NCSA via the
    Pittsburgh floor filesystem — the full WAN + auth + striping stack."""

    def test_wan_roundtrip_bit_identical(self):
        s = build_sc04(nsd_servers=5, sdsc_clients=1, ncsa_clients=1,
                       arrays=2, store_data=True, blocks_per_nsd=256,
                       block_size=MiB(1))
        g = s.gfs
        payload = patterned(int(MiB(5)) + 12345)
        writer = s.sdsc_mounts[0]
        reader = s.ncsa_mounts[0]

        def io():
            handle = yield writer.open("/enzo.dat", "w", create=True)
            yield writer.write(handle, payload)
            yield writer.close(handle)
            rhandle = yield reader.open("/enzo.dat", "r")
            data = yield reader.read(rhandle, len(payload) + 1)
            return data

        assert run_io(g, io()) == payload

    def test_wan_write_pays_latency_but_reaches_line_rate_shape(self):
        s = build_sc04(nsd_servers=6, sdsc_clients=1, ncsa_clients=1,
                       arrays=2, store_data=False, block_size=MiB(1))
        g = s.gfs
        writer = s.sdsc_mounts[0]

        def io():
            t0 = g.sim.now
            handle = yield writer.open("/big", "w", create=True)
            yield writer.write(handle, int(MiB(64)))
            yield writer.close(handle)
            return int(MiB(64)) / (g.sim.now - t0)

        rate = run_io(g, io())
        # one GbE client over the WAN: tens of MB/s, not KB/s (parallel
        # write-behind hides the 60+ ms RTT) and not above the NIC
        assert 20e6 < rate < 118e6


class TestDeisaIntegrity:
    def test_cross_site_roundtrip(self):
        s = build_deisa(servers_per_site=2, clients_per_site=1,
                        store_data=True)
        g = s.gfs
        payload = patterned(int(MiB(2)))
        m_local = s.mount("cineca", "cineca")
        m_remote = s.mount("rzg", "cineca")

        def io():
            handle = yield m_local.open("/turb.h5", "w", create=True)
            yield m_local.write(handle, payload)
            yield m_local.close(handle)
            rhandle = yield m_remote.open("/turb.h5", "r")
            return (yield m_remote.read(rhandle, len(payload)))

        assert run_io(g, io()) == payload


class TestFailureInjection:
    def make_tiny_fs(self, blocks=8, **mount_kwargs):
        g = Gfs()
        net = g.network
        net.add_node("sw", kind="switch")
        net.add_host("s0", "sw", Gbps(1))
        net.add_host("c0", "sw", Gbps(1))
        cl = g.add_cluster("one")
        cl.add_nodes(["s0", "c0"])
        fs = cl.mmcrfs("tiny", [NsdSpec(server="s0", blocks=blocks)],
                       block_size=KiB(64))
        mount = g.run(until=cl.mmmount("tiny", "c0", **mount_kwargs))
        return g, fs, mount

    def test_enospc_surfaces_at_write(self):
        g, fs, mount = self.make_tiny_fs(blocks=4)

        def io():
            handle = yield mount.open("/fill", "w", create=True)
            try:
                yield mount.write(handle, b"z" * int(KiB(64)) * 8)
            except OutOfSpaceError:
                return "enospc"

        assert run_io(g, io()) == "enospc"

    def test_unlink_recovers_space_for_new_writes(self):
        g, fs, mount = self.make_tiny_fs(blocks=4)

        def io():
            handle = yield mount.open("/a", "w", create=True)
            yield mount.write(handle, b"z" * int(KiB(64)) * 4)
            yield mount.close(handle)
            yield mount.unlink("/a")
            handle = yield mount.open("/b", "w", create=True)
            yield mount.write(handle, b"y" * int(KiB(64)) * 4)
            yield mount.close(handle)
            return fs.used_bytes

        assert run_io(g, io()) == 4 * KiB(64)

    def test_tiny_pagepool_still_correct(self):
        """A pool barely larger than one block forces constant eviction and
        synchronous flushing — throughput suffers, correctness must not."""
        g, fs, mount = self.make_tiny_fs(
            blocks=64, pagepool_bytes=4 * int(KiB(64))
        )
        payload = patterned(int(KiB(64)) * 16)

        def io():
            handle = yield mount.open("/f", "w", create=True)
            yield mount.write(handle, payload)
            yield mount.close(handle)
            rhandle = yield mount.open("/f", "r")
            return (yield mount.read(rhandle, len(payload)))

        assert run_io(g, io()) == payload
