"""Keypair registry and out-of-band key exchange.

`mmauth genkey` creates a cluster keypair; administrators exchange *public*
keys out-of-band ("such as e-mail", §6.2) before any network trust exists.
:class:`KeyStore` is one cluster's view: its own keypair plus the public
keys it has imported, by cluster name.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from repro.auth.rsa import RsaKeyPair, RsaPublicKey


def fingerprint(key: RsaPublicKey) -> str:
    """Short hex fingerprint of a public key (for admin display)."""
    blob = f"{key.n:x}:{key.e:x}".encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class KeyStore:
    """One cluster's key material."""

    def __init__(self, cluster_name: str) -> None:
        self.cluster_name = cluster_name
        self._own: Optional[RsaKeyPair] = None
        self._imported: Dict[str, RsaPublicKey] = {}

    # -- own keypair ------------------------------------------------------------

    def set_own(self, keypair: RsaKeyPair) -> None:
        self._own = keypair

    @property
    def own(self) -> RsaKeyPair:
        if self._own is None:
            raise KeyError(
                f"cluster {self.cluster_name!r} has no keypair; run mmauth genkey"
            )
        return self._own

    @property
    def has_own(self) -> bool:
        return self._own is not None

    # -- imported public keys -----------------------------------------------------

    def import_public(self, cluster: str, key: RsaPublicKey) -> None:
        """Install another cluster's public key (out-of-band exchange)."""
        self._imported[cluster] = key

    def public_of(self, cluster: str) -> RsaPublicKey:
        try:
            return self._imported[cluster]
        except KeyError:
            raise KeyError(
                f"cluster {self.cluster_name!r} has no public key for {cluster!r}"
            ) from None

    def knows(self, cluster: str) -> bool:
        return cluster in self._imported

    def revoke(self, cluster: str) -> None:
        self._imported.pop(cluster, None)
