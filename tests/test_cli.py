"""Tests for the ``python -m repro`` entry point."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "SC'05" in out
        assert "E1" in out and "A6" in out

    def test_info_explicit(self, capsys):
        assert main(["info"]) == 0

    def test_report_forwarding(self, capsys, tmp_path):
        out = tmp_path / "r.txt"
        rc = main(["report", "--quick", "--only", "A3", "--out", str(out)])
        assert rc == 0
        assert "A3" in out.read_text()

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_run_list_prints_every_experiment(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("E1", "E13", "E14", "A6"):
            assert exp_id in out

    def test_run_without_id_lists_instead_of_crashing(self, capsys):
        assert main(["run"]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_run_unknown_id_exits_with_the_list(self, capsys):
        rc = main(["run", "E99", "--quick"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "unknown experiment id 'E99'" in out
        assert "E14" in out  # the list is printed, not a traceback

    def test_trace_subcommand_writes_chrome_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "t.json"
        rc = main(["trace", "A3", "--quick", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_trace_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "E99", "--out", str(tmp_path / "t.json")])
