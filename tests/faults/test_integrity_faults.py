"""Schedule builders and injector handling for corrupt_block / partition."""

import pytest

from repro.core.nsd import Nsd
from repro.faults import FaultInjector, FaultSchedule, PartitionState
from repro.sim import Simulation

BS = 4096


class TestScheduleBuilders:
    def test_corrupt_block_pinned_phys(self):
        schedule = FaultSchedule().corrupt_block(1.0, "nsdA", phys=7)
        (action,) = list(schedule)
        assert action.kind == "corrupt_block"
        assert action.target == "nsdA"
        assert action.params == {"phys": 7}

    def test_corrupt_block_index_pick(self):
        schedule = FaultSchedule().corrupt_block(1.0, "nsdA", index=2)
        (action,) = list(schedule)
        assert action.params == {"index": 2}

    def test_corrupt_block_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule().corrupt_block(1.0, "nsdA", phys=-1)
        with pytest.raises(ValueError):
            FaultSchedule().corrupt_block(1.0, "nsdA", index=-1)

    def test_partition_adds_cut_and_heal(self):
        schedule = FaultSchedule().partition(2.0, ["a", "b"], 1.5)
        actions = list(schedule.ordered())
        assert [a.kind for a in actions] == ["partition", "partition_heal"]
        assert actions[0].at == 2.0
        assert actions[1].at == 3.5
        assert actions[0].target == "a,b"

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule().partition(1.0, [], 1.0)
        with pytest.raises(ValueError):
            FaultSchedule().partition(1.0, ["a"], 0.0)


class TestInjectorValidation:
    def test_corrupt_block_requires_known_nsd(self):
        sim = Simulation()
        injector = FaultInjector(
            sim, FaultSchedule().corrupt_block(0.1, "ghost"), nsds={}
        )
        with pytest.raises(ValueError, match="unknown NSD"):
            injector.start()

    def test_partition_requires_state(self):
        sim = Simulation()
        injector = FaultInjector(
            sim, FaultSchedule().partition(0.1, ["a"], 1.0)
        )
        with pytest.raises(ValueError, match="requires a PartitionState"):
            injector.start()


class TestInjectorExecution:
    def _nsd(self):
        nsd = Nsd(0, "nsd-test", total_blocks=16, block_size=BS)
        nsd.store(3, 0, b"\x42" * BS)
        nsd.store(9, 0, b"\x43" * BS)
        return nsd

    def test_corrupt_block_by_phys(self):
        sim = Simulation()
        nsd = self._nsd()
        injector = FaultInjector(
            sim,
            FaultSchedule().corrupt_block(0.1, "nsd-test", phys=3),
            nsds={"nsd-test": nsd},
        )
        injector.start()
        sim.run(until=sim.timeout(0.2))
        assert nsd.corruptions == 1
        assert not nsd.verify_full(3)
        assert nsd.verify_full(9)
        assert injector.log == [(0.1, "corrupt_block", "nsd-test")]

    def test_corrupt_block_by_index_picks_written_blocks(self):
        sim = Simulation()
        nsd = self._nsd()
        injector = FaultInjector(
            sim,
            FaultSchedule()
            .corrupt_block(0.1, "nsd-test", index=0)
            .corrupt_block(0.2, "nsd-test", index=1),
            nsds={"nsd-test": nsd},
        )
        injector.start()
        sim.run(until=sim.timeout(0.3))
        # index walks the sorted written set: 0 → phys 3, 1 → phys 9
        assert not nsd.verify_full(3)
        assert not nsd.verify_full(9)

    def test_corrupt_block_with_nothing_written_is_an_error(self):
        sim = Simulation()
        nsd = Nsd(0, "nsd-test", total_blocks=16, block_size=BS)
        injector = FaultInjector(
            sim,
            FaultSchedule().corrupt_block(0.1, "nsd-test", index=0),
            nsds={"nsd-test": nsd},
        )
        injector.start()
        with pytest.raises(RuntimeError, match="no written blocks"):
            sim.run(until=sim.timeout(0.2))

    def test_partition_lifecycle_driven_by_schedule(self):
        sim = Simulation()
        part = PartitionState(sim)
        injector = FaultInjector(
            sim,
            FaultSchedule().partition(0.1, ["a"], 0.5),
            partition=part,
        )
        injector.start()
        sim.run(until=sim.timeout(0.2))
        assert part.active and part.minority == frozenset({"a"})
        sim.run(until=sim.timeout(0.5))
        assert not part.active
        assert part.heals == 1
        assert [entry[1] for entry in injector.log] == [
            "partition",
            "partition_heal",
        ]


class TestCorruptionSemantics:
    def test_checksum_left_intact_but_verification_fails(self):
        nsd = Nsd(0, "n", total_blocks=4, block_size=BS)
        nsd.store(0, 0, b"\x01" * BS)
        before = nsd.checksum(0)
        assert nsd.corrupt(0)
        assert nsd.checksum(0) == before  # silent: the checksum still lies
        assert not nsd.verify_full(0)

    def test_full_overwrite_heals_rot(self):
        nsd = Nsd(0, "n", total_blocks=4, block_size=BS)
        nsd.store(0, 0, b"\x01" * BS)
        nsd.corrupt(0)
        nsd.store(0, 0, b"\x02" * BS)  # full-block overwrite
        assert nsd.verify_full(0)

    def test_partial_overwrite_does_not_vouch_for_rot(self):
        nsd = Nsd(0, "n", total_blocks=4, block_size=BS)
        nsd.store(0, 0, b"\x01" * BS)
        nsd.corrupt(0)
        nsd.store(0, 0, b"\x02" * (BS // 2))  # partial: poison survives
        assert not nsd.verify_full(0)

    def test_size_only_mode_poison_is_authoritative(self):
        nsd = Nsd(0, "n", total_blocks=4, block_size=BS, store_data=False)
        assert nsd.verify_full(0)  # nothing written, nothing wrong
        nsd.corrupt(0)
        assert not nsd.verify_full(0)
        nsd.store(0, 0, b"\x00" * BS)
        assert nsd.verify_full(0)
