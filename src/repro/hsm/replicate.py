"""Dual-copy archive replication between sites.

§8: "SDSC and the Pittsburgh Supercomputing Center are already providing
remote second copies for each other's archives" — the copyright-library
model. The replicator copies archived segments from a local library to a
partner site's library over the WAN, and can restore from the partner
after a local catastrophe.
"""

from __future__ import annotations

from typing import Generator, List

from repro.hsm.tape import TapeLibrary
from repro.net.flow import FlowEngine
from repro.sim.kernel import Event, Simulation


class ArchiveReplicator:
    """Mirrors archive segments between two sites' libraries."""

    def __init__(
        self,
        sim: Simulation,
        engine: FlowEngine,
        local: TapeLibrary,
        remote: TapeLibrary,
        local_node: str,
        remote_node: str,
    ) -> None:
        self.sim = sim
        self.engine = engine
        self.local = local
        self.remote = remote
        self.local_node = local_node
        self.remote_node = remote_node
        self.replicated_segments = 0
        self.replicated_bytes = 0.0

    def pending(self) -> List[str]:
        """Segments in the local catalog missing at the partner."""
        return [t for t in self.local._catalog if not self.remote.has(t)]

    def replicate(self, token: str) -> Event:
        """Copy one segment: tape read → WAN flow → partner tape write."""
        if not self.local.has(token):
            raise KeyError(f"segment {token!r} not in local library")
        if self.remote.has(token):
            raise ValueError(f"segment {token!r} already replicated")
        return self.sim.process(self._replicate(token), name=f"repl:{token}")

    def _replicate(self, token: str) -> Generator[Event, None, None]:
        payload, length = yield self.local.retrieve(token)
        yield self.engine.transfer(
            self.local_node, self.remote_node, length, tags=("archive-repl",)
        )
        yield self.remote.archive(token, length, payload)
        self.replicated_segments += 1
        self.replicated_bytes += length

    def replicate_all(self) -> Event:
        """Drain the pending list; value is the number of segments copied."""
        return self.sim.process(self._replicate_all(), name="repl-all")

    def _replicate_all(self) -> Generator[Event, None, None]:
        count = 0
        pending = self.pending()
        if not pending:
            yield self.sim.timeout(0.0)
        for token in pending:
            yield self.replicate(token)
            count += 1
        return count

    def restore(self, token: str) -> Event:
        """Disaster recovery: pull a segment back from the partner site."""
        if not self.remote.has(token):
            raise KeyError(f"segment {token!r} not at partner site")
        return self.sim.process(self._restore(token), name=f"restore:{token}")

    def _restore(self, token: str) -> Generator[Event, None, None]:
        payload, length = yield self.remote.retrieve(token)
        yield self.engine.transfer(
            self.remote_node, self.local_node, length, tags=("archive-restore",)
        )
        if not self.local.has(token):
            yield self.local.archive(token, length, payload)
        return (payload, length)
