"""The Filesystem object: geometry + metadata + data-plane handles.

One :class:`Filesystem` corresponds to a GPFS device (``/dev/gpfs-sc04``):
a stripe geometry over a set of NSDs, an inode table and namespace, an
allocation map, a token manager, and the NSD data-plane service. Mounts
(:class:`repro.core.client.MountedFs`) are created against it from any
node of any authorized cluster.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.allocation import AllocationMap
from repro.core.blocks import StripeGeometry, replica_slots
from repro.core.inode import Inode, InodeTable
from repro.core.namespace import Namespace
from repro.core.nsd import Nsd, NsdService
from repro.core.replication import ReplicaManager, ReplicationPolicy
from repro.core.tokens import TokenManager
from repro.net.message import MessageService
from repro.sim.kernel import Simulation


class Filesystem:
    """A GPFS-like filesystem over a set of NSDs."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        block_size: int,
        nsds: List[Nsd],
        service: NsdService,
        messages: MessageService,
        manager_node: str,
        owner_cluster: str = "",
        store_data: bool = True,
        replication: Optional[ReplicationPolicy] = None,
    ) -> None:
        if not nsds:
            raise ValueError("a filesystem needs at least one NSD")
        if any(n.block_size != block_size for n in nsds):
            raise ValueError("all NSDs must match the filesystem block size")
        self.sim = sim
        self.name = name
        self.block_size = int(block_size)
        self.nsds = {n.nsd_id: n for n in nsds}
        self._nsd_order = [n.nsd_id for n in nsds]
        self.geometry = StripeGeometry(block_size, len(nsds))
        self.service = service
        self.messages = messages
        self.manager_node = manager_node
        service.manager_nodes.add(manager_node)
        self.owner_cluster = owner_cluster
        self.store_data = store_data
        self.inodes = InodeTable()
        self.namespace = Namespace(self.inodes, now=sim.now)
        self.allocation = AllocationMap({n.nsd_id: n.total_blocks for n in nsds})
        self.token_manager = TokenManager(sim, messages, manager_node)
        self.mounts: list = []
        self.replication = replication if replication is not None else ReplicationPolicy()
        if self.replication.copies > len(nsds):
            raise ValueError(
                f"replication copies={self.replication.copies} exceeds "
                f"{len(nsds)} NSDs"
            )
        #: Failure group of the NSD in each stripe slot (placement input).
        self._groups = [n.failure_group for n in nsds]
        self.integrity = ReplicaManager(self)

    # -- control plane -----------------------------------------------------------

    def move_manager(self, node: str) -> None:
        """Relocate the control plane after a manager takeover.

        Metadata RPCs (``_meta_rtt``) and the gateway lease server follow
        the token manager to ``node``; the old node keeps serving blocks
        once it restarts, but the manager role never fails back.
        """
        old = self.manager_node
        self.manager_node = node
        self.service.manager_nodes.discard(old)
        self.service.manager_nodes.add(node)
        lease_server = getattr(self, "_gateway_lease_server", None)
        if lease_server is not None:
            lease_server.node = node

    # -- capacity ----------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.allocation.total_blocks * self.block_size

    @property
    def free_bytes(self) -> int:
        return self.allocation.free_blocks * self.block_size

    @property
    def used_bytes(self) -> int:
        return self.allocation.allocated_blocks * self.block_size

    # -- block placement ------------------------------------------------------------

    def nsd_id_for(self, ino: int, block_index: int) -> int:
        """Which NSD a logical block of a file lives on."""
        slot = self.geometry.nsd_for(ino, block_index)
        return self._nsd_order[slot]

    def lookup_block(self, inode: Inode, block_index: int) -> Optional[Tuple[int, int]]:
        """(nsd_id, physical block) if allocated, else None."""
        return inode.blocks.get(block_index)

    def ensure_block(self, inode: Inode, block_index: int) -> Tuple[int, int]:
        """Allocate the block on its striping target if needed.

        With replication active the R-1 extra replicas are allocated in
        the same step (all-or-nothing), each in a distinct failure group
        walking round-robin from the primary's stripe slot.
        """
        placed = inode.blocks.get(block_index)
        if placed is not None:
            return placed
        copies = self.replication.copies
        if copies <= 1:
            nsd_id = self.nsd_id_for(inode.ino, block_index)
            phys = self.allocation.alloc_on(nsd_id)
            inode.blocks[block_index] = (nsd_id, phys)
            return nsd_id, phys
        slot = self.geometry.nsd_for(inode.ino, block_index)
        slots = [slot] + replica_slots(slot, copies, self._groups)
        placements = self.allocation.alloc_replica_set(
            [self._nsd_order[s] for s in slots]
        )
        inode.blocks[block_index] = placements[0]
        inode.replicas[block_index] = tuple(placements[1:])
        return placements[0]

    def replica_placements(self, inode: Inode, block_index: int) -> List[Tuple[int, int]]:
        """All physical copies of a logical block, primary first."""
        primary = inode.blocks.get(block_index)
        if primary is None:
            raise KeyError(f"block {block_index} of ino {inode.ino} not allocated")
        return [primary, *inode.replicas.get(block_index, ())]

    def free_file_blocks(self, inode: Inode, from_block: int = 0) -> int:
        """Release blocks >= ``from_block``; returns count freed."""
        doomed = [b for b in inode.blocks if b >= from_block]
        for b in doomed:
            nsd_id, phys = inode.blocks.pop(b)
            self.allocation.free_on(nsd_id, phys)
            self.nsds[nsd_id].discard(phys)
            for r_nsd, r_phys in inode.replicas.pop(b, ()):
                self.allocation.free_on(r_nsd, r_phys)
                self.nsds[r_nsd].discard(r_phys)
        return len(doomed)

    def stats(self) -> Dict[str, float]:
        """Aggregate counters (for harness output)."""
        return {
            "capacity": self.capacity,
            "used": self.used_bytes,
            "blocks_read": self.service.blocks_read,
            "blocks_written": self.service.blocks_written,
            "token_grants": self.token_manager.grants,
            "token_revokes": self.token_manager.revokes,
        }
