"""The E7 comparison: staged jobs versus direct GFS access.

§1 of the paper motivates the GFS with three observations about wholesale
data movement:

1. the chosen site "may not be able to guarantee enough room to receive a
   required dataset",
2. "the necessary transfer rates may not be achievable", and
3. "in many cases the application may treat the very large dataset more as
   a database ... retrieving individual pieces of very large files".

:class:`StagedJob` models the old mode: reserve scratch, GridFTP the whole
dataset in, compute, GridFTP results out. :class:`DirectGfsJob` models the
new mode: reserve compute only, read just the accessed fraction over the
GFS (paying WAN latency per miss), write output directly back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.grid.gridftp import GridFtp
from repro.grid.scheduler import GurScheduler, ReservationError
from repro.sim.kernel import Event, Simulation


@dataclass
class JobReport:
    """What one job run cost."""

    mode: str
    site: str
    stage_in_time: float = 0.0
    compute_time: float = 0.0
    stage_out_time: float = 0.0
    total_time: float = 0.0
    bytes_moved: float = 0.0
    time_to_first_byte: float = 0.0
    admitted: bool = True
    refusal: str = ""


@dataclass
class JobSpec:
    """A data-intensive grid job."""

    dataset_bytes: float
    output_bytes: float
    compute_seconds: float
    nodes: int = 8
    #: fraction of the dataset the computation actually touches (§1's
    #: "retrieving individual pieces of very large files")
    access_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.dataset_bytes < 0 or self.output_bytes < 0:
            raise ValueError("sizes must be non-negative")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        if not 0 <= self.access_fraction <= 1:
            raise ValueError("access_fraction must be in [0, 1]")


class StagedJob:
    """Classic mode: stage in, compute, stage out."""

    def __init__(
        self,
        sim: Simulation,
        scheduler: GurScheduler,
        gridftp: GridFtp,
        data_home: str,  # node holding the canonical dataset
        compute_node: str,  # node at the compute site
        site: str,
        streams: int = 8,
    ) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.gridftp = gridftp
        self.data_home = data_home
        self.compute_node = compute_node
        self.site = site
        self.streams = streams

    def run(self, spec: JobSpec) -> Event:
        return self.sim.process(self._run(spec), name="staged-job")

    def _run(self, spec: JobSpec) -> Generator[Event, None, JobReport]:
        t0 = self.sim.now
        report = JobReport(mode="staged", site=self.site)
        try:
            reservation = self.scheduler.reserve(
                self.site, spec.nodes, scratch=spec.dataset_bytes + spec.output_bytes
            )
        except ReservationError as exc:
            report.admitted = False
            report.refusal = str(exc)
            yield self.sim.timeout(0.0)
            return report
        try:
            # stage in the WHOLE dataset, regardless of access fraction
            res_in = yield self.gridftp.transfer(
                self.data_home, self.compute_node, spec.dataset_bytes,
                streams=self.streams, tags=("gridftp", "stage-in"),
            )
            report.stage_in_time = res_in.elapsed
            report.time_to_first_byte = self.sim.now - t0  # compute starts now
            yield self.sim.timeout(spec.compute_seconds)
            report.compute_time = spec.compute_seconds
            res_out = yield self.gridftp.transfer(
                self.compute_node, self.data_home, spec.output_bytes,
                streams=self.streams, tags=("gridftp", "stage-out"),
            )
            report.stage_out_time = res_out.elapsed
            report.bytes_moved = spec.dataset_bytes + spec.output_bytes
        finally:
            self.scheduler.release(reservation)
        report.total_time = self.sim.now - t0
        return report


class DirectGfsJob:
    """GFS mode: compute against the central filesystem over the WAN."""

    def __init__(
        self,
        sim: Simulation,
        scheduler: GurScheduler,
        mount,  # a MountedFs at the compute site
        site: str,
        io_chunk: int = 8 << 20,
    ) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.mount = mount
        self.site = site
        self.io_chunk = io_chunk

    def run(self, spec: JobSpec, dataset_path: str, output_path: str) -> Event:
        return self.sim.process(
            self._run(spec, dataset_path, output_path), name="gfs-job"
        )

    def _run(self, spec: JobSpec, dataset_path: str, output_path: str):
        t0 = self.sim.now
        report = JobReport(mode="gfs", site=self.site)
        try:
            reservation = self.scheduler.reserve(self.site, spec.nodes, scratch=0.0)
        except ReservationError as exc:
            report.admitted = False
            report.refusal = str(exc)
            yield self.sim.timeout(0.0)
            return report
        try:
            handle = yield self.mount.open(dataset_path, "r")
            to_read = int(spec.dataset_bytes * spec.access_fraction)
            first = True
            pos = 0
            while pos < to_read:
                chunk = min(self.io_chunk, to_read - pos)
                yield self.mount.pread(handle, pos, chunk)
                if first:
                    report.time_to_first_byte = self.sim.now - t0
                    first = False
                pos += chunk
            yield self.mount.close(handle)
            # interleaved compute (the reads above already overlap readahead)
            yield self.sim.timeout(spec.compute_seconds)
            report.compute_time = spec.compute_seconds
            out = yield self.mount.open(output_path, "w", create=True)
            written = 0
            while written < spec.output_bytes:
                chunk = int(min(self.io_chunk, spec.output_bytes - written))
                payload = chunk if not self.mount.fs.store_data else b"\x00" * chunk
                yield self.mount.write(out, payload)
                written += chunk
            yield self.mount.close(out)
            report.bytes_moved = to_read + spec.output_bytes
        finally:
            self.scheduler.release(reservation)
        report.total_time = self.sim.now - t0
        return report
