"""Kernel and block-RPC microbenches (perf-regression harness).

The flow-engine churn benches (``test_perf_flowengine.py``) measure the
rate *solver*; these measure the other half of every experiment's wall
clock: the event kernel itself and the NSD block-RPC data path built on
it. Three workloads:

* ``event_churn`` — pure kernel: processes spinning on zero-timeout
  sequencers, child-process composition, already-processed event waits,
  and scheduled callbacks. This is exactly the event mix one block RPC
  generates, with no network or storage work attached.
* ``block_rpc`` — NSD write+read round trips from N clients striped over
  M servers on a size-only filesystem (no byte copying), i.e. the
  per-block control/data/ack protocol cost.
* ``block_rpc_coalesced`` — the same logical blocks moved through the
  scatter-gather multi-block RPCs (``read_blocks``/``write_blocks``)
  with ``max_coalesce=8``: one control round trip and one engine
  transfer per contiguous same-server run.

Each bench appends ops/s to ``BENCH_kernel.json`` in the repo root so
successive PRs accumulate a perf trajectory (the ``*_pre_fastpath`` rows
are the frozen pre-optimization baseline). Run with::

    pytest benchmarks/test_perf_kernel.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.cluster import Gfs, NsdSpec
from repro.sim import Simulation
from repro.sim.profile import PROFILE
from repro.util.units import Gbps, KiB

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


# -- event churn -------------------------------------------------------------


def run_event_churn(nprocs: int = 200, iters: int = 100) -> dict:
    """Drive ``nprocs`` processes through ``iters`` kernel-heavy rounds.

    Each round exercises the four hot kernel paths a block RPC leans on:
    a zero-timeout sequencer, a child-process spawn + composition wait, a
    wait on an already-processed event (the relay/trampoline path), and a
    scheduled callback hop.
    """
    sim = Simulation()
    ticks = [0]

    def leaf(sim):
        yield sim.timeout(0.0)
        return 1

    def worker(sim, already_done):
        for _ in range(iters):
            yield sim.timeout(0.0)
            child = sim.process(leaf(sim))
            yield child
            yield already_done  # processed long ago: immediate-resume path
            sim.schedule_callback(0.0, lambda: ticks.__setitem__(0, ticks[0] + 1))

    done = sim.event(name="already-done")
    done.succeed("v")
    sim.run()  # process the marker event so waiters take the fast path
    for _ in range(nprocs):
        sim.process(worker(sim, done))
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert ticks[0] == nprocs * iters
    return {
        "kernel_events": sim._seq,
        "elapsed_s": elapsed,
        "ops": sim._seq,
        "ops_per_s": sim._seq / elapsed,
    }


# -- block RPCs --------------------------------------------------------------


def _rpc_testbed(clients: int, servers: int):
    """Size-only single-switch cluster: the RPC protocol with no payload."""
    g = Gfs(seed=0)
    net = g.network
    net.add_node("sw", kind="switch")
    server_names = [f"nsd{i}" for i in range(servers)]
    client_names = [f"c{i}" for i in range(clients)]
    for name in server_names + client_names:
        net.add_host(name, "sw", Gbps(10), site="bench")
    cluster = g.add_cluster("bench")
    cluster.add_nodes(server_names + client_names)
    fs = cluster.mmcrfs(
        "bench0",
        [NsdSpec(server=s, blocks=4096) for s in server_names],
        block_size=KiB(256),
        store_data=False,
    )
    return g, fs, client_names


def run_block_rpc(clients: int = 16, servers: int = 8, blocks: int = 64) -> dict:
    """Per-block write+read round trips striped over every server."""
    g, fs, client_names = _rpc_testbed(clients, servers)
    service = fs.service
    nsd_ids = sorted(fs.nsds)
    bs = fs.block_size

    def io(client_i, node):
        for b in range(blocks):
            nsd_id = nsd_ids[b % len(nsd_ids)]
            phys = (client_i * blocks + b) // len(nsd_ids)
            yield service.write_block(node, nsd_id, phys, 0, bs)
            yield service.read_block(node, nsd_id, phys, 0, bs)

    for i, node in enumerate(client_names):
        g.sim.process(io(i, node))
    t0 = time.perf_counter()
    g.run()
    elapsed = time.perf_counter() - t0
    nops = 2 * clients * blocks
    assert service.blocks_written == clients * blocks
    assert service.blocks_read == clients * blocks
    return {
        "kernel_events": g.sim._seq,
        "elapsed_s": elapsed,
        "ops": nops,
        "ops_per_s": nops / elapsed,
    }


def run_block_rpc_coalesced(
    clients: int = 16, servers: int = 8, blocks: int = 64, max_coalesce: int = 8
) -> dict:
    """The same logical blocks via scatter-gather multi-block RPCs."""
    g, fs, client_names = _rpc_testbed(clients, servers)
    service = fs.service
    nsd_ids = sorted(fs.nsds)
    bs = fs.block_size

    def io(client_i, node):
        for b0 in range(0, blocks, max_coalesce):
            run = range(b0, min(b0 + max_coalesce, blocks))
            nsd_id = nsd_ids[client_i % len(nsd_ids)]
            base = client_i * blocks
            phys_run = [base + b for b in run]
            yield service.write_blocks(
                node, nsd_id, [(p, 0, bs) for p in phys_run]
            )
            yield service.read_blocks(node, nsd_id, phys_run)

    for i, node in enumerate(client_names):
        g.sim.process(io(i, node))
    t0 = time.perf_counter()
    g.run()
    elapsed = time.perf_counter() - t0
    nops = 2 * clients * blocks  # logical per-block ops, same as run_block_rpc
    assert service.blocks_written == clients * blocks
    assert service.blocks_read == clients * blocks
    return {
        "kernel_events": g.sim._seq,
        "elapsed_s": elapsed,
        "ops": nops,
        "ops_per_s": nops / elapsed,
    }


# -- gateway hit path --------------------------------------------------------


def run_gateway_hit_path(
    clients: int = 16, servers: int = 4, blocks: int = 64, iters: int = 4
) -> dict:
    """Warm edge-cache reads: control + media + LAN per hit, no origin RPC.

    One cold pass fills the gateway cache; the timed region is every
    client re-reading every block ``iters`` times straight out of the
    cache (the steady state E15 measures as warm latency). The origin
    byte counter must not move inside the timed region.
    """
    from repro.cache import CacheGateway, GatewayBlockCache

    g = Gfs(seed=0)
    net = g.network
    net.add_node("sw", kind="switch")
    server_names = [f"nsd{i}" for i in range(servers)]
    client_names = [f"c{i}" for i in range(clients)]
    gw_names = ["gw0", "gw1"]
    for name in server_names + client_names + gw_names:
        net.add_host(name, "sw", Gbps(10), site="bench")
    cluster = g.add_cluster("bench")
    cluster.add_nodes(server_names + client_names + gw_names)
    fs = cluster.mmcrfs(
        "bench0",
        [NsdSpec(server=s, blocks=4096) for s in server_names],
        block_size=KiB(256),
        store_data=False,
    )
    cache = GatewayBlockCache(
        (blocks + 8) * fs.block_size, fs.block_size, store_data=False
    )
    gw = CacheGateway(fs, gw_names, cache, name="bench-gw", lease_duration=1e9)

    m = g.run(until=cluster.mmmount("bench0", "c0"))

    def seed():
        h = yield m.open("/f", "w", create=True)
        yield m.write(h, blocks * fs.block_size)
        yield m.close(h)

    g.run(until=g.sim.process(seed()))
    inode = fs.namespace.resolve("/f")
    placed = [fs.lookup_block(inode, b) for b in range(blocks)]

    def warm():
        for b in range(blocks):
            yield gw.read_block("c0", inode, b, placed[b])

    g.run(until=g.sim.process(warm()))
    assert gw.cache.misses == blocks

    origin_before = gw.origin_bytes

    def reread(node):
        for _ in range(iters):
            for b in range(blocks):
                yield gw.read_block(node, inode, b, placed[b])

    for node in client_names:
        g.sim.process(reread(node))
    seq0 = g.sim._seq
    t0 = time.perf_counter()
    g.run()
    elapsed = time.perf_counter() - t0
    nops = clients * blocks * iters
    assert gw.origin_bytes == origin_before  # every timed read was a hit
    assert gw.cache.hits >= nops
    return {
        "kernel_events": g.sim._seq - seq0,
        "elapsed_s": elapsed,
        "ops": nops,
        "ops_per_s": nops / elapsed,
    }


# -- recording ----------------------------------------------------------------


def record(name: str, stats: dict, note: str = "") -> None:
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    row = {
        "ops_per_s": round(stats["ops_per_s"], 2),
        "elapsed_s": round(stats["elapsed_s"], 3),
        "ops": stats["ops"],
        "kernel_events": stats["kernel_events"],
    }
    if note:
        row["note"] = note
    data[name] = row
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _bench(benchmark, capsys, fn, name: str, note: str = "", **kwargs) -> dict:
    # Timed round runs with profiling OFF (counter upkeep would tax the
    # very fast paths being measured); a second, untimed round collects
    # the counters the assertions need.
    stats = benchmark.pedantic(
        fn, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
    PROFILE.reset()
    PROFILE.enable()
    try:
        fn(**kwargs)
    finally:
        PROFILE.disable()
    stats["profile"] = PROFILE.snapshot()["counters"]
    record(name, stats, note=note)
    with capsys.disabled():
        print()
        print(
            f"{name}: {stats['ops_per_s']:.0f} ops/s wall "
            f"({stats['elapsed_s']:.3f}s for {stats['ops']} ops, "
            f"{stats['kernel_events']} kernel events)"
        )
    return stats


def test_event_churn(benchmark, capsys):
    _bench(benchmark, capsys, run_event_churn, "event_churn")


def test_block_rpc(benchmark, capsys):
    stats = _bench(
        benchmark,
        capsys,
        run_block_rpc,
        "block_rpc",
        note=(
            "post-fastpath per-block path: ~1.9x over baseline; the residual "
            "is genuine rate-solver and protocol work per block, which only "
            "the coalesced path below removes"
        ),
    )
    prof = stats["profile"]
    # Fault-free runs must take the guard fast path on every RPC leg, not
    # build partition/health generators they immediately discard.
    assert prof.get("kernel.guard_fastpath", 0) > 0


def test_block_rpc_coalesced(benchmark, capsys):
    stats = _bench(
        benchmark,
        capsys,
        run_block_rpc_coalesced,
        "block_rpc_coalesced",
        note=(
            "same logical blocks via max_coalesce=8 scatter-gather RPCs: "
            "~10x over the per-block baseline with ~8x fewer kernel events"
        ),
    )
    # One scatter-gather RPC per run of 8 blocks: the coalesced path must
    # move the same logical blocks with far fewer kernel events.
    plain = json.loads(RESULTS_PATH.read_text()).get("block_rpc")
    if plain:
        assert stats["kernel_events"] < plain["kernel_events"] / 2


def test_gateway_hit_path(benchmark, capsys):
    _bench(
        benchmark,
        capsys,
        run_gateway_hit_path,
        "gateway_hit_path",
        note=(
            "warm edge-cache reads through the caching gateway: one control "
            "message, one media read, one LAN transfer per hit; zero origin "
            "RPCs in the timed region"
        ),
    )
