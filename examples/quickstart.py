#!/usr/bin/env python
"""Quickstart: build a two-site Global File System and do real I/O.

Builds a small SDSC-style serving cluster and a remote client cluster,
exports the filesystem across a simulated WAN with RSA multi-cluster
authentication (GPFS 2.3-style mmauth / mmremotecluster / mmremotefs),
writes a file at one site and reads it back — bit-identical — at the other.

Run:  python examples/quickstart.py
"""

from repro.core.cluster import Gfs, NsdSpec
from repro.util.units import Gbps, MiB, fmt_rate, fmt_time

# --- 1. the universe: one clock, one network --------------------------------
gfs = Gfs(seed=42)
net = gfs.network

# a serving site and a remote site, 30 Gb/s WAN, 15 ms one-way
net.add_node("sdsc-sw", kind="switch")
net.add_node("remote-sw", kind="switch")
net.add_link("sdsc-sw", "remote-sw", Gbps(30), delay=0.015)

# four NSD server hosts with GbE NICs, one remote client host
servers = [f"nsd{i}" for i in range(4)]
for name in servers:
    net.add_host(name, "sdsc-sw", Gbps(1), site="sdsc")
net.add_host("client0", "remote-sw", Gbps(1), site="remote")

# --- 2. clusters and the filesystem ------------------------------------------
sdsc = gfs.add_cluster("sdsc", site="sdsc")
sdsc.add_nodes(servers)
remote = gfs.add_cluster("remote", site="remote")
remote.add_node("client0")

fs = sdsc.mmcrfs(
    "gpfs0",
    [NsdSpec(server=s, blocks=4096) for s in servers],
    block_size=MiB(1),
)
print(f"created {fs.name}: {fs.capacity / 1e9:.1f} GB over {len(fs.nsds)} NSDs")

# --- 3. multi-cluster auth (the paper's §6 protocol) --------------------------
sdsc.mmauth_update("AUTHONLY")
remote.mmauth_update("AUTHONLY")
sdsc_pub = sdsc.mmauth_genkey()  # mmauth genkey on each cluster
remote_pub = remote.mmauth_genkey()
sdsc.mmauth_add("remote", remote_pub)  # out-of-band public key exchange
sdsc.mmauth_grant("remote", "gpfs0", "rw")  # per-filesystem grant
remote.mmremotecluster_add("sdsc", sdsc_pub, contact_nodes=["nsd0"])
remote.mmremotefs_add("gpfs0-remote", "sdsc", "gpfs0")

# --- 4. mount locally and remotely --------------------------------------------
local_mount = gfs.run(until=sdsc.mmmount("gpfs0", "nsd3"))
t0 = gfs.sim.now
remote_mount = gfs.run(until=remote.mmmount("gpfs0-remote", "client0", readahead=16))
print(f"remote mount (RSA handshake over the WAN): {fmt_time(gfs.sim.now - t0)}")

# --- 5. write at SDSC, read at the remote site ---------------------------------
payload = bytes(range(256)) * 4096 * 16  # 16 MiB of patterned data


def workflow():
    handle = yield local_mount.open("/results/run1.dat", "w", create=True)
    yield local_mount.write(handle, payload)
    yield local_mount.close(handle)

    t_read = gfs.sim.now
    rhandle = yield remote_mount.open("/results/run1.dat", "r")
    data = yield remote_mount.read(rhandle, len(payload))
    elapsed = gfs.sim.now - t_read
    assert data == payload, "integrity violation!"
    print(
        f"read {len(data) / 1e6:.0f} MB over the WAN in {fmt_time(elapsed)} "
        f"({fmt_rate(len(data) / elapsed)}) — bit-identical"
    )


def main():
    def top():
        yield local_mount.mkdir("/results")
        yield gfs.sim.process(workflow(), name="workflow")

    gfs.run(until=gfs.sim.process(top(), name="main"))
    stats = fs.stats()
    print(
        f"fs stats: {stats['blocks_written']:.0f} blocks written, "
        f"{stats['blocks_read']:.0f} read, "
        f"{stats['token_grants']:.0f} token grants"
    )


if __name__ == "__main__":
    main()
