"""E7 — §1's motivating comparison: GridFTP staging versus direct GFS access.

The paper's three arguments against wholesale data movement, each made
measurable here:

1. **room**: "the computational system chosen may not be able to guarantee
   enough room to receive a required dataset" → the GUR admission check
   excludes the small site for staged jobs only;
2. **rates**: staging moves the *whole* dataset before any science starts
   (time-to-first-byte = the full stage-in);
3. **database-style access**: "the application may treat the very large
   dataset more as a database ... retrieving individual pieces of very
   large files" → direct GFS access moves only ``access_fraction`` of it.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import ExperimentResult
from repro.grid.gridftp import GridFtp
from repro.grid.scheduler import GurScheduler, SiteResources
from repro.grid.staging import DirectGfsJob, JobSpec, StagedJob
from repro.storage.pipes import Pipe
from repro.topology.sdsc2005 import build_sdsc2005
from repro.util.tables import Table
from repro.util.units import GB, Gbps, MB, MiB, TB, fmt_time


def run_e7(
    dataset_bytes: float = GB(8),
    output_bytes: float = GB(0.5),
    compute_seconds: float = 120.0,
    fractions: Sequence[float] = (0.02, 0.1, 0.5, 1.0),
    ncsa_clients: int = 8,
) -> ExperimentResult:
    scenario = build_sdsc2005(
        nsd_servers=32,
        ds4100_count=16,
        sdsc_clients=1,
        anl_clients=0,
        ncsa_clients=ncsa_clients,
        store_data=False,
    )
    g = scenario.gfs
    net = g.network
    # dedicated staging endpoints with fat NICs
    net.add_host("sdsc-gridftp", "sdsc-gbe", Gbps(10), site="sdsc")
    net.add_host("ncsa-scratch", "ncsa-sw", Gbps(10), site="ncsa")

    scheduler = GurScheduler(g.sim)
    scheduler.add_site(SiteResources("ncsa", compute_nodes=256, scratch_bytes=TB(1)))
    scheduler.add_site(
        SiteResources("small-site", compute_nodes=64, scratch_bytes=dataset_bytes / 2)
    )

    gridftp = GridFtp(
        g.sim,
        g.engine,
        g.messages,
        src_disk=Pipe(g.sim, MB(1600), name="sdsc-raid"),
        dst_disk=Pipe(g.sim, MB(800), name="ncsa-scratch-raid"),
    )

    # stage the canonical dataset into the GFS once
    sdsc_mount = scenario.mount_clients("sdsc", 1, pagepool_bytes=MiB(512))[0]

    def seed():
        handle = yield sdsc_mount.open("/nvo-catalog", "w", create=True)
        yield sdsc_mount.write(handle, int(dataset_bytes))
        yield sdsc_mount.close(handle)

    g.run(until=g.sim.process(seed(), name="seed"))
    gfs_mount = scenario.mount_clients("ncsa", 1, readahead=24)[0]

    result = ExperimentResult(
        exp_id="E7",
        title="§1: wholesale staging (GridFTP) vs direct GFS access",
        paper_claim="GFS avoids whole-dataset movement, scratch reservations, and stage-in delay",
    )
    table = Table(
        ["mode", "access", "total", "first byte", "moved GB"],
        title=f"{dataset_bytes / 1e9:.0f} GB dataset, {compute_seconds:.0f}s compute",
    )

    staged = StagedJob(
        g.sim, scheduler, gridftp, "sdsc-gridftp", "ncsa-scratch", "ncsa", streams=8
    )
    gfs_job = DirectGfsJob(g.sim, scheduler, gfs_mount, "ncsa", io_chunk=MiB(8))

    for fraction in fractions:
        spec = JobSpec(
            dataset_bytes=dataset_bytes,
            output_bytes=output_bytes,
            compute_seconds=compute_seconds,
            nodes=8,
            access_fraction=fraction,
        )
        rep_staged = g.run(until=staged.run(spec))
        rep_gfs = g.run(
            until=gfs_job.run(spec, "/nvo-catalog", f"/out-{fraction}")
        )
        gfs_mount.pool.invalidate(
            scenario.fs.namespace.resolve("/nvo-catalog").ino
        )
        for rep in (rep_staged, rep_gfs):
            table.add_row(
                [
                    rep.mode,
                    f"{fraction:.0%}",
                    fmt_time(rep.total_time),
                    fmt_time(rep.time_to_first_byte),
                    rep.bytes_moved / 1e9,
                ]
            )
        result.metrics[f"staged_total_{fraction}"] = rep_staged.total_time
        result.metrics[f"gfs_total_{fraction}"] = rep_gfs.total_time
        result.metrics[f"gfs_moved_{fraction}"] = rep_gfs.bytes_moved
        result.metrics[f"staged_moved_{fraction}"] = rep_staged.bytes_moved
        result.metrics[f"staged_ttfb_{fraction}"] = rep_staged.time_to_first_byte
        result.metrics[f"gfs_ttfb_{fraction}"] = rep_gfs.time_to_first_byte
        # data-handling overhead = wall time not spent computing
        result.metrics[f"staged_overhead_{fraction}"] = (
            rep_staged.total_time - rep_staged.compute_time
        )
        result.metrics[f"gfs_overhead_{fraction}"] = (
            rep_gfs.total_time - rep_gfs.compute_time
        )

    # the §1 exclusion effect: the small site cannot admit the staged job
    staged_sites = scheduler.eligible_sites(nodes=8, scratch=dataset_bytes + output_bytes)
    gfs_sites = scheduler.eligible_sites(nodes=8, scratch=0)
    result.metrics["staged_eligible_sites"] = float(len(staged_sites))
    result.metrics["gfs_eligible_sites"] = float(len(gfs_sites))
    result.table = table
    result.notes = (
        f"staging always moves the full dataset; sites eligible: "
        f"staged={staged_sites}, gfs={gfs_sites}"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e7()))
