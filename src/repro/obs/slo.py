"""SLO tracking: availability + latency objectives with error-budget burn.

An objective is evaluated against the JSONL scrape rows (the same rows
:mod:`repro.obs.export` writes), not against live metrics — so the SLO
math works identically online (at experiment end) and offline
(``python -m repro health`` over a ``--metrics-dir``).

Definitions, following the standard SRE error-budget formulation:

* **compliance** — fraction of good events over a span (reads under the
  latency threshold; successful reads vs failures);
* **error budget** — ``1 - target``: the tolerated bad fraction;
* **burn rate** — ``(1 - compliance) / (1 - target)``: how many times
  faster than "exactly on target" the budget is being consumed. Burn 1.0
  spends the budget exactly; burn 14 is the classic page-now threshold.
  A ``target`` of 1.0 has zero budget, so burn is reported as ``None``
  (never ``inf`` — the outputs must round-trip through JSON).

Sliding windows are formed by differencing cumulative counters and
histograms between scrape rows ``window`` sim-seconds apart (counter
resets handled like Prometheus ``rate()``). Windows with no events are
vacuously compliant.

Everything is pure arithmetic over the rows: same seed → same rows →
bit-identical SLO report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram, counter_delta


@dataclass(frozen=True)
class LatencyObjective:
    """``target`` fraction of observations in ``metric`` must be <= ``le``.

    ``metric`` names a histogram family; all labeled children are
    aggregated. ``le`` should lie on a bucket boundary of the histogram's
    scheme — compliance is computed from bucket counts, which round
    *against* the objective when ``le`` falls inside a bucket.
    """

    name: str
    metric: str
    le: float
    target: float
    window: float = 5.0


@dataclass(frozen=True)
class AvailabilityObjective:
    """``target`` fraction of ``ok + err`` events must be ok.

    ``ok_metric``/``err_metric`` name counter families (labeled children
    aggregated). "Zero failed reads" is ``target=1.0``.
    """

    name: str
    ok_metric: str
    err_metric: str
    target: float
    window: float = 5.0


def _family_sum(table: Dict[str, float], family: str) -> float:
    """Sum a counter family across its labeled children in a scrape row."""
    prefix = family + "{"
    return sum(
        v for k, v in table.items() if k == family or k.startswith(prefix)
    )


def _family_hist(table: Dict[str, dict], family: str) -> Optional[Histogram]:
    """Merge a histogram family's labeled children from a scrape row."""
    prefix = family + "{"
    merged: Optional[Histogram] = None
    for k in sorted(table):
        if k == family or k.startswith(prefix):
            h = Histogram.from_dict(table[k], name=family)
            if merged is None:
                merged = h
            else:
                merged.merge(h)
    return merged


def _burn(compliance: float, target: float) -> Optional[float]:
    if target >= 1.0:
        return None
    return (1.0 - compliance) / (1.0 - target)


def _window_rows(rows: List[dict], window: float) -> List[Tuple[dict, dict]]:
    """Pair each row with the latest row at least ``window`` earlier.

    With a uniform scrape cadence this yields one sliding window per
    scrape; degenerate inputs (one row, giant window) yield start-to-row
    windows, so short runs still get a meaningful max-burn figure.
    """
    out: List[Tuple[dict, dict]] = []
    lo = 0
    for i in range(1, len(rows)):
        while (
            lo + 1 < i and rows[lo + 1]["t"] <= rows[i]["t"] - window
        ):
            lo += 1
        out.append((rows[lo], rows[i]))
    return out


class SloTracker:
    """Evaluates a set of objectives over scrape rows."""

    def __init__(self) -> None:
        self.objectives: List[object] = []

    def add(self, objective) -> "SloTracker":
        self.objectives.append(objective)
        return self

    # -- per-objective math -------------------------------------------------

    @staticmethod
    def _latency_counts(obj: LatencyObjective, row: dict) -> Tuple[float, float]:
        """(good, total) cumulative at ``row`` for a latency objective."""
        h = _family_hist(row.get("histograms", {}), obj.metric)
        if h is None or h.count == 0:
            return 0.0, 0.0
        return float(h.count_le(obj.le)), float(h.count)

    @staticmethod
    def _avail_counts(obj: AvailabilityObjective, row: dict) -> Tuple[float, float]:
        counters = row.get("counters", {})
        ok = _family_sum(counters, obj.ok_metric)
        err = _family_sum(counters, obj.err_metric)
        return ok, ok + err

    def _evaluate_one(self, obj, rows: List[dict]) -> dict:
        counts = (
            self._latency_counts
            if isinstance(obj, LatencyObjective)
            else self._avail_counts
        )
        if rows:
            good, total = counts(obj, rows[-1])
        else:
            good, total = 0.0, 0.0
        compliance = good / total if total else 1.0

        worst = None  # (burn, t0, t1, compliance)
        for r0, r1 in _window_rows(rows, obj.window):
            g0, t0 = counts(obj, r0)
            g1, t1 = counts(obj, r1)
            wgood = counter_delta(g0, g1)
            wtotal = counter_delta(t0, t1)
            if wtotal <= 0:
                continue
            wcomp = max(0.0, min(1.0, wgood / wtotal))
            wburn = _burn(wcomp, obj.target)
            key = wburn if wburn is not None else 1.0 - wcomp
            if worst is None or key > worst[0]:
                worst = (key, r0["t"], r1["t"], wcomp)

        out = {
            "name": obj.name,
            "kind": "latency" if isinstance(obj, LatencyObjective) else
                    "availability",
            "target": obj.target,
            "window": obj.window,
            "events": total,
            "good_events": good,
            "compliance": compliance,
            "error_budget": 1.0 - obj.target,
            "burn_rate": _burn(compliance, obj.target),
            "breached": compliance < obj.target,
            "max_window_burn": None,
            "max_window_compliance": None,
            "max_window_span": None,
        }
        if isinstance(obj, LatencyObjective):
            out["metric"] = obj.metric
            out["le"] = obj.le
        else:
            out["ok_metric"] = obj.ok_metric
            out["err_metric"] = obj.err_metric
        if worst is not None:
            burn, t0, t1, wcomp = worst
            out["max_window_burn"] = (
                burn if obj.target < 1.0 else None
            )
            out["max_window_compliance"] = wcomp
            out["max_window_span"] = [t0, t1]
            if obj.target >= 1.0 and wcomp < 1.0:
                out["breached"] = True
        return out

    def evaluate(self, rows: List[dict]) -> List[dict]:
        """One result dict per objective, in registration order."""
        return [self._evaluate_one(obj, rows) for obj in self.objectives]


def phase_stats(
    rows: List[dict],
    phases: List[dict],
    latency_metric: str,
    ok_metric: str,
    err_metric: str,
) -> List[dict]:
    """Per-phase latency percentiles + availability from scrape rows.

    ``phases`` is ``[{"name": ..., "t0": ..., "t1": ...}, ...]``; each
    phase is measured by differencing the last scrape at or before
    ``t0`` against the last scrape at or before ``t1`` (scrapes land on
    the collector cadence, so boundaries resolve to the nearest scrape
    at or under the boundary). Phases with no reads report ``None``
    percentiles and vacuous availability.
    """
    def row_at(t: float) -> Optional[dict]:
        best = None
        for row in rows:
            if row["t"] <= t + 1e-9:
                best = row
            else:
                break
        return best

    out: List[dict] = []
    for phase in phases:
        r0 = row_at(phase["t0"])
        r1 = row_at(phase["t1"])
        entry = {
            "name": phase["name"],
            "t0": phase["t0"],
            "t1": phase["t1"],
            "reads": 0,
            "p50": None,
            "p99": None,
            "availability": 1.0,
            "ok": 0.0,
            "errors": 0.0,
        }
        if r1 is not None:
            h0 = (
                _family_hist(r0.get("histograms", {}), latency_metric)
                if r0 is not None else None
            )
            h1 = _family_hist(r1.get("histograms", {}), latency_metric)
            if h1 is not None:
                dh = Histogram.delta(
                    h0.to_dict() if h0 is not None else None,
                    h1.to_dict(),
                    name=latency_metric,
                )
                if dh.count > 0:
                    entry["reads"] = dh.count
                    entry["p50"] = dh.quantile(0.50)
                    entry["p99"] = dh.quantile(0.99)
            c0 = r0.get("counters", {}) if r0 is not None else {}
            c1 = r1.get("counters", {})
            ok = counter_delta(
                _family_sum(c0, ok_metric), _family_sum(c1, ok_metric)
            )
            err = counter_delta(
                _family_sum(c0, err_metric), _family_sum(c1, err_metric)
            )
            entry["ok"] = ok
            entry["errors"] = err
            if ok + err > 0:
                entry["availability"] = ok / (ok + err)
        out.append(entry)
    return out
