"""Wide-area caching gateway: site-local edge caches for remote mounts.

See :mod:`repro.cache.gateway` for the data path, :mod:`repro.cache.lease`
for the consistency protocol, and ``docs/ARCHITECTURE.md`` §12 for the
design discussion.
"""

from repro.cache.gateway import CONTROL_BYTES, CacheGateway, GatewayMount
from repro.cache.lease import LeaseInfo, LeaseServer
from repro.cache.policy import LruPolicy, TwoQPolicy, make_policy
from repro.cache.store import CacheWedgedError, GatewayBlockCache, GatewayEntry

__all__ = [
    "CONTROL_BYTES",
    "CacheGateway",
    "CacheWedgedError",
    "GatewayBlockCache",
    "GatewayEntry",
    "GatewayMount",
    "LeaseInfo",
    "LeaseServer",
    "LruPolicy",
    "TwoQPolicy",
    "make_policy",
]
