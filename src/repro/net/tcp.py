"""TCP throughput caps for fluid flows.

Two caps, both per-flow and independent of link sharing:

* **window limit** — a TCP connection cannot exceed ``window / RTT``.
  In 2005 an untuned stack shipped 64 KiB windows; at the paper's 80 ms
  San Diego → Baltimore RTT that is ~0.8 MB/s per stream, which is exactly
  why single-stream tools struggled and why the NSD architecture's many
  parallel streams mattered.
* **Mathis et al. loss limit** — ``(MSS / RTT) * (C / sqrt(p))`` for loss
  probability ``p`` (C ≈ 1.22 for periodic loss). Clean dedicated research
  networks like the TeraGrid backbone had effectively negligible loss, the
  default here.

The cap is what the *connection* can carry; actual rate is the max-min fair
share subject to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import KiB, MiB

#: Mathis constant for periodic-loss model.
MATHIS_C = math.sqrt(3.0 / 2.0) * 0.997  # ~1.22 over sqrt(1.5)... see note

# Note: the commonly quoted constant is C ~= 1.22 = sqrt(3/2); we keep the
# plain sqrt(3/2) and fold minor correction factors into `efficiency`.
MATHIS_C = math.sqrt(3.0 / 2.0)


@dataclass(frozen=True)
class TcpModel:
    """Per-connection TCP parameters.

    Parameters
    ----------
    window:
        Effective window in bytes: min(send buffer, receive window, cwnd
        ceiling). 2005 defaults were 64 KiB; tuned TeraGrid hosts used
        multi-MB windows.
    mss:
        Maximum segment size in bytes (1460 for standard Ethernet frames,
        ~8960 with the jumbo frames SCinet provided).
    loss:
        Steady-state loss probability for the Mathis cap; 0 disables it.
    efficiency:
        Protocol goodput fraction (headers, ACK overhead): 1.0 means caps
        are used as-is. Link-level framing overhead lives on the Link, not
        here.
    """

    window: float = float(MiB(8))
    mss: float = 1460.0
    loss: float = 0.0
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if not 0 <= self.loss < 1:
            raise ValueError("loss must be in [0, 1)")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    def window_cap(self, rtt: float) -> float:
        """Window-limited rate (bytes/s); infinite at zero RTT."""
        if rtt <= 0:
            return math.inf
        return self.window / rtt

    def mathis_cap(self, rtt: float) -> float:
        """Loss-limited rate (bytes/s); infinite when loss == 0 or rtt == 0."""
        if self.loss <= 0 or rtt <= 0:
            return math.inf
        return (self.mss / rtt) * (MATHIS_C / math.sqrt(self.loss))

    def rate_cap(self, rtt: float) -> float:
        """Combined per-connection rate cap in bytes/s for round-trip ``rtt``."""
        return self.efficiency * min(self.window_cap(rtt), self.mathis_cap(rtt))


#: An untuned 2005 host: 64 KiB windows, standard frames.
DEFAULT_2005 = TcpModel(window=float(KiB(64)))

#: A TeraGrid-tuned host: large windows, jumbo frames.
TUNED_2005 = TcpModel(window=float(MiB(8)), mss=8960.0)
