"""Flow-engine churn microbenches (perf-regression harness).

Unlike the figure benches (which assert the *shape* of a paper result),
these measure the raw cost of the engine's hot path: flows arriving and
departing on a TeraGrid-like topology, each arrival/departure triggering a
rate re-solve. The scenario is built so the link-sharing graph has four
disjoint components (SDSC→NCSA, ANL→PSC, Caltech→SDSC, NCSA→ANL meshes) —
an arrival in one mesh must not trigger a full re-solve of the others.

Each bench appends its ops/s (flow completions per wall-clock second) to
``BENCH_flowengine.json`` in the repo root so successive PRs accumulate a
perf trajectory. Run with::

    pytest benchmarks/test_perf_flowengine.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.net import FlowEngine, Network, TcpModel
from repro.sim.profile import PROFILE
from repro.topology.teragrid import add_teragrid_backbone
from repro.util.units import Gbps, MB

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_flowengine.json"

#: Ordered site pairs whose routed paths share no directed link — four
#: independent components in the link-sharing graph.
GROUPS = (("sdsc", "ncsa"), ("anl", "psc"), ("caltech", "sdsc"), ("ncsa", "anl"))


def churn_topology(hosts_per_group: int = 8) -> Network:
    """TeraGrid backbone plus per-group host meshes."""
    net = Network()
    add_teragrid_backbone(net)
    for gi, (a, b) in enumerate(GROUPS):
        for h in range(hosts_per_group):
            net.add_host(f"{a}-g{gi}src{h}", f"{a}-sw", Gbps(10), site=a)
            net.add_host(f"{b}-g{gi}dst{h}", f"{b}-sw", Gbps(10), site=b)
    return net


def run_churn(
    nflows: int,
    hosts_per_group: int = 8,
    stagger: float = 0.004,
    window: float = MB(4),
) -> dict:
    """Drive ``nflows`` staggered transfers to completion; return stats.

    Flow ``i`` belongs to group ``i % 4`` and starts at a staggered offset,
    so arrivals and departures interleave: the engine re-solves rates on
    every one of ~2*nflows membership changes while hundreds of flows are
    concurrently active.
    """
    sim_t0 = time.perf_counter()
    from repro.sim import Simulation

    sim = Simulation()
    net = churn_topology(hosts_per_group)
    engine = FlowEngine(sim, net, default_tcp=TcpModel(window=window))

    total_bytes = 0.0
    peak = 0

    def starter(sim, gi, k, nbytes):
        yield sim.timeout(k * stagger)
        a, b = GROUPS[gi]
        src = f"{a}-g{gi}src{k % hosts_per_group}"
        dst = f"{b}-g{gi}dst{(k // hosts_per_group) % hosts_per_group}"
        yield engine.transfer(src, dst, nbytes, tags=(f"g{gi}",))

    for i in range(nflows):
        gi = i % len(GROUPS)
        k = i // len(GROUPS)
        nbytes = MB(8) * (1 + (i % 4))
        total_bytes += nbytes
        sim.process(starter(sim, gi, k, nbytes))

    t0 = time.perf_counter()
    while sim.peek() != float("inf"):
        sim.step()
        peak = max(peak, engine.active_count)
    elapsed = time.perf_counter() - t0

    assert engine.active_count == 0
    assert engine.completed_flows == nflows
    assert engine.bytes_moved == pytest.approx(total_bytes)
    return {
        "nflows": nflows,
        "elapsed_s": elapsed,
        "setup_s": t0 - sim_t0,
        "ops_per_s": nflows / elapsed,
        "peak_concurrent": peak,
        "sim_seconds": sim.now,
        "kernel_events": sim._seq,
    }


def _record(name: str, stats: dict) -> None:
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[name] = {
        "ops_per_s": round(stats["ops_per_s"], 2),
        "elapsed_s": round(stats["elapsed_s"], 3),
        "nflows": stats["nflows"],
        "peak_concurrent": stats["peak_concurrent"],
        "kernel_events": stats["kernel_events"],
    }
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _bench(benchmark, capsys, nflows: int, name: str) -> dict:
    PROFILE.reset()
    PROFILE.enable()
    try:
        stats = benchmark.pedantic(
            run_churn, args=(nflows,), rounds=1, iterations=1, warmup_rounds=0
        )
    finally:
        PROFILE.disable()
    stats["profile"] = PROFILE.snapshot()["counters"]
    _record(name, stats)
    with capsys.disabled():
        print()
        print(
            f"{name}: {stats['ops_per_s']:.0f} flows/s wall "
            f"({stats['elapsed_s']:.2f}s for {nflows}, "
            f"peak {stats['peak_concurrent']} concurrent, "
            f"{stats['kernel_events']} kernel events)"
        )
    return stats


def test_churn_1k(benchmark, capsys):
    _bench(benchmark, capsys, 1000, "churn_1k")


def test_churn_5k(benchmark, capsys):
    stats = _bench(benchmark, capsys, 5000, "churn_5k")
    prof = stats["profile"]
    # Component partitioning must hold: the scenario has four disjoint
    # meshes, so an incremental solve should touch far fewer flow rows than
    # a full re-solve of every active flow at every event would.
    solved = prof.get("fairshare.solved_rows")
    full = prof.get("flowengine.active_rows")
    if solved is not None and full:
        assert solved < full / 2, (
            f"incremental solver touched {solved} rows vs {full} for a "
            "full per-event re-solve — component partitioning regressed"
        )
