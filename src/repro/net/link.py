"""Unidirectional network links.

A :class:`Link` is one direction of a physical connection: capacity in
bytes/second, propagation delay in seconds, and a framing ``efficiency``
factor (usable fraction after Ethernet/IP/TCP framing — ~0.94 on GbE with
standard frames, higher with jumbo frames). The fluid flow engine divides
``usable_rate`` among active flows.
"""

from __future__ import annotations

from typing import Optional


class Link:
    """One direction of a network link."""

    __slots__ = ("name", "src", "dst", "rate", "delay", "efficiency", "index")

    def __init__(
        self,
        src: str,
        dst: str,
        rate: float,
        delay: float = 0.0,
        efficiency: float = 0.94,
        name: Optional[str] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate}")
        if delay < 0:
            raise ValueError(f"link delay must be non-negative, got {delay}")
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        self.src = src
        self.dst = dst
        self.rate = float(rate)
        self.delay = float(delay)
        self.efficiency = float(efficiency)
        self.name = name or f"{src}->{dst}"
        #: Index into the engine's capacity vector; assigned by Network.
        self.index: int = -1

    @property
    def usable_rate(self) -> float:
        """Capacity available to payload bytes (after framing overhead)."""
        return self.rate * self.efficiency

    def set_rate(self, rate: float) -> None:
        """Change the link's capacity (brownout / upgrade / failover).

        Active flows adapt at the flow engine's next recompute — callers
        that need the change to take effect immediately should touch the
        flow set (the engine re-reads capacities on every solve).
        """
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate}")
        self.rate = float(rate)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.rate:.3g} B/s delay={self.delay}>"
