"""A4 benchmark — the §8 upgrade path: 1 vs 2 GbE per NSD server."""

from repro.experiments.ablations import run_a4_upgrade_path


def test_a4_upgrade_path(run_experiment):
    result = run_experiment(run_a4_upgrade_path, clients=32, nsd_servers=12)
    # with servers oversubscribed, doubling their NICs is a big win
    assert result.metric("upgrade_gain") > 1.5
    # and cannot more than double
    assert result.metric("upgrade_gain") <= 2.05
