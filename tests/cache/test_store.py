"""Unit tests for the gateway block cache bookkeeping."""

import pytest

from repro.cache.store import CacheWedgedError, GatewayBlockCache

BS = 4096


def make_cache(blocks=4, **kw):
    return GatewayBlockCache(blocks * BS, BS, **kw)


class TestLookupInsert:
    def test_miss_then_hit(self):
        c = make_cache()
        assert c.lookup(1, 0) is None
        c.insert(1, 0, b"x" * BS, BS)
        entry = c.lookup(1, 0)
        assert entry is not None and entry.length == BS
        assert c.hits == 1 and c.misses == 1
        assert c.hit_ratio == 0.5

    def test_peek_has_no_side_effects(self):
        c = make_cache()
        c.insert(1, 0, None, BS)
        c.peek(1, 0)
        c.peek(9, 9)
        assert c.hits == 0 and c.misses == 0

    def test_capacity_must_hold_one_block(self):
        with pytest.raises(ValueError, match="smaller than one block"):
            GatewayBlockCache(BS - 1, BS)

    def test_lru_eviction_at_capacity(self):
        c = make_cache(blocks=2)
        c.insert(1, 0, None, BS)
        c.insert(1, 1, None, BS)
        c.lookup(1, 0)  # 1 is now LRU
        c.insert(1, 2, None, BS)
        assert (1, 1) not in c
        assert (1, 0) in c and (1, 2) in c
        assert c.evictions == 1

    def test_insert_does_not_clobber_dirty(self):
        # A fetch landing after a writeback must not resurrect stale data.
        c = make_cache()
        c.apply_write(1, 0, 0, b"new" + b"\x00" * (BS - 3), BS, dirty_seq=5)
        c.insert(1, 0, b"old" + b"\x00" * (BS - 3), BS)
        assert c.peek(1, 0).data.startswith(b"new")
        assert c.peek(1, 0).dirty


class TestWrites:
    def test_partial_write_merges_bytes(self):
        c = make_cache()
        c.insert(1, 0, b"a" * BS, BS)
        c.apply_write(1, 0, 4, b"ZZ", 2, dirty_seq=1)
        data = c.peek(1, 0).data
        assert data[:4] == b"aaaa" and data[4:6] == b"ZZ" and data[6:8] == b"aa"

    def test_size_only_write_tracks_length(self):
        c = make_cache()
        c.apply_write(1, 0, 0, None, 100, dirty_seq=1)
        assert c.peek(1, 0).length == 100

    def test_writethrough_stays_clean(self):
        c = make_cache()
        c.apply_write(1, 0, 0, None, BS, dirty_seq=0)
        assert not c.peek(1, 0).dirty
        assert c.dirty_blocks == 0

    def test_out_of_bounds_write_rejected(self):
        c = make_cache()
        with pytest.raises(ValueError, match="exceeds block bounds"):
            c.apply_write(1, 0, BS - 1, b"xx", 2)

    def test_mark_flushed_respects_supersession(self):
        c = make_cache()
        c.apply_write(1, 0, 0, None, BS, dirty_seq=3)
        c.apply_write(1, 0, 0, None, BS, dirty_seq=7)  # newer write
        c.mark_flushed(1, 0, 3)  # flush of the older write lands
        assert c.peek(1, 0).dirty  # still dirty: seq 7 not flushed yet
        c.mark_flushed(1, 0, 7)
        assert not c.peek(1, 0).dirty


class TestInvalidate:
    def test_invalidate_drops_clean_only(self):
        c = make_cache()
        c.insert(1, 0, None, BS)
        c.insert(1, 1, None, BS)
        c.apply_write(1, 2, 0, None, BS, dirty_seq=1)
        c.insert(2, 0, None, BS)
        dropped = c.invalidate_ino(1)
        assert dropped == 2
        assert (1, 2) in c  # dirty survives
        assert (2, 0) in c  # other ino untouched
        assert c.invalidations == 2


class TestWedge:
    def test_all_dirty_insert_raises_with_context(self):
        c = make_cache(blocks=2)
        c.apply_write(7, 0, 0, None, BS, dirty_seq=1)
        c.apply_write(7, 1, 0, None, BS, dirty_seq=2)
        with pytest.raises(CacheWedgedError, match=r"block 5 of ino 9"):
            c.insert(9, 5, None, BS)

    def test_wedged_error_is_memory_error(self):
        assert issubclass(CacheWedgedError, MemoryError)


class TestStats:
    def test_stats_snapshot(self):
        c = make_cache()
        c.insert(1, 0, None, BS)
        c.lookup(1, 0)
        c.lookup(1, 1)
        s = c.stats()
        assert s["hits"] == 1.0 and s["misses"] == 1.0
        assert s["used_blocks"] == 1.0 and s["slots"] == 4.0
        assert s["hit_ratio"] == 0.5

    def test_2q_policy_selectable(self):
        c = make_cache(policy="2q")
        c.insert(1, 0, None, BS)
        assert c.policy.name == "2q"
