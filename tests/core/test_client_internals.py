"""Unit tests for MountedFs internals: read-ahead, token runs, throttling."""

import pytest

from repro.core.tokens import RW

from tests.core.testbed import mounted, run_io, small_gfs


def make(readahead=8, **kw):
    g, cluster, fs, _ = small_gfs(**kw)
    m = mounted(g, cluster, node="c0", readahead=readahead)
    return g, fs, m


def write_file(g, m, path, nbytes):
    def io():
        h = yield m.open(path, "w", create=True)
        yield m.write(h, b"\xab" * nbytes)
        yield m.close(h)

    run_io(g, io())


class TestReadAhead:
    def test_sequential_reads_prefetch_ahead(self):
        g, fs, m = make(readahead=8)
        write_file(g, m, "/f", 32 * fs.block_size)
        ino = fs.namespace.resolve("/f").ino
        m.pool.invalidate(ino)

        def io():
            h = yield m.open("/f", "r")
            yield m.read(h, fs.block_size)
            yield m.read(h, fs.block_size)
            return h._ra_edge

        edge = run_io(g, io())
        # after reading block 1, blocks up to 1+8 are prefetched
        assert edge == 9

    def test_random_reads_do_not_prefetch(self):
        g, fs, m = make(readahead=8)
        write_file(g, m, "/f", 32 * fs.block_size)
        ino = fs.namespace.resolve("/f").ino
        m.pool.invalidate(ino)

        def io():
            h = yield m.open("/f", "r")
            yield m.pread(h, 20 * fs.block_size, 100)
            yield m.pread(h, 3 * fs.block_size, 100)
            return h._ra_edge

        assert run_io(g, io()) == -1  # never triggered

    def test_readahead_zero_disables(self):
        g, fs, m = make(readahead=0)
        write_file(g, m, "/f", 8 * fs.block_size)
        ino = fs.namespace.resolve("/f").ino
        m.pool.invalidate(ino)

        def io():
            h = yield m.open("/f", "r")
            yield m.read(h, fs.block_size)
            yield m.read(h, fs.block_size)
            return fs.service.blocks_read

        # exactly the two touched blocks fetched, nothing speculative
        assert run_io(g, io()) == 2

    def test_readahead_stops_at_eof(self):
        g, fs, m = make(readahead=16)
        write_file(g, m, "/f", 3 * fs.block_size)
        ino = fs.namespace.resolve("/f").ino
        m.pool.invalidate(ino)

        def io():
            h = yield m.open("/f", "r")
            yield m.read(h, fs.block_size)
            yield m.read(h, fs.block_size)
            yield m.fsync(h)  # settle
            return h._ra_edge

        assert run_io(g, io()) <= 2  # never past the last block


class TestTokenRunDoubling:
    def test_streaming_pays_log_token_rpcs(self):
        g, fs, m = make()
        nblocks = 64
        write_file(g, m, "/f", nblocks * fs.block_size)
        # one open+streaming write: acquisitions far below block count
        assert m.tokens.acquisitions < 10

    def test_run_resets_per_handle(self):
        g, fs, m = make()
        write_file(g, m, "/a", 4 * fs.block_size)

        def io():
            h = yield m.open("/b", "w", create=True)
            yield m.write(h, b"x")
            return h._token_run

        run = run_io(g, io())
        assert run == m.TOKEN_RUN_MIN * fs.block_size

    def test_block_rounding(self):
        g, fs, m = make()

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.pwrite(h, 100, b"tiny")  # bytes 100..104
            return None

        run_io(g, io())
        ino = fs.namespace.resolve("/f").ino
        ranges = fs.token_manager.client_ranges(ino, "c0", mode=RW)
        (start, end), = ranges
        assert start % fs.block_size == 0
        assert end % fs.block_size == 0 or end >= 1 << 61  # whole-file grant


class TestWriteThrottle:
    def test_dirty_blocks_bounded_during_large_write(self):
        g, fs, m = make(blocks_per_nsd=8192)
        limit = m._max_dirty_blocks

        def io2():
            h = yield m.open("/big", "w", create=True)
            yield m.write(h, b"z" * (3 * limit) * fs.block_size)
            assert m.pool.total_dirty_blocks <= limit + 1
            yield m.close(h)

        run_io(g, io2())
        assert m.pool.total_dirty_blocks == 0  # close drained everything


class TestMountValidation:
    def test_bad_access(self):
        g, cluster, fs, _ = small_gfs()
        with pytest.raises(ValueError):
            mounted(g, cluster, node="c0", access="append")

    def test_bad_readahead(self):
        g, cluster, fs, _ = small_gfs()
        with pytest.raises(ValueError):
            mounted(g, cluster, node="c0", readahead=-1)

    def test_bad_open_mode(self):
        g, fs, m = make()
        with pytest.raises(ValueError):
            m.open("/f", "z")

    def test_foreign_handle_rejected(self):
        g, cluster, fs, _ = small_gfs()
        m0 = mounted(g, cluster, node="c0")
        m1 = mounted(g, cluster, node="c1")

        def io():
            h = yield m0.open("/f", "w", create=True)
            return h

        h = run_io(g, io())
        with pytest.raises(ValueError, match="different mount"):
            m1.read(h, 1)
