"""Unidirectional network links.

A :class:`Link` is one direction of a physical connection: capacity in
bytes/second, propagation delay in seconds, and a framing ``efficiency``
factor (usable fraction after Ethernet/IP/TCP framing — ~0.94 on GbE with
standard frames, higher with jumbo frames). The fluid flow engine divides
``usable_rate`` among active flows.
"""

from __future__ import annotations

from typing import Optional


class Link:
    """One direction of a network link."""

    __slots__ = ("name", "src", "dst", "rate", "delay", "efficiency", "index",
                 "on_rate_change")

    def __init__(
        self,
        src: str,
        dst: str,
        rate: float,
        delay: float = 0.0,
        efficiency: float = 0.94,
        name: Optional[str] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate}")
        if delay < 0:
            raise ValueError(f"link delay must be non-negative, got {delay}")
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        self.src = src
        self.dst = dst
        self.rate = float(rate)
        self.delay = float(delay)
        self.efficiency = float(efficiency)
        self.name = name or f"{src}->{dst}"
        #: Index into the engine's capacity vector; assigned by Network.
        self.index: int = -1
        #: Callback ``fn(link, old_rate)`` fired by set_rate; assigned by
        #: Network so capacity changes propagate to the flow engine.
        self.on_rate_change = None

    @property
    def usable_rate(self) -> float:
        """Capacity available to payload bytes (after framing overhead)."""
        return self.rate * self.efficiency

    def set_rate(self, rate: float) -> None:
        """Change the link's capacity (brownout / upgrade / failover).

        When the link belongs to a :class:`~repro.net.topology.Network`
        with a flow engine attached, the change takes effect at the
        current sim instant: the engine is notified and schedules a
        recompute, so active flows adapt without any caller-side poke.
        """
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate}")
        old = self.rate
        self.rate = float(rate)
        if self.rate != old and self.on_rate_change is not None:
            self.on_rate_change(self, old)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.rate:.3g} B/s delay={self.delay}>"
