"""Edge cases of the event kernel that the main tests don't reach."""

import pytest

from repro.sim import Interrupt, Simulation, Store


class TestLateFailures:
    def test_anyof_defuses_late_child_failure(self):
        sim = Simulation()
        fast = sim.event()
        slow = sim.event()

        def proc(sim):
            result = yield sim.any_of([fast, slow])
            return list(result.values())

        p = sim.process(proc(sim))
        fast.succeed("winner")
        sim.run()
        # the loser fails AFTER the condition decided: must not crash the sim
        slow.fail(RuntimeError("late loser"))
        sim.run()
        assert p.value == ["winner"]

    def test_allof_defuses_second_failure(self):
        sim = Simulation()
        a, b = sim.event(), sim.event()

        def proc(sim):
            try:
                yield sim.all_of([a, b])
            except RuntimeError as exc:
                return str(exc)

        p = sim.process(proc(sim))
        a.fail(RuntimeError("first"))
        sim.run()
        b.fail(RuntimeError("second"))
        sim.run()
        assert p.value == "first"


class TestInterruptEdges:
    def test_interrupt_while_waiting_on_store(self):
        sim = Simulation()
        store = Store(sim)

        def consumer(sim):
            try:
                yield store.get()
            except Interrupt:
                return "freed"

        p = sim.process(consumer(sim))

        def killer(sim):
            yield sim.timeout(1)
            p.interrupt()

        sim.process(killer(sim))
        sim.run()
        assert p.value == "freed"

    def test_interrupt_racing_completion_is_safe(self):
        sim = Simulation()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(worker(sim))

        def racer(sim):
            yield sim.timeout(1.0)  # same instant the worker finishes
            if p.is_alive:
                p.interrupt()

        sim.process(racer(sim))
        sim.run()
        assert p.value == "done"


class TestRunSemantics:
    def test_run_until_already_processed_event(self):
        sim = Simulation()
        evt = sim.event()
        evt.succeed(7)
        sim.run()
        assert sim.run(until=evt) == 7  # immediate, no deadlock

    def test_run_until_time_advances_clock_exactly(self):
        sim = Simulation()
        sim.timeout(10.0)
        sim.run(until=3.25)
        assert sim.now == 3.25

    def test_schedule_callback_ordering(self):
        sim = Simulation()
        order = []
        sim.schedule_callback(1.0, lambda: order.append("a"))
        sim.schedule_callback(1.0, lambda: order.append("b"))
        sim.schedule_callback(0.5, lambda: order.append("c"))
        sim.run()
        assert order == ["c", "a", "b"]


class TestSchedulingBoundary:
    """Negative delays fail *at the scheduling call*, naming the culprit."""

    def test_enqueue_negative_delay_names_event(self):
        sim = Simulation()
        evt = sim.event(name="late-ack")
        with pytest.raises(ValueError, match=r"-0\.5.*late-ack"):
            sim._enqueue(evt, -0.5, 1)

    def test_schedule_callback_negative_delay_names_callback(self):
        sim = Simulation()
        with pytest.raises(ValueError, match=r"-1\.0.*tick"):
            sim.schedule_callback(-1.0, lambda: None, name="tick")

    def test_timeout_negative_delay_message(self):
        sim = Simulation()
        with pytest.raises(ValueError, match="negative"):
            sim.timeout(-1e-9)

    def test_schedule_callback_return_is_fire_and_forget(self):
        # The lightweight heap entry is opaque: no Event API, but the
        # callback still fires at the right instant.
        sim = Simulation()
        fired = []
        handle = sim.schedule_callback(2.0, lambda: fired.append(sim.now))
        assert handle is not None
        sim.run()
        assert fired == [2.0]


class TestTimeoutPooling:
    """Recycled zero-timeouts must be invisible to user code."""

    def test_pooled_timeouts_behave_like_fresh(self):
        sim = Simulation()
        seen = []

        def spinner():
            for i in range(50):
                t = yield sim.timeout(0.0, value=i)
                seen.append(t)

        sim.process(spinner())
        sim.run()
        assert seen == list(range(50))

    def test_retained_timeout_is_never_recycled(self):
        sim = Simulation()
        keep = []

        def proc():
            for i in range(20):
                t = sim.timeout(0.0, value=("mine", i))
                keep.append(t)
                yield t
                yield sim.timeout(0.0)  # churn that may reuse pool slots

        sim.process(proc())
        sim.run()
        assert [t.value for t in keep] == [("mine", i) for i in range(20)]
        assert all(t.processed and t.ok for t in keep)

    def test_pool_hits_counted(self):
        from repro.sim.profile import PROFILE

        sim = Simulation()

        def proc():
            for _ in range(30):
                yield sim.timeout(0.0)

        sim.process(proc())
        PROFILE.reset()
        PROFILE.enable()
        try:
            sim.run()
        finally:
            PROFILE.disable()
        assert PROFILE.snapshot()["counters"].get("kernel.timeout_pool_hits", 0) > 0

    def test_condition_children_survive_pool_churn(self):
        sim = Simulation()

        def proc():
            got = yield sim.all_of([sim.timeout(0.0, value=a) for a in "abc"])
            # churn the pool, then check the condition's collected values
            for _ in range(10):
                yield sim.timeout(0.0)
            return got

        p = sim.process(proc())
        sim.run()
        assert list(p.value.values()) == ["a", "b", "c"]
