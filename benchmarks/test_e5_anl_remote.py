"""E5 benchmark — §5: remote production mounts at ANL."""

from repro.experiments.e5_anl_remote import run_e5_anl
from repro.util.units import GB, MB


def test_e5_anl_remote(run_experiment):
    result = run_experiment(run_e5_anl, anl_nodes=32, per_node_bytes=MB(192))
    # paper: "approximately 1.2 GB/s to all 32 nodes"
    assert GB(0.8) < result.metric("aggregate_rate") < GB(2.0)
    # per-node rates are WAN-pipelining-limited, far below the GbE NICs
    assert result.metric("per_node_rate") < MB(80)
    # the WAN RTT is what it should be for the SDSC->ANL TeraGrid path
    assert 0.04 < result.metric("rtt") < 0.08
