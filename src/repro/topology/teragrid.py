"""The early-2004 TeraGrid wide-area map (paper Fig 6).

A 40 Gb/s extensible backplane between the Los Angeles and Chicago hubs;
each site attached at 30 Gb/s. Propagation delays are route-realistic
(SDSC↔NCSA measures ~27 ms one way here; the paper's SDSC↔Baltimore
path measured 80 ms round trip with the show-floor extension).
"""

from __future__ import annotations

from typing import Dict

from repro.net.topology import Network
from repro.util.units import Gbps, TB

#: Fig 6 site roles and storage, for reference and capacity checks.
TERAGRID_SITES: Dict[str, dict] = {
    "sdsc": {"role": "Data-Intensive", "online_disk": TB(500), "hub": "la"},
    "caltech": {"role": "Data collection analysis", "online_disk": TB(80), "hub": "la"},
    "ncsa": {"role": "Compute-Intensive", "online_disk": TB(230), "hub": "chi"},
    "anl": {"role": "Visualization", "online_disk": TB(20), "hub": "chi"},
    "psc": {"role": "Heterogeneity", "online_disk": TB(221), "hub": "chi"},
}

#: one-way propagation delays, seconds
HUB_DELAY = 0.025  # LA ↔ Chicago
SITE_DELAY = {
    "sdsc": 0.002,
    "caltech": 0.001,
    "ncsa": 0.002,
    "anl": 0.001,
    "psc": 0.005,
}


def add_teragrid_backbone(
    net: Network,
    backbone_rate: float = Gbps(40),
    site_rate: float = Gbps(30),
    sites: tuple = tuple(TERAGRID_SITES),
) -> None:
    """Install hubs and per-site edge switches named ``<site>-sw``."""
    net.add_node("la-hub", kind="router")
    net.add_node("chi-hub", kind="router")
    net.add_link("la-hub", "chi-hub", backbone_rate, delay=HUB_DELAY, efficiency=0.96)
    for site in sites:
        if site not in TERAGRID_SITES:
            raise ValueError(f"unknown TeraGrid site {site!r}")
        hub = "la-hub" if TERAGRID_SITES[site]["hub"] == "la" else "chi-hub"
        net.add_node(f"{site}-sw", site=site, kind="switch")
        net.add_link(
            f"{site}-sw", hub, site_rate, delay=SITE_DELAY[site], efficiency=0.96
        )
