"""Fault injection, failure detection, and self-healing recovery.

The paper's production claim rests on surviving real WAN conditions:
§6.2's "list of primary and secondary NSD servers" exists because nodes
die and links brown out, and a TeraGrid-wide 0.5 PB mount only makes
sense if recovery is automatic. This package supplies the three pieces
the data path needs for that, plus the scripting to exercise them:

* :class:`FaultSchedule` — a declarative, serializable script of fault
  actions (node crash/restart, link flap/brownout, WAN loss burst, disk
  failure with RAID rebuild), executed at simulation time by a
  :class:`FaultInjector` process;
* :class:`DiskLeaseDetector` — GPFS-style disk leases: every watched
  node renews a lease with the filesystem manager; a crashed node stops
  renewing, its lease expires, and the detector drives
  ``NsdService.mark_down``/``mark_up`` and token-lease recovery — no
  manual poking anywhere outside tests;
* :class:`RetryPolicy` — client-side resilience: per-RPC timeouts and
  exponential backoff with deterministic seeded jitter, applied by
  ``NsdService`` when attached;
* :class:`PartitionState` + :class:`QuorumService` — WAN partitions as a
  first-class fault: messages and block RPCs across the cut park until
  heal, and a majority-of-NSD-nodes quorum gates token grants and
  dead-node declarations so a minority side parks instead of
  split-braining.

:class:`FaultHarness` (or :func:`attach_faults`) wires all three onto a
built filesystem in one call; experiment E13 is the chaos soak that
exercises the full loop end to end.
"""

from repro.core.nsd import ChecksumError, NsdServerDown, RpcRetriesExhausted
from repro.core.tokens import ManagerMovedError
from repro.faults.detector import DiskLeaseDetector
from repro.faults.fuzz import FuzzReport, InvariantOracle, random_schedule, run_fuzz
from repro.faults.harness import FaultHarness, attach_faults
from repro.faults.health import NodeHealth
from repro.faults.injector import FaultInjector
from repro.faults.partition import PartitionState
from repro.faults.quorum import QuorumService
from repro.faults.recovery import RecoveryManager
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultAction, FaultSchedule

__all__ = [
    "ChecksumError",
    "DiskLeaseDetector",
    "FaultAction",
    "FaultHarness",
    "FaultInjector",
    "FaultSchedule",
    "FuzzReport",
    "InvariantOracle",
    "ManagerMovedError",
    "NodeHealth",
    "NsdServerDown",
    "PartitionState",
    "QuorumService",
    "RecoveryManager",
    "RetryPolicy",
    "RpcRetriesExhausted",
    "attach_faults",
    "random_schedule",
    "run_fuzz",
]
