"""SCEC: earthquake simulations writing enormous outputs.

§1: "the Southern California Earthquake Center (SCEC) simulations may
write close to 250 Terabytes in a single run". The generator is a
many-writer sequential dump: each rank streams its own output file with
no compute pauses — the case that stresses write-side capacity planning
(and at full scale, §1's point that no site can casually *receive* it).
"""

from __future__ import annotations

from typing import Generator, List

from repro.sim.kernel import Event
from repro.workloads.base import WorkloadResult, payload_for


class ScecRun:
    """A wavefield-output run: every rank writes continuously."""

    def __init__(
        self,
        mounts: List,
        out_dir: str,
        total_bytes: float,
        chunk: int = 0,
    ) -> None:
        if not mounts:
            raise ValueError("ScecRun needs at least one mount")
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.mounts = mounts
        self.out_dir = out_dir.rstrip("/")
        self.total_bytes = total_bytes
        self.chunk = chunk or mounts[0].fs.block_size * 4

    def run(self) -> Event:
        sim = self.mounts[0].sim
        return sim.process(self._run(), name="scec")

    def _run(self) -> Generator[Event, None, WorkloadResult]:
        sim = self.mounts[0].sim
        t0 = sim.now
        result = WorkloadResult(name="scec")
        yield self.mounts[0].mkdir(self.out_dir)
        writers = [
            sim.process(self._writer(rank), name=f"scec-w{rank}")
            for rank in range(len(self.mounts))
        ]
        yield sim.all_of(writers)
        result.bytes_written = self.total_bytes
        result.elapsed = sim.now - t0
        return result

    def _writer(self, rank: int) -> Generator[Event, None, None]:
        mount = self.mounts[rank]
        per_rank = self.total_bytes / len(self.mounts)
        handle = yield mount.open(
            f"{self.out_dir}/wavefield.{rank:05d}", "w", create=True
        )
        written = 0.0
        while written < per_rank:
            n = int(min(self.chunk, per_rank - written))
            yield mount.write(handle, payload_for(mount, n))
            written += n
        yield mount.close(handle)
