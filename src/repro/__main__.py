"""Command-line entry point: ``python -m repro``.

Subcommands::

    python -m repro report [--quick] [--only E1 A3] [--out FILE]
                           [--profile] [--profile-json FILE] [--trace-dir DIR]
                           [--metrics-dir DIR]
    python -m repro run E15 [--quick] [--out FILE] [--metrics-dir DIR]
    python -m repro run --list
    python -m repro trace E8 --out trace.json [--quick]
    python -m repro fuzz [--seeds N] [--base-seed S] [--duration SEC]
                         [--out FILE]
    python -m repro health --metrics-dir DIR [--exp E13] [--html FILE]
    python -m repro info

``report`` regenerates the paper's figures (see EXPERIMENTS.md);
``run`` runs a single experiment by id (shorthand for ``report --only``);
``trace`` runs one experiment under the flight recorder and writes a
Chrome trace-event JSON with per-flow bottleneck attribution;
``fuzz`` runs seeded random fault storms under the invariant oracles
(token safety, acked-write durability, byte-exactness, detection
validity) and exits nonzero on any violation;
``health`` renders the fleet health report from a ``--metrics-dir``
produced by ``run``/``report`` (SLO compliance, per-phase latency,
per-client/server/link rollups);
``info`` prints the system inventory and experiment index.
"""

from __future__ import annotations

import argparse


def _info() -> str:
    import repro
    from repro.experiments.report import _registry

    lines = [
        f"repro {repro.__version__} — reproduction of "
        "'Massive High-Performance Global File Systems for Grid computing' (SC'05)",
        "",
        "experiments:",
    ]
    for exp_id, (label, _) in _registry(False).items():
        lines.append(f"  {exp_id:>4}  {label}")
    lines += [
        "",
        "run one:     python -m repro report --quick --only E1",
        "run all:     python -m repro report --quick",
        "unit tests:  pytest tests/",
        "benchmarks:  pytest benchmarks/ --benchmark-only",
    ]
    return "\n".join(lines)


def _experiment_list() -> str:
    """One line per runnable experiment id, for ``run --list`` and errors."""
    from repro.experiments.report import _registry

    lines = ["experiments:"]
    for exp_id, (label, _) in _registry(False).items():
        lines.append(f"  {exp_id:>4}  {label}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="print the system inventory")
    report = sub.add_parser("report", help="regenerate the paper's figures")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--only", nargs="*", metavar="ID")
    report.add_argument("--out", metavar="FILE")
    report.add_argument("--profile", action="store_true")
    report.add_argument("--profile-json", metavar="FILE")
    report.add_argument("--trace-dir", metavar="DIR")
    report.add_argument("--metrics-dir", metavar="DIR")
    run = sub.add_parser(
        "run", help="run one experiment by id (e.g. E13) and print it"
    )
    run.add_argument("exp_id", metavar="EXP_ID", nargs="?",
                     help="experiment id, e.g. E13")
    run.add_argument("--list", action="store_true", dest="list_ids",
                     help="list runnable experiment ids and exit")
    run.add_argument("--quick", action="store_true")
    run.add_argument("--out", metavar="FILE")
    run.add_argument("--metrics-dir", metavar="DIR",
                     help="export telemetry (.prom/.metrics.jsonl/.meta.json) "
                          "into DIR for `python -m repro health`")
    health = sub.add_parser(
        "health",
        help="render the fleet health report from a --metrics-dir "
             "(SLO compliance, per-phase latency, client/server/link rollups)",
    )
    health.add_argument("--metrics-dir", metavar="DIR", required=True)
    health.add_argument("--exp", metavar="ID",
                        help="only this experiment id (default: all found)")
    health.add_argument("--out", metavar="FILE")
    health.add_argument("--html", metavar="FILE",
                        help="also write a static HTML report")
    trace = sub.add_parser(
        "trace",
        help="run one experiment under the flight recorder; write a "
             "Chrome trace (Perfetto-loadable) with bottleneck attribution",
    )
    trace.add_argument("exp_id", metavar="EXP_ID", help="experiment id, e.g. E8")
    trace.add_argument("--out", metavar="FILE", default="trace.json")
    trace.add_argument("--quick", action="store_true")
    fuzz = sub.add_parser(
        "fuzz",
        help="run seeded random fault storms under invariant oracles; "
             "exit nonzero on any violation",
    )
    fuzz.add_argument("--seeds", type=int, default=25, metavar="N",
                      help="number of storms to run (default 25)")
    fuzz.add_argument("--base-seed", type=int, default=0, metavar="S",
                      help="first seed; storms use S..S+N-1 (default 0)")
    fuzz.add_argument("--duration", type=float, default=6.0, metavar="SEC",
                      help="storm length in sim seconds (default 6.0)")
    fuzz.add_argument("--intensity", type=float, default=1.0,
                      help="fault-mix aggressiveness multiplier (default 1.0)")
    fuzz.add_argument("--out", metavar="FILE",
                      help="write per-seed JSON reports to FILE")
    args = parser.parse_args(argv)

    if args.command == "info" or args.command is None:
        print(_info())
        return 0
    if args.command == "report":
        from repro.experiments.report import main as report_main

        forwarded = []
        if args.quick:
            forwarded.append("--quick")
        if args.only:
            forwarded += ["--only", *args.only]
        if args.out:
            forwarded += ["--out", args.out]
        if args.profile:
            forwarded.append("--profile")
        if args.profile_json:
            forwarded += ["--profile-json", args.profile_json]
        if args.trace_dir:
            forwarded += ["--trace-dir", args.trace_dir]
        if args.metrics_dir:
            forwarded += ["--metrics-dir", args.metrics_dir]
        return report_main(forwarded)
    if args.command == "run":
        from repro.experiments.report import _registry
        from repro.experiments.report import main as report_main

        if args.list_ids or args.exp_id is None:
            print(_experiment_list())
            return 0
        if args.exp_id not in _registry(args.quick):
            print(f"unknown experiment id {args.exp_id!r}\n")
            print(_experiment_list())
            return 2
        forwarded = ["--only", args.exp_id]
        if args.quick:
            forwarded.append("--quick")
        if args.out:
            forwarded += ["--out", args.out]
        if args.metrics_dir:
            forwarded += ["--metrics-dir", args.metrics_dir]
        return report_main(forwarded)
    if args.command == "trace":
        from repro.experiments.report import run_trace

        return run_trace(args.exp_id, args.out, quick=args.quick)
    if args.command == "fuzz":
        import json

        from repro.faults.fuzz import run_fuzz

        reports = run_fuzz(
            count=args.seeds,
            base_seed=args.base_seed,
            duration=args.duration,
            intensity=args.intensity,
        )
        failed = [r for r in reports if not r.passed]
        for r in reports:
            status = "ok" if r.passed else "FAIL"
            print(
                f"seed {r.seed:>4}  {status}  ops={r.ops:<4} "
                f"acked={r.writes_acked:<4} reads={r.reads_ok:<4} "
                f"faults={len(r.actions)}"
            )
            for violation in r.violations:
                print(f"           {violation}")
        print(
            f"{len(reports) - len(failed)}/{len(reports)} storms clean "
            f"({sum(r.ops for r in reports)} ops, "
            f"{sum(len(r.actions) for r in reports)} fault actions)"
        )
        if args.out:
            with open(args.out, "w") as fh:
                json.dump([r.to_dict() for r in reports], fh, indent=2)
            print(f"wrote {args.out}")
        return 1 if failed else 0
    if args.command == "health":
        from repro.obs.health import main as health_main

        forwarded = ["--metrics-dir", args.metrics_dir]
        if args.exp:
            forwarded += ["--exp", args.exp]
        if args.out:
            forwarded += ["--out", args.out]
        if args.html:
            forwarded += ["--html", args.html]
        return health_main(forwarded)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
