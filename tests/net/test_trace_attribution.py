"""Bottleneck attribution: the flow engine tags every rate change.

These tests drive real `FlowEngine` scenarios under an enabled tracer and
assert on the bound tags in the resulting flow records — the mechanism
behind `python -m repro trace E8` showing window/RTT-bound single streams
versus link-bound 64-stream cells.
"""

import pytest

from repro.net import FlowEngine, Network, TcpModel
from repro.sim import Simulation
from repro.sim.trace import TRACE
from repro.util.units import GB, MB


@pytest.fixture(autouse=True)
def traced():
    TRACE.enable()
    yield TRACE
    TRACE.disable()
    TRACE.reset()


def line(rate=MB(100), delay=0.0):
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", rate, delay=delay, efficiency=1.0)
    return net


def bounds_of(rec):
    """Distinct bound tags of one flow record, in first-seen order."""
    out = []
    for _t, _rate, bound in rec.history:
        if not out or out[-1] != bound:
            out.append(bound)
    return out


class TestCapAttribution:
    def test_window_limited_flow_is_window_rtt_bound(self):
        # 1 MB window at 100 ms RTT -> 10 MB/s on a 100 MB/s link: the
        # window binds, not the link.
        net = line(rate=MB(100), delay=0.050)
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=MB(1)))
        sim.run(until=eng.transfer("a", "b", MB(10)))
        (rec,) = TRACE.flows
        assert bounds_of(rec) == ["window/rtt"]

    def test_mathis_loss_bound_when_loss_cap_binds(self):
        # At 1% loss the Mathis cap (~0.18 MB/s here) sits far below the
        # 10 MB/s window cap, so loss is the attributed bound.
        net = line(rate=MB(100), delay=0.050)
        sim = Simulation()
        tcp = TcpModel(window=MB(1), loss=0.01)
        eng = FlowEngine(sim, net, default_tcp=tcp)
        sim.run(until=eng.transfer("a", "b", MB(1)))
        (rec,) = TRACE.flows
        assert bounds_of(rec) == ["mathis-loss"]

    def test_peer_cap_bound(self):
        net = line(rate=MB(100))
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        sim.run(until=eng.transfer("a", "b", MB(10), cap=MB(20)))
        (rec,) = TRACE.flows
        assert bounds_of(rec) == ["peer-cap"]

    def test_loopback_flow_is_local_bound(self):
        net = line()
        sim = Simulation()
        eng = FlowEngine(
            sim, net, local_rate=MB(200), default_tcp=TcpModel(window=GB(1))
        )
        sim.run(until=eng.transfer("a", "a", MB(100)))
        (rec,) = TRACE.flows
        assert bounds_of(rec) == ["local"]


class TestLinkAttribution:
    def test_uncapped_flow_alone_is_link_bound(self):
        net = line(rate=MB(100))
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        sim.run(until=eng.transfer("a", "b", MB(50)))
        (rec,) = TRACE.flows
        assert bounds_of(rec) == ["link:a->b"]
        assert rec.history[0][1] == pytest.approx(MB(100))

    def test_attribution_picks_the_saturated_trunk(self):
        # Fat edge links funnel into a thin trunk: the trunk gets blamed.
        net = Network()
        for n in ("h1", "sw", "dst"):
            net.add_node(n)
        net.add_link("h1", "sw", MB(1000), efficiency=1.0)
        net.add_link("sw", "dst", MB(100), efficiency=1.0)
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        sim.run(until=eng.transfer("h1", "dst", MB(50)))
        (rec,) = TRACE.flows
        assert bounds_of(rec) == ["link:sw->dst"]

    def test_parallel_capped_streams_saturate_the_link(self):
        # The paper's mechanism end-to-end: each 1 MB-window stream is
        # window-bound alone, but 20 of them fill the 100 MB/s link and
        # every one becomes (and stays) link-bound.
        net = line(rate=MB(100), delay=0.050)
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=MB(1)))
        events = [eng.transfer("a", "b", MB(5)) for _ in range(20)]
        sim.run(until=sim.all_of(events))
        assert len(TRACE.flows) == 20
        for rec in TRACE.flows:
            assert bounds_of(rec)[-1] == "link:a->b"


class TestBoundTransitions:
    def test_capped_flow_turns_link_bound_when_sharing(self):
        # Flow 1 (6 MB window, 100 ms RTT -> 60 MB/s cap) starts alone on a
        # 100 MB/s link: window-bound at 60. A big-window flow arrives and
        # the fair share drops flow 1 to 50 < its cap: now link-bound.
        net = line(rate=MB(100), delay=0.050)
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=MB(6)))
        e1 = eng.transfer("a", "b", MB(60), tags=("first",))

        def late(sim):
            yield sim.timeout(0.25)
            yield eng.transfer("a", "b", MB(200), tcp=TcpModel(window=GB(1)))

        sim.process(late(sim))
        sim.run(until=e1)
        first = next(r for r in TRACE.flows if "first" in r.tags)
        assert bounds_of(first) == ["window/rtt", "link:a->b"]
        rates = [rate for _t, rate, _b in first.history]
        assert rates[0] == pytest.approx(MB(60))
        assert rates[1] == pytest.approx(MB(50))

    def test_flow_speeds_up_and_rebinds_when_peer_drains(self):
        # Two uncapped flows share the link (both link-bound at 50); the
        # small one drains and the survivor jumps back to 100 — still
        # link-bound, with the rate history showing the step.
        net = line(rate=MB(100))
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        e1 = eng.transfer("a", "b", MB(100), tags=("big",))
        eng.transfer("a", "b", MB(50))
        sim.run(until=e1)
        big = next(r for r in TRACE.flows if "big" in r.tags)
        segs = big.timeline()
        assert [s[2] for s in segs] == [pytest.approx(MB(50)), pytest.approx(MB(100))]
        assert all(s[3] == "link:a->b" for s in segs)


class TestSummaries:
    def test_bound_summary_splits_cap_and_link_time(self):
        net = line(rate=MB(100), delay=0.050)
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=MB(1)))
        done = [
            eng.transfer("a", "b", MB(10)),  # window-bound at 10 MB/s
            eng.transfer("a", "b", MB(10), tcp=TcpModel(window=GB(1))),
        ]
        sim.run(until=sim.all_of(done))
        summary = TRACE.bound_summary()
        assert summary["window/rtt"]["flows"] == 1
        assert "link:a->b" in summary
        assert TRACE.link_summary()["a->b"]["flows"] == 1
