"""E16 acceptance: manager failover with zero client-visible failures."""

from repro.experiments.e16_failover import run_e16_quick


class TestE16Acceptance:
    @classmethod
    def setup_class(cls):
        cls.result = run_e16_quick()
        cls.metrics = cls.result.metrics

    def test_no_client_visible_failures(self):
        # The headline: the control plane died mid-stream and no
        # application read or write surfaced a failure.
        assert self.metrics["reads_failed"] == 0.0
        assert self.metrics["writes_failed"] == 0.0
        assert self.metrics["reads_ok"] > 0
        assert self.metrics["writes_ok"] > 0

    def test_one_takeover_rebuilt_without_mismatch(self):
        assert self.metrics["manager_takeovers"] == 1.0
        assert self.metrics["rebuild_mismatches"] == 0.0
        assert self.metrics["rebuilt_tokens"] >= 1.0
        assert self.metrics["replayed_clients"] >= 1.0
        assert self.metrics["manager_downs"] == 1.0

    def test_takeover_latency_within_budget(self):
        assert self.metrics["takeover_within_bound"] == 1.0
        # Detection is bounded by the lease plus one monitor sweep
        # (quick run: lease_duration=1.0).
        assert 0.0 < self.metrics["detection_latency"] <= 1.5

    def test_old_manager_rejoins_as_plain_server(self):
        assert self.metrics["recoveries"] >= 1.0

    def test_fuzz_cell_is_clean(self):
        assert self.metrics["fuzz_cases"] > 0
        assert self.metrics["fuzz_cases_passed"] == self.metrics["fuzz_cases"]
        assert self.metrics["fuzz_violations"] == 0.0
        assert self.metrics["fuzz_ops"] > 0
