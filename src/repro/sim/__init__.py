"""Discrete-event simulation kernel.

A small, from-scratch SimPy-style kernel: generator-based processes scheduled
on a binary-heap event queue. Everything time-dependent in the reproduction
(network flows, disk service, NSD RPCs, tape mounts) runs as processes on one
:class:`Simulation`.

Quick tour::

    from repro.sim import Simulation

    sim = Simulation()

    def hello(sim):
        yield sim.timeout(3.0)
        return "done at %.1f" % sim.now

    proc = sim.process(hello(sim))
    sim.run()
    assert sim.now == 3.0 and proc.value.startswith("done")
"""

from repro.sim.kernel import (
    Simulation,
    Event,
    Timeout,
    Process,
    Interrupt,
    AllOf,
    AnyOf,
    SimulationError,
)
from repro.sim.resources import Resource, PriorityResource, Store, Container
from repro.sim.rand import RngRegistry
from repro.sim.monitor import Monitor, Gauge
from repro.sim.profile import Profile, PROFILE
from repro.sim.trace import Tracer, TRACE, FlowRecord

__all__ = [
    "Simulation",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "Resource",
    "PriorityResource",
    "Store",
    "Container",
    "RngRegistry",
    "Monitor",
    "Gauge",
    "Profile",
    "PROFILE",
    "Tracer",
    "TRACE",
    "FlowRecord",
]
