"""Tests for the TCP rate-cap model."""

import math

import pytest

from repro.net.tcp import DEFAULT_2005, TUNED_2005, TcpModel
from repro.util.units import KiB, MB, MiB


class TestWindowCap:
    def test_window_over_rtt(self):
        tcp = TcpModel(window=float(MiB(1)))
        assert tcp.window_cap(0.080) == pytest.approx(MiB(1) / 0.080)

    def test_zero_rtt_unbounded(self):
        assert TcpModel().window_cap(0.0) == math.inf

    def test_paper_latency_problem(self):
        # Untuned 64 KiB window at the paper's 80 ms SDSC-Baltimore RTT:
        # under 1 MB/s per stream — the motivation for parallel NSD streams.
        rate = DEFAULT_2005.rate_cap(0.080)
        assert rate < MB(1)

    def test_tuned_host_fills_gbe_at_wan_rtt(self):
        # 8 MiB window / 80 ms = ~105 MB/s > GbE payload rate.
        rate = TUNED_2005.rate_cap(0.080)
        assert rate > MB(100)


class TestMathisCap:
    def test_no_loss_unbounded(self):
        assert TcpModel(loss=0.0).mathis_cap(0.1) == math.inf

    def test_loss_limits_rate(self):
        tcp = TcpModel(loss=1e-4, mss=1460)
        cap = tcp.mathis_cap(0.080)
        # (1460/0.08) * 1.2247/0.01 ≈ 2.2 MB/s
        assert cap == pytest.approx((1460 / 0.080) * (math.sqrt(1.5) / 0.01), rel=1e-6)

    def test_more_loss_less_rate(self):
        low = TcpModel(loss=1e-5).mathis_cap(0.08)
        high = TcpModel(loss=1e-3).mathis_cap(0.08)
        assert low > high

    def test_jumbo_frames_help(self):
        std = TcpModel(loss=1e-4, mss=1460).mathis_cap(0.08)
        jumbo = TcpModel(loss=1e-4, mss=8960).mathis_cap(0.08)
        assert jumbo == pytest.approx(std * 8960 / 1460)


class TestCombinedCap:
    def test_min_of_both(self):
        tcp = TcpModel(window=float(MiB(64)), loss=1e-3)
        rtt = 0.080
        assert tcp.rate_cap(rtt) == pytest.approx(
            min(tcp.window_cap(rtt), tcp.mathis_cap(rtt))
        )

    def test_efficiency_scales(self):
        a = TcpModel(window=float(KiB(64)), efficiency=1.0).rate_cap(0.1)
        b = TcpModel(window=float(KiB(64)), efficiency=0.5).rate_cap(0.1)
        assert b == pytest.approx(a / 2)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"mss": 0},
            {"loss": 1.0},
            {"loss": -0.1},
            {"efficiency": 0},
            {"efficiency": 1.1},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            TcpModel(**kwargs)

    def test_frozen(self):
        tcp = TcpModel()
        with pytest.raises(AttributeError):
            tcp.window = 1.0
