"""Tests for transparent HSM recall and the periodic policy daemon."""

import pytest

from repro.hsm.manager import HsmManager, MigrationPolicy, TransparentMount
from repro.hsm.tape import TapeLibrary, TapeSpec

from tests.core.testbed import mounted, run_io, small_gfs

FAST = TapeSpec("fast", capacity=200e9, rate=30e6, load_time=0.0, seek_time=1.0)


def bed(policy=None, blocks_per_nsd=64):
    g, cluster, fs, _ = small_gfs(blocks_per_nsd=blocks_per_nsd)
    m = mounted(g, cluster, node="c0")
    hsm = HsmManager(m, TapeLibrary(g.sim, spec=FAST, drives=2, cartridges=20),
                     policy=policy)
    return g, fs, m, hsm


def write_file(g, m, path, payload):
    def io():
        h = yield m.open(path, "w", create=True)
        yield m.write(h, payload)
        yield m.close(h)

    run_io(g, io())


class TestTransparentMount:
    def test_open_recalls_offline_file(self):
        g, fs, m, hsm = bed()
        payload = b"cold storage" * 5000
        write_file(g, m, "/cold", payload)
        g.run(until=hsm.migrate("/cold"))
        tm = hsm.transparent(m)

        def io():
            h = yield tm.open("/cold", "r")
            data = yield tm.read(h, len(payload))
            yield tm.close(h)
            return data

        assert run_io(g, io()) == payload
        assert tm.recalls_triggered == 1
        assert not hsm.is_offline("/cold")

    def test_open_resident_is_passthrough(self):
        g, fs, m, hsm = bed()
        write_file(g, m, "/hot", b"hot")
        tm = hsm.transparent(m)

        def io():
            h = yield tm.open("/hot", "r")
            yield tm.close(h)

        run_io(g, io())
        assert tm.recalls_triggered == 0

    def test_recall_pays_tape_latency(self):
        g, fs, m, hsm = bed()
        write_file(g, m, "/cold", b"x" * 100_000)
        g.run(until=hsm.migrate("/cold"))
        tm = hsm.transparent(m)
        t0 = g.sim.now

        def io():
            h = yield tm.open("/cold", "r")
            yield tm.close(h)

        run_io(g, io())
        assert g.sim.now - t0 >= FAST.seek_time

    def test_create_through_proxy(self):
        g, fs, m, hsm = bed()
        tm = hsm.transparent(m)

        def io():
            h = yield tm.open("/new", "w", create=True)
            yield tm.write(h, b"fresh")
            yield tm.close(h)

        run_io(g, io())
        assert fs.namespace.resolve("/new").size == 5

    def test_mismatched_fs_rejected(self):
        g, fs, m, hsm = bed()
        g2, fs2, m2, hsm2 = bed()
        with pytest.raises(ValueError):
            TransparentMount(m2, hsm)


class TestPeriodicPolicy:
    def test_daemon_migrates_when_watermark_crossed(self):
        policy = MigrationPolicy(min_age=0.0, high_water=0.4, low_water=0.2)
        g, fs, m, hsm = bed(policy=policy, blocks_per_nsd=4)
        daemon = hsm.periodic_policy(interval=100.0)
        # fill past the high-water mark (capacity 16 blocks x 256 KiB)
        bs = fs.block_size
        for i in range(8):
            write_file(g, m, f"/f{i}", b"d" * bs)
            fs.namespace.resolve(f"/f{i}").atime = -1e6
        g.run(until=g.sim.timeout(250.0 - g.sim.now))
        assert hsm.migrated_files > 0
        assert hsm.resident_fraction() <= 0.4
        daemon.interrupt()
        g.run()
        assert daemon.processed

    def test_bad_interval(self):
        g, fs, m, hsm = bed()
        with pytest.raises(ValueError):
            hsm.periodic_policy(0)
