"""Tests for the exporters, validators, and the checked-in schema."""

import json
from pathlib import Path

import pytest

from repro.obs.export import (
    SNAPSHOT_ROW_SCHEMA,
    SchemaError,
    dumps_row,
    export_metrics_dir,
    read_jsonl,
    to_prometheus,
    trace_snapshot,
    profile_snapshot,
    validate_jsonl,
    validate_metrics_dir,
    validate_prometheus,
    validate_snapshot_row,
    validate_trace_snapshot,
    validate_profile_snapshot,
    write_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.kernel import Simulation

SCHEMA_DOC = (
    Path(__file__).resolve().parents[2] / "docs" / "schemas" / "metrics_v1.json"
)


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("nsd.rpc.total", 3, op="read")
    reg.inc("nsd.rpc.total", 2, op="write")
    reg.set_gauge("kernel.queue_depth", 4.0, t=1.0)
    for v in (0.001, 0.01, 0.2):
        reg.observe("nsd.rpc.latency", v, op="read")
    reg.observe("nsd.rpc.latency", 0.5, op="write")
    return reg


class TestCheckedInSchema:
    def test_schema_document_matches_code(self):
        # The schema CI validates against is checked in; it must be the
        # byte-equal twin of the structure the exporter enforces.
        assert json.loads(SCHEMA_DOC.read_text()) == SNAPSHOT_ROW_SCHEMA


class TestPrometheus:
    def test_output_validates(self):
        reg = make_registry()
        row = reg.scrape(Simulation())
        text = to_prometheus(row)
        assert validate_prometheus(text) > 0
        assert '# TYPE nsd_rpc_total counter' in text
        assert 'nsd_rpc_total{op="read"} 3' in text
        assert '# TYPE nsd_rpc_latency histogram' in text
        assert 'nsd_rpc_latency_count{op="read"} 3' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        reg.observe("lat", 0.5)
        text = to_prometheus(reg.scrape(Simulation()))
        assert 'lat_bucket{le="+Inf"} 2' in text
        validate_prometheus(text)

    def test_labeled_series_validated_independently(self):
        # Regression: `le` sorts first, so a naive series key collapsed
        # all op= children into one bucket sequence and flagged false
        # non-monotonicity.
        reg = make_registry()
        validate_prometheus(to_prometheus(reg.scrape(Simulation())))

    def test_missing_inf_bucket_rejected(self):
        with pytest.raises(SchemaError, match="Inf"):
            validate_prometheus('x_bucket{le="1"} 1\n')

    def test_bad_value_rejected(self):
        with pytest.raises(SchemaError, match="bad value"):
            validate_prometheus("metric oops\n")


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        reg = make_registry()
        sim = Simulation()
        reg.scrape(sim)
        reg.scrape(sim)
        path = str(tmp_path / "m.jsonl")
        write_jsonl(reg.rows, path)
        assert read_jsonl(path) == reg.rows
        assert validate_jsonl(path) == 2

    def test_rows_serialized_deterministically(self):
        row = {"b": 1, "a": {"z": 2, "y": 3}}
        assert dumps_row(row) == '{"a":{"y":3,"z":2},"b":1}'

    def test_per_sim_time_monotonicity(self, tmp_path):
        # E8-style sweeps interleave rows from independent sim clocks;
        # only same-sim rows must be time-ordered.
        reg = MetricsRegistry()
        sims = [Simulation(), Simulation()]

        def row(sim, t):
            sim._now = t
            return reg.scrape(sim)

        rows = [row(sims[0], 5.0), row(sims[1], 1.0), row(sims[0], 6.0)]
        path = str(tmp_path / "m.jsonl")
        write_jsonl(rows, path)
        assert validate_jsonl(path) == 3
        rows.append(row(sims[0], 2.0))  # backwards for sim 0
        write_jsonl(rows, path)
        with pytest.raises(SchemaError, match="backwards"):
            validate_jsonl(path)

    def test_row_validation_rejects_garbage(self):
        with pytest.raises(SchemaError):
            validate_snapshot_row([])
        with pytest.raises(SchemaError, match="missing field"):
            validate_snapshot_row({"schema": "repro.metrics/v1"})
        row = make_registry().scrape(Simulation())
        row["histograms"]["nsd.rpc.latency{op=read}"]["count"] = 99
        with pytest.raises(SchemaError, match="sum to count"):
            validate_snapshot_row(row)


class TestMetricsDir:
    def test_export_and_validate(self, tmp_path):
        reg = make_registry()
        reg.scrape(Simulation())
        paths = export_metrics_dir(
            reg, str(tmp_path), "E99", meta={"phases": []}
        )
        for p in paths.values():
            assert Path(p).exists()
        info = validate_metrics_dir(str(tmp_path))
        assert info == {"E99": {"rows": 1, "samples": info["E99"]["samples"]}}
        meta = json.loads(Path(paths["meta"]).read_text())
        assert meta["exp_id"] == "E99"
        assert meta["kind"] == "meta"
        assert meta["phases"] == []

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(SchemaError, match="no .metrics.jsonl"):
            validate_metrics_dir(str(tmp_path))


class TestSnapshotDedup:
    def test_profile_snapshot_is_the_profile_schema(self):
        from repro.sim.profile import Profile

        p = Profile()
        p.enable()
        p.count("solver.calls", 3)
        snap = p.snapshot()
        assert snap == profile_snapshot(p)
        validate_profile_snapshot(snap)

    def test_trace_snapshot_is_the_tracer_schema(self):
        from repro.sim.trace import Tracer

        tr = Tracer()
        tr.enable()
        sim = Simulation()

        with tr.span(sim, "work", cat="cat"):
            pass
        snap = tr.metrics_snapshot()
        assert snap == trace_snapshot(tr)
        validate_trace_snapshot(snap)
        assert snap["events"]["recorded"] >= 1

    def test_validators_reject_wrong_shape(self):
        with pytest.raises(SchemaError):
            validate_trace_snapshot({"events": {}})
        with pytest.raises(SchemaError):
            validate_profile_snapshot({"counters": []})
