"""Network graph: nodes, duplex links, shortest-path routing.

A :class:`Network` is a static directed graph of named nodes. Hosts hang off
switches via NIC links; WAN trunks connect switches/routers. Routing is
Dijkstra by propagation delay (hop count as tiebreak), computed on demand
and cached — the paper's topologies are static for the life of a run.

Derived per-pair quantities (delay sums, link-id tuples, bottleneck rates)
are cached too: they are recomputed identically otherwise on every message
send and flow start, which dominates RPC-heavy runs. Path/delay/id caches
are invalidated when a link is added; the bottleneck cache additionally on
any ``Link.set_rate`` (the only mutable link attribute).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np
from typing import Dict, List, Optional, Tuple

from repro.net.link import Link


class RoutingError(KeyError):
    """No path between two nodes."""


@dataclass
class NetNode:
    """A named network endpoint (host, switch, or router)."""

    name: str
    site: str = ""
    kind: str = "host"  # host | switch | router
    meta: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.name)


class Network:
    """Static topology + routing."""

    def __init__(self) -> None:
        self.nodes: Dict[str, NetNode] = {}
        self.links: List[Link] = []
        self._adj: Dict[str, List[Link]] = {}
        self._path_cache: Dict[Tuple[str, str], List[Link]] = {}
        self._pathids_cache: Dict[Tuple[str, str], Tuple[int, ...]] = {}
        self._delay_cache: Dict[Tuple[str, str], float] = {}
        self._bneck_cache: Dict[Tuple[str, str], float] = {}
        self._caps_cache: Optional[np.ndarray] = None
        self._rate_listeners: List = []

    # -- construction --------------------------------------------------------

    def add_node(self, name: str, site: str = "", kind: str = "host", **meta) -> NetNode:
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        node = NetNode(name=name, site=site, kind=kind, meta=meta)
        self.nodes[name] = node
        self._adj[name] = []
        return node

    def node(self, name: str) -> NetNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise RoutingError(f"unknown node {name!r}") from None

    def add_link(
        self,
        a: str,
        b: str,
        rate: float,
        delay: float = 0.0,
        efficiency: float = 0.94,
        duplex: bool = True,
        rate_back: Optional[float] = None,
    ) -> Tuple[Link, Optional[Link]]:
        """Connect ``a`` → ``b`` (and back when ``duplex``). Returns the link(s)."""
        self.node(a), self.node(b)  # existence check
        fwd = Link(a, b, rate, delay, efficiency)
        self._register(fwd)
        back = None
        if duplex:
            back = Link(b, a, rate_back if rate_back is not None else rate, delay, efficiency)
            self._register(back)
        self._path_cache.clear()
        self._pathids_cache.clear()
        self._delay_cache.clear()
        self._bneck_cache.clear()
        self._caps_cache = None
        return fwd, back

    def _register(self, link: Link) -> None:
        link.index = len(self.links)
        link.on_rate_change = self._rate_changed
        self.links.append(link)
        self._adj[link.src].append(link)

    def subscribe_rate_changes(self, fn) -> None:
        """Register ``fn(link, old_rate)`` to run after any set_rate."""
        self._rate_listeners.append(fn)

    def _rate_changed(self, link: Link, old_rate: float) -> None:
        self._bneck_cache.clear()
        self._caps_cache = None
        for fn in self._rate_listeners:
            fn(link, old_rate)

    def add_host(
        self,
        name: str,
        switch: str,
        nic_rate: float,
        site: str = "",
        nic_delay: float = 20e-6,
        efficiency: float = 0.94,
        **meta,
    ) -> NetNode:
        """Convenience: create a host and its NIC link to ``switch``."""
        node = self.add_node(name, site=site, kind="host", **meta)
        self.add_link(name, switch, nic_rate, delay=nic_delay, efficiency=efficiency)
        return node

    # -- routing ---------------------------------------------------------------

    def path(self, src: str, dst: str) -> List[Link]:
        """Directed link path src → dst (empty for src == dst)."""
        if src == dst:
            self.node(src)
            return []
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        self.node(src), self.node(dst)
        # Dijkstra by (delay, hops).
        dist: Dict[str, Tuple[float, int]] = {src: (0.0, 0)}
        prev: Dict[str, Link] = {}
        heap: List[Tuple[float, int, str]] = [(0.0, 0, src)]
        visited: set[str] = set()
        while heap:
            d, h, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            if u == dst:
                break
            for link in self._adj[u]:
                v = link.dst
                nd, nh = d + link.delay, h + 1
                if v not in dist or (nd, nh) < dist[v]:
                    dist[v] = (nd, nh)
                    prev[v] = link
                    heapq.heappush(heap, (nd, nh, v))
        if dst not in prev:
            raise RoutingError(f"no route {src!r} -> {dst!r}")
        links: List[Link] = []
        cur = dst
        while cur != src:
            link = prev[cur]
            links.append(link)
            cur = link.src
        links.reverse()
        self._path_cache[key] = links
        return links

    def path_ids(self, src: str, dst: str) -> Tuple[int, ...]:
        """Link indices of the routed path (cached; for the flow engine)."""
        key = (src, dst)
        ids = self._pathids_cache.get(key)
        if ids is None:
            ids = tuple(link.index for link in self.path(src, dst))
            self._pathids_cache[key] = ids
        return ids

    def one_way_delay(self, src: str, dst: str) -> float:
        """Sum of propagation delays on the routed path."""
        key = (src, dst)
        d = self._delay_cache.get(key)
        if d is None:
            d = sum(link.delay for link in self.path(src, dst))
            self._delay_cache[key] = d
        return d

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip propagation delay (both directions routed)."""
        return self.one_way_delay(src, dst) + self.one_way_delay(dst, src)

    def bottleneck_rate(self, src: str, dst: str) -> float:
        """Min usable link rate on the path (inf for loopback)."""
        key = (src, dst)
        r = self._bneck_cache.get(key)
        if r is None:
            links = self.path(key[0], key[1])
            r = min(link.usable_rate for link in links) if links else float("inf")
            self._bneck_cache[key] = r
        return r

    def hosts(self, site: Optional[str] = None) -> List[NetNode]:
        """All host nodes, optionally filtered by site."""
        return [
            n
            for n in self.nodes.values()
            if n.kind == "host" and (site is None or n.site == site)
        ]

    def link_capacities(self) -> np.ndarray:
        """Usable capacity vector indexed by link id (for the flow engine).

        Cached (invalidated by ``add_link``/``set_rate``): the flow engine
        reads this before every solve, and handing back the same ndarray
        lets ``FairshareState.set_link_caps`` early-out on identity. The
        array is shared — treat it as read-only.
        """
        caps = self._caps_cache
        if caps is None:
            caps = self._caps_cache = np.asarray(
                [link.usable_rate for link in self.links], dtype=float
            )
        return caps
