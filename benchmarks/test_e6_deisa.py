"""E6 benchmark — §7: DEISA four-site MC-GPFS rates."""

from repro.experiments.e6_deisa import run_e6_deisa
from repro.util.units import MB


def test_e6_deisa(run_experiment):
    result = run_experiment(run_e6_deisa, per_pair_bytes=MB(150))
    # paper: "I/O rates of more than 100 Mbytes/s, thus hitting the
    # theoretical limit of the network connection" — on EVERY pair
    assert result.metric("min_read") > MB(100)
    # nothing exceeds the 1 Gb/s WAN ceiling
    assert result.metric("max_read") <= result.metric("wan_ceiling") * 1.01
    # writes exploit the link too (write-behind over the WAN)
    assert result.metric("min_write") > MB(75)
