"""Partitions and the quorum gate: park, don't split-brain."""

import pytest

from repro.core.replication import ReplicationPolicy
from repro.faults import (
    FaultSchedule,
    PartitionState,
    QuorumService,
    RetryPolicy,
    attach_faults,
)
from repro.sim import Simulation

from tests.core.testbed import mounted, run_io, small_gfs

BS = 256 * 1024
PAYLOAD = 16 * BS


class TestPartitionState:
    def test_severed_only_across_the_cut(self):
        sim = Simulation()
        part = PartitionState(sim)
        assert not part.severed("a", "b")  # inactive: nothing severed
        part.begin(["a"])
        assert part.active
        assert part.in_minority("a")
        assert part.severed("a", "b")
        assert part.severed("b", "a")
        assert not part.severed("b", "c")  # both in the majority
        assert not part.severed("a", "a")
        part.heal()
        assert not part.severed("a", "b")
        assert part.history and part.history[0][2] == frozenset({"a"})

    def test_one_partition_at_a_time(self):
        sim = Simulation()
        part = PartitionState(sim)
        part.begin(["a"])
        with pytest.raises(RuntimeError):
            part.begin(["b"])
        part.heal()
        with pytest.raises(RuntimeError):
            part.heal()
        with pytest.raises(ValueError):
            part.begin([])

    def test_wait_heal_instant_when_inactive(self):
        sim = Simulation()
        part = PartitionState(sim)
        assert part.wait_heal().triggered  # no partition: already healed

    def test_wait_heal_parks_until_heal(self):
        sim = Simulation()
        part = PartitionState(sim)
        part.begin(["a"])
        evt = part.wait_heal()
        assert not evt.triggered
        part.heal()
        assert evt.triggered


class TestQuorumService:
    def test_trivially_true_without_partition(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        quorum = QuorumService(fs.service, None)
        assert quorum.has_quorum("nsd0")
        assert quorum.denials == 0

    def test_minority_denied_majority_allowed(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        part = PartitionState(g.sim)
        quorum = QuorumService(fs.service, part)
        assert sorted(quorum.member_nodes()) == ["nsd0", "nsd1", "nsd2", "nsd3"]
        part.begin(["nsd0"])
        assert not quorum.has_quorum("nsd0")  # reaches 1 of 4
        assert quorum.has_quorum("nsd1")  # reaches 3 of 4
        assert quorum.denials == 1
        part.heal()
        assert quorum.has_quorum("nsd0")

    def test_even_split_no_side_has_quorum(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        part = PartitionState(g.sim)
        quorum = QuorumService(fs.service, part)
        part.begin(["nsd0", "nsd1"])
        assert not quorum.has_quorum("nsd0")  # 2*2 = 4, not > 4
        assert not quorum.has_quorum("nsd2")


def _write_file(g, m, nbytes=PAYLOAD, path="/f"):
    def gen():
        h = yield m.open(path, "w", create=True)
        yield m.write(h, b"\x11" * int(nbytes))
        yield m.close(h)

    run_io(g, gen())


def _timed_read(g, m, fs, nbytes=PAYLOAD, path="/f"):
    """Invalidate the cache and read the whole file; returns (seconds, failed)."""
    m.pool.invalidate(fs.namespace.resolve(path).ino)
    failed = [0]

    def gen():
        h = yield m.open(path, "r")
        pos = 0
        while pos < nbytes:
            n = min(BS, nbytes - pos)
            try:
                yield m.pread(h, pos, n)
            except ConnectionError:
                failed[0] += 1
            pos += n
        yield m.close(h)

    t0 = g.sim.now
    run_io(g, gen())
    return g.sim.now - t0, failed[0]


class TestMinorityParks:
    def test_minority_manager_grants_no_tokens_until_heal(self):
        # The token manager's node (nsd0) AND the client are cut off
        # together: the grant request reaches a quorumless manager, which
        # must park it rather than grant from the minority side.
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        m = mounted(g, cluster, node="c0")
        t0 = g.sim.now
        duration = 0.5
        harness = attach_faults(
            g.sim, fs.service, manager_node="nsd0",
            schedule=FaultSchedule().partition(
                t0 + 0.05, ["nsd0", "c0"], duration
            ),
            engine=g.engine, network=g.network, lease_duration=5.0,
            retry=RetryPolicy(), retry_rng_streams=g.rng,
            token_managers=[fs.token_manager],
        )
        g.run(until=g.sim.timeout(0.1))  # partition is now active
        assert harness.partition.active

        _write_file(g, m, nbytes=4 * BS)  # needs an RW token grant
        t_done = g.sim.now
        harness.stop()
        assert fs.token_manager.quorum_parked_grants >= 1
        assert t_done >= t0 + 0.05 + duration  # completed only after heal
        metrics = harness.metrics()
        assert metrics["quorum_denials"] >= 1.0
        assert metrics["quorum_parked_grants"] >= 1.0

    def test_quorumless_manager_declares_nobody_dead(self):
        # Cut the manager off for longer than the lease: every server's
        # renewal parks, every lease expires — and the minority manager
        # must sit on its hands instead of declaring the healthy majority
        # dead (split-brain).
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        m = mounted(g, cluster, node="c0")
        _write_file(g, m)
        t0 = g.sim.now
        harness = attach_faults(
            g.sim, fs.service, manager_node="nsd0",
            schedule=FaultSchedule().partition(t0 + 0.1, ["nsd0"], 1.0),
            engine=g.engine, network=g.network, lease_duration=0.3,
            retry=RetryPolicy(), retry_rng_streams=g.rng,
            token_managers=[fs.token_manager],
        )
        g.run(until=g.sim.timeout(2.5))  # partition + heal + settle
        harness.stop()
        metrics = harness.metrics()
        assert metrics["quorum_suppressed_checks"] >= 1.0
        assert metrics["failures_detected"] == 0.0  # nobody declared dead
        assert metrics["failovers"] == 0.0
        assert fs.service.down_nodes == set()

    def test_parked_rpcs_complete_after_heal_throughput_recovers(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        m = mounted(g, cluster, node="c0", readahead=4)
        _write_file(g, m)
        nominal, failed = _timed_read(g, m, fs)
        assert failed == 0

        t0 = g.sim.now
        duration = 0.4
        harness = attach_faults(
            g.sim, fs.service, manager_node="nsd0",
            schedule=FaultSchedule().partition(t0 + 0.02, ["nsd1"], duration),
            engine=g.engine, network=g.network, lease_duration=5.0,
            retry=RetryPolicy(), retry_rng_streams=g.rng,
            token_managers=[fs.token_manager],
        )
        # Reads striped over nsd1 park mid-stream; none may fail.
        partitioned, failed = _timed_read(g, m, fs)
        assert failed == 0
        assert partitioned > nominal  # the stall is real
        assert harness.metrics()["partition_parked_rpcs"] >= 1.0

        # After heal the data path carries no scars: a fresh read of the
        # same file completes within 5% of nominal.
        recovered, failed = _timed_read(g, m, fs)
        harness.stop()
        assert failed == 0
        assert recovered <= nominal * 1.05

    def test_replicated_write_during_partition_heals_clean(self):
        # Replicated writes during a partition of one server park on that
        # replica; quorum="all" means the write acks only once every copy
        # (including the parked one) lands — after heal, no replica is
        # stale and nothing needs repair.
        g, cluster, fs, _ = small_gfs(
            nsd_servers=4,
            replication=ReplicationPolicy(copies=2, verify_reads=True),
        )
        m = mounted(g, cluster, node="c0")
        t0 = g.sim.now
        harness = attach_faults(
            g.sim, fs.service, manager_node="nsd0",
            schedule=FaultSchedule().partition(t0 + 0.02, ["nsd1"], 0.4),
            engine=g.engine, network=g.network, lease_duration=5.0,
            retry=RetryPolicy(), retry_rng_streams=g.rng,
            token_managers=[fs.token_manager],
        )
        _write_file(g, m, nbytes=8 * BS)
        g.run(until=g.sim.timeout(1.0))
        harness.stop()
        inode = fs.namespace.resolve("/f")
        assert fs.integrity.quorum_failures == 0
        for block_index in inode.blocks:
            for nsd_id, phys in fs.replica_placements(inode, block_index):
                assert fs.nsds[nsd_id].verify_full(phys)
