"""Textbook RSA, implemented from scratch.

GPFS 2.3 GA replaced passwordless root rsh with per-cluster RSA keypairs
(`mmauth genkey`); this module provides the cryptographic substrate for the
reproduction's multi-cluster handshake. It is deliberately *textbook* RSA
(deterministic padding via hashing) — the reproduction needs protocol
semantics, not production cryptography, and says so here once: do not reuse
outside the simulator.

Implementation notes:

* Miller–Rabin primality with fixed witness rounds on a seeded RNG stream —
  key generation is deterministic per (seed, bits).
* Signatures sign SHA-256 of the message: ``sig = H(m)^d mod n``.
* Encryption is raw ``m^e mod n`` of an integer < n (used only for the
  session-key exchange in the mount handshake).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
]


def is_probable_prime(n: int, rng: np.random.Generator, rounds: int = 24) -> bool:
    """Miller–Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^r with d odd
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + int(rng.integers(0, min(n - 3, 2**62)))
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: np.random.Generator) -> int:
    """A random prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("bits must be >= 8")
    while True:
        words = [int(rng.integers(0, 2**32)) for _ in range((bits + 31) // 32)]
        n = 0
        for w in words:
            n = (n << 32) | w
        n &= (1 << bits) - 1
        n |= (1 << (bits - 1)) | 1  # exact bit length, odd
        if is_probable_prime(n, rng):
            return n


def _modinv(a: int, m: int) -> int:
    """Modular inverse via extended Euclid."""
    g, x = _egcd(a, m)
    if g != 1:
        raise ValueError("no modular inverse")
    return x % m


def _egcd(a: int, b: int) -> tuple[int, int]:
    old_r, r = a, b
    old_x, x = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
    return old_r, old_x


def _digest_int(message: bytes, n: int) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % n


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int

    def verify(self, message: bytes, signature: int) -> bool:
        """Check ``signature`` over ``message``."""
        if not 0 < signature < self.n:
            return False
        return pow(signature, self.e, self.n) == _digest_int(message, self.n)

    def encrypt(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise ValueError("plaintext integer out of range")
        return pow(m, self.e, self.n)


@dataclass(frozen=True)
class RsaKeyPair:
    """Private + public halves."""

    n: int
    e: int
    d: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    def sign(self, message: bytes) -> int:
        return pow(_digest_int(message, self.n), self.d, self.n)

    def decrypt(self, c: int) -> int:
        if not 0 <= c < self.n:
            raise ValueError("ciphertext integer out of range")
        return pow(c, self.d, self.n)


def generate_keypair(
    bits: int = 512, rng: np.random.Generator | None = None, e: int = 65537
) -> RsaKeyPair:
    """Generate an RSA keypair with an n of ~``bits`` bits."""
    if bits < 64:
        raise ValueError("bits must be >= 64")
    rng = rng if rng is not None else np.random.default_rng(0)
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        d = _modinv(e, phi)
        return RsaKeyPair(n=n, e=e, d=d)
