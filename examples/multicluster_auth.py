#!/usr/bin/env python
"""The §6 authentication walk-through: keys, grants, ciphers, GSI identity.

Reproduces the administrative procedure of GPFS 2.3 GA multi-clustering
step by step, including the failure modes, then demonstrates the SDSC GSI
extension: the same human owns their files at every site despite having
different UIDs everywhere.

Run:  python examples/multicluster_auth.py
"""

from repro.core.cluster import Gfs, NsdSpec
from repro.core.multicluster import MountAuthError
from repro.core.namespace import PermissionDenied
from repro.util.units import Gbps, MiB, fmt_time


def build():
    g = Gfs(seed=7)
    net = g.network
    net.add_node("sdsc-sw", kind="switch")
    net.add_node("ncsa-sw", kind="switch")
    net.add_link("sdsc-sw", "ncsa-sw", Gbps(30), delay=0.020)
    for i in range(4):
        net.add_host(f"s{i}", "sdsc-sw", Gbps(1), site="sdsc")
    net.add_host("n0", "ncsa-sw", Gbps(1), site="ncsa")
    sdsc = g.add_cluster("sdsc", site="sdsc")
    sdsc.add_nodes([f"s{i}" for i in range(4)])
    ncsa = g.add_cluster("ncsa", site="ncsa")
    ncsa.add_node("n0")
    fs = sdsc.mmcrfs("gpfs-sdsc", [NsdSpec(server=f"s{i}", blocks=2048) for i in range(4)],
                     block_size=MiB(1))
    return g, sdsc, ncsa, fs


def expect_failure(g, evt, label):
    try:
        g.run(until=evt)
        print(f"  [BUG] {label}: mount succeeded!")
    except MountAuthError as exc:
        print(f"  refused as expected — {label}: {exc}")


def main():
    g, sdsc, ncsa, fs = build()

    print("1. both clusters require authentication (cipherList AUTHONLY)")
    sdsc.mmauth_update("AUTHONLY")
    ncsa.mmauth_update("AUTHONLY")

    print("2. a mount before any keys exist fails:")
    ncsa.remote_clusters["sdsc"] = type("D", (), {"name": "sdsc", "contact_nodes": ["s0"]})()
    ncsa.mmremotefs_add("gpfs-r", "sdsc", "gpfs-sdsc")
    expect_failure(g, ncsa.mmmount("gpfs-r", "n0"), "no keypair")

    print("3. mmauth genkey on both clusters; exchange public keys out-of-band")
    sdsc_pub = sdsc.mmauth_genkey()
    ncsa_pub = ncsa.mmauth_genkey()
    ncsa.mmremotecluster_add("sdsc", sdsc_pub, contact_nodes=["s0"])

    print("4. the serving cluster hasn't run mmauth add yet:")
    expect_failure(g, ncsa.mmmount("gpfs-r", "n0"), "mmauth add missing")
    sdsc.mmauth_add("ncsa", ncsa_pub)

    print("5. authenticated, but no grant:")
    expect_failure(g, ncsa.mmmount("gpfs-r", "n0"), "no mmauth grant")

    print("6. grant read-only; rw mount still refused, ro mount succeeds:")
    sdsc.mmauth_grant("ncsa", "gpfs-sdsc", "ro")
    expect_failure(g, ncsa.mmmount("gpfs-r", "n0", access="rw"), "ro grant")
    t0 = g.sim.now
    mount_ro = g.run(until=ncsa.mmmount("gpfs-r", "n0", access="ro"))
    print(f"  ro mount OK in {fmt_time(g.sim.now - t0)} (RSA handshake over 40 ms RTT)")

    print("7. GSI identity: alice is uid 5001 at SDSC, uid 77 at NCSA")
    dn = "/C=US/O=TeraGrid/CN=alice"
    sdsc.add_user("alice", uid=5001, dn=dn)
    ncsa.add_user("amhb", uid=77, dn=dn)
    alice_sdsc = sdsc.identity_for_dn(dn)
    alice_ncsa = ncsa.identity_for_dn(dn)
    m_sdsc = g.run(until=sdsc.mmmount("gpfs-sdsc", "s3", identity=alice_sdsc))

    def owner_story():
        handle = yield m_sdsc.open("/alice-private.dat", "w", create=True)
        yield m_sdsc.write(handle, b"belongs to the DN, not the uid")
        yield m_sdsc.close(handle)
        inode = fs.namespace.resolve("/alice-private.dat")
        inode.mode = 0o600  # owner-only
        # read back from NCSA as uid 77 — the DN matches, so it works
        rhandle = yield mount_ro_alice.open("/alice-private.dat", "r")
        data = yield mount_ro_alice.read(rhandle, 100)
        print(f"  alice@ncsa (uid 77) read her own 0600 file: {data.decode()!r}")

    sdsc.mmauth_grant("ncsa", "gpfs-sdsc", "rw")
    mount_ro_alice = g.run(
        until=ncsa.mmmount("gpfs-r", "n0", access="ro", identity=alice_ncsa)
    )
    g.run(until=g.sim.process(owner_story(), name="owner"))

    print("8. without the DN extension the same read is denied:")
    classic = ncsa.identity_for_dn(dn, use_dn_ownership=False)
    m_classic = g.run(until=ncsa.mmmount("gpfs-r", "n0", access="ro", identity=classic))

    def classic_story():
        try:
            yield m_classic.open("/alice-private.dat", "r")
            print("  [BUG] classic-uid read succeeded")
        except PermissionDenied:
            print("  denied as expected — uid 77 means someone else at SDSC")

    g.run(until=g.sim.process(classic_story(), name="classic"))

    print("\n9. the administrator's view:")
    print(sdsc.mmlsauth())


if __name__ == "__main__":
    main()
