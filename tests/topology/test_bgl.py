"""Tests for the BG/L attach (§5's Intimidata)."""

import pytest

from repro.topology.sdsc2005 import attach_bgl, build_sdsc2005
from repro.util.units import Gbps


def scenario():
    return build_sdsc2005(nsd_servers=4, ds4100_count=2, sdsc_clients=1,
                          anl_clients=0, ncsa_clients=0)


class TestAttachBgl:
    def test_io_nodes_created_and_joined(self):
        s = scenario()
        names = attach_bgl(s, io_nodes=8)
        assert len(names) == 8
        assert s.clients["bgl"] == names
        # I/O nodes are members of the SDSC cluster (local mount, §5)
        for name in names:
            assert s.gfs.cluster_of_node(name) is s.sdsc

    def test_mountable(self):
        s = scenario()
        attach_bgl(s, io_nodes=2)
        mounts = s.mount_clients("bgl")
        assert len(mounts) == 2
        assert all(m.fs is s.fs for m in mounts)

    def test_design_point_aggregate(self):
        s = scenario()
        names = attach_bgl(s, io_nodes=64, nic_rate=Gbps(2))
        # 64 I/O nodes x 2 Gb/s = the 128 Gb/s "exact match" of §5
        total = sum(
            s.gfs.network.bottleneck_rate(n, "bgl-fabric") for n in names
        )
        assert total <= Gbps(128)
        assert total > Gbps(100)

    def test_compute_node_metadata(self):
        s = scenario()
        names = attach_bgl(s, io_nodes=2, compute_per_io=32)
        node = s.gfs.network.node(names[0])
        assert node.meta["compute_nodes"] == 32

    def test_validation(self):
        s = scenario()
        with pytest.raises(ValueError):
            attach_bgl(s, io_nodes=0)
