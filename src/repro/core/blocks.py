"""Stripe geometry: mapping byte ranges to file blocks and NSDs.

GPFS stripes a file's blocks round-robin across the filesystem's disks,
starting at a per-file rotation offset so that files do not all hammer
disk 0. With replication enabled each logical block additionally gets
R-1 extra physical replicas placed in *distinct failure groups* — NSDs
that do not share a server/controller domain — so one failed domain
never takes out every copy. All functions here are pure; the data plane
builds on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence


@dataclass(frozen=True)
class BlockRange:
    """The portion of one file block touched by a byte range."""

    block_index: int  # logical block number within the file
    offset: int  # first byte within the block
    length: int  # bytes touched within the block

    def __post_init__(self) -> None:
        if self.block_index < 0 or self.offset < 0 or self.length <= 0:
            raise ValueError(f"invalid block range {self}")

    @property
    def is_full_block(self) -> bool:
        return self.offset == 0  # caller checks length == block_size


class StripeGeometry:
    """Block size + NSD count → placement arithmetic."""

    def __init__(self, block_size: int, num_nsds: int) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if num_nsds <= 0:
            raise ValueError("num_nsds must be positive")
        self.block_size = int(block_size)
        self.num_nsds = int(num_nsds)

    def block_of(self, offset: int) -> int:
        """Logical block index containing byte ``offset``."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        return offset // self.block_size

    def split(self, offset: int, length: int) -> List[BlockRange]:
        """Decompose ``[offset, offset+length)`` into per-block pieces."""
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        pieces: List[BlockRange] = []
        pos = offset
        end = offset + length
        while pos < end:
            block = pos // self.block_size
            in_block = pos - block * self.block_size
            take = min(self.block_size - in_block, end - pos)
            pieces.append(BlockRange(block, in_block, take))
            pos += take
        return pieces

    def nsd_for(self, ino: int, block_index: int) -> int:
        """Round-robin NSD placement with per-file rotation."""
        if block_index < 0:
            raise ValueError("block_index must be non-negative")
        return (ino + block_index) % self.num_nsds

    def blocks_in(self, offset: int, length: int) -> Iterator[int]:
        """Logical block indices touched by the byte range."""
        for piece in self.split(offset, length):
            yield piece.block_index

    def span_bytes(self, piece: BlockRange) -> tuple[int, int]:
        """Absolute byte range of a piece: (start, end)."""
        start = piece.block_index * self.block_size + piece.offset
        return start, start + piece.length


def replica_slots(
    primary_slot: int, copies: int, groups: Sequence[int]
) -> List[int]:
    """NSD slots for the extra replicas of a block (beyond the primary).

    ``groups[slot]`` is the failure group of the NSD in stripe slot
    ``slot``. Walking round-robin from the primary keeps replica load
    balanced the same way striping balances primaries. Replicas land in
    distinct failure groups first (GPFS's placement rule); when the
    configuration has fewer groups than copies, distinct slots are
    accepted as a fallback so small testbeds still replicate.
    """
    n = len(groups)
    if not 0 <= primary_slot < n:
        raise ValueError(f"primary slot {primary_slot} out of range")
    if copies < 1:
        raise ValueError("copies must be >= 1")
    if copies > n:
        raise ValueError(f"cannot place {copies} replicas on {n} NSDs")
    chosen = [primary_slot]
    used_groups = {groups[primary_slot]}
    for step in range(1, n):
        if len(chosen) == copies:
            break
        slot = (primary_slot + step) % n
        if groups[slot] in used_groups:
            continue
        chosen.append(slot)
        used_groups.add(groups[slot])
    for step in range(1, n):
        if len(chosen) == copies:
            break
        slot = (primary_slot + step) % n
        if slot not in chosen:
            chosen.append(slot)
    return chosen[1:]
