"""Tests for the experiment result carrier and rendering."""

import pytest

from repro.experiments.harness import ExperimentResult, format_result, sparkline
from repro.util.tables import Table
from repro.util.timeseries import TimeSeries


def make_result():
    r = ExperimentResult(exp_id="EX", title="demo", paper_claim="something")
    r.metrics["rate"] = 123.456
    t = Table(["a"])
    t.add_row([1])
    r.table = t
    ts = TimeSeries(name="trace")
    ts.add(0.0, 1.0)
    ts.add(1.0, 5.0)
    r.series["trace"] = ts
    r.notes = "a note"
    return r


class TestExperimentResult:
    def test_metric_lookup(self):
        r = make_result()
        assert r.metric("rate") == pytest.approx(123.456)

    def test_missing_metric_lists_available(self):
        r = make_result()
        with pytest.raises(KeyError, match="rate"):
            r.metric("nope")

    def test_format_contains_all_sections(self):
        out = format_result(make_result())
        assert "EX: demo" in out
        assert "paper: something" in out
        assert "rate = 123.5" in out
        assert "trace:" in out
        assert "note: a note" in out


class TestSparkline:
    def test_empty(self):
        assert sparkline(TimeSeries()) == "(empty)"

    def test_single_sample(self):
        ts = TimeSeries()
        ts.add(0.0, 1.0)
        assert sparkline(ts) == "(single sample)"

    def test_width_and_extremes(self):
        ts = TimeSeries()
        ts.add(0.0, 0.0)
        ts.add(5.0, 10.0)
        ts.add(10.0, 10.0)
        line = sparkline(ts, width=20)
        assert len(line) == 20
        assert line[0] == " "  # zero at the start
        assert line[-1] == "█"  # peak at the end

    def test_all_zero(self):
        ts = TimeSeries()
        ts.add(0.0, 0.0)
        ts.add(1.0, 0.0)
        assert set(sparkline(ts, width=10)) == {" "}
