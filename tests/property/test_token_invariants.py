"""Property test: the token manager never leaves conflicting tokens held.

Hypothesis drives random acquire sequences (client, range, mode) against
one TokenManager; after every grant, the held-token table must contain no
pair of tokens that conflict (overlapping ranges, different holders, at
least one rw).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tokens import RO, RW, TokenManager
from repro.net.message import MessageService
from repro.net.topology import Network
from repro.sim import Simulation
from repro.util.units import Gbps

CLIENTS = ["c0", "c1", "c2"]


def noop_handler(ino, lo, hi):
    yield from ()


def build_manager():
    sim = Simulation()
    net = Network()
    net.add_node("sw", kind="switch")
    for n in ["mgr"] + CLIENTS:
        net.add_host(n, "sw", Gbps(1), nic_delay=0.001)
    tm = TokenManager(sim, MessageService(sim, net), "mgr")
    for c in CLIENTS:
        tm.register_client(c, noop_handler)
    return sim, tm


acquire_op = st.tuples(
    st.sampled_from(CLIENTS),
    st.integers(0, 500),  # start
    st.integers(1, 200),  # length
    st.sampled_from([RO, RW]),
    st.booleans(),  # use a whole-range desired?
)


def assert_no_conflicts(tm, ino):
    held = tm.holders(ino)
    for i, a in enumerate(held):
        for b in held[i + 1 :]:
            assert not a.conflicts_with(b.holder, b.mode, b.start, b.end), (a, b)


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(acquire_op, min_size=1, max_size=15))
def test_no_conflicting_tokens_ever_coexist(ops):
    sim, tm = build_manager()
    for client, start, length, mode, use_desired in ops:
        desired = (0, 10_000) if use_desired else None
        evt = tm.acquire(client, 1, start, start + length, mode, desired=desired)
        sim.run(until=evt)
        assert_no_conflicts(tm, 1)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(acquire_op, min_size=1, max_size=12))
def test_latest_acquirer_holds_its_range(ops):
    """After an acquire completes, the requesting client covers the range."""
    from repro.core.tokens import covers

    sim, tm = build_manager()
    for client, start, length, mode, use_desired in ops:
        desired = (0, 10_000) if use_desired else None
        evt = tm.acquire(client, 1, start, start + length, mode, desired=desired)
        sim.run(until=evt)
        ranges = tm.client_ranges(1, client, mode=RW if mode == RW else None)
        if mode == RO:
            ranges = tm.client_ranges(1, client)
        assert covers(ranges, start, start + length)
