"""E16 — control-plane failover: token-manager takeover under WAN load.

E13 proves the *data* plane rides through a dead NSD server. This
experiment kills the node the whole control plane lives on — ``nsd00``
is the filesystem manager, the token manager, and the remote contact
node — while ANL clients stream a file over the TeraGrid WAN and an
SDSC client keeps writing:

* the manager stops renewing its own disk lease; the detector (armed
  with ``watch_manager``) declares it dead while suppressing everyone
  else's meaningless expiries;
* the :class:`~repro.faults.RecoveryManager` elects the lowest-id live
  quorum-holding NSD node, freezes the token table, rebuilds it from
  every surviving client's replayed held-ranges, re-arms leases at the
  successor, and releases the parked grants — which redirect;
* the old manager later restarts as an ordinary server (the manager
  role does not fail back).

Headline assertions: **zero failed reads**, **zero rebuild
mismatches**, and takeover latency within the lease + election budget.
A small seeded fuzz cell (random storms under the invariant oracles of
:mod:`repro.faults.fuzz`) rides along so every E16 run also re-checks
token safety and acked-write durability under arbitrary fault mixes.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import ExperimentResult
from repro.faults import FaultSchedule, RetryPolicy, attach_faults
from repro.faults.fuzz import run_fuzz
from repro.obs import OBS
from repro.util.tables import Table
from repro.util.units import MB, MiB

#: The node E16 kills: the filesystem/token manager itself.
MANAGER_NODE = "nsd00"


def default_schedule(
    t0: float, crash_after: float, restart_after: float
) -> FaultSchedule:
    """Kill the manager mid-stream; restart it well after takeover."""
    t_crash = t0 + crash_after
    return (
        FaultSchedule()
        .crash_manager(t_crash, MANAGER_NODE)
        .restart_node(t_crash + restart_after, MANAGER_NODE)
    )


def run_e16(
    file_bytes: float = MB(720),
    anl_clients: int = 4,
    lease_duration: float = 1.5,
    election_sweep: float = 0.25,
    crash_after: float = 2.0,
    restart_after: float = 6.0,
    fuzz_seeds: int = 5,
    fuzz_duration: float = 4.0,
    schedule: Optional[FaultSchedule] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Manager-failover soak on the SDSC 2005 build; deterministic."""
    from repro.experiments.e13_chaos import window_mean
    from repro.topology.sdsc2005 import build_sdsc2005

    result = ExperimentResult(
        exp_id="E16",
        title="control-plane failover: manager takeover with client-replay rebuild",
        paper_claim="(§6.2: any node can die — including the manager — without "
        "surfacing failures to applications)",
    )
    scenario = build_sdsc2005(
        nsd_servers=8,
        ds4100_count=4,
        sdsc_clients=1,
        anl_clients=anl_clients,
        ncsa_clients=0,
        block_size=MiB(1),
        store_data=False,
        seed=seed,
    )
    g = scenario.gfs
    fs = scenario.fs
    assert fs.manager_node == MANAGER_NODE

    # Seed the WAN-read file from a machine-room client; the same client
    # keeps writing through the outage so rw tokens (and their replay)
    # are live when the manager dies.
    stage = scenario.mount_clients("sdsc", 1)[0]

    def seed_file():
        handle = yield stage.open("/failover", "w", create=True)
        yield stage.write(handle, int(file_bytes))
        yield stage.close(handle)

    g.run(until=g.sim.process(seed_file(), name="seed"))

    mounts = scenario.mount_clients("anl", anl_clients, readahead=8,
                                    pagepool_bytes=MiB(512))
    t0 = g.sim.now
    if schedule is None:
        schedule = default_schedule(t0, crash_after, restart_after)
    harness = attach_faults(
        g.sim,
        fs.service,
        manager_node=fs.manager_node,
        schedule=schedule,
        engine=g.engine,
        network=g.network,
        lease_duration=lease_duration,
        retry=RetryPolicy(),
        retry_rng_streams=g.rng,
        token_managers=[fs.token_manager],
        arrays={a.name: a for a in scenario.arrays},
        filesystem=fs,
        election_sweep=election_sweep,
    )

    reads_ok = [0]
    reads_failed = [0]
    writes_ok = [0]
    writes_failed = [0]
    chunk = int(MiB(1))

    def reader(mount):
        handle = yield mount.open("/failover", "r")
        size = int(file_bytes)
        pos = 0
        while pos < size:
            n = min(chunk, size - pos)
            try:
                yield mount.pread(handle, pos, n)
            except ConnectionError:
                reads_failed[0] += 1
            else:
                reads_ok[0] += 1
            pos += n
        yield mount.close(handle)

    def writer():
        """Machine-room writer: rw tokens held across the takeover."""
        handle = yield stage.open("/wlog", "w", create=True)
        pos = 0
        while any(not r.triggered for r in readers):
            try:
                yield stage.pwrite(handle, pos, int(MiB(1)))
                yield stage.fsync(handle)
            except (ConnectionError, IOError):
                writes_failed[0] += 1
            else:
                writes_ok[0] += 1
            pos += int(MiB(1))
            yield g.sim.timeout(0.2)
        yield stage.close(handle)

    readers = [
        g.sim.process(reader(m), name=f"reader:{m.node}") for m in mounts
    ]
    g.sim.process(writer(), name="writer:sdsc")
    g.run(until=g.sim.all_of(readers))
    t_end = g.sim.now
    # Let the tail of the schedule apply (the old manager's restart may
    # land after the readers finish) so the rejoin path — restart, fresh
    # lease, mark_up as an ordinary server — is exercised every run.
    while not harness.schedule_done:
        g.run(until=g.sim.timeout(0.25))
    g.run(until=g.sim.timeout(2 * lease_duration))
    harness.stop()

    recovery = harness.recovery
    detector = harness.detector
    t_crash = t0 + crash_after
    t_detect = detector.detections[0][1] if detector.detections else t_end
    takeovers = recovery.takeovers if recovery is not None else []
    t_takeover = takeovers[0][3] if takeovers else t_end
    successor = takeovers[0][1] if takeovers else fs.manager_node

    series = g.engine.tag_rate_series("anl")
    result.series["anl_rate"] = series
    nominal = window_mean(series, t0, t_crash)
    outage = window_mean(series, t_crash, t_takeover)
    recovered = window_mean(series, t_takeover, t_end)

    table = Table(
        ["phase", "window s", "ANL aggregate MB/s"],
        title=f"{anl_clients} ANL WAN readers across a manager takeover "
        f"({MANAGER_NODE} -> {successor})",
    )
    table.add_row(["nominal", t_crash - t0, nominal / 1e6])
    table.add_row(["outage (crash->takeover)", t_takeover - t_crash, outage / 1e6])
    table.add_row(["recovered", t_end - t_takeover, recovered / 1e6])
    result.table = table

    # Takeover-latency budget: the detection already spent the lease; from
    # declaration the successor needs at most one election sweep plus the
    # replay fan-out (WAN RTT-scale — 0.5 s is generous slack).
    latency_bound = election_sweep + 0.5
    latencies = recovery.takeover_latencies() if recovery is not None else []

    # -- the fuzz cell: random storms under the invariant oracles -------------
    fuzz_reports = run_fuzz(
        count=fuzz_seeds, base_seed=seed, duration=fuzz_duration
    )
    fuzz_violations = sum(len(r.violations) for r in fuzz_reports)

    result.metrics.update(harness.metrics())
    result.metrics.update(
        {
            "reads_ok": float(reads_ok[0]),
            "reads_failed": float(reads_failed[0]),
            "writes_ok": float(writes_ok[0]),
            "writes_failed": float(writes_failed[0]),
            "bytes_read": file_bytes * anl_clients,
            "wall_seconds": t_end - t0,
            "rate_nominal": nominal,
            "rate_outage": outage,
            "rate_recovered": recovered,
            "detection_latency": t_detect - t_crash,
            "takeover_latency_bound": latency_bound,
            "takeover_within_bound": float(
                bool(latencies) and max(latencies) <= latency_bound
            ),
            "fuzz_cases": float(len(fuzz_reports)),
            "fuzz_cases_passed": float(
                sum(1 for r in fuzz_reports if r.passed)
            ),
            "fuzz_violations": float(fuzz_violations),
            "fuzz_ops": float(sum(r.ops for r in fuzz_reports)),
        }
    )
    result.notes = (
        f"{MANAGER_NODE} (fs+token manager) killed at t+{crash_after:.1f}s; "
        f"successor {successor} rebuilt "
        f"{int(result.metrics.get('rebuilt_tokens', 0))} tokens from "
        f"{int(result.metrics.get('replayed_clients', 0))} client replays "
        "with zero mismatches; zero reads failed"
    )

    if OBS.enabled:
        OBS.scrape(g.sim)
        result.obs = {
            "phases": [
                {"name": "nominal", "t0": t0, "t1": t_crash},
                {"name": "outage", "t0": t_crash, "t1": t_takeover},
                {"name": "recovered", "t0": t_takeover, "t1": t_end},
            ],
        }
    return result


def run_e16_quick(**overrides) -> ExperimentResult:
    """Scaled-down E16 for CI and the --quick registry."""
    params = dict(
        file_bytes=MB(240),
        anl_clients=2,
        lease_duration=1.0,
        crash_after=1.0,
        restart_after=4.0,
        fuzz_seeds=3,
        fuzz_duration=3.0,
    )
    params.update(overrides)
    return run_e16(**params)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e16()))
