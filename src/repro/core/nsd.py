"""Network Shared Disks and the block data plane.

An :class:`Nsd` is one exported LUN: a pool of physical blocks with (when
``store_data``) real byte contents — reads return exactly what writes
stored, which is what the integrity tests assert end-to-end across
clusters.

An :class:`NsdServer` is the node that fronts a set of NSDs: it owns the
FC path to the bricks (HBA → controller → RAID) and its GbE/10GbE NIC is
a link in the network graph, so server-side bottlenecks emerge from the
topology rather than from tuning constants.

:class:`NsdService` is the data-plane protocol:

* write: client → server data flow, then the server's SAN write, then an
  ack message back;
* read: request message, SAN read, then server → client data flow.

Block transfers from one client fan out across *all* NSD servers (striping),
which is precisely the many-parallel-TCP-streams structure that let the
paper saturate WAN links despite 80 ms RTTs.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Generator, Iterable, Optional

from repro.net.flow import FlowEngine
from repro.net.message import MessageService
from repro.net.tcp import TcpModel
from repro.obs.registry import OBS
from repro.sim.kernel import Event, Simulation
from repro.sim.profile import PROFILE
from repro.sim.trace import TRACE
from repro.storage.array import Lun
from repro.storage.san import Hba


class ChecksumError(IOError):
    """A block read did not match its stored end-to-end checksum."""


class Nsd:
    """One network shared disk: identity, capacity, and block contents.

    Integrity: every ``store`` records a CRC32 over the full (zero-padded)
    block, so a reader that fetches the whole block can verify end to end.
    ``corrupt`` models silent bit-rot — it mutates stored bytes (or, in
    size-only mode, poisons the block) *without* touching the checksum,
    which is exactly what makes the rot detectable only by verification.
    """

    def __init__(
        self,
        nsd_id: int,
        name: str,
        total_blocks: int,
        block_size: int,
        lun: Optional[Lun] = None,
        store_data: bool = True,
        failure_group: Optional[int] = None,
    ) -> None:
        if total_blocks <= 0 or block_size <= 0:
            raise ValueError("total_blocks and block_size must be positive")
        self.nsd_id = nsd_id
        self.name = name
        self.total_blocks = total_blocks
        self.block_size = block_size
        self.lun = lun
        self.store_data = store_data
        #: Placement domain: replicas of one block must land in distinct
        #: failure groups (defaults to "every NSD its own group").
        self.failure_group = nsd_id if failure_group is None else int(failure_group)
        self._data: Dict[int, bytes] = {}
        #: phys → CRC32 of the zero-padded full block, written at store time.
        self._sums: Dict[int, int] = {}
        #: Replicas with injected rot (authoritative in size-only mode,
        #: where there are no bytes for the CRC to disagree about).
        self._poisoned: set[int] = set()
        self.reads = 0
        self.writes = 0
        self.corruptions = 0
        #: Shared zero block for size-only fetches (immutable, so one
        #: instance can serve every full-block read without a 256 KiB
        #: allocation per RPC).
        self._zero: Optional[bytes] = None

    @property
    def capacity(self) -> int:
        return self.total_blocks * self.block_size

    def _check_block(self, phys: int) -> None:
        if not 0 <= phys < self.total_blocks:
            raise ValueError(f"physical block {phys} out of range on {self.name}")

    def store(self, phys: int, offset: int, data: bytes) -> None:
        """Merge ``data`` into block ``phys`` at ``offset`` (logical effect)."""
        self._check_block(phys)
        if offset < 0 or offset + len(data) > self.block_size:
            raise ValueError("write exceeds block bounds")
        self.writes += 1
        # A full-block overwrite replaces every rotten byte; a partial
        # write cannot vouch for the bytes it did not touch, so poison
        # (injected rot) survives it and still triggers repair.
        if offset == 0 and len(data) == self.block_size:
            self._poisoned.discard(phys)
        if not self.store_data:
            return
        old = self._data.get(phys, b"")
        if len(old) < offset:
            old = old + b"\x00" * (offset - len(old))
        new = old[:offset] + data + old[offset + len(data):]
        self._data[phys] = new
        self._sums[phys] = self._checksum_of(new)

    def _checksum_of(self, blob: bytes) -> int:
        """CRC32 over ``blob`` zero-padded to a full block (what a reader
        of the whole block sees)."""
        pad = int(self.block_size) - len(blob)
        return zlib.crc32(bytes(pad), zlib.crc32(blob))

    def checksum(self, phys: int) -> Optional[int]:
        """Stored checksum of block ``phys`` (None if never written)."""
        self._check_block(phys)
        return self._sums.get(phys)

    def verify_full(self, phys: int, data: Optional[bytes] = None) -> bool:
        """Does a full-block read of ``phys`` match its stored checksum?

        ``data`` is the transferred full block (end-to-end verification at
        the reader); omit it to verify the at-rest contents (scrub).
        """
        self._check_block(phys)
        if phys in self._poisoned:
            return False
        want = self._sums.get(phys)
        if want is None or not self.store_data:
            return True
        if data is None:
            blob = self._data.get(phys, b"")
            return self._checksum_of(blob) == want
        if len(data) != self.block_size:
            raise ValueError("verify_full needs the whole block")
        return zlib.crc32(data) == want

    def corrupt(self, phys: int, offset: Optional[int] = None) -> bool:
        """Silent bit-rot: flip one stored byte, leaving the checksum
        intact — only end-to-end verification can notice. Returns True
        (rot landed); the flip offset defaults to a deterministic
        function of ``phys`` so chaos runs stay reproducible.
        """
        self._check_block(phys)
        self.corruptions += 1
        self._poisoned.add(phys)
        if not self.store_data:
            return True
        blob = self._data.get(phys)
        if blob:
            if offset is None:
                offset = phys % len(blob)
            if not 0 <= offset < len(blob):
                raise ValueError(f"corruption offset {offset} outside stored data")
            flipped = blob[offset] ^ 0x5A
            self._data[phys] = blob[:offset] + bytes([flipped]) + blob[offset + 1:]
        return True

    def fetch(self, phys: int, offset: int, length: int) -> bytes:
        """Block contents (zero-filled where never written)."""
        self._check_block(phys)
        if offset < 0 or length < 0 or offset + length > self.block_size:
            raise ValueError("read exceeds block bounds")
        self.reads += 1
        if not self.store_data:
            if length == self.block_size:
                zero = self._zero
                if zero is None:
                    zero = self._zero = bytes(int(self.block_size))
                return zero
            return bytes(length)
        blob = self._data.get(phys, b"")
        piece = blob[offset : offset + length]
        if len(piece) < length:
            piece = piece + b"\x00" * (length - len(piece))
        return piece

    def discard(self, phys: int) -> None:
        self._data.pop(phys, None)
        self._sums.pop(phys, None)
        self._poisoned.discard(phys)

    def trim(self, phys: int, keep_bytes: int) -> None:
        """Drop block contents beyond ``keep_bytes`` (truncate tail)."""
        self._check_block(phys)
        if keep_bytes < 0 or keep_bytes > self.block_size:
            raise ValueError("keep_bytes out of block bounds")
        blob = self._data.get(phys)
        if blob is not None and len(blob) > keep_bytes:
            blob = blob[:keep_bytes]
            self._data[phys] = blob
            self._sums[phys] = self._checksum_of(blob)


class NsdServer:
    """A node exporting NSDs: NIC in the graph + FC path to the bricks."""

    def __init__(
        self,
        node: str,
        nsds: Iterable[Nsd],
        hba: Optional[Hba] = None,
        name: str = "",
        tags: tuple[str, ...] = (),
    ) -> None:
        self.node = node
        self.name = name or node
        self.nsds = list(nsds)
        self.hba = hba
        self.tags = tags  # e.g. the SCinet lane this server's NIC rides
        self.bytes_served = 0.0

    def disk_io(self, sim: Simulation, nsd: Nsd, kind: str, nbytes: float,
                sequential: bool = True) -> Event:
        """The server-side SAN leg: HBA then LUN (skipped for diskless NSDs)."""
        return sim.process(self._disk_io(sim, nsd, kind, nbytes, sequential),
                           name=f"{self.name}-san-{kind}")

    def _disk_io(self, sim: Simulation, nsd: Nsd, kind: str, nbytes: float,
                 sequential: bool) -> Generator[Event, None, None]:
        sid = TRACE.begin(
            sim, f"san.{kind}", cat="storage.san", lane=f"nsd:{self.name}",
            nsd=nsd.name, bytes=nbytes,
        ) if TRACE.enabled else 0
        if self.hba is not None:
            yield self.hba.transfer(nbytes)
        if nsd.lun is not None:
            yield nsd.lun.io(kind, nbytes, sequential)
        else:
            yield sim.timeout(0.0)
        self.bytes_served += nbytes
        if sid:
            TRACE.end(sim, sid)


#: Resolver hooks: (client_node, server_node) → value.
CapResolver = Callable[[str, str], Optional[float]]
TcpResolver = Callable[[str, str], Optional[TcpModel]]
#: → list of per-node crypto Pipes the payload must pass through.
CryptoResolver = Callable[[str, str], list]


class NsdServerDown(ConnectionError):
    """Neither the primary nor any backup NSD server is reachable."""


class RpcRetriesExhausted(ConnectionError):
    """A block RPC failed every attempt allowed by the retry policy."""


class NsdService:
    """The client↔server block protocol over the fluid network.

    Each NSD has a primary server and optionally backups ("the list of
    primary and secondary NSD servers", §6.2); when a node is marked down
    the service fails over to the next server that shares SAN access to
    the disk, exactly as GPFS does.
    """

    #: Size of control messages (requests/acks), bytes.
    CONTROL_BYTES = 512.0

    def __init__(
        self,
        sim: Simulation,
        engine: FlowEngine,
        messages: MessageService,
        servers: Dict[int, NsdServer],
        nsds: Dict[int, Nsd],
        cap_resolver: Optional[CapResolver] = None,
        tcp_resolver: Optional[TcpResolver] = None,
        crypto_resolver: Optional[CryptoResolver] = None,
        backup_servers: Optional[Dict[int, list]] = None,
    ) -> None:
        self.sim = sim
        self.engine = engine
        self.messages = messages
        self.servers = servers
        self.nsds = nsds
        self.cap_resolver = cap_resolver
        self.tcp_resolver = tcp_resolver
        self.crypto_resolver = crypto_resolver
        self.backup_servers: Dict[int, list] = backup_servers or {}
        self.down_nodes: set[str] = set()
        self.blocks_read = 0
        self.blocks_written = 0
        self.inflight = 0
        self.failovers = 0
        #: (sim time, nsd_id, from_node, to_node) per primary→backup switch.
        self.failover_events: list[tuple[float, int, str, str]] = []
        self._active: Dict[int, str] = {}  # nsd_id -> server node last used
        #: Ground-truth liveness (repro.faults.NodeHealth); None = all up.
        self.health = None
        #: Client retry policy (repro.faults.RetryPolicy); None = legacy
        #: fail-fast behaviour, preserved exactly for existing callers.
        self.retry = None
        self._retry_rng = None
        self._retry_streams = None
        self.retries = 0
        self.rpc_timeouts = 0
        self.checksum_failures = 0
        self.checksum_verifications = 0
        #: Network partition state (repro.faults.PartitionState); None (or
        #: a healed partition) adds zero event hops to the data path.
        self.partition = None
        self.partition_parked = 0
        self._down_waiters: Dict[str, list] = {}
        #: Nodes also hosting a filesystem/token manager (populated by
        #: ``mmcrfs``): marking one down is a *control-plane* outage, not
        #: just a data-path reroute, and is surfaced distinctly.
        self.manager_nodes: set[str] = set()
        self.manager_downs = 0
        #: Opt-in per-client served-byte attribution (``{node: bytes}``).
        #: The caching gateway turns this on so experiments can cross-check
        #: origin traffic against the gateway's own counters; off by
        #: default, so existing runs pay nothing.
        self.track_client_bytes = False
        self.client_bytes: Dict[str, float] = {}

    def _account_client(self, node: str, nbytes: float) -> None:
        self.client_bytes[node] = self.client_bytes.get(node, 0.0) + nbytes

    def attach_health(self, health) -> None:
        """RPCs to nodes that are down in ``health`` park until the lease
        detector declares the node dead (or it restarts), then raise
        :class:`NsdServerDown` — instead of succeeding against a corpse."""
        self.health = health

    def attach_retry(self, policy, rng=None, rng_streams=None) -> None:
        """Enable per-RPC timeout/backoff/failover retry on block ops.

        ``rng_streams`` is an :class:`~repro.sim.rand.RngRegistry` (or any
        object with a ``stream(name)`` method): each client node then draws
        backoff jitter from its own named stream ``faults.retry.<node>``,
        so backed-off clients don't retry in lockstep. ``rng`` is the
        legacy single shared Generator (every client the same stream),
        kept for callers that want one knob.
        """
        self.retry = policy
        self._retry_rng = rng
        self._retry_streams = rng_streams

    def _retry_rng_for(self, client_node: str):
        """The jitter RNG for one client's backoff delays."""
        if self._retry_streams is not None:
            return self._retry_streams.stream(f"faults.retry.{client_node}")
        return self._retry_rng

    def attach_partition(self, partition) -> None:
        """Block ops between severed node sets park until the partition
        heals (repro.faults.PartitionState)."""
        self.partition = partition

    def mark_down(self, node: str) -> None:
        """Declare an NSD server node dead (disk lease expired)."""
        self.down_nodes.add(node)
        if node in self.manager_nodes:
            # Losing this node takes the token/metadata manager with it —
            # health reports must show the control-plane outage distinctly
            # from the (simultaneous) data-path reroute.
            self.manager_downs += 1
            if OBS.enabled:
                OBS.inc("tokens.manager_down", node=node)
            if TRACE.enabled:
                TRACE.instant(
                    self.sim, "tokens.manager_down", cat="fault.control",
                    lane=f"node:{node}", node=node,
                )
        for event in self._down_waiters.pop(node, []):
            if not event.triggered:
                event.succeed(node)

    def mark_up(self, node: str) -> None:
        self.down_nodes.discard(node)

    def _down_declared(self, node: str) -> Event:
        """Event that fires when ``node`` is (or already was) marked down."""
        event = Event(self.sim)
        if node in self.down_nodes:
            event.succeed(node)
        else:
            self._down_waiters.setdefault(node, []).append(event)
        return event

    def server_of(self, nsd_id: int) -> NsdServer:
        try:
            primary = self.servers[nsd_id]
        except KeyError:
            raise KeyError(f"no NSD server for NSD {nsd_id}") from None
        chosen: Optional[NsdServer] = None
        if primary.node not in self.down_nodes:
            chosen = primary
        else:
            for backup in self.backup_servers.get(nsd_id, []):
                if backup.node not in self.down_nodes:
                    chosen = backup
                    break
        if chosen is None:
            raise NsdServerDown(
                f"NSD {nsd_id}: primary {primary.node!r} and all backups are down"
            )
        # Count primary→backup *transitions*, not per-block routings (and
        # not failback to the primary) — A5's failover metric is a count
        # of events, not of blocks served while degraded.
        prev = self._active.get(nsd_id, primary.node)
        if chosen.node != prev and chosen.node != primary.node:
            self.failovers += 1
            self.failover_events.append(
                (self.sim.now, nsd_id, prev, chosen.node)
            )
            if TRACE.enabled:
                TRACE.instant(
                    self.sim, "nsd.failover", cat="fault.failover",
                    lane=f"nsd:{chosen.name}", nsd=nsd_id,
                    from_node=prev, to_node=chosen.node,
                )
        self._active[nsd_id] = chosen.node
        return chosen

    # -- crash awareness ------------------------------------------------------

    def _guard(self, server: NsdServer):
        """Returns ``None`` while ``server``'s node is up — the fault-free
        fast path, no generator built at all (counter
        ``kernel.guard_fastpath`` proves it) — otherwise a generator that
        parks until the lease detector declares the node down (or it
        restarts), then raises :class:`NsdServerDown` so the retry layer
        can fail over. Call sites ``yield from`` only the non-None case.
        """
        if self.health is None or self.health.is_up(server.node):
            if PROFILE.enabled:
                PROFILE.count("kernel.guard_fastpath")
            return None
        return self._guard_park(server)

    def _guard_park(self, server: NsdServer):
        yield self.sim.any_of(
            [
                self._down_declared(server.node),
                self.health.wait_restart(server.node),
            ]
        )
        raise NsdServerDown(
            f"server {server.node!r} crashed mid-RPC"
        )

    def _partition_wait(self, client_node: str, server_node: str):
        """Returns ``None`` when no partition severs the pair (fast path,
        zero overhead beyond this call); otherwise a generator that parks
        until the partition heals — the per-attempt retry timeout decides
        whether the caller waits or abandons the attempt.
        """
        part = self.partition
        if part is None or not part.severed(client_node, server_node):
            if PROFILE.enabled:
                PROFILE.count("kernel.guard_fastpath")
            return None
        return self._partition_park(client_node, server_node)

    def _partition_park(self, client_node: str, server_node: str):
        self.partition_parked += 1
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "nsd.partition_park", cat="fault.partition",
                lane="faults", client=client_node, server=server_node,
            )
        yield self.partition.wait_heal()

    def _pair_kwargs(self, src: str, dst: str) -> dict:
        kw: dict = {}
        if self.cap_resolver is not None:
            cap = self.cap_resolver(src, dst)
            if cap is not None:
                kw["cap"] = cap
        if self.tcp_resolver is not None:
            tcp = self.tcp_resolver(src, dst)
            if tcp is not None:
                kw["tcp"] = tcp
        return kw

    def _obs_rpc(self, op, gen):
        """Wrap one RPC generator with telemetry (latency/total/errors).

        ``yield from`` adds no events, so wrapping cannot perturb event
        order; with retries active the wrapped generator is the whole
        retried operation, i.e. the latency histogram records what the
        *client* saw, failovers and backoff included.
        """
        t0 = self.sim.now
        self.inflight += 1
        try:
            result = yield from gen
        except BaseException:
            self.inflight -= 1
            if OBS.enabled:
                OBS.inc("nsd.rpc.errors", op=op)
            raise
        self.inflight -= 1
        if OBS.enabled:
            OBS.observe("nsd.rpc.latency", self.sim.now - t0, op=op)
            OBS.inc("nsd.rpc.total", op=op)
        return result

    # -- block ops -----------------------------------------------------------

    def write_block(
        self,
        client_node: str,
        nsd_id: int,
        phys: int,
        offset: int,
        data: bytes | int,
        sequential: bool = True,
        tags: tuple[str, ...] = (),
    ) -> Event:
        """Write ``data`` (bytes, or a length for size-only mode) to a block."""
        args = (client_node, nsd_id, phys, offset, data, sequential, tags)
        gen = (
            self._with_retry("write", args)
            if self.retry is not None
            else self._write(*args)
        )
        if OBS.enabled:
            gen = self._obs_rpc("write", gen)
        return self.sim.process(gen, name="nsd-write")

    def _write(self, client_node, nsd_id, phys, offset, data, sequential, tags):
        nsd = self.nsds[nsd_id]
        server = self.server_of(nsd_id)
        parked = self._partition_wait(client_node, server.node)
        if parked is not None:
            yield from parked
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        if isinstance(data, int):
            length = data
            payload: bytes | None = None
        else:
            length = len(data)
            payload = data
        # Tracing decision is taken once per RPC so begin/end always pair.
        tr = TRACE if TRACE.enabled else None
        lane = f"nsd:{server.name}"
        rpc = tr.begin(
            self.sim, "nsd.write_block", cat="nsd.rpc", lane=lane,
            client=client_node, server=server.node, nsd=nsd_id, bytes=length,
        ) if tr else 0
        # 0. software crypto (per-node CPU stages) when the cluster pair
        #    runs an encrypting cipherList
        if self.crypto_resolver is not None:
            for pipe in self.crypto_resolver(client_node, server.node):
                sid = tr.begin(self.sim, "crypto", cat="nsd.crypto",
                               lane=lane) if tr else 0
                yield pipe.transfer(length)
                if sid:
                    tr.end(self.sim, sid)
        # 1. data flow client → server
        sid = tr.begin(self.sim, "net.data", cat="nsd.net", lane=lane,
                       src=client_node, dst=server.node) if tr else 0
        yield self.engine.transfer(
            client_node,
            server.node,
            length,
            tags=tuple(tags) + server.tags,
            **self._pair_kwargs(client_node, server.node),
        )
        if sid:
            tr.end(self.sim, sid)
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        # 2. media write
        sid = tr.begin(self.sim, "disk.service", cat="nsd.disk",
                       lane=lane) if tr else 0
        yield server.disk_io(self.sim, nsd, "write", length, sequential)
        if sid:
            tr.end(self.sim, sid)
        # logical effect
        if payload is not None:
            nsd.store(phys, offset, payload)
        else:
            nsd._check_block(phys)
            if offset == 0 and length == nsd.block_size:
                nsd._poisoned.discard(phys)  # full overwrite heals injected rot
            nsd.writes += 1  # size-only mode: count, no contents to keep
        self.blocks_written += 1
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        # 3. ack back to client
        sid = tr.begin(self.sim, "net.ack", cat="nsd.net", lane=lane) if tr else 0
        yield self.messages.send(server.node, client_node, nbytes=self.CONTROL_BYTES)
        if sid:
            tr.end(self.sim, sid)
        if rpc:
            tr.end(self.sim, rpc)
        if self.track_client_bytes:
            self._account_client(client_node, length)
        if OBS.enabled:
            OBS.inc("nsd.server.bytes", length, server=server.node, dir="in")
        return length

    def read_block(
        self,
        client_node: str,
        nsd_id: int,
        phys: int,
        offset: int,
        length: int,
        sequential: bool = True,
        tags: tuple[str, ...] = (),
        verify: bool = False,
    ) -> Event:
        """Read a block slice; the event's value is the data (bytes).

        ``verify=True`` (full-block reads only) checks the transferred
        data against the block's stored end-to-end checksum at the client
        and raises :class:`ChecksumError` on mismatch — the replication
        layer's cue to fail over to another replica and repair this one.
        """
        if verify and (offset != 0 or length != self.nsds[nsd_id].block_size):
            raise ValueError("verified reads must cover the whole block")
        args = (client_node, nsd_id, phys, offset, length, sequential, tags, verify)
        gen = (
            self._with_retry("read", args)
            if self.retry is not None
            else self._read(*args)
        )
        if OBS.enabled:
            gen = self._obs_rpc("read", gen)
        return self.sim.process(gen, name="nsd-read")

    def _read(self, client_node, nsd_id, phys, offset, length, sequential, tags,
              verify=False):
        nsd = self.nsds[nsd_id]
        server = self.server_of(nsd_id)
        parked = self._partition_wait(client_node, server.node)
        if parked is not None:
            yield from parked
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        tr = TRACE if TRACE.enabled else None
        lane = f"nsd:{server.name}"
        rpc = tr.begin(
            self.sim, "nsd.read_block", cat="nsd.rpc", lane=lane,
            client=client_node, server=server.node, nsd=nsd_id, bytes=length,
        ) if tr else 0
        # 1. request message client → server
        sid = tr.begin(self.sim, "net.request", cat="nsd.net", lane=lane) if tr else 0
        yield self.messages.send(client_node, server.node, nbytes=self.CONTROL_BYTES)
        if sid:
            tr.end(self.sim, sid)
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        # 2. media read
        sid = tr.begin(self.sim, "disk.service", cat="nsd.disk",
                       lane=lane) if tr else 0
        yield server.disk_io(self.sim, nsd, "read", length, sequential)
        if sid:
            tr.end(self.sim, sid)
        data = nsd.fetch(phys, offset, length)
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        # 2b. software crypto stages (encrypt at the server, decrypt at the
        #     client — each node's CPU is a shared pipe)
        if self.crypto_resolver is not None:
            for pipe in self.crypto_resolver(server.node, client_node):
                sid = tr.begin(self.sim, "crypto", cat="nsd.crypto",
                               lane=lane) if tr else 0
                yield pipe.transfer(length)
                if sid:
                    tr.end(self.sim, sid)
        # 3. data flow server → client
        sid = tr.begin(self.sim, "net.data", cat="nsd.net", lane=lane,
                       src=server.node, dst=client_node) if tr else 0
        yield self.engine.transfer(
            server.node,
            client_node,
            length,
            tags=tuple(tags) + server.tags,
            **self._pair_kwargs(server.node, client_node),
        )
        if sid:
            tr.end(self.sim, sid)
        if rpc:
            tr.end(self.sim, rpc)
        self.blocks_read += 1
        if self.track_client_bytes:
            self._account_client(client_node, length)
        if OBS.enabled:
            OBS.inc("nsd.server.bytes", length, server=server.node, dir="out")
        # 4. end-to-end verification at the client, over the bytes that
        #    actually crossed the network (zero sim-time: CPU cost of a
        #    CRC is negligible next to a WAN block transfer).
        if verify:
            self.checksum_verifications += 1
            if not nsd.verify_full(phys, data if nsd.store_data else None):
                self.checksum_failures += 1
                if tr:
                    tr.instant(
                        self.sim, "nsd.checksum_mismatch", cat="fault.integrity",
                        lane=lane, nsd=nsd_id, phys=phys, client=client_node,
                    )
                raise ChecksumError(
                    f"block {phys} on {nsd.name} failed end-to-end verification"
                )
        return data

    # -- coalesced multi-block ops --------------------------------------------

    def write_blocks(
        self,
        client_node: str,
        nsd_id: int,
        items,
        sequential: bool = True,
        tags: tuple[str, ...] = (),
    ) -> Event:
        """Scatter-gather write of several blocks of one NSD in one RPC.

        ``items`` is ``[(phys, offset, data_or_len), ...]`` — typically a
        run of contiguous physical blocks planned by
        :func:`repro.core.client.plan_transfers`. The run shares one
        control round trip, one engine transfer of the combined length,
        and one aggregated sequential disk I/O; the logical effect
        (per-block store, rot healing, write counts) is applied per block,
        identical to ``len(items)`` separate :meth:`write_block` calls.
        The event's value is the total byte count.
        """
        items = tuple(items)
        if not items:
            raise ValueError("write_blocks needs at least one (phys, offset, data)")
        if len(items) == 1:
            phys, offset, data = items[0]
            return self.write_block(
                client_node, nsd_id, phys, offset, data, sequential, tags
            )
        args = (client_node, nsd_id, items, sequential, tags)
        gen = (
            self._with_retry("write_multi", args)
            if self.retry is not None
            else self._write_multi(*args)
        )
        if OBS.enabled:
            gen = self._obs_rpc("write_blocks", gen)
        return self.sim.process(gen, name="nsd-writem")

    def _write_multi(self, client_node, nsd_id, items, sequential, tags):
        nsd = self.nsds[nsd_id]
        server = self.server_of(nsd_id)
        parked = self._partition_wait(client_node, server.node)
        if parked is not None:
            yield from parked
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        lengths = [d if isinstance(d, int) else len(d) for _, _, d in items]
        total = sum(lengths)
        if PROFILE.enabled:
            PROFILE.count("nsd.coalesced_rpcs")
            PROFILE.count("nsd.coalesced_blocks", len(items))
        tr = TRACE if TRACE.enabled else None
        lane = f"nsd:{server.name}"
        rpc = tr.begin(
            self.sim, "nsd.write_blocks", cat="nsd.rpc", lane=lane,
            client=client_node, server=server.node, nsd=nsd_id,
            bytes=total, blocks=len(items),
        ) if tr else 0
        if self.crypto_resolver is not None:
            for pipe in self.crypto_resolver(client_node, server.node):
                sid = tr.begin(self.sim, "crypto", cat="nsd.crypto",
                               lane=lane) if tr else 0
                yield pipe.transfer(total)
                if sid:
                    tr.end(self.sim, sid)
        # 1. one data flow client → server for the whole run
        sid = tr.begin(self.sim, "net.data", cat="nsd.net", lane=lane,
                       src=client_node, dst=server.node) if tr else 0
        yield self.engine.transfer(
            client_node,
            server.node,
            total,
            tags=tuple(tags) + server.tags,
            **self._pair_kwargs(client_node, server.node),
        )
        if sid:
            tr.end(self.sim, sid)
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        # 2. one aggregated sequential media write
        sid = tr.begin(self.sim, "disk.service", cat="nsd.disk",
                       lane=lane) if tr else 0
        yield server.disk_io(self.sim, nsd, "write", total, sequential)
        if sid:
            tr.end(self.sim, sid)
        # logical effect, per block — identical to the per-RPC path
        for (phys, offset, data), length in zip(items, lengths):
            if isinstance(data, int):
                nsd._check_block(phys)
                if offset == 0 and length == nsd.block_size:
                    nsd._poisoned.discard(phys)
                nsd.writes += 1
            else:
                nsd.store(phys, offset, data)
            self.blocks_written += 1
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        # 3. one ack back to the client
        sid = tr.begin(self.sim, "net.ack", cat="nsd.net", lane=lane) if tr else 0
        yield self.messages.send(server.node, client_node, nbytes=self.CONTROL_BYTES)
        if sid:
            tr.end(self.sim, sid)
        if rpc:
            tr.end(self.sim, rpc)
        if self.track_client_bytes:
            self._account_client(client_node, total)
        if OBS.enabled:
            OBS.inc("nsd.server.bytes", total, server=server.node, dir="in")
        return total

    def read_blocks(
        self,
        client_node: str,
        nsd_id: int,
        phys_list,
        sequential: bool = True,
        tags: tuple[str, ...] = (),
        verify: bool = False,
    ) -> Event:
        """Scatter-gather full-block read of one NSD in one RPC.

        ``phys_list`` is a run of physical block numbers (contiguous for
        the aggregated-seek benefit, though any list works). One control
        round trip, one aggregated disk read, one engine transfer of the
        combined length; fetch and (with ``verify=True``) end-to-end
        checksum verification happen per block, identical to separate
        :meth:`read_block` calls. The event's value is ``[bytes, ...]`` in
        ``phys_list`` order.
        """
        phys_list = tuple(phys_list)
        if not phys_list:
            raise ValueError("read_blocks needs at least one physical block")
        args = (client_node, nsd_id, phys_list, sequential, tags, verify)
        gen = (
            self._with_retry("read_multi", args)
            if self.retry is not None
            else self._read_multi(*args)
        )
        if OBS.enabled:
            gen = self._obs_rpc("read_blocks", gen)
        return self.sim.process(gen, name="nsd-readm")

    def _read_multi(self, client_node, nsd_id, phys_list, sequential, tags,
                    verify=False):
        nsd = self.nsds[nsd_id]
        bs = nsd.block_size
        server = self.server_of(nsd_id)
        parked = self._partition_wait(client_node, server.node)
        if parked is not None:
            yield from parked
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        total = bs * len(phys_list)
        if PROFILE.enabled:
            PROFILE.count("nsd.coalesced_rpcs")
            PROFILE.count("nsd.coalesced_blocks", len(phys_list))
        tr = TRACE if TRACE.enabled else None
        lane = f"nsd:{server.name}"
        rpc = tr.begin(
            self.sim, "nsd.read_blocks", cat="nsd.rpc", lane=lane,
            client=client_node, server=server.node, nsd=nsd_id,
            bytes=total, blocks=len(phys_list),
        ) if tr else 0
        # 1. one request message client → server
        sid = tr.begin(self.sim, "net.request", cat="nsd.net", lane=lane) if tr else 0
        yield self.messages.send(client_node, server.node, nbytes=self.CONTROL_BYTES)
        if sid:
            tr.end(self.sim, sid)
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        # 2. one aggregated sequential media read
        sid = tr.begin(self.sim, "disk.service", cat="nsd.disk",
                       lane=lane) if tr else 0
        yield server.disk_io(self.sim, nsd, "read", total, sequential)
        if sid:
            tr.end(self.sim, sid)
        datas = [nsd.fetch(phys, 0, bs) for phys in phys_list]
        guard = self._guard(server)
        if guard is not None:
            yield from guard
        if self.crypto_resolver is not None:
            for pipe in self.crypto_resolver(server.node, client_node):
                sid = tr.begin(self.sim, "crypto", cat="nsd.crypto",
                               lane=lane) if tr else 0
                yield pipe.transfer(total)
                if sid:
                    tr.end(self.sim, sid)
        # 3. one data flow server → client for the whole run
        sid = tr.begin(self.sim, "net.data", cat="nsd.net", lane=lane,
                       src=server.node, dst=client_node) if tr else 0
        yield self.engine.transfer(
            server.node,
            client_node,
            total,
            tags=tuple(tags) + server.tags,
            **self._pair_kwargs(server.node, client_node),
        )
        if sid:
            tr.end(self.sim, sid)
        if rpc:
            tr.end(self.sim, rpc)
        self.blocks_read += len(phys_list)
        if self.track_client_bytes:
            self._account_client(client_node, total)
        if OBS.enabled:
            OBS.inc("nsd.server.bytes", total, server=server.node, dir="out")
        # 4. per-block end-to-end verification at the client
        if verify:
            for phys, data in zip(phys_list, datas):
                self.checksum_verifications += 1
                if not nsd.verify_full(phys, data if nsd.store_data else None):
                    self.checksum_failures += 1
                    if tr:
                        tr.instant(
                            self.sim, "nsd.checksum_mismatch",
                            cat="fault.integrity", lane=lane, nsd=nsd_id,
                            phys=phys, client=client_node,
                        )
                    raise ChecksumError(
                        f"block {phys} on {nsd.name} failed end-to-end verification"
                    )
        return datas

    # -- retry ----------------------------------------------------------------

    def _with_retry(self, kind, args):
        """One block RPC with per-attempt timeout, backoff, and failover.

        Each attempt races the RPC against ``retry.rpc_timeout``. An
        attempt that raises :class:`NsdServerDown` (crashed server, lease
        declared) or times out (stuck against a not-yet-declared corpse)
        is abandoned and re-issued after exponential backoff with seeded
        jitter; ``server_of`` routes the re-issue to a live backup once
        the detector has marked the primary down. Raises
        :class:`RpcRetriesExhausted` only when every attempt failed.
        """
        policy = self.retry
        rng = self._retry_rng_for(args[0])
        last: BaseException | None = None
        for attempt in range(1, policy.max_attempts + 1):
            gen = getattr(self, f"_{kind}")(*args)
            proc = self.sim.process(gen, name=f"nsd-{kind}-try{attempt}")
            timer = self.sim.timeout(policy.rpc_timeout)
            try:
                fired = yield self.sim.any_of([proc, timer])
            except NsdServerDown as exc:
                last = exc
            else:
                if proc in fired:
                    return fired[proc]
                # Timer won the race: the attempt is stuck — abandon it.
                self.rpc_timeouts += 1
                last = TimeoutError(f"nsd {kind} attempt {attempt} timed out")
                if proc.is_alive:
                    proc.interrupt("rpc timeout")
            if attempt == policy.max_attempts:
                break
            self.retries += 1
            delay = policy.backoff_delay(attempt, rng)
            if TRACE.enabled:
                TRACE.instant(
                    self.sim, "nsd.rpc_retry", cat="fault.retry",
                    lane="nsd.retry", kind=kind, attempt=attempt,
                    backoff=delay, cause=type(last).__name__,
                )
            yield self.sim.timeout(delay)
        raise RpcRetriesExhausted(
            f"nsd {kind} failed after {policy.max_attempts} attempts: {last}"
        ) from last
