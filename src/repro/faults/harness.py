"""One-call wiring of the fault subsystem onto a built filesystem.

:class:`FaultHarness` composes the three pieces — ground-truth
:class:`NodeHealth`, the :class:`DiskLeaseDetector`, and a
:class:`FaultInjector` replaying a :class:`FaultSchedule` — and attaches
them to an ``NsdService`` (plus optional client retry policy and token
managers). Experiments use :func:`attach_faults` so a chaos run differs
from a nominal run by exactly one call::

    harness = attach_faults(
        sim, service, engine=engine, network=net, manager_node="nsd00",
        schedule=FaultSchedule().crash_node(2.0, "nsd01"),
        retry=RetryPolicy(), retry_rng=rngs.stream("faults.retry"),
    )
    ...
    harness.stop()
    result.metrics.update(harness.metrics())

With an **empty** schedule the harness is inert on the data path: lease
heartbeats ride the latency-only message service and the retry wrapper
adds only zero-delay event hops, so nominal metrics are unchanged — the
invariance E13's acceptance criteria (and a test) pin down.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.faults.detector import DiskLeaseDetector
from repro.faults.health import NodeHealth
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.sim.kernel import Event, Simulation


class FaultHarness:
    """Health + lease detector + injector, wired and started together."""

    def __init__(
        self,
        sim: Simulation,
        service,
        manager_node: str,
        schedule: Optional[FaultSchedule] = None,
        engine=None,
        network=None,
        lease_duration: float = 1.5,
        renew_interval: Optional[float] = None,
        check_interval: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        retry_rng=None,
        token_managers: Iterable = (),
        arrays: Dict[str, object] | None = None,
        watch_nodes: Iterable[str] = (),
    ) -> None:
        self.sim = sim
        self.service = service
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.health = NodeHealth(sim)
        nodes = list(
            dict.fromkeys(
                [srv.node for srv in service.servers.values()]
                + [b.node for bl in service.backup_servers.values() for b in bl]
                + list(watch_nodes)
            )
        )
        self.detector = DiskLeaseDetector(
            sim,
            service,
            self.health,
            manager_node,
            nodes,
            lease_duration=lease_duration,
            renew_interval=renew_interval,
            check_interval=check_interval,
            token_managers=token_managers,
        )
        self.injector = FaultInjector(
            sim,
            self.schedule,
            health=self.health,
            network=network,
            engine=engine,
            arrays=arrays,
        )
        self.retry = retry
        self._retry_rng = retry_rng
        self.token_managers = list(token_managers)
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FaultHarness":
        if self._started:
            raise RuntimeError("harness already started")
        self._started = True
        self.service.attach_health(self.health)
        if self.retry is not None:
            self.service.attach_retry(self.retry, rng=self._retry_rng)
        for tm in self.token_managers:
            tm.failure_detector = self.detector
        self.detector.start()
        self.injector.start()
        return self

    def stop(self) -> None:
        """Tear down the background processes (end of measurement)."""
        self.detector.stop()
        self.injector.stop()

    # -- conveniences --------------------------------------------------------

    def declared_dead(self, node: str) -> Event:
        return self.detector.declared_dead(node)

    @property
    def schedule_done(self) -> bool:
        return self.injector.done

    def metrics(self) -> Dict[str, float]:
        out = self.detector.metrics()
        out["failovers"] = float(self.service.failovers)
        out["rpc_retries"] = float(getattr(self.service, "retries", 0))
        out["rpc_timeouts"] = float(getattr(self.service, "rpc_timeouts", 0))
        out["faults_injected"] = float(len(self.injector.log))
        dead_releases = sum(
            getattr(tm, "dead_holder_releases", 0) for tm in self.token_managers
        )
        if self.token_managers:
            out["dead_holder_releases"] = float(dead_releases)
        return out


def attach_faults(
    sim: Simulation, service, manager_node: str, **kwargs
) -> FaultHarness:
    """Build and start a :class:`FaultHarness` in one call."""
    return FaultHarness(sim, service, manager_node, **kwargs).start()
