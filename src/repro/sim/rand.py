"""Named, seeded RNG streams.

Every stochastic element of the reproduction draws from a stream named after
its consumer (``"disk.seek"``, ``"workload.nvo"``, ...). Streams are derived
from a single experiment seed with stable per-name offsets, so

* changing one consumer's draws does not perturb any other consumer, and
* experiments are bit-for-bit reproducible given their seed.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """Factory of independent, deterministic ``numpy`` Generators by name."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        if mean <= 0:
            raise ValueError("mean must be positive")
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self.stream(name).integers(low, high))

    def choice(self, name: str, seq):
        idx = self.integers(name, 0, len(seq))
        return seq[idx]
