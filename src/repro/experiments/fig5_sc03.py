"""E2 — Fig 5: SC'03 bandwidth, native WAN-GPFS over one 10 GbE.

Paper: "over a maximum 10 Gb/s link, the peak transfer rate was almost
9 Gb/s (actually 8.96 Gb/s) and over 1 GB/s was easily sustained. The dip
in Fig. 5 corresponds to the visualization application terminating
normally as it ran out of data and was restarted."
"""

from __future__ import annotations

from typing import List

from repro.experiments.harness import ExperimentResult
from repro.topology.sc03 import build_sc03
from repro.util.tables import Table
from repro.util.units import GB, MiB, fmt_bits_rate, fmt_rate
from repro.workloads.viz import VizReader


def run_fig5(
    nsd_servers: int = 40,
    sdsc_viz_nodes: int = 16,
    ncsa_viz_nodes: int = 4,
    per_node_bytes: float = GB(1.5),
    restart_after: float = 8.0,
    restart_pause: float = 4.0,
) -> ExperimentResult:
    scenario = build_sc03(
        nsd_servers=nsd_servers,
        sdsc_viz_nodes=sdsc_viz_nodes,
        ncsa_viz_nodes=ncsa_viz_nodes,
        with_disks=False,  # §3: servers "had sufficient bandwidth to
        # saturate the 10 GbE link"; the uplink, not the disks, binds
        store_data=False,
    )
    g = scenario.gfs
    writer = scenario.writer_mount

    # stage the Enzo output onto the floor filesystem (not measured)
    def stage():
        for i in range(sdsc_viz_nodes + ncsa_viz_nodes):
            handle = yield writer.open(f"/dump{i:03d}", "w", create=True)
            yield writer.write(handle, int(per_node_bytes))
            yield writer.close(handle)

    g.run(until=g.sim.process(stage(), name="stage"))
    t_start = g.sim.now

    # visualization phase: every node streams its dump. The visualization
    # *application* spans all nodes — when it runs out of data it exits and
    # is restarted as a whole (the Fig 5 dip), so every reader pauses.
    readers: List[VizReader] = []
    mounts = scenario.sdsc_mounts + scenario.ncsa_mounts
    for i, mount in enumerate(mounts):
        readers.append(
            VizReader(
                mount,
                f"/dump{i:03d}",
                chunk=MiB(2),
                restart_at=t_start + restart_after,
                restart_pause=restart_pause,
            )
        )
    procs = [r.run() for r in readers]
    g.run(until=g.sim.all_of(procs))

    series = g.engine.tag_rate_series("sc03").slice(t_start, g.sim.now + 1)
    result = ExperimentResult(
        exp_id="E2",
        title="Fig 5: SC'03 bandwidth over the 10 GbE SciNet uplink",
        paper_claim="peak 8.96 Gb/s of 10 Gb/s; >1 GB/s sustained; dip at app restart",
    )
    result.series["uplink rate"] = series
    peak = series.max()
    mid = series.percentile(50)
    dip = series.slice(t_start + restart_after, t_start + restart_after + restart_pause)
    recovery = series.slice(t_start + restart_after + restart_pause + 1.0, g.sim.now)
    result.metrics["peak_rate"] = peak
    result.metrics["median_rate"] = mid
    result.metrics["dip_rate"] = dip.mean() if not dip.empty else 0.0
    result.metrics["recovery_rate"] = recovery.mean() if not recovery.empty else 0.0
    table = Table(["metric", "value"], title="SC'03 WAN-GPFS visualization")
    table.add_row(["peak", fmt_bits_rate(peak)])
    table.add_row(["median", fmt_rate(mid)])
    table.add_row(["during restart", fmt_rate(result.metrics["dip_rate"])])
    table.add_row(["after restart", fmt_rate(result.metrics["recovery_rate"])])
    result.table = table
    result.notes = (
        f"{len(mounts)} viz nodes at SDSC+NCSA behind one 10 GbE; the viz "
        f"app exits at t+{restart_after:.0f}s and restarts {restart_pause:.0f}s "
        "later (the Fig 5 dip)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_fig5()))
