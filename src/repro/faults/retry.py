"""Client-side RPC resilience policy.

A frozen value object: the NSD layer consults it for per-RPC timeouts
and backoff delays but all state (attempt counters, RNG stream) lives
with the caller, so one policy can be shared by every client. Jitter is
drawn from a named, seeded RNG stream which keeps chaos runs
bit-reproducible — the whole point of E13's determinism check.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff parameters for NSD block RPCs.

    Defaults are sized for the SDSC testbed: a healthy WAN block op
    completes in well under 0.75 s even with a RAID rebuild stealing
    controller bandwidth, and twelve attempts with capped exponential
    backoff give a total retry budget (~17 s) far beyond any lease
    expiry, so a surviving replica is always found before exhaustion.
    """

    rpc_timeout: float = 0.75
    max_attempts: int = 12
    backoff_base: float = 0.1
    backoff_cap: float = 1.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.rpc_timeout <= 0:
            raise ValueError(f"rpc_timeout must be positive, got {self.rpc_timeout}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"need 0 <= backoff_base <= backoff_cap, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")

    def backoff_delay(self, attempt: int, rng) -> float:
        """Delay before retry number ``attempt`` (1-based), with jitter.

        ``rng`` is a numpy Generator (e.g. ``RngRegistry.stream("faults.retry")``);
        pass None for deterministic zero-jitter delays.
        """
        base = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        if rng is None or self.jitter == 0:
            return base
        return base * (1.0 + self.jitter * float(rng.random()))
