"""E13 — chaos soak: scripted faults under an E8-style WAN read.

The paper's production claim (§6.2's primary/secondary NSD server lists,
Fig 9's hot spares) is that the Global File System *rides through*
failures rather than surfacing them to applications. This experiment
replays a :class:`~repro.faults.FaultSchedule` while ANL clients stream a
file over the TeraGrid WAN:

* the primary NSD server node ``nsd01`` crashes mid-stream — nothing
  calls ``mark_down``; the disk-lease detector must notice the missed
  renewals and declare the node dead, at which point parked RPCs fail
  over to the backup server;
* the node later restarts and its first renewal marks it back up;
* (full schedule) a WAN brownout squeezes the site trunk, and a drive
  dies in a DS4100 so a RAID rebuild steals controller bandwidth.

Reported: detection latency (crash → lease expiry), MTTR (crash → node
serving again), degraded-window vs nominal throughput, retry/failover
counters — and the headline invariant: **zero failed reads**.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import ExperimentResult
from repro.faults import FaultSchedule, RetryPolicy, attach_faults
from repro.obs import (
    OBS,
    AvailabilityObjective,
    DEFAULT_LATENCY_BOUNDS,
    LatencyObjective,
    SloTracker,
)
from repro.util.tables import Table
from repro.util.timeseries import TimeSeries
from repro.util.units import MB, MiB

#: The node E13 kills. Not nsd00: that node is the filesystem manager,
#: token manager, and remote contact node — A5 covers killing it.
CRASH_NODE = "nsd01"


def window_mean(series: TimeSeries, t0: float, t1: float) -> float:
    """Time-weighted mean of a piecewise-constant series over [t0, t1)."""
    if series.empty or t1 <= t0:
        return 0.0
    edges = [t0] + [t for t in series.times if t0 < t < t1] + [t1]
    total = 0.0
    for a, b in zip(edges, edges[1:]):
        total += series.value_at(a) * (b - a)
    return total / (t1 - t0)


def default_schedule(
    t0: float,
    crash_after: float,
    restart_after: float,
    extra_faults: bool = True,
    wan_link: str = "chi-hub->anl-sw",
    array: str = "ds4100-00",
) -> FaultSchedule:
    """The E13 script: crash/restart, then (optionally) brownout + disk."""
    t_crash = t0 + crash_after
    t_restart = t_crash + restart_after
    schedule = (
        FaultSchedule()
        .crash_node(t_crash, CRASH_NODE)
        .restart_node(t_restart, CRASH_NODE)
    )
    if extra_faults:
        schedule.brownout_link(
            t_restart + 1.5, wan_link, factor=0.05, duration=1.0
        )
        schedule.fail_disk(t_restart + 2.8, array, lun=0)
    return schedule


def run_e13(
    file_bytes: float = MB(960),
    anl_clients: int = 4,
    lease_duration: float = 1.5,
    crash_after: float = 2.0,
    restart_after: float = 6.0,
    extra_faults: bool = True,
    schedule: Optional[FaultSchedule] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Chaos soak on the SDSC 2005 build; deterministic for a given seed."""
    from repro.topology.sdsc2005 import build_sdsc2005

    result = ExperimentResult(
        exp_id="E13",
        title="chaos soak: node crash, lease detection, failover, recovery",
        paper_claim="(§6.2 NSD server lists / Fig 9 spares: failures are survived, "
        "not surfaced)",
    )
    scenario = build_sdsc2005(
        nsd_servers=8,
        ds4100_count=4,
        sdsc_clients=1,
        anl_clients=anl_clients,
        ncsa_clients=0,
        block_size=MiB(1),
        store_data=False,
        seed=seed,
    )
    g = scenario.gfs
    service = scenario.fs.service

    # Seed the file from a machine-room client.
    stage = scenario.mount_clients("sdsc", 1)[0]

    def seed_file():
        handle = yield stage.open("/chaos", "w", create=True)
        yield stage.write(handle, int(file_bytes))
        yield stage.close(handle)

    g.run(until=g.sim.process(seed_file(), name="seed"))

    mounts = scenario.mount_clients("anl", anl_clients, readahead=8,
                                    pagepool_bytes=MiB(512))
    t0 = g.sim.now
    if schedule is None:
        schedule = default_schedule(
            t0, crash_after, restart_after, extra_faults=extra_faults
        )
    harness = attach_faults(
        g.sim,
        service,
        manager_node=scenario.fs.manager_node,
        schedule=schedule,
        engine=g.engine,
        network=g.network,
        lease_duration=lease_duration,
        retry=RetryPolicy(),
        retry_rng_streams=g.rng,
        token_managers=[scenario.fs.token_manager],
        arrays={a.name: a for a in scenario.arrays},
    )

    reads_ok = [0]
    reads_failed = [0]
    chunk = int(MiB(1))

    def reader(mount):
        handle = yield mount.open("/chaos", "r")
        size = int(file_bytes)
        pos = 0
        while pos < size:
            n = min(chunk, size - pos)
            try:
                yield mount.pread(handle, pos, n)
            except ConnectionError:
                reads_failed[0] += 1
            else:
                reads_ok[0] += 1
            pos += n
        yield mount.close(handle)

    readers = [
        g.sim.process(reader(m), name=f"reader:{m.node}") for m in mounts
    ]
    g.run(until=g.sim.all_of(readers))
    t_end = g.sim.now
    harness.stop()

    # -- phase windows --------------------------------------------------------
    detector = harness.detector
    t_crash = t0 + crash_after
    t_detect = detector.detections[0][1] if detector.detections else t_end
    t_up = detector.recoveries[0][3] if detector.recoveries else t_end
    series = g.engine.tag_rate_series("anl")
    result.series["anl_rate"] = series
    nominal = window_mean(series, t0, t_crash)
    degraded = window_mean(series, t_crash, t_detect)
    failed_over = window_mean(series, t_detect, t_up)
    recovered = window_mean(series, t_up, t_end)

    table = Table(
        ["phase", "window s", "ANL aggregate MB/s"],
        title=f"{anl_clients} ANL clients each streaming "
        f"{int(file_bytes / MB(1))} MB over the WAN",
    )
    table.add_row(["nominal", t_crash - t0, nominal / 1e6])
    table.add_row(["degraded (crash->detect)", t_detect - t_crash, degraded / 1e6])
    table.add_row(["failed over (detect->up)", t_up - t_detect, failed_over / 1e6])
    table.add_row(["recovered", t_end - t_up, recovered / 1e6])
    result.table = table

    result.metrics.update(harness.metrics())
    result.metrics.update(
        {
            "reads_ok": float(reads_ok[0]),
            "reads_failed": float(reads_failed[0]),
            "bytes_read": file_bytes * anl_clients,
            "wall_seconds": t_end - t0,
            "rate_nominal": nominal,
            "rate_degraded": degraded,
            "rate_failed_over": failed_over,
            "rate_recovered": recovered,
            "degraded_ratio": degraded / nominal if nominal else 0.0,
        }
    )
    result.notes = (
        f"{CRASH_NODE} crashes at t+{crash_after:.1f}s; no manual mark_down — "
        "lease expiry detects it, parked RPCs fail over, zero reads fail"
    )

    if OBS.enabled:
        # Final scrape so the last phase boundary has a row at exactly
        # t_end, then evaluate the chaos-soak SLOs over the time series.
        OBS.scrape(g.sim)
        phases = [
            {"name": "nominal", "t0": t0, "t1": t_crash},
            {"name": "degraded", "t0": t_crash, "t1": t_detect},
            {"name": "failed-over", "t0": t_detect, "t1": t_up},
            {"name": "recovered", "t0": t_up, "t1": t_end},
        ]
        # The latency threshold sits on a histogram bucket boundary so
        # compliance is exact (bucket counts, no interpolation).
        le = next(b for b in DEFAULT_LATENCY_BOUNDS if b >= 1.0)
        tracker = (
            SloTracker()
            .add(LatencyObjective(
                name="wan_read_latency",
                metric="client.read.latency",
                le=le,
                target=0.99,
                window=2.0,
            ))
            .add(AvailabilityObjective(
                name="zero_failed_reads",
                ok_metric="client.read.ok",
                err_metric="client.read.errors",
                target=1.0,
                window=2.0,
            ))
        )
        result.obs = {"phases": phases, "slo": tracker.evaluate(OBS.rows)}
    return result


def run_e13_quick(**overrides) -> ExperimentResult:
    """Scaled-down E13 for CI and the --quick registry."""
    params = dict(
        file_bytes=MB(288),
        anl_clients=2,
        lease_duration=1.0,
        crash_after=1.0,
        restart_after=2.0,
        extra_faults=False,
    )
    params.update(overrides)
    return run_e13(**params)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e13()))
