"""Fleet-scale solver benches (route-class aggregation harness).

These measure the E17 scenario directly: thousands of logical clients
funneled through 16 shared I/O hosts reading from 8 NSD servers across
the TeraGrid backbone, with staggered starts so every join/leave
re-solves the shared component. The point under test is the route-class
aggregation in :mod:`repro.net.flow` — solver work should scale with the
number of distinct (route, cap) classes (bounded by the mesh), not with
the number of member flows.

Each bench appends its numbers to ``BENCH_fleet.json`` in the repo root
so successive PRs accumulate a perf trajectory; CI gates >30% ops/s
regressions against the committed baseline. Run with::

    pytest benchmarks/test_perf_fleet.py --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.e17_fleet import run_fleet_cell

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def _record(name: str, entry: dict) -> None:
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[name] = entry
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_fleet_1024_agg(benchmark, capsys):
    """Aggregated engine at 1024 clients (2048 concurrent flows)."""
    stats = benchmark.pedantic(
        run_fleet_cell, args=(1024,), kwargs={"rounds": 3},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    ops = stats["clients"] * 3 * 2
    _record("fleet_1024_agg", {
        "ops_per_s": round(ops / stats["wall_s"], 2),
        "elapsed_s": round(stats["wall_s"], 3),
        "transfers": int(ops),
        "flows_peak": int(stats["flows_peak"]),
        "solver_cols_peak": int(stats["solver_cols_peak"]),
        "solved_rows": int(stats["solved_rows"]),
        "kernel_events": int(stats["kernel_events"]),
    })
    with capsys.disabled():
        print()
        print(
            f"fleet_1024_agg: {ops / stats['wall_s']:.0f} transfers/s wall "
            f"({stats['wall_s']:.2f}s, {stats['flows_peak']:.0f} flows over "
            f"{stats['solver_cols_peak']:.0f} solver cols)"
        )
    # Class space is bounded by the 16x8 host-server mesh, never the fleet.
    assert stats["solver_cols_peak"] <= 128
    assert stats["flows_peak"] / stats["solver_cols_peak"] >= 10


def test_fleet_512_compare(benchmark, capsys):
    """Aggregated vs aggregate=False at 512 clients: fast AND exact."""

    def both():
        agg = run_fleet_cell(512, rounds=3)
        unagg = run_fleet_cell(512, rounds=3, aggregate=False)
        return agg, unagg

    agg, unagg = benchmark.pedantic(
        both, rounds=1, iterations=1, warmup_rounds=0
    )
    speedup = unagg["wall_s"] / agg["wall_s"]
    reduction = unagg["solver_cols_peak"] / agg["solver_cols_peak"]
    exact = (
        agg["_series"] == unagg["_series"]
        and agg["_finishes"] == unagg["_finishes"]
        and agg["bytes_moved"] == unagg["bytes_moved"]
        and agg["rate_changes"] == unagg["rate_changes"]
    )
    ops = agg["clients"] * 3 * 2
    _record("fleet_512_compare", {
        "agg_ops_per_s": round(ops / agg["wall_s"], 2),
        "unagg_ops_per_s": round(ops / unagg["wall_s"], 2),
        "ops_per_s": round(ops / agg["wall_s"], 2),
        "speedup": round(speedup, 2),
        "column_reduction": round(reduction, 2),
        "bit_identical": exact,
    })
    with capsys.disabled():
        print()
        print(
            f"fleet_512_compare: {speedup:.1f}x faster than aggregate=False "
            f"({agg['wall_s']:.2f}s vs {unagg['wall_s']:.2f}s), "
            f"{reduction:.0f}x fewer solver columns, "
            f"bit-identical={exact}"
        )
    assert exact, "aggregated engine diverged from per-flow engine"
    assert reduction >= 10
    # The speedup grows with scale (~9x at 1024 in E17); 3x is a loose
    # floor for noisy CI runners at this smaller bench scale.
    assert speedup >= 3.0
