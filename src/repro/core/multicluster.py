"""Multi-cluster export/import: the paper's §6 contribution.

GPFS 2.3 GA replaced passwordless-root remote shells with per-cluster RSA
keypairs. The mount-time handshake implemented here follows §6.2:

1. The importing cluster's admin has defined the serving cluster
   (``mmremotecluster``: public key + contact nodes) and the device mapping
   (``mmremotefs``).
2. The serving cluster's admin has installed the importing cluster's public
   key (``mmauth add``) and granted access (``mmauth grant``, per-filesystem
   ro/rw — the PTF2 capability).
3. At ``mmmount`` time, when either side's cipherList requires it, the two
   clusters authenticate with a mutual RSA challenge-response using real
   signatures over fresh nonces, paying WAN round trips to a designated
   contact node. Success registers the mount; the serving cluster then
   "distributes the information that the remote cluster has authenticated
   to all NSD server nodes".

Failures raise :class:`MountAuthError` with the same distinctions GPFS
surfaces: unknown cluster, missing key, bad signature, no grant,
insufficient access.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.client import Identity, MountedFs
from repro.sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cluster import Cluster


class MountAuthError(PermissionError):
    """A multi-cluster mount was refused."""


#: bytes on the wire for one handshake leg (key blobs + nonce + signature)
HANDSHAKE_BYTES = 2048.0


def mount_remote(
    importing: "Cluster",
    local_device: str,
    node: str,
    identity: Identity,
    access: str,
    mount_kwargs: dict,
    gateway=None,
) -> Event:
    """Run the cross-cluster mount protocol; event value is a MountedFs.

    With ``gateway`` (a :class:`repro.cache.CacheGateway` serving this
    site), the handshake and access checks are identical but the returned
    mount is a :class:`repro.cache.GatewayMount` whose block traffic runs
    through the gateway cluster.
    """
    gfs = importing.gfs
    return gfs.sim.process(
        _mount_remote(
            importing, local_device, node, identity, access, mount_kwargs, gateway
        ),
        name=f"rmount:{local_device}",
    )


def _mount_remote(importing, local_device, node, identity, access, mount_kwargs,
                  gateway=None):
    gfs = importing.gfs
    rdef = importing.remote_fs[local_device]
    cluster_def = importing.remote_clusters[rdef.cluster]
    serving = gfs.cluster(rdef.cluster)
    contact = cluster_def.contact_nodes[0]

    fs = serving.filesystems.get(rdef.remote_device)
    if fs is None:
        raise MountAuthError(
            f"cluster {serving.name!r} has no filesystem {rdef.remote_device!r}"
        )

    needs_auth = serving.cipher.requires_auth or importing.cipher.requires_auth
    if needs_auth:
        yield from _handshake(importing, serving, node, contact)

    # Per-filesystem access control (mmauth grant, PTF2).
    granted = serving.granted_access(importing.name, rdef.remote_device)
    if granted is None:
        raise MountAuthError(
            f"cluster {serving.name!r} has not granted {importing.name!r} "
            f"access to {rdef.remote_device!r}"
        )
    if access == "rw" and granted == "ro":
        raise MountAuthError(
            f"{rdef.remote_device!r} is exported read-only to {importing.name!r}"
        )

    # "distributes the information that the remote cluster has authenticated
    # to all NSD server nodes" — one fan-out message per server.
    server_nodes = {srv.node for srv in fs.service.servers.values()}
    for server_node in server_nodes:
        yield gfs.messages.send(contact, server_node, nbytes=256)

    serving.active_remote_mounts += 1
    if gateway is not None:
        if gateway.fs is not fs:
            raise MountAuthError(
                f"gateway {gateway.name!r} caches {gateway.fs.name!r}, "
                f"not {rdef.remote_device!r}"
            )
        from repro.cache.gateway import GatewayMount

        # The gateway cluster serves this mount's blocks: tell its nodes
        # the client authenticated (parallel site-local notification).
        yield gfs.messages.fanout(contact, gateway.nodes, nbytes=256)
        mount = GatewayMount(
            gateway, node, identity=identity, access=access, **mount_kwargs
        )
    else:
        mount = MountedFs(fs, node, identity=identity, access=access, **mount_kwargs)
    mount.remote_cluster = serving.name  # type: ignore[attr-defined]
    return mount


def _handshake(importing, serving, node, contact):
    """Mutual RSA challenge-response between two cluster keystores."""
    gfs = importing.gfs
    if not importing.keystore.has_own:
        raise MountAuthError(
            f"cluster {importing.name!r} has no keypair (run mmauth genkey)"
        )
    if not serving.keystore.has_own:
        raise MountAuthError(
            f"cluster {serving.name!r} has no keypair (run mmauth genkey)"
        )
    if not serving.keystore.knows(importing.name):
        raise MountAuthError(
            f"cluster {serving.name!r} has no public key for {importing.name!r} "
            "(mmauth add missing)"
        )
    if not importing.keystore.knows(serving.name):
        raise MountAuthError(
            f"cluster {importing.name!r} has no public key for {serving.name!r} "
            "(mmremotecluster missing)"
        )

    rng = gfs.rng.stream(f"handshake:{importing.name}:{serving.name}")

    # Leg 1: client → contact node: "I am <cluster>", plus signature over a
    # client nonce. (one WAN message)
    client_nonce = int(rng.integers(1, 2**62))
    client_blob = f"{importing.name}|{client_nonce}".encode()
    client_sig = importing.keystore.own.sign(client_blob)
    yield gfs.messages.send(node, contact, nbytes=HANDSHAKE_BYTES)

    # Serving side verifies against its mmauth-imported key.
    if not serving.keystore.public_of(importing.name).verify(client_blob, client_sig):
        raise MountAuthError(
            f"RSA verification of cluster {importing.name!r} failed at {serving.name!r}"
        )

    # Leg 2: server responds with its own signed nonce. (one WAN message)
    server_nonce = int(rng.integers(1, 2**62))
    server_blob = f"{serving.name}|{server_nonce}|{client_nonce}".encode()
    server_sig = serving.keystore.own.sign(server_blob)
    yield gfs.messages.send(contact, node, nbytes=HANDSHAKE_BYTES)

    # Importing side verifies the serving cluster (mutual authentication).
    if not importing.keystore.public_of(serving.name).verify(server_blob, server_sig):
        raise MountAuthError(
            f"RSA verification of cluster {serving.name!r} failed at {importing.name!r}"
        )


def unmount(gfs, mount: MountedFs) -> None:
    """Release a mount: drop tokens, deregister, decrement remote counts."""
    mount.tokens.release_all()
    if mount in mount.fs.mounts:
        mount.fs.mounts.remove(mount)
    cluster_name = getattr(mount, "remote_cluster", None)
    if cluster_name is not None:
        serving = gfs.clusters.get(cluster_name)
        if serving is not None and serving.active_remote_mounts > 0:
            serving.active_remote_mounts -= 1
