"""A5 benchmark — degraded RAID service and NSD server failover."""

from repro.experiments.ablations import run_a5_degraded


def test_a5_degraded(run_experiment):
    result = run_experiment(run_a5_degraded)
    # degraded < rebuilding < healthy service (reconstruction costs)
    assert (
        result.metric("lun_rate_degraded")
        < result.metric("lun_rate_rebuilding")
        < result.metric("lun_rate_healthy")
    )
    # losing one of eight NSD servers costs throughput but not availability
    after = result.metric("fs_rate_after_failover")
    before = result.metric("fs_rate_before_failover")
    assert 0.5 * before < after < before
    assert result.metric("failovers") > 0
