"""Shared utilities: units, time series, tables.

These helpers are deliberately dependency-light; everything above them
(`repro.sim`, `repro.net`, ...) uses them for units discipline and for
rendering experiment output.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    PB,
    KiB,
    MiB,
    GiB,
    TiB,
    Kbps,
    Mbps,
    Gbps,
    kbit,
    mbit,
    gbit,
    bits,
    to_bits,
    fmt_bytes,
    fmt_rate,
    fmt_bits_rate,
    fmt_time,
    parse_size,
)
from repro.util.timeseries import TimeSeries, RateMeter
from repro.util.tables import Table

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "Kbps",
    "Mbps",
    "Gbps",
    "kbit",
    "mbit",
    "gbit",
    "bits",
    "to_bits",
    "fmt_bytes",
    "fmt_rate",
    "fmt_bits_rate",
    "fmt_time",
    "parse_size",
    "TimeSeries",
    "RateMeter",
    "Table",
]
