"""Individual disk drives, 2005 vintage.

A disk serves one IO at a time: positioning time (seek + rotational
latency, skipped for sequential access) plus media transfer at the
sustained rate. Two period-correct profiles:

* :data:`FC_2005` — 10k RPM FC drives as in the SC'02 QFS cache,
* :data:`SATA_2005` — the 250 GB 7.2k SATA drives of the DS4100 bricks
  whose price/capacity made the 0.5 PB purchase possible (paper §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.kernel import Event, Simulation
from repro.sim.trace import TRACE
from repro.storage.pipes import Pipe
from repro.util.units import GB, MB


@dataclass(frozen=True)
class DiskSpec:
    """Physical parameters of a drive model."""

    name: str
    capacity: float
    read_rate: float
    write_rate: float
    seek_time: float  # average positioning time for random access

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.read_rate <= 0 or self.write_rate <= 0:
            raise ValueError("capacity and rates must be positive")
        if self.seek_time < 0:
            raise ValueError("seek_time must be non-negative")


#: 73 GB 10k RPM Fibre Channel drive.
FC_2005 = DiskSpec(
    name="fc-10k-73gb",
    capacity=GB(73),
    read_rate=MB(89),
    write_rate=MB(85),
    seek_time=5.4e-3,
)

#: 250 GB 7.2k RPM SATA drive (DS4100 member, paper Fig 9).
SATA_2005 = DiskSpec(
    name="sata-7k2-250gb",
    capacity=GB(250),
    read_rate=MB(60),
    write_rate=MB(55),
    seek_time=12.5e-3,
)


class Disk:
    """One spinning drive bound to a simulation."""

    def __init__(self, sim: Simulation, spec: DiskSpec, name: str = "") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self._read_pipe = Pipe(sim, spec.read_rate, name=f"{self.name}.r")
        self._write_pipe = Pipe(sim, spec.write_rate, name=f"{self.name}.w")
        # One actuator: reads and writes share the arm. Model with a single
        # exclusive pipe per direction fed by a shared positioner lock is
        # overkill at the simulator's granularity; both pipes share one
        # resource instead.
        self._write_pipe._res = self._read_pipe._res
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    def io(self, kind: str, nbytes: float, sequential: bool = True) -> Event:
        """Submit an IO; the event fires when the media transfer completes."""
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        pipe = self._read_pipe if kind == "read" else self._write_pipe
        extra = 0.0 if sequential else self.spec.seek_time
        if kind == "read":
            self.bytes_read += nbytes
        else:
            self.bytes_written += nbytes
        return self.sim.process(
            self._serve(pipe, nbytes, extra), name=f"{self.name}-{kind}"
        )

    def _serve(self, pipe: Pipe, nbytes: float, extra_latency: float):
        tr = TRACE if TRACE.enabled else None
        lane = f"disk:{self.name}"
        with pipe._res.request() as req:
            wid = tr.begin(self.sim, "wait", cat="storage.queue", lane=lane,
                           bytes=nbytes) if tr else 0
            yield req
            if wid:
                tr.end(self.sim, wid)
            sid = tr.begin(self.sim, "service", cat="storage.service",
                           lane=lane, bytes=nbytes) if tr else 0
            yield self.sim.timeout(extra_latency + pipe.service_time(nbytes))
            if sid:
                tr.end(self.sim, sid)
        pipe.bytes_served += nbytes
        pipe.ios_served += 1

    def rate(self, kind: str) -> float:
        return self.spec.read_rate if kind == "read" else self.spec.write_rate
