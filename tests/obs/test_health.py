"""Tests for the fleet health report (`python -m repro health`)."""

from repro.obs.export import export_metrics_dir
from repro.obs.health import (
    client_rollup,
    link_rollup,
    main,
    render_html,
    render_report,
    server_rollup,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import AvailabilityObjective, SloTracker
from repro.sim.kernel import Simulation


def fleet_registry() -> MetricsRegistry:
    """A registry shaped like an instrumented experiment run."""
    reg = MetricsRegistry()
    sim = Simulation()
    for t in (0.0, 1.0, 2.0):
        sim._now = t
        for client in ("anl-n000", "anl-n001"):
            reg.observe("client.read.latency", 0.01 + t / 10, client=client)
            reg.inc("client.read.ok", client=client)
        reg.inc("nsd.server.bytes", 1e6, server="nsd00", dir="out")
        reg.inc("nsd.server.bytes", 5e5, server="nsd00", dir="in")
        reg.set_gauge(
            "net.link.utilization", 0.25 * (t + 1), t, link="a->b", sim="1"
        )
        reg.scrape(sim)
    return reg


def export_fleet(tmp_path, exp_id="E13") -> str:
    reg = fleet_registry()
    slo = SloTracker().add(AvailabilityObjective(
        name="zero_failed_reads", ok_metric="client.read.ok",
        err_metric="client.read.errors", target=1.0, window=1.0,
    )).evaluate(reg.rows)
    phases = [
        {"name": "nominal", "t0": 0.0, "t1": 1.0},
        {"name": "recovered", "t0": 1.0, "t1": 2.0},
    ]
    export_metrics_dir(
        reg, str(tmp_path), exp_id, meta={"phases": phases, "slo": slo}
    )
    return str(tmp_path)


class TestRollups:
    def test_client_rollup(self):
        rows = fleet_registry().rows
        clients = client_rollup(rows)
        assert [c["client"] for c in clients] == ["anl-n000", "anl-n001"]
        assert all(c["reads"] == 3 for c in clients)
        assert all(c["p50"] <= c["p99"] <= c["max"] for c in clients)

    def test_server_rollup(self):
        [server] = server_rollup(fleet_registry().rows)
        assert server["server"] == "nsd00"
        assert server["bytes_out"] == 3e6
        assert server["bytes_in"] == 1.5e6

    def test_link_rollup_spans_all_scrapes(self):
        [link] = link_rollup(fleet_registry().rows)
        assert link["link"] == "a->b"
        assert link["samples"] == 3
        assert link["peak"] == 0.75
        assert link["mean"] == 0.5

    def test_empty_rows(self):
        assert client_rollup([]) == []
        assert server_rollup([]) == []
        assert link_rollup([]) == []


class TestReport:
    def test_text_report_sections(self, tmp_path):
        d = export_fleet(tmp_path)
        text = render_report(d)
        for needle in (
            "== E13 ==", "SLOs:", "zero_failed_reads",
            "Phases (client reads):", "nominal", "recovered",
            "Clients:", "anl-n000", "NSD servers:", "nsd00",
            "Links:", "a->b",
        ):
            assert needle in text

    def test_report_is_deterministic(self, tmp_path):
        d = export_fleet(tmp_path)
        assert render_report(d) == render_report(d)

    def test_html_report(self, tmp_path):
        d = export_fleet(tmp_path)
        html = render_html(d)
        assert html.startswith("<!doctype html>")
        assert "zero_failed_reads" in html

    def test_missing_dir_message(self, tmp_path):
        assert "no metrics found" in render_report(str(tmp_path))


class TestMain:
    def test_prints_report(self, tmp_path, capsys):
        d = export_fleet(tmp_path)
        assert main(["--metrics-dir", d]) == 0
        out = capsys.readouterr().out
        assert "repro fleet health" in out
        assert "E13" in out

    def test_out_and_html_files(self, tmp_path):
        d = export_fleet(tmp_path / "metrics")
        out = tmp_path / "health.txt"
        page = tmp_path / "health.html"
        rc = main([
            "--metrics-dir", d, "--out", str(out), "--html", str(page),
        ])
        assert rc == 0
        assert "SLOs:" in out.read_text()
        assert "<pre>" in page.read_text()

    def test_exp_filter(self, tmp_path, capsys):
        d = export_fleet(tmp_path)
        export_fleet(tmp_path, exp_id="E14")
        assert main(["--metrics-dir", d, "--exp", "E14"]) == 0
        out = capsys.readouterr().out
        assert "== E14 ==" in out
        assert "== E13 ==" not in out
