"""Regenerate ``golden/golden_metrics.json`` for the bit-identity tests.

Run this ONLY after an intentional semantic change to the experiments or
the data path (new metric, recalibrated model), never to paper over a
drift you can't explain — the whole point of the goldens is that kernel
and transfer-path optimizations must not move a single bit::

    PYTHONPATH=src python tests/integration/capture_golden.py

Values are stored as ``repr`` strings so float comparisons in
``test_golden_metrics.py`` are exact, not approximate.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "golden_metrics.json"


def capture(res) -> dict:
    out = {"metrics": {k: repr(v) for k, v in res.metrics.items()}}
    if res.table is not None:
        out["table"] = [[repr(c) for c in row] for row in res.table.rows]
    return out


def main() -> None:
    from repro.experiments.e8_latency import run_e8
    from repro.experiments.e13_chaos import run_e13_quick
    from repro.experiments.e14_integrity import run_e14_quick
    from repro.experiments.fig8_sc04 import run_fig8
    from repro.util.units import GB, MB

    golden = {
        "E8": capture(run_e8(nbytes=GB(1))),
        "E3": capture(
            run_fig8(
                nsd_servers=21,
                clients_per_site=12,
                per_client_phase_bytes=MB(96),
                phases=2,
            )
        ),
        "E13": capture(run_e13_quick()),
        "E14": capture(run_e14_quick()),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
