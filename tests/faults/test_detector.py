"""Tests for the disk-lease failure detector."""

import pytest

from repro.faults import DiskLeaseDetector, NodeHealth

from tests.core.testbed import small_gfs

LEASE = 1.0


def make(lease=LEASE, nodes=("nsd1", "nsd2"), **kw):
    g, cluster, fs, _ = small_gfs(nsd_servers=4)
    health = NodeHealth(g.sim)
    det = DiskLeaseDetector(
        g.sim, fs.service, health, manager_node="nsd0",
        nodes=nodes, lease_duration=lease, **kw,
    )
    det.start()
    return g, fs, health, det


def run_for(g, seconds):
    g.run(until=g.sim.timeout(seconds))


class TestLeaseLifecycle:
    def test_healthy_nodes_are_never_declared(self):
        g, fs, health, det = make()
        run_for(g, 5.0)
        assert det.detections == []
        assert fs.service.down_nodes == set()
        assert det.renewals > 0  # heartbeats flowed the whole time

    def test_crash_detected_within_lease_plus_check(self):
        g, fs, health, det = make()
        run_for(g, 1.0)
        health.crash("nsd1")
        t_crash = g.sim.now
        g.run(until=det.declared_dead("nsd1"))
        latency = g.sim.now - t_crash
        assert 0 < latency <= LEASE + det.check_interval + 1e-9
        assert "nsd1" in fs.service.down_nodes
        assert det.detections and det.detections[0][0] == "nsd1"
        assert det.detection_latencies() == [pytest.approx(latency)]

    def test_restart_marks_up_and_records_recovery(self):
        g, fs, health, det = make()
        run_for(g, 1.0)
        health.crash("nsd1")
        t_crash = g.sim.now
        g.run(until=det.declared_dead("nsd1"))
        run_for(g, 0.5)
        health.restore("nsd1")
        # First renewal goes out immediately on restart: one message latency.
        run_for(g, 0.1)
        assert "nsd1" not in fs.service.down_nodes
        assert det.detected_down == set()
        (node, crash, detected, recovered) = det.recoveries[0]
        assert node == "nsd1"
        assert crash == pytest.approx(t_crash)
        assert detected < recovered
        assert det.mttr_values()[0] == pytest.approx(recovered - t_crash)

    def test_restart_before_expiry_is_never_declared(self):
        # A blip shorter than the lease goes completely unnoticed.
        g, fs, health, det = make()
        run_for(g, 1.0)
        health.crash("nsd1")
        run_for(g, 0.2)
        health.restore("nsd1")
        run_for(g, 3.0)
        assert det.detections == []
        assert fs.service.down_nodes == set()

    def test_declared_dead_fires_immediately_when_already_dead(self):
        g, fs, health, det = make()
        health.crash("nsd1")
        g.run(until=det.declared_dead("nsd1"))
        evt = det.declared_dead("nsd1")
        assert evt.triggered

    def test_metrics_shape(self):
        g, fs, health, det = make()
        health.crash("nsd1")
        g.run(until=det.declared_dead("nsd1"))
        m = det.metrics()
        assert m["failures_detected"] == 1.0
        assert m["lease_duration"] == LEASE
        assert "detection_latency_mean" in m
        assert "mttr_mean" not in m  # no recovery yet

    def test_stop_halts_heartbeats(self):
        g, fs, health, det = make()
        run_for(g, 2.0)
        det.stop()
        seen = det.renewals
        run_for(g, 3.0)
        assert det.renewals == seen


class TestValidation:
    def test_bad_lease(self):
        g, cluster, fs, _ = small_gfs()
        with pytest.raises(ValueError):
            DiskLeaseDetector(
                g.sim, fs.service, NodeHealth(g.sim), "nsd0",
                nodes=["nsd1"], lease_duration=0.0,
            )

    def test_renew_must_fit_inside_lease(self):
        g, cluster, fs, _ = small_gfs()
        with pytest.raises(ValueError):
            DiskLeaseDetector(
                g.sim, fs.service, NodeHealth(g.sim), "nsd0",
                nodes=["nsd1"], lease_duration=1.0, renew_interval=1.5,
            )

    def test_double_start_rejected(self):
        g, fs, health, det = make()
        with pytest.raises(RuntimeError):
            det.start()


class TestNodeHealth:
    def test_crash_restore_cycle(self):
        g, cluster, fs, _ = small_gfs()
        health = NodeHealth(g.sim)
        assert health.is_up("n")
        health.crash("n")
        assert not health.is_up("n")
        assert health.crash_time("n") == g.sim.now
        health.restore("n")
        assert health.is_up("n")

    def test_double_crash_rejected(self):
        g, cluster, fs, _ = small_gfs()
        health = NodeHealth(g.sim)
        health.crash("n")
        with pytest.raises(RuntimeError):
            health.crash("n")
        health.restore("n")
        with pytest.raises(RuntimeError):
            health.restore("n")

    def test_wait_restart_fires_on_restore(self):
        g, cluster, fs, _ = small_gfs()
        health = NodeHealth(g.sim)
        health.crash("n")
        evt = health.wait_restart("n")
        assert not evt.triggered
        health.restore("n")
        assert evt.triggered

    def test_wait_restart_immediate_when_up(self):
        g, cluster, fs, _ = small_gfs()
        health = NodeHealth(g.sim)
        assert health.wait_restart("n").triggered
