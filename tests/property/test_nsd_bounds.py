"""Property tests: Nsd block-store edge cases and checksum consistency.

Random store/fetch/trim sequences against a model dict; every
out-of-bounds access must raise before mutating anything, and the stored
checksum must always match the (zero-padded) contents on disk.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nsd import Nsd

BLOCKS = 8
BS = 512


def make_nsd(store_data=True):
    return Nsd(0, "n0", total_blocks=BLOCKS, block_size=BS, store_data=store_data)


def full_block_crc(blob: bytes) -> int:
    return zlib.crc32(blob + bytes(BS - len(blob)))


store_op = st.tuples(
    st.just("store"),
    st.integers(0, BLOCKS - 1),
    st.integers(0, BS - 1),  # offset
    st.binary(min_size=1, max_size=BS),
)
trim_op = st.tuples(
    st.just("trim"),
    st.integers(0, BLOCKS - 1),
    st.integers(0, BS),
    st.none(),
)
ops = st.lists(st.one_of(store_op, trim_op), max_size=20)


class TestStoreFetchTrimModel:
    @settings(max_examples=150, deadline=None)
    @given(ops=ops)
    def test_contents_and_checksums_track_a_model(self, ops):
        nsd = make_nsd()
        model = {}
        for op, phys, arg, data in ops:
            if op == "store":
                if arg + len(data) > BS:
                    with pytest.raises(ValueError):
                        nsd.store(phys, arg, data)
                    continue
                nsd.store(phys, arg, data)
                old = model.get(phys, b"")
                base = old + bytes(max(0, arg + len(data) - len(old)))
                model[phys] = base[:arg] + data + base[arg + len(data):]
            else:
                nsd.trim(phys, arg)
                if phys in model and len(model[phys]) > arg:
                    model[phys] = model[phys][:arg]
        for phys in range(BLOCKS):
            want = model.get(phys, b"")
            got = nsd.fetch(phys, 0, BS)
            assert got == want + bytes(BS - len(want))
            if phys in model:
                assert nsd.checksum(phys) == full_block_crc(model[phys])
                assert nsd.verify_full(phys)
            else:
                assert nsd.checksum(phys) is None

    @settings(max_examples=80, deadline=None)
    @given(
        phys=st.integers(0, BLOCKS - 1),
        offset=st.integers(0, BS),
        length=st.integers(0, BS),
    )
    def test_fetch_in_bounds_never_raises_out_of_bounds_always(
        self, phys, offset, length
    ):
        nsd = make_nsd()
        nsd.store(phys, 0, b"\x5a" * BS)
        if offset + length > BS:
            with pytest.raises(ValueError):
                nsd.fetch(phys, offset, length)
        else:
            assert len(nsd.fetch(phys, offset, length)) == length


class TestBoundsRejection:
    @given(phys=st.one_of(st.integers(-10, -1), st.integers(BLOCKS, BLOCKS + 10)))
    def test_bad_phys_rejected_everywhere(self, phys):
        nsd = make_nsd()
        with pytest.raises(ValueError):
            nsd.store(phys, 0, b"x")
        with pytest.raises(ValueError):
            nsd.fetch(phys, 0, 1)
        with pytest.raises(ValueError):
            nsd.trim(phys, 0)
        with pytest.raises(ValueError):
            nsd.checksum(phys)
        with pytest.raises(ValueError):
            nsd.corrupt(phys)

    @given(offset=st.integers(-5, -1))
    def test_negative_offset_rejected(self, offset):
        nsd = make_nsd()
        with pytest.raises(ValueError):
            nsd.store(0, offset, b"x")
        with pytest.raises(ValueError):
            nsd.fetch(0, offset, 1)

    @given(keep=st.one_of(st.integers(-5, -1), st.integers(BS + 1, BS + 16)))
    def test_trim_keep_out_of_block_rejected(self, keep):
        nsd = make_nsd()
        with pytest.raises(ValueError):
            nsd.trim(0, keep)

    def test_failed_store_mutates_nothing(self):
        nsd = make_nsd()
        nsd.store(0, 0, b"\x01" * BS)
        before = (nsd.fetch(0, 0, BS), nsd.checksum(0))
        with pytest.raises(ValueError):
            nsd.store(0, BS - 1, b"\x02\x02")  # crosses the block end
        assert (nsd.fetch(0, 0, BS), nsd.checksum(0)) == before


class TestSizeOnlyMode:
    @settings(max_examples=50, deadline=None)
    @given(phys=st.integers(0, BLOCKS - 1), length=st.integers(0, BS))
    def test_fetch_returns_zeros(self, phys, length):
        nsd = make_nsd(store_data=False)
        nsd.store(phys, 0, b"\x77" * BS)
        assert nsd.fetch(phys, 0, length) == bytes(length)
        assert nsd.checksum(phys) is None  # no contents, no sums
