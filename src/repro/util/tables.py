"""Minimal ASCII table renderer for harness output.

Each experiment harness prints its figure/table as rows; this keeps the
output uniform (and diffable in EXPERIMENTS.md) without pulling in a
formatting dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """Column-aligned ASCII table.

    >>> t = Table(["nodes", "read MB/s"])
    >>> t.add_row([4, 812.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    nodes | read MB/s
    ------+----------
        4 |     812.5
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [self._fmt(c) for c in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}" if abs(cell) >= 100 else f"{cell:.3g}"
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows)) if self.rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(r[i].rjust(widths[i]) for i in range(len(self.columns)))
            for r in self.rows
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.extend([header, rule, *body])
        return "\n".join(line.rstrip() for line in lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
