"""E10 benchmark — §8: HSM migration/recall and dual-site archive."""

from repro.experiments.e10_hsm import run_e10


def test_e10_hsm(run_experiment):
    result = run_experiment(run_e10)
    # the water-mark policy brings occupancy from above high water to at or
    # below the low water mark
    assert result.metric("occupancy_before") > 0.55
    assert result.metric("occupancy_after") <= 0.32
    assert result.metric("migrated_files") > 0
    # recall is seconds-to-minutes (tape robot + seek), warm < cold
    assert result.metric("recall_warm_s") < result.metric("recall_cold_s")
    assert 10 < result.metric("recall_cold_s") < 600
    # the copyright-library second copy is complete
    assert result.metric("replicated_segments") == result.metric("migrated_files")
