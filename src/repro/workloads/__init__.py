"""Application workload generators.

The I/O shapes of the applications the paper names:

* :mod:`repro.workloads.enzo`   — Enzo AMR cosmology: periodic multi-TB
  checkpoint dumps ("multiple Terabytes per hour be routinely written")
* :mod:`repro.workloads.viz`    — post-processing visualization: streaming
  reads, network-limited, restartable (the Fig 5 dip)
* :mod:`repro.workloads.sortapp`— "a simple sorting application that merely
  sorted the data output by Enzo, and was completely network limited"
* :mod:`repro.workloads.nvo`    — NVO: database-style partial reads of a
  50 TB catalog
* :mod:`repro.workloads.scec`   — SCEC: ~250 TB written in a single run
* :mod:`repro.workloads.mpiio`  — the Fig 11 MPI-IO benchmark: N clients,
  128 MB blocks, 1 MB transfers
"""

from repro.workloads.base import WorkloadResult
from repro.workloads.enzo import EnzoRun
from repro.workloads.viz import VizReader
from repro.workloads.sortapp import SortApp
from repro.workloads.nvo import NvoQueryStream
from repro.workloads.scec import ScecRun
from repro.workloads.mpiio import mpiio_collective
from repro.workloads.replay import TraceOp, TraceReplay, parse_trace

__all__ = [
    "WorkloadResult",
    "EnzoRun",
    "VizReader",
    "SortApp",
    "NvoQueryStream",
    "ScecRun",
    "mpiio_collective",
    "TraceOp",
    "TraceReplay",
    "parse_trace",
]
