"""Tests for SLO objectives, burn rates, sliding windows, phase stats."""

import pytest

from repro.obs.metrics import Histogram
from repro.obs.slo import (
    AvailabilityObjective,
    LatencyObjective,
    SloTracker,
    phase_stats,
)


def row(t, counters=None, histograms=None, sim=1):
    return {
        "schema": "repro.metrics/v1",
        "kind": "scrape",
        "t": t,
        "sim": sim,
        "counters": counters or {},
        "gauges": {},
        "histograms": histograms or {},
    }


def latency_rows(samples_by_t, bounds=(0.1, 1.0, 10.0)):
    """Cumulative histogram rows from {t: [observations so far]}."""
    rows = []
    h = Histogram("client.read.latency", bounds=list(bounds))
    done = 0
    for t in sorted(samples_by_t):
        for v in samples_by_t[t][done:]:
            h.observe(v)
        done = len(samples_by_t[t])
        rows.append(row(t, histograms={"client.read.latency": h.to_dict()}))
    return rows


class TestAvailability:
    def avail(self, target=0.99, window=5.0):
        return AvailabilityObjective(
            name="a", ok_metric="ok", err_metric="err",
            target=target, window=window,
        )

    def test_perfect_compliance(self):
        rows = [row(0.0, {"ok": 0.0, "err": 0.0}),
                row(1.0, {"ok": 100.0, "err": 0.0})]
        [out] = SloTracker().add(self.avail()).evaluate(rows)
        assert out["compliance"] == 1.0
        assert out["burn_rate"] == 0.0
        assert not out["breached"]

    def test_burn_rate_math(self):
        # 2% bad against a 1% budget = burning 2x.
        rows = [row(0.0, {"ok": 0.0, "err": 0.0}),
                row(1.0, {"ok": 98.0, "err": 2.0})]
        [out] = SloTracker().add(self.avail(target=0.99)).evaluate(rows)
        assert out["compliance"] == pytest.approx(0.98)
        assert out["burn_rate"] == pytest.approx(2.0)
        assert out["breached"]

    def test_zero_budget_burn_is_none_not_inf(self):
        # target=1.0 must stay JSON-safe: burn None, breach on any error.
        rows = [row(0.0, {"ok": 0.0, "err": 0.0}),
                row(1.0, {"ok": 99.0, "err": 1.0})]
        [out] = SloTracker().add(self.avail(target=1.0)).evaluate(rows)
        assert out["burn_rate"] is None
        assert out["max_window_burn"] is None
        assert out["breached"]

    def test_zero_budget_clean_run_ok(self):
        rows = [row(0.0, {"ok": 0.0, "err": 0.0}),
                row(1.0, {"ok": 50.0, "err": 0.0})]
        [out] = SloTracker().add(self.avail(target=1.0)).evaluate(rows)
        assert not out["breached"]
        assert out["error_budget"] == 0.0

    def test_labeled_children_aggregated(self):
        rows = [row(1.0, {"ok{client=a}": 30.0, "ok{client=b}": 20.0,
                          "err{client=a}": 0.0})]
        [out] = SloTracker().add(self.avail()).evaluate(rows)
        assert out["events"] == 50.0

    def test_sliding_window_finds_worst_burst(self):
        # All 4 errors land in one 1s window of a 4s run.
        rows = [
            row(0.0, {"ok": 0.0, "err": 0.0}),
            row(1.0, {"ok": 100.0, "err": 0.0}),
            row(2.0, {"ok": 196.0, "err": 4.0}),
            row(3.0, {"ok": 296.0, "err": 4.0}),
        ]
        [out] = SloTracker().add(
            self.avail(target=0.99, window=1.0)
        ).evaluate(rows)
        # Overall: 4/300 bad → 1.33x. Worst window: 4/100 bad → 4x.
        assert out["burn_rate"] == pytest.approx(4 / 3, rel=1e-6)
        assert out["max_window_burn"] == pytest.approx(4.0)
        assert out["max_window_span"] == [1.0, 2.0]

    def test_empty_windows_vacuously_compliant(self):
        rows = [row(float(t), {"ok": 10.0, "err": 0.0}) for t in range(3)]
        [out] = SloTracker().add(self.avail(window=1.0)).evaluate(rows)
        assert not out["breached"]

    def test_no_rows(self):
        [out] = SloTracker().add(self.avail()).evaluate([])
        assert out["compliance"] == 1.0
        assert out["events"] == 0.0


class TestLatency:
    def lat(self, le=1.0, target=0.9, window=5.0):
        return LatencyObjective(
            name="l", metric="client.read.latency",
            le=le, target=target, window=window,
        )

    def test_compliance_from_bucket_counts(self):
        rows = latency_rows({1.0: [0.05] * 9 + [5.0]})
        [out] = SloTracker().add(self.lat(le=1.0, target=0.9)).evaluate(rows)
        assert out["compliance"] == pytest.approx(0.9)
        assert not out["breached"]

    def test_threshold_on_bucket_boundary_exact(self):
        # An observation exactly at le counts as good (le semantics).
        rows = latency_rows({1.0: [1.0, 2.0]})
        [out] = SloTracker().add(self.lat(le=1.0, target=0.5)).evaluate(rows)
        assert out["good_events"] == 1.0
        assert out["compliance"] == 0.5

    def test_mid_bucket_threshold_rounds_against_objective(self):
        # 0.5 falls inside bucket (0.1, 1.0]; its count must not be
        # credited as "under 0.5".
        rows = latency_rows({1.0: [0.05, 0.5]})
        [out] = SloTracker().add(self.lat(le=0.5, target=0.5)).evaluate(rows)
        assert out["good_events"] == 1.0

    def test_windowed_latency_burst(self):
        rows = latency_rows({
            0.0: [],
            1.0: [0.05] * 10,
            2.0: [0.05] * 10 + [5.0] * 10,
        })
        [out] = SloTracker().add(
            self.lat(le=1.0, target=0.9, window=1.0)
        ).evaluate(rows)
        assert out["compliance"] == pytest.approx(0.5)
        assert out["max_window_compliance"] == pytest.approx(0.0)
        assert out["max_window_span"] == [1.0, 2.0]

    def test_result_carries_objective_fields(self):
        [out] = SloTracker().add(self.lat()).evaluate([])
        assert out["metric"] == "client.read.latency"
        assert out["le"] == 1.0
        assert out["kind"] == "latency"


class TestPhaseStats:
    def test_per_phase_deltas(self):
        h = Histogram("client.read.latency", bounds=[0.1, 1.0])
        rows = []
        # t=0: nothing yet.
        rows.append(row(0.0, {"ok": 0.0, "err": 0.0},
                        {"client.read.latency": h.to_dict()}))
        # t=1: 10 fast reads.
        for _ in range(10):
            h.observe(0.05)
        rows.append(row(1.0, {"ok": 10.0, "err": 0.0},
                        {"client.read.latency": h.to_dict()}))
        # t=2: 5 slow reads and 5 errors.
        for _ in range(5):
            h.observe(0.5)
        rows.append(row(2.0, {"ok": 15.0, "err": 5.0},
                        {"client.read.latency": h.to_dict()}))
        phases = [
            {"name": "nominal", "t0": 0.0, "t1": 1.0},
            {"name": "degraded", "t0": 1.0, "t1": 2.0},
        ]
        stats = phase_stats(rows, phases, "client.read.latency", "ok", "err")
        assert stats[0]["reads"] == 10
        assert stats[0]["availability"] == 1.0
        assert stats[0]["p50"] is not None and stats[0]["p50"] <= 0.1
        assert stats[1]["reads"] == 5
        assert stats[1]["availability"] == pytest.approx(0.5)
        assert stats[1]["p99"] is not None and stats[1]["p99"] > 0.1

    def test_phase_with_no_reads(self):
        rows = [row(0.0, {"ok": 0.0, "err": 0.0})]
        stats = phase_stats(
            rows, [{"name": "idle", "t0": 0.0, "t1": 1.0}],
            "client.read.latency", "ok", "err",
        )
        assert stats[0]["reads"] == 0
        assert stats[0]["p50"] is None
        assert stats[0]["availability"] == 1.0
