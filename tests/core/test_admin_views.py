"""Tests for the mmls* admin views and engine diagnostics."""

import pytest

from repro.util.units import MB

from tests.core.testbed import mounted, run_io, small_gfs


class TestMmlsCluster:
    def test_contains_key_facts(self):
        g, cluster, fs, _ = small_gfs()
        out = cluster.mmlscluster()
        assert "sdsc" in out
        assert "nsd0" in out  # primary config server
        assert "gpfs0" in out
        assert "EMPTY" in out  # default cipherList

    def test_reflects_cipher_change(self):
        g, cluster, fs, _ = small_gfs()
        cluster.mmauth_update("AUTHONLY")
        assert "AUTHONLY" in cluster.mmlscluster()


class TestMmlsFs:
    def test_capacity_and_usage(self):
        g, cluster, fs, _ = small_gfs()
        m = mounted(g, cluster, node="c0")

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, b"x" * fs.block_size * 2)
            yield m.close(h)

        run_io(g, io())
        out = cluster.mmlsfs("gpfs0")
        assert "block size" in out
        assert "262.14 KB" in out  # 256 KiB block size, decimal-formatted
        assert "524.29 KB" in out  # two used blocks
        assert "mounts" in out

    def test_unknown_device(self):
        from repro.core.cluster import ClusterError

        g, cluster, fs, _ = small_gfs()
        with pytest.raises(ClusterError):
            cluster.mmlsfs("ghost")


class TestMmlsAuth:
    def test_shows_grants_and_fingerprints(self):
        g, cluster, fs, _ = small_gfs()
        cluster.mmauth_genkey()
        other = g.add_cluster("ncsa")
        other_pub = other.mmauth_genkey()
        cluster.mmauth_add("ncsa", other_pub)
        cluster.mmauth_grant("ncsa", "gpfs0", "ro")
        out = cluster.mmlsauth()
        assert "ncsa" in out
        assert "gpfs0:ro" in out
        assert "(no key!)" not in out

    def test_missing_key_flagged(self):
        g, cluster, fs, _ = small_gfs()
        cluster.mmauth_grant("phantom", "gpfs0", "rw")
        assert "(no key!)" in cluster.mmlsauth()


class TestLinkUtilization:
    def test_active_links_reported(self):
        g, cluster, fs, _ = small_gfs()
        m = mounted(g, cluster, node="c0")

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, b"z" * int(MB(4)))
            # sample while flushes are in flight
            yield g.sim.timeout(0.001)
            return g.engine.link_utilization()

        util = run_io(g, io())
        assert util  # something was flowing
        for name, frac in util.items():
            assert 0 < frac <= 1.0 + 1e-9

    def test_idle_engine_empty(self):
        g, cluster, fs, _ = small_gfs()
        assert g.engine.link_utilization() == {}


class TestStripedGridFtp:
    def test_striped_beats_single_host(self):
        from repro.grid import GridFtp
        from repro.net import TcpModel
        from repro.util.units import Gbps, MiB

        g, cluster, fs, _ = small_gfs()
        net = g.network
        # two movers per side behind a wide trunk
        net.add_node("far-sw", kind="switch")
        net.add_link("sw", "far-sw", Gbps(10), delay=0.030)
        for i in range(2):
            net.add_host(f"mover{i}", "sw", Gbps(1))
            net.add_host(f"sink{i}", "far-sw", Gbps(1))
        ftp = GridFtp(g.sim, g.engine, g.messages)
        tcp = TcpModel(window=float(MiB(8)))
        single = g.run(
            until=ftp.transfer("mover0", "sink0", MB(400), streams=2, tcp=tcp)
        )
        striped = g.run(
            until=ftp.striped_transfer(
                ["mover0", "mover1"], ["sink0", "sink1"], MB(400),
                streams_per_pair=2, tcp=tcp,
            )
        )
        assert striped.transfer_rate > 1.5 * single.transfer_rate

    def test_validation(self):
        from repro.grid import GridFtp

        g, cluster, fs, _ = small_gfs()
        ftp = GridFtp(g.sim, g.engine, g.messages)
        with pytest.raises(ValueError):
            ftp.striped_transfer([], ["x"], 1)
        with pytest.raises(ValueError):
            ftp.striped_transfer(["a"], ["b"], -1)
        with pytest.raises(ValueError):
            ftp.striped_transfer(["a"], ["b"], 1, streams_per_pair=0)
