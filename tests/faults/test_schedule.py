"""Tests for the declarative FaultSchedule / FaultAction layer."""

import pytest

from repro.faults import FaultAction, FaultSchedule


class TestFaultAction:
    def test_valid_kinds_only(self):
        with pytest.raises(ValueError):
            FaultAction(at=1.0, kind="meteor_strike", target="nsd0")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultAction(at=-0.5, kind="node_crash", target="nsd0")

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            FaultAction(at=1.0, kind="node_crash", target="")

    def test_round_trip(self):
        action = FaultAction(
            at=2.0, kind="link_brownout", target="a->b", params={"factor": 0.5}
        )
        again = FaultAction.from_dict(action.to_dict())
        assert again.at == action.at
        assert again.kind == action.kind
        assert again.target == action.target
        assert dict(again.params) == {"factor": 0.5}


class TestFaultSchedule:
    def test_empty(self):
        s = FaultSchedule()
        assert s.empty
        assert len(s) == 0
        assert s.end_time == 0.0

    def test_builders_chain(self):
        s = (
            FaultSchedule()
            .crash_node(1.0, "nsd1")
            .restart_node(3.0, "nsd1")
        )
        assert len(s) == 2
        assert [a.kind for a in s.ordered()] == ["node_crash", "node_restart"]
        assert s.end_time == 3.0

    def test_flap_expands_to_down_and_restore(self):
        s = FaultSchedule().flap_link(1.0, "a->b", down_for=0.5)
        kinds = [(a.at, a.kind) for a in s.ordered()]
        assert kinds == [(1.0, "link_down"), (1.5, "link_restore")]

    def test_brownout_with_duration_expands_restore(self):
        s = FaultSchedule().brownout_link(2.0, "a->b", factor=0.25, duration=1.0)
        kinds = [(a.at, a.kind) for a in s.ordered()]
        assert kinds == [(2.0, "link_brownout"), (3.0, "link_restore")]
        assert s.ordered()[0].params["factor"] == 0.25

    def test_brownout_factor_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule().brownout_link(1.0, "a->b", factor=1.5)
        with pytest.raises(ValueError):
            FaultSchedule().brownout_link(1.0, "a->b", factor=0.0)

    def test_loss_burst_expands_clear(self):
        s = FaultSchedule().loss_burst(1.0, loss=1e-3, duration=2.0)
        kinds = [(a.at, a.kind) for a in s.ordered()]
        assert kinds == [(1.0, "loss_burst"), (3.0, "loss_clear")]

    def test_ordered_is_stable_by_time(self):
        s = (
            FaultSchedule()
            .crash_node(5.0, "late")
            .crash_node(1.0, "early")
            .crash_node(1.0, "early2")
        )
        assert [a.target for a in s.ordered()] == ["early", "early2", "late"]

    def test_crash_manager_builder(self):
        s = (
            FaultSchedule()
            .crash_manager(1.0, "nsd00")
            .restart_node(5.0, "nsd00")
        )
        assert [a.kind for a in s.ordered()] == [
            "crash_manager", "node_restart",
        ]
        again = FaultSchedule.from_dicts(s.to_dicts())
        assert [a.kind for a in again.ordered()] == [
            "crash_manager", "node_restart",
        ]
        assert again.ordered()[0].target == "nsd00"

    def test_dict_round_trip(self):
        s = (
            FaultSchedule()
            .crash_node(1.0, "nsd1")
            .fail_disk(4.0, "ds4100-00", lun=2)
        )
        again = FaultSchedule.from_dicts(s.to_dicts())
        assert len(again) == len(s)
        assert [a.kind for a in again.ordered()] == [a.kind for a in s.ordered()]
        assert again.ordered()[1].params["lun"] == 2
