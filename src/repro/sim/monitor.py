"""Simulation-time instrumentation.

:class:`Monitor` bundles the rate meters and gauges an experiment registers,
stamped with the simulation clock; the experiment harnesses read figures out
of it at the end of a run.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.kernel import Simulation
from repro.util.timeseries import RateMeter, TimeSeries


class Gauge:
    """A sampled scalar (queue depth, cache occupancy) over sim time."""

    def __init__(self, sim: Simulation, name: str = "") -> None:
        self.sim = sim
        self.series = TimeSeries(name=name)

    def set(self, value: float) -> None:
        self.series.add(self.sim.now, value)

    def last(self) -> float:
        if self.series.empty:
            raise ValueError(f"gauge {self.series.name!r} never set")
        return self.series.values[-1]


class Monitor:
    """Named rate meters + gauges bound to one simulation."""

    def __init__(self, sim: Simulation, window: float = 1.0) -> None:
        self.sim = sim
        self.window = window
        self.meters: Dict[str, RateMeter] = {}
        self.gauges: Dict[str, Gauge] = {}

    def meter(self, name: str, window: float | None = None) -> RateMeter:
        m = self.meters.get(name)
        if m is None:
            m = RateMeter(window=window or self.window, name=name)
            self.meters[name] = m
        return m

    def record_bytes(self, name: str, nbytes: float) -> None:
        """Record ``nbytes`` completed now on meter ``name``."""
        self.meter(name).record(self.sim.now, nbytes)

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = Gauge(self.sim, name=name)
            self.gauges[name] = g
        return g

    def rate_series(self, name: str, t_end: float | None = None) -> TimeSeries:
        """Rate trace of meter ``name``; raises ``KeyError`` if never recorded.

        (Looking the meter up via :meth:`meter` would silently create an
        empty one, turning a typo into an empty series downstream.)
        """
        m = self.meters.get(name)
        if m is None:
            raise KeyError(
                f"no meter {name!r} was ever recorded; "
                f"known meters: {sorted(self.meters)}"
            )
        return m.series(t_end if t_end is not None else self.sim.now)
