"""Tests for the fluid flow engine."""

import pytest

from repro.net import FlowEngine, Network, TcpModel
from repro.sim import Simulation
from repro.util.units import GB, Gbps, MB


def line(rate=Gbps(1), delay=0.0, efficiency=1.0):
    """Two hosts joined by one duplex link."""
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", rate, delay=delay, efficiency=efficiency)
    return net


def make_engine(net, sim=None):
    sim = sim or Simulation()
    return sim, FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))


class TestSingleFlow:
    def test_transfer_time_is_size_over_rate(self):
        net = line(rate=MB(100))
        sim, eng = make_engine(net)
        evt = eng.transfer("a", "b", MB(100))
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0)

    def test_propagation_delay_added_at_completion(self):
        net = line(rate=MB(100), delay=0.040)
        sim, eng = make_engine(net)
        evt = eng.transfer("a", "b", MB(100))
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0 + 0.040)

    def test_zero_byte_transfer_takes_delay_only(self):
        net = line(delay=0.020)
        sim, eng = make_engine(net)
        evt = eng.transfer("a", "b", 0)
        sim.run(until=evt)
        assert sim.now == pytest.approx(0.020)

    def test_zero_byte_multi_hop_sums_propagation_delays(self):
        net = Network()
        for n in ("a", "sw", "b"):
            net.add_node(n)
        net.add_link("a", "sw", MB(100), delay=0.010, efficiency=1.0)
        net.add_link("sw", "b", MB(100), delay=0.025, efficiency=1.0)
        sim, eng = make_engine(net)
        evt = eng.transfer("a", "b", 0)
        sim.run(until=evt)
        assert sim.now == pytest.approx(0.035)
        assert eng.active_count == 0
        assert eng.bytes_moved == 0

    def test_zero_byte_transfer_does_not_disturb_active_flows(self):
        # A zero-byte "transfer" is pure signalling: it never registers a
        # flow, so the sharing (and finish time) of real flows is unchanged.
        net = line(rate=MB(100), delay=0.020)
        sim, eng = make_engine(net)
        e1 = eng.transfer("a", "b", MB(100))

        def ping(sim):
            yield sim.timeout(0.25)
            assert eng.active_count == 1
            evt = eng.transfer("a", "b", 0)
            yield evt
            assert sim.now == pytest.approx(0.25 + 0.020)
            assert eng.active_count == 1  # still just the real flow

        sim.process(ping(sim))
        sim.run(until=e1)
        assert sim.now == pytest.approx(1.0 + 0.020)

    def test_link_efficiency_respected(self):
        net = line(rate=MB(100), efficiency=0.5)
        sim, eng = make_engine(net)
        evt = eng.transfer("a", "b", MB(100))
        sim.run(until=evt)
        assert sim.now == pytest.approx(2.0)

    def test_loopback_uses_local_rate(self):
        net = line()
        sim = Simulation()
        eng = FlowEngine(sim, net, local_rate=MB(200), default_tcp=TcpModel(window=GB(1)))
        evt = eng.transfer("a", "a", MB(100))
        sim.run(until=evt)
        assert sim.now == pytest.approx(0.5)

    def test_negative_bytes_rejected(self):
        net = line()
        sim, eng = make_engine(net)
        with pytest.raises(ValueError):
            eng.transfer("a", "b", -1)

    def test_counters(self):
        net = line(rate=MB(100))
        sim, eng = make_engine(net)
        evt = eng.transfer("a", "b", MB(50))
        sim.run(until=evt)
        assert eng.bytes_moved == MB(50)
        assert eng.completed_flows == 1
        assert eng.active_count == 0


class TestSharing:
    def test_two_flows_share_then_speed_up(self):
        # Flow 1: 100 MB; Flow 2: 50 MB. Sharing a 100 MB/s link they get
        # 50 each; flow 2 finishes at t=1, then flow 1 runs at full rate and
        # finishes at t=1.5.
        net = line(rate=MB(100))
        sim, eng = make_engine(net)
        e1 = eng.transfer("a", "b", MB(100))
        e2 = eng.transfer("a", "b", MB(50))
        sim.run(until=e2)
        assert sim.now == pytest.approx(1.0)
        sim.run(until=e1)
        assert sim.now == pytest.approx(1.5)

    def test_late_arrival_slows_first_flow(self):
        net = line(rate=MB(100))
        sim, eng = make_engine(net)
        e1 = eng.transfer("a", "b", MB(100))

        def late(sim):
            yield sim.timeout(0.5)
            yield eng.transfer("a", "b", MB(25))

        sim.process(late(sim))
        sim.run(until=e1)
        # First 0.5s at 100 MB/s (50 MB done); then share 50/50 until the
        # 25 MB flow drains at t=1.0; remaining 25 MB at full rate → t=1.25.
        assert sim.now == pytest.approx(1.25)

    def test_opposite_directions_do_not_share(self):
        net = line(rate=MB(100))
        sim, eng = make_engine(net)
        e1 = eng.transfer("a", "b", MB(100))
        e2 = eng.transfer("b", "a", MB(100))
        sim.run(until=e1)
        assert sim.now == pytest.approx(1.0)
        sim.run(until=e2)
        assert sim.now == pytest.approx(1.0)

    def test_window_cap_limits_single_flow(self):
        # 1 MB window at 100 ms RTT → 10 MB/s on a 100 MB/s link.
        net = line(rate=MB(100), delay=0.050)
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=MB(1)))
        evt = eng.transfer("a", "b", MB(10))
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0 + 0.050)

    def test_parallel_capped_flows_fill_link(self):
        # The paper's central phenomenon: 20 window-capped streams (10 MB/s
        # each) aggregate to the 100 MB/s line rate.
        net = line(rate=MB(100), delay=0.050)
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=MB(1)))
        events = [eng.transfer("a", "b", MB(25)) for _ in range(20)]
        for evt in events:
            sim.run(until=evt)
        # 500 MB total at 100 MB/s aggregate = 5 s (+ prop delay).
        assert sim.now == pytest.approx(5.0 + 0.050)


class TestTagSeries:
    def test_rate_trace_recorded(self):
        net = line(rate=MB(100))
        sim, eng = make_engine(net)
        evt = eng.transfer("a", "b", MB(100), tags=("wan",))
        sim.run(until=evt)
        series = eng.tag_rate_series("wan")
        assert series.values[0] == pytest.approx(MB(100))
        assert series.values[-1] == 0.0

    def test_tag_sums_concurrent_flows(self):
        net = line(rate=MB(100))
        sim, eng = make_engine(net)
        eng.transfer("a", "b", MB(100), tags=("wan",))
        eng.transfer("a", "b", MB(100), tags=("wan",))
        sim.run(until=sim.timeout(0.1))
        series = eng.tag_rate_series("wan")
        assert series.values[0] == pytest.approx(MB(100))  # both flows sum


class TestMultiHop:
    def test_shared_trunk_bottleneck(self):
        # Two site hosts funnel through a 100 MB/s trunk.
        net = Network()
        for n in ["h1", "h2", "sw1", "sw2", "dst"]:
            net.add_node(n)
        net.add_link("h1", "sw1", MB(1000), efficiency=1.0)
        net.add_link("h2", "sw1", MB(1000), efficiency=1.0)
        net.add_link("sw1", "sw2", MB(100), efficiency=1.0)
        net.add_link("sw2", "dst", MB(1000), efficiency=1.0)
        sim, eng = make_engine(net)
        e1 = eng.transfer("h1", "dst", MB(50))
        e2 = eng.transfer("h2", "dst", MB(50))
        sim.run(until=e1)
        sim.run(until=e2)
        assert sim.now == pytest.approx(1.0)  # 100 MB over shared 100 MB/s
