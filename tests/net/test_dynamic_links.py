"""Tests for dynamic link capacity changes (brownouts, upgrades)."""

import pytest

from repro.net import FlowEngine, Network, TcpModel
from repro.sim import Simulation
from repro.util.units import GB, MB


def line(rate):
    net = Network()
    net.add_node("a")
    net.add_node("b")
    link, _ = net.add_link("a", "b", rate, efficiency=1.0)
    return net, link


class TestSetRate:
    def test_validation(self):
        net, link = line(MB(100))
        with pytest.raises(ValueError):
            link.set_rate(0)

    def test_brownout_slows_active_flow(self):
        net, link = line(MB(100))
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = engine.transfer("a", "b", MB(100))

        def brownout(sim):
            yield sim.timeout(0.5)  # 50 MB transferred
            link.set_rate(MB(25))
            engine.poke()

        sim.process(brownout(sim))
        sim.run(until=evt)
        # 0.5s at 100 MB/s, then 50 MB at 25 MB/s = 2.0s more
        assert sim.now == pytest.approx(2.5)

    def test_upgrade_speeds_up(self):
        net, link = line(MB(50))
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = engine.transfer("a", "b", MB(100))

        def upgrade(sim):
            yield sim.timeout(1.0)  # 50 MB done
            link.set_rate(MB(200))
            engine.poke()

        sim.process(upgrade(sim))
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.25)

    def test_poke_without_change_is_harmless(self):
        net, link = line(MB(100))
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = engine.transfer("a", "b", MB(100))
        engine.poke()
        engine.poke()
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0)
