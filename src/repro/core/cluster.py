"""GPFS clusters and the ``mm*`` administrative surface.

A :class:`Gfs` is the simulation universe: one clock, one network, one flow
engine, and the clusters living on it. A :class:`Cluster` is "a set of
nodes which share configuration and local filesystem information" (§6.1):
config servers, a keystore, a cipherList setting, a UID domain and
grid-mapfile, its filesystems, and its view of remote clusters.

The administrative verbs mirror the real commands the paper describes —
``mmcrfs``, ``mmmount``, ``mmauth``, ``mmremotecluster``, ``mmremotefs`` —
so the examples read like the deployment they reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.auth.cipher import CipherPolicy, cipher as cipher_lookup
from repro.auth.keys import KeyStore
from repro.auth.rsa import RsaPublicKey, generate_keypair
from repro.auth.uid import GridMapFile, UidDomain
from repro.core.client import Identity, MountedFs, ROOT
from repro.core.filesystem import Filesystem
from repro.core.nsd import Nsd, NsdServer, NsdService
from repro.net.flow import FlowEngine
from repro.net.message import MessageService
from repro.net.tcp import TcpModel
from repro.net.topology import Network
from repro.obs.registry import OBS
from repro.sim.kernel import Event, Simulation
from repro.sim.rand import RngRegistry
from repro.storage.array import Lun
from repro.storage.san import Hba
from repro.util.units import MiB


class ClusterError(RuntimeError):
    """Administrative misuse (unknown device, daemon state, ...)."""


@dataclass
class NsdSpec:
    """One NSD to create: its server node, backing LUN, and size in blocks.

    ``server_tags`` label every data flow through this NSD's server (used
    by scenarios to attribute traffic to e.g. a SCinet uplink, Fig 8).
    ``failure_group`` is the replica-placement domain (``mmcrnsd``'s
    FailureGroup column); None lets mmcrfs assign one per server node, so
    replicas of a block never share an NSD server by default.
    """

    server: str
    blocks: int
    lun: Optional[Lun] = None
    hba: Optional[Hba] = None
    server_tags: Tuple[str, ...] = ()
    failure_group: Optional[int] = None

    def __post_init__(self) -> None:
        if self.blocks <= 0:
            raise ValueError("NSD must have a positive block count")


@dataclass
class RemoteClusterDef:
    """mmremotecluster: another cluster as seen from the importing side."""

    name: str
    contact_nodes: List[str]


@dataclass
class RemoteFsDef:
    """mmremotefs: a remote device mapped to a local mount alias."""

    local_device: str
    cluster: str
    remote_device: str


class Gfs:
    """The universe: clock + network + clusters."""

    def __init__(self, seed: int = 0, default_tcp: Optional[TcpModel] = None) -> None:
        self.sim = Simulation()
        self.network = Network()
        self.engine = FlowEngine(self.sim, self.network, default_tcp=default_tcp)
        self.messages = MessageService(self.sim, self.network)
        self.rng = RngRegistry(seed)
        self.clusters: Dict[str, Cluster] = {}
        self.node_cluster: Dict[str, str] = {}
        self._crypto_pipes: Dict[str, object] = {}
        if OBS.enabled:
            from repro.obs.wire import attach_gfs

            attach_gfs(self)

    def add_cluster(self, name: str, site: str = "") -> "Cluster":
        if name in self.clusters:
            raise ClusterError(f"cluster {name!r} already exists")
        cluster = Cluster(self, name, site=site or name)
        self.clusters[name] = cluster
        return cluster

    def cluster(self, name: str) -> "Cluster":
        try:
            return self.clusters[name]
        except KeyError:
            raise ClusterError(f"unknown cluster {name!r}") from None

    def cluster_of_node(self, node: str) -> Optional["Cluster"]:
        name = self.node_cluster.get(node)
        return self.clusters.get(name) if name else None

    def pair_cipher(self, src_node: str, dst_node: str) -> Optional[CipherPolicy]:
        """The cipher governing traffic between two nodes (None if intra-cluster)."""
        a = self.cluster_of_node(src_node)
        b = self.cluster_of_node(dst_node)
        if a is None or b is None or a is b:
            return None
        # The serving cluster's policy governs, but the connection runs at
        # the stricter of the two ends' crypto speeds.
        policies = [a.cipher, b.cipher]
        encrypting = [p for p in policies if p.encrypts]
        if not encrypting:
            return None
        return min(encrypting, key=lambda p: p.crypto_rate or float("inf"))

    def _pair_cap(self, src_node: str, dst_node: str) -> Optional[float]:
        policy = self.pair_cipher(src_node, dst_node)
        return policy.crypto_rate if policy else None

    def crypto_pipes_for(self, src_node: str, dst_node: str) -> list:
        """Per-node software-crypto stages for an encrypted transfer.

        Encryption runs on the CPU, so its throughput ceiling is per *node*,
        not per connection: a client decrypting streams from 8 NSD servers
        still decrypts at one CPU's rate. Each node gets one shared pipe
        (created on demand); encrypted transfers pass through the sender's
        and the receiver's.
        """
        policy = self.pair_cipher(src_node, dst_node)
        if policy is None or not policy.encrypts:
            return []
        from repro.storage.pipes import Pipe

        pipes = []
        for node in (src_node, dst_node):
            pipe = self._crypto_pipes.get(node)
            if pipe is None or pipe.rate != policy.crypto_rate:
                pipe = Pipe(self.sim, policy.crypto_rate, name=f"crypto:{node}")
                self._crypto_pipes[node] = pipe
            pipes.append(pipe)
        return pipes

    def run(self, until=None):
        return self.sim.run(until=until)


class Cluster:
    """One administrative domain's GPFS cluster."""

    def __init__(self, gfs: Gfs, name: str, site: str = "") -> None:
        self.gfs = gfs
        self.name = name
        self.site = site
        self.nodes: List[str] = []
        self.keystore = KeyStore(name)
        self.cipher: CipherPolicy = cipher_lookup("EMPTY")
        self.uid_domain = UidDomain(site)
        self.gridmap = GridMapFile(self.uid_domain)
        self.filesystems: Dict[str, Filesystem] = {}
        self.remote_clusters: Dict[str, RemoteClusterDef] = {}
        self.remote_fs: Dict[str, RemoteFsDef] = {}
        #: mmauth grants: cluster name → {device → "ro"|"rw"}
        self.grants: Dict[str, Dict[str, str]] = {}
        self.active_remote_mounts = 0

    # -- membership -----------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Register an existing network node as a cluster member."""
        if node not in self.gfs.network.nodes:
            raise ClusterError(f"node {node!r} is not on the network")
        owner = self.gfs.node_cluster.get(node)
        if owner is not None:
            raise ClusterError(f"node {node!r} already belongs to cluster {owner!r}")
        self.nodes.append(node)
        self.gfs.node_cluster[node] = self.name

    def add_nodes(self, nodes) -> None:
        for node in nodes:
            self.add_node(node)

    @property
    def primary_config_server(self) -> str:
        if not self.nodes:
            raise ClusterError(f"cluster {self.name!r} has no nodes")
        return self.nodes[0]

    @property
    def secondary_config_server(self) -> Optional[str]:
        return self.nodes[1] if len(self.nodes) > 1 else None

    def active_config_server(self, down_nodes: Optional[set] = None) -> str:
        """The config server currently answering (§6.1: primary, and
        optionally a secondary, maintain master copies of all configuration
        files)."""
        down = down_nodes or set()
        if self.primary_config_server not in down:
            return self.primary_config_server
        secondary = self.secondary_config_server
        if secondary is not None and secondary not in down:
            return secondary
        raise ClusterError(
            f"cluster {self.name!r}: both configuration servers are down"
        )

    # -- collective commands (§6.1's mmdsh / distributed shell) -----------------

    def mmdsh(self, payload_bytes: float = 4096.0,
              down_nodes: Optional[set] = None) -> "Event":
        """Run a collective command: the config server pushes to every node
        and waits for every acknowledgement (the rsh/ssh fan-out that GPFS
        collective commands are built on, §6.1). Value is the node count.
        """
        source = self.active_config_server(down_nodes)
        gfs = self.gfs

        def _proc():
            sends = [
                gfs.messages.round_trip(source, node, request_bytes=payload_bytes,
                                        reply_bytes=256)
                for node in self.nodes
                if node != source
            ]
            if sends:
                yield gfs.sim.all_of(sends)
            else:
                yield gfs.sim.timeout(0.0)
            return len(self.nodes)

        return gfs.sim.process(_proc(), name=f"mmdsh:{self.name}")

    # -- accounts (the per-site UID space of §6) --------------------------------

    def add_user(self, username: str, uid: int, gid: int = 100,
                 dn: Optional[str] = None) -> Identity:
        acct = self.uid_domain.add_user(username, uid, gid)
        if dn is not None:
            self.gridmap.add(dn, username)
        return Identity(uid=acct.uid, gid=acct.gid, dn=dn, username=username)

    def identity_for_dn(self, dn: str, use_dn_ownership: bool = True) -> Identity:
        """Resolve a GSI DN to a local identity via the grid-mapfile."""
        acct = self.gridmap.resolve(dn)
        return Identity(
            uid=acct.uid,
            gid=acct.gid,
            dn=dn if use_dn_ownership else None,
            username=acct.username,
        )

    # -- mmauth -------------------------------------------------------------------

    def mmauth_genkey(self, bits: int = 256) -> RsaPublicKey:
        """Generate the cluster keypair (``mmauth genkey new``)."""
        if self.active_remote_mounts:
            raise ClusterError(
                "mmauth genkey requires all GPFS daemons shut down "
                f"({self.active_remote_mounts} remote mounts active)"
            )
        keypair = generate_keypair(
            bits=bits, rng=self.gfs.rng.stream(f"mmauth:{self.name}")
        )
        self.keystore.set_own(keypair)
        return keypair.public

    def mmauth_add(self, cluster: str, public_key: RsaPublicKey) -> None:
        """Install a remote cluster's public key (out-of-band exchange)."""
        self.keystore.import_public(cluster, public_key)

    def mmauth_grant(self, cluster: str, device: str, access: str = "ro") -> None:
        """Allow ``cluster`` to mount ``device`` (``mmauth grant``)."""
        if access not in ("ro", "rw"):
            raise ValueError("access must be 'ro' or 'rw'")
        if device not in self.filesystems:
            raise ClusterError(f"no filesystem {device!r} in cluster {self.name!r}")
        self.grants.setdefault(cluster, {})[device] = access

    def mmauth_update(self, cipher_name: str) -> None:
        """Set the cipherList (requires quiesced daemons, as in GPFS 2.3)."""
        if self.active_remote_mounts:
            raise ClusterError("cannot change cipherList with remote mounts active")
        self.cipher = cipher_lookup(cipher_name)

    def granted_access(self, cluster: str, device: str) -> Optional[str]:
        return self.grants.get(cluster, {}).get(device)

    # -- mmcrfs ---------------------------------------------------------------------

    def mmcrfs(
        self,
        device: str,
        specs: List[NsdSpec],
        block_size: int = MiB(1),
        manager_node: Optional[str] = None,
        store_data: bool = True,
        replication=None,
    ) -> Filesystem:
        """Create a filesystem striped over the given NSDs.

        ``replication`` is a :class:`~repro.core.replication.ReplicationPolicy`
        (``mmcrfs -r``); default is R=1, no verification — the legacy path.
        """
        if device in self.filesystems:
            raise ClusterError(f"filesystem {device!r} already exists")
        if not specs:
            raise ClusterError("mmcrfs needs at least one NSD")
        for spec in specs:
            if spec.server not in self.nodes:
                raise ClusterError(
                    f"NSD server {spec.server!r} is not a member of cluster {self.name!r}"
                )
        # Default failure groups: one per server node — replicas of a block
        # then never sit behind the same NSD server.
        group_of_server = {
            srv: k for k, srv in enumerate(dict.fromkeys(s.server for s in specs))
        }
        nsds: List[Nsd] = []
        servers: Dict[int, NsdServer] = {}
        server_objs: Dict[str, NsdServer] = {}
        for i, spec in enumerate(specs):
            nsd = Nsd(
                nsd_id=i,
                name=f"{device}-nsd{i}",
                total_blocks=spec.blocks,
                block_size=block_size,
                lun=spec.lun,
                store_data=store_data,
                failure_group=(
                    spec.failure_group
                    if spec.failure_group is not None
                    else group_of_server[spec.server]
                ),
            )
            nsds.append(nsd)
            server = server_objs.get(spec.server)
            if server is None:
                server = NsdServer(spec.server, [], hba=spec.hba, tags=spec.server_tags)
                server_objs[spec.server] = server
            server.nsds.append(nsd)
            servers[i] = server
        # Backup NSD servers: the bricks are twin-tailed, so the next
        # distinct server in the configuration backs each NSD (GPFS's
        # primary/secondary NSD server lists).
        ordered_servers = list(server_objs.values())
        backups: Dict[int, list] = {}
        if len(ordered_servers) > 1:
            index_of = {srv.node: k for k, srv in enumerate(ordered_servers)}
            for i, spec in enumerate(specs):
                k = index_of[spec.server]
                backups[i] = [ordered_servers[(k + 1) % len(ordered_servers)]]
        service = NsdService(
            self.gfs.sim,
            self.gfs.engine,
            self.gfs.messages,
            servers,
            {n.nsd_id: n for n in nsds},
            cap_resolver=self.gfs._pair_cap,
            crypto_resolver=self.gfs.crypto_pipes_for,
            backup_servers=backups,
        )
        fs = Filesystem(
            self.gfs.sim,
            device,
            block_size,
            nsds,
            service,
            self.gfs.messages,
            manager_node or specs[0].server,
            owner_cluster=self.name,
            store_data=store_data,
            replication=replication,
        )
        self.filesystems[device] = fs
        if OBS.enabled:
            from repro.obs.wire import attach_filesystem, attach_service

            attach_service(service, fs=device)
            attach_filesystem(fs)
        return fs

    def filesystem(self, device: str) -> Filesystem:
        try:
            return self.filesystems[device]
        except KeyError:
            raise ClusterError(
                f"no filesystem {device!r} in cluster {self.name!r}"
            ) from None

    # -- mmremotecluster / mmremotefs -------------------------------------------------

    def mmremotecluster_add(
        self, cluster: str, public_key: RsaPublicKey, contact_nodes: List[str]
    ) -> None:
        """Define a serving cluster on the importing side."""
        if not contact_nodes:
            raise ClusterError("mmremotecluster needs at least one contact node")
        self.keystore.import_public(cluster, public_key)
        self.remote_clusters[cluster] = RemoteClusterDef(cluster, list(contact_nodes))

    def mmremotefs_add(self, local_device: str, cluster: str, remote_device: str) -> None:
        """Map a remote device to a local mount alias."""
        if cluster not in self.remote_clusters:
            raise ClusterError(
                f"define cluster {cluster!r} with mmremotecluster before mmremotefs"
            )
        if local_device in self.remote_fs or local_device in self.filesystems:
            raise ClusterError(f"device name {local_device!r} already in use")
        self.remote_fs[local_device] = RemoteFsDef(local_device, cluster, remote_device)

    # -- mmmount ----------------------------------------------------------------------

    def mmmount(
        self,
        device: str,
        node: str,
        identity: Identity = ROOT,
        access: str = "rw",
        gateway=None,
        **mount_kwargs,
    ) -> Event:
        """Mount a local or remote device on ``node``; value is a MountedFs.

        ``gateway`` (a :class:`repro.cache.CacheGateway`, remote devices
        only) routes the mount's block traffic through the site's caching
        gateway cluster instead of straight over the WAN.
        """
        if node not in self.nodes:
            raise ClusterError(f"node {node!r} is not in cluster {self.name!r}")
        if device in self.filesystems:
            if gateway is not None:
                raise ClusterError("gateway mounts are for remote devices only")
            return self.gfs.sim.process(
                self._mount_local(device, node, identity, access, mount_kwargs),
                name=f"mount:{device}",
            )
        if device in self.remote_fs:
            from repro.core.multicluster import mount_remote

            return mount_remote(
                self, device, node, identity, access, mount_kwargs,
                gateway=gateway,
            )
        raise ClusterError(f"unknown device {device!r} (no local fs, no mmremotefs)")

    def _mount_local(self, device, node, identity, access, mount_kwargs):
        fs = self.filesystems[device]
        yield self.gfs.messages.round_trip(node, fs.manager_node)
        return MountedFs(fs, node, identity=identity, access=access, **mount_kwargs)

    # -- mmls* administrative views ------------------------------------------------

    def mmlscluster(self) -> str:
        """Human-readable cluster summary (à la ``mmlscluster``)."""
        from repro.util.tables import Table

        table = Table(["attribute", "value"], title=f"GPFS cluster information")
        table.add_row(["cluster name", self.name])
        table.add_row(["site", self.site])
        table.add_row(["primary config server", self.primary_config_server
                       if self.nodes else "-"])
        table.add_row(["secondary config server", self.secondary_config_server or "-"])
        table.add_row(["cipherList", self.cipher.name])
        table.add_row(["nodes", len(self.nodes)])
        table.add_row(["filesystems", ", ".join(sorted(self.filesystems)) or "-"])
        table.add_row(["remote filesystems", ", ".join(sorted(self.remote_fs)) or "-"])
        table.add_row(["active remote mounts", self.active_remote_mounts])
        return table.render()

    def mmlsfs(self, device: str) -> str:
        """Human-readable filesystem summary (à la ``mmlsfs``)."""
        from repro.util.tables import Table
        from repro.util.units import fmt_bytes

        fs = self.filesystem(device)
        table = Table(["attribute", "value"], title=f"flag/value for {device}")
        table.add_row(["block size", fmt_bytes(fs.block_size)])
        table.add_row(["NSDs", len(fs.nsds)])
        table.add_row(["NSD servers", len({s.node for s in fs.service.servers.values()})])
        table.add_row(["capacity", fmt_bytes(fs.capacity)])
        table.add_row(["used", fmt_bytes(fs.used_bytes)])
        table.add_row(["free", fmt_bytes(fs.free_bytes)])
        table.add_row(["inodes", len(fs.inodes)])
        table.add_row(["mounts", len(fs.mounts)])
        table.add_row(["data kept", "yes" if fs.store_data else "size-only"])
        return table.render()

    def mmlsauth(self) -> str:
        """Grant table (à la ``mmauth show``)."""
        from repro.auth.keys import fingerprint
        from repro.util.tables import Table

        table = Table(["cluster", "key fingerprint", "grants"],
                      title=f"mmauth show ({self.name})")
        own = (
            fingerprint(self.keystore.own.public) if self.keystore.has_own else "(none)"
        )
        table.add_row([f"{self.name} (this)", own, "-"])
        for cluster, grants in sorted(self.grants.items()):
            fp = (
                fingerprint(self.keystore.public_of(cluster))
                if self.keystore.knows(cluster)
                else "(no key!)"
            )
            text = ", ".join(f"{dev}:{acc}" for dev, acc in sorted(grants.items()))
            table.add_row([cluster, fp, text])
        return table.render()
