"""Unit tests for the gateway eviction policies."""

import pytest

from repro.cache.policy import LruPolicy, TwoQPolicy, make_policy


def all_evictable(_key):
    return True


class TestLru:
    def test_victim_is_least_recently_used(self):
        p = LruPolicy(slots=3)
        for k in "abc":
            p.on_insert(k)
        p.on_access("a")  # order now: b, c, a
        assert p.victim(all_evictable) == "b"

    def test_victim_skips_pinned(self):
        p = LruPolicy(slots=3)
        for k in "abc":
            p.on_insert(k)
        assert p.victim(lambda k: k != "a") == "b"

    def test_all_pinned_returns_none(self):
        p = LruPolicy(slots=2)
        p.on_insert("a")
        p.on_insert("b")
        assert p.victim(lambda k: False) is None

    def test_remove_forgets(self):
        p = LruPolicy(slots=2)
        p.on_insert("a")
        p.on_remove("a")
        assert p.victim(all_evictable) is None

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            LruPolicy(0)


class TestTwoQ:
    def test_first_touch_lands_in_probation(self):
        p = TwoQPolicy(slots=8)
        p.on_insert("a")
        assert "a" in p._a1in
        assert "a" not in p._am

    def test_reaccess_promotes(self):
        p = TwoQPolicy(slots=8)
        p.on_insert("a")
        p.on_access("a")
        assert "a" in p._am
        assert "a" not in p._a1in
        assert p.promotions == 1

    def test_ghost_hit_goes_straight_to_protected(self):
        p = TwoQPolicy(slots=4)  # kin = 1
        p.on_insert("a")
        p.on_insert("b")  # probation over kin: next victim remembers a ghost
        victim = p.victim(all_evictable)
        assert victim == "a"
        p.on_remove(victim)
        p.on_insert("a")  # re-miss within the ghost horizon
        assert "a" in p._am
        assert p.ghost_hits == 1

    def test_scan_does_not_flush_protected(self):
        # Hot set of 2 promoted keys, then a long one-touch scan: every
        # eviction should come from probation, never the protected LRU.
        p = TwoQPolicy(slots=8)
        for k in ("h1", "h2"):
            p.on_insert(k)
            p.on_access(k)
        resident = {"h1", "h2"}
        for i in range(100):
            key = f"scan{i}"
            if len(resident) >= 8:
                victim = p.victim(lambda k, r=resident: k in r)
                assert victim not in ("h1", "h2")
                p.on_remove(victim)
                resident.discard(victim)
            p.on_insert(key)
            resident.add(key)
        assert "h1" in p._am and "h2" in p._am

    def test_victim_prefers_probation_over_kin(self):
        p = TwoQPolicy(slots=4)  # kin = 1
        p.on_insert("a")
        p.on_insert("b")  # probation now over kin
        assert p.victim(all_evictable) == "a"  # FIFO head

    def test_protected_falls_back_when_probation_pinned(self):
        p = TwoQPolicy(slots=4)
        p.on_insert("hot")
        p.on_access("hot")  # protected
        p.on_insert("pinned")
        assert p.victim(lambda k: k == "hot") == "hot"

    def test_ghost_list_bounded(self):
        p = TwoQPolicy(slots=4)  # kout = 2
        for i in range(10):
            p._remember_ghost(f"g{i}")
        assert len(p._ghosts) == 2


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("lru", 4), LruPolicy)
        assert isinstance(make_policy("2q", 4), TwoQPolicy)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_policy("clock", 4)
