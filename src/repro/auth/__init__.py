"""Authentication: RSA keypairs, cipher policy, GSI identities, UID domains.

Implements §6 of the paper:

* :mod:`repro.auth.rsa` — RSA from scratch (Miller–Rabin key generation,
  sign/verify, encrypt/decrypt) as used by GPFS 2.3 GA multi-clustering.
* :mod:`repro.auth.keys` — keypair registry / out-of-band exchange model.
* :mod:`repro.auth.cipher` — the ``cipherList`` option: AUTHONLY vs
  encrypting ciphers (with their 2005-era throughput tax).
* :mod:`repro.auth.gsi` — GSI certificates, CAs, proxies, DN identities
  (the SDSC extension for cross-site ownership).
* :mod:`repro.auth.uid` — per-site UID/GID domains and grid-mapfiles.
"""

from repro.auth.rsa import RsaKeyPair, generate_keypair, is_probable_prime
from repro.auth.keys import KeyStore, fingerprint
from repro.auth.cipher import CipherPolicy, CIPHERS
from repro.auth.gsi import Certificate, CertificateAuthority, ProxyCertificate
from repro.auth.uid import GridMapFile, UidDomain

__all__ = [
    "RsaKeyPair",
    "generate_keypair",
    "is_probable_prime",
    "KeyStore",
    "fingerprint",
    "CipherPolicy",
    "CIPHERS",
    "Certificate",
    "CertificateAuthority",
    "ProxyCertificate",
    "GridMapFile",
    "UidDomain",
]
