"""Tests for dynamic link capacity changes (brownouts, upgrades)."""

import pytest

from repro.net import FlowEngine, Network, TcpModel
from repro.sim import Simulation
from repro.util.units import GB, MB


def line(rate):
    net = Network()
    net.add_node("a")
    net.add_node("b")
    link, _ = net.add_link("a", "b", rate, efficiency=1.0)
    return net, link


class TestSetRate:
    def test_validation(self):
        net, link = line(MB(100))
        with pytest.raises(ValueError):
            link.set_rate(0)

    def test_brownout_slows_active_flow(self):
        net, link = line(MB(100))
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = engine.transfer("a", "b", MB(100))

        def brownout(sim):
            yield sim.timeout(0.5)  # 50 MB transferred
            link.set_rate(MB(25))
            engine.poke()

        sim.process(brownout(sim))
        sim.run(until=evt)
        # 0.5s at 100 MB/s, then 50 MB at 25 MB/s = 2.0s more
        assert sim.now == pytest.approx(2.5)

    def test_upgrade_speeds_up(self):
        net, link = line(MB(50))
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = engine.transfer("a", "b", MB(100))

        def upgrade(sim):
            yield sim.timeout(1.0)  # 50 MB done
            link.set_rate(MB(200))
            engine.poke()

        sim.process(upgrade(sim))
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.25)

    def test_poke_without_change_is_harmless(self):
        net, link = line(MB(100))
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = engine.transfer("a", "b", MB(100))
        engine.poke()
        engine.poke()
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0)

    def test_poke_resolves_at_same_instant(self):
        # The re-solve after set_rate + poke happens at the poke's instant,
        # not at the flow's next natural event: mid-flight the flow's
        # allocated rate already reflects the new capacity.
        net, link = line(MB(100))
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = engine.transfer("a", "b", MB(100))
        seen = {}

        def observer(sim):
            yield sim.timeout(0.5)
            (flow,) = list(engine.flows)
            seen["before"] = engine.flow_rate(flow)
            link.set_rate(MB(25))
            engine.poke()
            # The coalesced recompute is scheduled ahead of this resume at
            # the same instant, so the new rate is visible immediately.
            yield sim.timeout(0.0)
            seen["at_poke"] = (sim.now, engine.flow_rate(flow))

        sim.process(observer(sim))
        sim.run(until=evt)
        assert seen["before"] == pytest.approx(MB(100))
        assert seen["at_poke"][0] == pytest.approx(0.5)
        assert seen["at_poke"][1] == pytest.approx(MB(25))
        assert sim.now == pytest.approx(2.5)

    def test_tag_series_records_the_rate_step(self):
        # The per-tag rate trace must show the brownout as a step at the
        # poke instant: 100 MB/s from t=0, 25 MB/s from t=0.5, 0 at drain.
        net, link = line(MB(100))
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = engine.transfer("a", "b", MB(100), tags=("wan",))

        def brownout(sim):
            yield sim.timeout(0.5)
            link.set_rate(MB(25))
            engine.poke()

        sim.process(brownout(sim))
        sim.run(until=evt)
        series = engine.tag_rate_series("wan")
        samples = list(series)
        assert samples[0] == (pytest.approx(0.0), pytest.approx(MB(100)))
        assert (pytest.approx(0.5), pytest.approx(MB(25))) in samples
        assert samples[-1] == (pytest.approx(2.5), 0.0)

    def test_set_rate_recomputes_without_poke(self):
        # Link.set_rate notifies the engine itself; no engine.poke().
        net, link = line(MB(100))
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = engine.transfer("a", "b", MB(100))

        def brownout(sim):
            yield sim.timeout(0.5)
            link.set_rate(MB(25))

        sim.process(brownout(sim))
        sim.run(until=evt)
        assert sim.now == pytest.approx(2.5)

    def test_brownout_resolves_only_affected_component(self):
        # Two flows on disjoint links: a brownout on one link must not
        # change (or re-solve) the other flow's component.
        net = Network()
        for n in ("a", "b", "c", "d"):
            net.add_node(n)
        link_ab, _ = net.add_link("a", "b", MB(100), efficiency=1.0)
        net.add_link("c", "d", MB(100), efficiency=1.0)
        sim = Simulation()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        e1 = engine.transfer("a", "b", MB(100))
        e2 = engine.transfer("c", "d", MB(100))

        def brownout(sim):
            yield sim.timeout(0.5)
            link_ab.set_rate(MB(50))
            engine.poke()

        sim.process(brownout(sim))
        sim.run(until=e2)
        assert sim.now == pytest.approx(1.0)  # c->d unaffected
        sim.run(until=e1)
        assert sim.now == pytest.approx(1.5)  # 50 MB left at 50 MB/s
