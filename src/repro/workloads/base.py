"""Shared workload plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class WorkloadResult:
    """What one workload run did."""

    name: str
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    elapsed: float = 0.0
    ops: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def rate(self) -> float:
        """Aggregate bytes/s over the run."""
        return self.bytes_total / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def read_rate(self) -> float:
        return self.bytes_read / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def write_rate(self) -> float:
        return self.bytes_written / self.elapsed if self.elapsed > 0 else 0.0


def payload_for(mount, nbytes: int):
    """Bytes (data-keeping fs) or a length (size-only fs) for writes."""
    if mount.fs.store_data:
        return b"\x00" * int(nbytes)
    return int(nbytes)
