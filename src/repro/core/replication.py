"""Block replication: fan-out writes, quorum acks, and read-repair.

GPFS replication (``mmcrfs -r 2``) keeps R physical copies of each
logical block in distinct *failure groups* — disks that do not share an
NSD server or controller — so no single domain failure can destroy every
copy. This module is the client-side data path for that:

* :class:`ReplicationPolicy` is the per-filesystem configuration
  (copies, ack quorum, end-to-end verification).
* :class:`ReplicaManager` fans each block write out to every replica and
  completes the caller's event at the configured ack threshold (``all``
  for GPFS semantics, ``majority`` for latency under faults); reads go
  to the cheapest replica first and fail over to survivors on server
  loss *or* checksum mismatch. A mismatch also triggers **read-repair**:
  the good bytes the reader already holds are rewritten over the rotten
  replica in the background.

With ``copies=1`` and ``verify_reads=False`` the policy is *inactive*
and the client uses the exact legacy single-replica path — nominal runs
stay bit-identical (the empty-schedule invariance tests pin this down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.nsd import ChecksumError
from repro.sim.kernel import Event
from repro.sim.trace import TRACE

#: (nsd_id, physical block) — one replica of a logical block.
Placement = Tuple[int, int]


class ReplicaQuorumError(IOError):
    """Too few replicas acknowledged a write to meet the quorum."""


class AllReplicasFailed(IOError):
    """Every replica of a block failed to serve a read."""


@dataclass(frozen=True)
class ReplicationPolicy:
    """Per-filesystem replication configuration.

    ``copies`` counts total physical replicas per logical block
    (1 = no replication). ``quorum`` is the write-ack rule: ``"all"``
    waits for every replica (GPFS semantics — a read never sees a stale
    copy); ``"majority"`` returns at ⌈(R+1)/2⌉ acks and lets the rest
    complete in the background. ``verify_reads`` turns on end-to-end
    checksum verification of full-block reads.
    """

    copies: int = 1
    quorum: str = "all"
    verify_reads: bool = False

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ValueError("copies must be >= 1")
        if self.quorum not in ("all", "majority"):
            raise ValueError(f"unknown quorum rule {self.quorum!r}")

    @property
    def active(self) -> bool:
        """Does the replicated data path need to run at all?"""
        return self.copies > 1 or self.verify_reads

    def ack_threshold(self, replicas: int) -> int:
        """Write acks required before the caller's write completes."""
        if self.quorum == "all":
            return replicas
        return replicas // 2 + 1


class ReplicaManager:
    """The replicated block data path of one filesystem."""

    def __init__(self, fs) -> None:
        self.fs = fs
        self.sim = fs.sim
        self.policy: ReplicationPolicy = fs.replication
        #: NSD ids whose last replica write failed — deprioritized on read.
        self.suspect_nsds: set[int] = set()
        self._repairing: set[Placement] = set()
        # -- integrity metrics (wired into harness/experiment output) --
        self.corrupt_reads_detected = 0
        self.read_repairs = 0
        self.replica_write_failures = 0
        self.degraded_reads = 0
        self.quorum_failures = 0

    # -- writes ---------------------------------------------------------------

    def write_block(
        self,
        client_node: str,
        placements: Sequence[Placement],
        offset: int,
        data: "bytes | int",
        sequential: bool = True,
        tags: Tuple[str, ...] = (),
    ) -> Event:
        """Write ``data`` to every replica; fires at the ack quorum.

        Replica writes that fail after the quorum is met are absorbed
        (counted + NSD marked suspect) — the block is degraded, not the
        caller's write. The event fails only when so many replicas fail
        that the quorum can never be met.
        """
        n = len(placements)
        if n == 0:
            raise ValueError("write_block needs at least one placement")
        need = self.policy.ack_threshold(n)
        quorum = Event(self.sim, name="replica-quorum")
        state = {"acks": 0, "fails": 0}
        length = data if isinstance(data, int) else len(data)

        def _one(nsd_id: int, phys: int):
            try:
                yield self.fs.service.write_block(
                    client_node, nsd_id, phys, offset, data,
                    sequential=sequential, tags=tags,
                )
            except (ConnectionError, ChecksumError):
                state["fails"] += 1
                self.replica_write_failures += 1
                self.suspect_nsds.add(nsd_id)
                if TRACE.enabled:
                    TRACE.instant(
                        self.sim, "replica.write_failed", cat="fault.integrity",
                        lane="replication", nsd=nsd_id, phys=phys,
                    )
                if (
                    not quorum.triggered
                    and n - state["fails"] < need
                ):
                    self.quorum_failures += 1
                    quorum.fail(ReplicaQuorumError(
                        f"only {state['acks']}/{need} replica acks possible "
                        f"({state['fails']}/{n} writes failed)"
                    ))
            else:
                state["acks"] += 1
                self.suspect_nsds.discard(nsd_id)
                if state["acks"] >= need and not quorum.triggered:
                    quorum.succeed(length)

        for nsd_id, phys in placements:
            self.sim.process(_one(nsd_id, phys), name=f"replica-write:{nsd_id}")
        return quorum

    # -- reads ----------------------------------------------------------------

    def read_block(
        self,
        client_node: str,
        placements: Sequence[Placement],
        sequential: bool = True,
        tags: Tuple[str, ...] = (),
    ) -> Event:
        """Read one full block from the cheapest live replica.

        The event's value is the block's bytes. Replicas are tried in
        cost order (primary first, suspects last); a
        :class:`~repro.core.nsd.ChecksumError` or server loss fails over
        to the next replica. Detected rot triggers background
        read-repair using the verified data already in hand.
        """
        return self.sim.process(
            self._read(client_node, list(placements), sequential, tuple(tags)),
            name="replica-read",
        )

    def _read_order(self, placements: List[Placement]) -> List[Placement]:
        """Cheapest-first replica ordering (stable, hence deterministic).

        Primary (index 0) wins ties; a replica behind a down server costs
        more than a healthy one (it would burn failover or retries), and
        an NSD whose last write failed costs the most.

        Fault-free fast path: with no down nodes and no suspect NSDs every
        penalty is zero, and a stable sort of all-zero penalties is the
        input order — skip the sort entirely. (Hot: replicated reads call
        this once per block; client-side transfer coalescing falls back to
        per-block RPCs whenever replication is active, precisely so this
        per-replica ordering and fan-out stay intact.)
        """
        service = self.fs.service
        if not service.down_nodes and not self.suspect_nsds:
            return list(placements)

        def cost(item: Tuple[int, Placement]) -> Tuple[int, int]:
            idx, (nsd_id, _) = item
            penalty = 0
            server = service.servers.get(nsd_id)
            if server is not None and server.node in service.down_nodes:
                penalty += 10
            if nsd_id in self.suspect_nsds:
                penalty += 100
            return (penalty, idx)

        ranked = sorted(enumerate(placements), key=cost)
        return [placement for _, placement in ranked]

    def _read(self, client_node, placements, sequential, tags):
        bs = self.fs.block_size
        bad: List[Placement] = []
        last: BaseException | None = None
        attempts = 0
        for nsd_id, phys in self._read_order(placements):
            attempts += 1
            try:
                data = yield self.fs.service.read_block(
                    client_node, nsd_id, phys, 0, bs,
                    sequential=sequential, tags=tags,
                    verify=self.policy.verify_reads,
                )
            except ChecksumError as exc:
                self.corrupt_reads_detected += 1
                bad.append((nsd_id, phys))
                last = exc
                continue
            except ConnectionError as exc:
                last = exc
                continue
            if attempts > 1:
                self.degraded_reads += 1
            for victim in bad:
                self._start_repair(client_node, victim, data, tags, "read_repair")
            return data
        raise AllReplicasFailed(
            f"all {len(placements)} replicas failed verification or transport"
        ) from last

    # -- repair ---------------------------------------------------------------

    def _start_repair(
        self,
        writer_node: str,
        victim: Placement,
        data: bytes,
        tags: Tuple[str, ...],
        kind: str,
    ) -> Event | None:
        """Rewrite one rotten replica with known-good full-block data.

        Deduplicated: concurrent readers detecting the same rot launch
        one repair. The rewrite is a normal block write — it pays disk
        and network time like any other traffic.
        """
        if victim in self._repairing:
            return None
        self._repairing.add(victim)
        nsd_id, phys = victim
        if TRACE.enabled:
            TRACE.instant(
                self.sim, f"replica.{kind}", cat="fault.integrity",
                lane="replication", nsd=nsd_id, phys=phys,
            )

        def _proc():
            try:
                yield self.fs.service.write_block(
                    writer_node, nsd_id, phys, 0, data,
                    sequential=True, tags=tags + ("repair",),
                )
            except (ConnectionError, ChecksumError):
                self.replica_write_failures += 1
                self.suspect_nsds.add(nsd_id)
            else:
                if kind == "read_repair":
                    self.read_repairs += 1
            finally:
                self._repairing.discard(victim)

        return self.sim.process(_proc(), name=f"repair:{nsd_id}:{phys}")

    # -- reporting ------------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        return {
            "corrupt_reads_detected": float(self.corrupt_reads_detected),
            "read_repairs": float(self.read_repairs),
            "replica_write_failures": float(self.replica_write_failures),
            "degraded_reads": float(self.degraded_reads),
            "quorum_failures": float(self.quorum_failures),
        }
