"""Smoke tests: the fast example scripts run to completion.

(The slower examples — sc_timeline, enzo_teragrid, nvo_partial_access —
are exercised by the experiment smoke tests that share their harnesses.)
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "bit-identical" in out
        assert "remote mount" in out

    def test_trace_replay(self):
        out = run_example("trace_replay.py")
        assert "replayed 21 operations" in out

    def test_multicluster_auth(self):
        out = run_example("multicluster_auth.py")
        assert "refused as expected" in out
        assert "[BUG]" not in out
        assert "denied as expected" in out

    def test_hsm_lifecycle(self):
        out = run_example("hsm_lifecycle.py")
        assert "migrated" in out
        assert "disaster restore" in out
