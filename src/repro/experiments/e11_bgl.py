"""E11 — §5/§8 extension: Blue Gene/L "Intimidata" on the GFS.

Paper: the 128 Gb/s machine-room design point "is an exact match to the
maximum I/O rate of our IBM Blue Gene/L system, Intimidata, which is also
planned to use the GFS as its native file system, both for convenience and
as an early test of the file system capability."

The experiment drains a BG/L checkpoint through the production GFS via the
I/O-node architecture (compute nodes funnel through I/O nodes that run the
filesystem client) and compares the aggregate against the design point,
for both the initial 64 Gb/s build (one GbE per NSD server) and the §8
upgrade (two).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.topology.sdsc2005 import attach_bgl, build_sdsc2005
from repro.util.tables import Table
from repro.util.units import Gbps, MB, MiB, fmt_bits_rate
from repro.workloads.scec import ScecRun


def run_e11_bgl(
    io_nodes: int = 32,
    per_io_node_bytes: float = MB(256),
    server_nics=(Gbps(1), Gbps(2)),
    nsd_servers: int = 64,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E11",
        title="§5/§8: BG/L checkpoint I/O vs the machine-room design point",
        paper_claim="128 Gb/s aggregate 'an exact match' to BG/L's max I/O rate",
    )
    table = Table(
        ["server NICs", "design point", "ckpt write", "restart read", "read util"],
        title=f"{io_nodes} BG/L I/O nodes, one checkpoint file per node",
    )
    from repro.workloads.viz import VizReader

    for nic in server_nics:
        scenario = build_sdsc2005(
            nsd_servers=nsd_servers,
            ds4100_count=32,
            sdsc_clients=0,
            anl_clients=0,
            ncsa_clients=0,
            server_nic=nic,
            store_data=False,
        )
        attach_bgl(scenario, io_nodes=io_nodes, nic_rate=Gbps(2))
        mounts = scenario.mount_clients("bgl", pagepool_bytes=MiB(256))
        run = ScecRun(mounts, "/ckpt", total_bytes=per_io_node_bytes * io_nodes,
                      chunk=MiB(4))
        g = scenario.gfs
        res = g.run(until=run.run())
        write_rate = res.bytes_written / res.elapsed
        # restart: every I/O node reads its checkpoint slice back
        for i, m in enumerate(mounts):
            m.pool.invalidate(
                scenario.fs.namespace.resolve(f"/ckpt/wavefield.{i:05d}").ino
            )
        t0 = g.sim.now
        readers = [
            VizReader(m, f"/ckpt/wavefield.{i:05d}", chunk=MiB(4)).run()
            for i, m in enumerate(mounts)
        ]
        g.run(until=g.sim.all_of(readers))
        read_rate = per_io_node_bytes * io_nodes / (g.sim.now - t0)
        design = nic * nsd_servers
        table.add_row(
            [
                fmt_bits_rate(nic),
                fmt_bits_rate(design),
                fmt_bits_rate(write_rate),
                fmt_bits_rate(read_rate),
                f"{read_rate / design:.0%}",
            ]
        )
        key = int(nic * 8 / 1e9)
        result.metrics[f"drain_rate_{key}gbe"] = write_rate
        result.metrics[f"read_rate_{key}gbe"] = read_rate
        result.metrics[f"design_point_{key}gbe"] = design
    result.table = table
    result.notes = (
        "checkpoint writes are DS4100-controller-bound regardless of NICs; "
        "restart reads track the server-NIC design point — which is why §8 "
        "pairs the GbE doubling with a second (archive) HBA"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e11_bgl()))
