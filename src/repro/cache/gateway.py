"""The caching gateway cluster and the mounts that run through it.

A :class:`CacheGateway` sits at a remote site between that site's
clients and the home cluster's NSD servers (GPFS later productized the
same shape as AFM/Panache). Local clients mount *through* the gateway
with :class:`GatewayMount`; the data path then looks like:

* **read hit** — control message to a gateway node, local disk service,
  LAN transfer back: no WAN traffic at all while the inode's validity
  lease (:mod:`repro.cache.lease`) is live;
* **read miss** — misses arriving in the same instant (a client
  read-ahead burst) are batched, planned with
  :func:`repro.core.client.plan_transfers`, and fetched over the WAN
  through the existing coalesced ``read_blocks`` scatter-gather RPC,
  then installed in the shared :class:`~repro.cache.store.GatewayBlockCache`
  (charging the gateway's local disk for the fill);
* **write-through** — the write crosses the WAN before the client is
  acked; the cached copy is updated in place and stays clean;
* **writeback** — the write is acked after the LAN leg and a local
  media write; a bounded FIFO dirty queue preserves write order and a
  single flusher drains it to the home cluster through coalesced
  ``write_blocks`` RPCs. ``fsync`` (and token revocation) insert a
  **flush barrier**: the barrier completes only when every write of that
  inode enqueued before it has reached home — close-to-open coherence
  and revoke semantics survive the asynchrony.

Partition semantics: a WAN cut parks the gateway's fetches, lease
renewals, and flusher RPCs (nothing fails); reads inside a live lease
keep being served from cache, and writeback writes keep being acked
until the dirty-queue bound is hit. At heal the flusher replays the
queue in order and revalidates each queued inode once — a version
advanced by a *foreign* writer during the cut is counted as a conflict
(last-writer-wins, surfaced in the metrics rather than silently merged).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.cache.lease import LeaseInfo, LeaseServer
from repro.cache.store import GatewayBlockCache
from repro.core.client import Identity, MountedFs, ROOT, plan_transfers
from repro.obs.registry import OBS
from repro.sim.kernel import Event
from repro.sim.trace import TRACE
from repro.storage.pipes import Pipe
from repro.util.units import MB

#: bytes of one gateway control/ack message (mirrors NsdService).
CONTROL_BYTES = 512.0

WRITE_MODES = ("writeback", "writethrough")


@dataclass
class _QueuedWrite:
    seq: int
    gw: str
    ino: int
    block: int
    nsd_id: int
    phys: int
    lo: int
    payload: "bytes | int"
    version: int  # gateway's lease version for ino at enqueue time


class CacheGateway:
    """A site-local gateway cluster sharing one bounded block cache."""

    def __init__(
        self,
        fs,
        nodes: List[str],
        cache: GatewayBlockCache,
        *,
        name: str = "gw",
        mode: str = "writeback",
        lease_duration: float = 10.0,
        lease_server: Optional[LeaseServer] = None,
        max_dirty: int = 256,
        max_coalesce: int = 8,
        disk_rate: float = MB(400),
        disk_io_latency: float = 0.0002,
        tags: Tuple[str, ...] = ("gateway",),
    ) -> None:
        if not nodes:
            raise ValueError("gateway needs at least one node")
        if mode not in WRITE_MODES:
            raise ValueError(f"mode must be one of {WRITE_MODES}, got {mode!r}")
        self.fs = fs
        self.sim = fs.sim
        self.messages = fs.messages
        self.service = fs.service
        self.engine = fs.service.engine
        self.home_node = fs.manager_node
        self.name = name
        self.nodes = list(nodes)
        self.cache = cache
        self.mode = mode
        self.lease_duration = lease_duration
        # The dirty bound must leave clean slots to evict, or the cache
        # wedges; clamp against the cache geometry.
        self.max_dirty = max(1, min(max_dirty, max(1, cache.slots // 2)))
        self.max_coalesce = max(1, max_coalesce)
        self.tags = tuple(tags)
        self.disks: Dict[str, Pipe] = {
            node: Pipe(
                self.sim,
                rate=disk_rate,
                per_io_latency=disk_io_latency,
                capacity=4,
                name=f"{name}-{node}-disk",
            )
            for node in self.nodes
        }
        if lease_server is None:
            lease_server = getattr(fs, "_gateway_lease_server", None)
            if lease_server is None:
                lease_server = LeaseServer(fs, duration=lease_duration)
                fs._gateway_lease_server = lease_server
        self.lease_server = lease_server
        lease_server.register(self)
        # Per-client served-bytes attribution on the home service: lets
        # experiments cross-check origin traffic against the gateway's
        # own counters. Flag-guarded, so non-gateway runs never pay it.
        fs.service.track_client_bytes = True
        #: client nodes mounted through this gateway (GatewayMount adds).
        self.local_nodes: set = set()
        # -- lease client state
        self._lease: Dict[int, LeaseInfo] = {}
        self._revalidating: Dict[int, Event] = {}
        # -- miss batching
        self._fetching: Dict[Tuple[int, int], Event] = {}
        self._pending: List[tuple] = []
        self._drain_scheduled = False
        # -- writeback queue
        self._dirty_q: Deque[_QueuedWrite] = deque()
        self._seq = 0
        self._flushed_seq = 0
        self._last_seq: Dict[int, int] = {}
        self._space_waiters: List[Event] = []
        self._barriers: List[Tuple[int, Event]] = []
        self._flusher_running = False
        self._partition = None
        self._heals_seen = 0
        # -- counters
        self.served_bytes = 0.0
        self.origin_bytes = 0.0
        self.write_acks = 0
        self.writes_through = 0
        self.writes_flushed = 0
        self.flushed_bytes = 0.0
        self.writeback_stalls = 0
        self.queue_high_water = 0
        self.lease_renewals = 0
        self.lease_breaks = 0
        self.stale_invalidations = 0
        self.stale_hits = 0
        self.conflicts = 0
        if OBS.enabled:
            from repro.obs.wire import attach_gateway

            attach_gateway(self)

    # -- topology ----------------------------------------------------------------

    def node_for(self, ino: int, block: int) -> str:
        """Deterministic owner gateway node for a block (spreads load)."""
        return self.nodes[(ino + block) % len(self.nodes)]

    def lease_holder_node(self, ino: int) -> Optional[str]:
        """Node to push an invalidation to; None when nothing can be stale."""
        lease = self._lease.get(ino)
        if lease is None or lease.expires_at <= self.sim.now:
            return None
        return self.node_for(ino, 0)

    def attach_partition(self, partition) -> None:
        """Wire the WAN partition so heals trigger replay revalidation."""
        self._partition = partition
        self._heals_seen = partition.heals

    def _wan_cut(self, gw: str) -> bool:
        part = self._partition
        return part is not None and part.severed(gw, self.home_node)

    # -- leases ------------------------------------------------------------------

    def lease_broken(self, ino: int, version: int) -> None:
        """Invalidation push from the lease server arrived."""
        lease = self._lease.pop(ino, None)
        if lease is None:
            return
        self.lease_breaks += 1
        self.cache.invalidate_ino(ino)
        if OBS.enabled:
            OBS.inc("cache.lease.breaks", gw=self.name)

    def _ensure_lease(self, gw: str, ino: int):
        """Revalidate ``ino``'s lease if missing/expired (one WAN RT,
        deduplicated across concurrent readers)."""
        while True:
            lease = self._lease.get(ino)
            if lease is not None and lease.expires_at > self.sim.now:
                return
            inflight = self._revalidating.get(ino)
            if inflight is not None:
                yield inflight
                continue
            done = self.sim.event(name=f"lease:{ino}")
            self._revalidating[ino] = done
            try:
                yield self.messages.round_trip(
                    gw, self.home_node, request_bytes=256, reply_bytes=256
                )
                self._admit(ino)
                self.lease_renewals += 1
            finally:
                del self._revalidating[ino]
                done.succeed()
            return

    def _admit(self, ino: int) -> None:
        """Record the home version; drop stale cache on a foreign advance."""
        version, writer = self.lease_server.validate(ino)
        old = self._lease.get(ino)
        if (
            old is not None
            and version != old.version
            and writer
            and writer not in self.local_nodes
            and writer not in self.nodes
        ):
            dropped = self.cache.invalidate_ino(ino)
            self.stale_invalidations += dropped
        now = self.sim.now
        self._lease[ino] = LeaseInfo(version, now + self.lease_duration, now)

    # -- read path ---------------------------------------------------------------

    def read_block(
        self, client: str, inode, block_index: int, placed, tags: tuple = ()
    ) -> Event:
        """Serve one block to a local client; event value is the data.

        With tracing off and no partition armed, the read runs on a
        callback chain instead of a generator process — same message
        accounting, cache statistics, disk occupancy, and sim-time
        arrivals as the process path, in a fraction of the kernel events
        (the warm-hit path is the gateway benchmark's hot loop).
        """
        if TRACE.enabled or self._partition is not None:
            return self.sim.process(
                self._read(client, inode, block_index, placed, tags),
                name=f"gwread:{inode.ino}:{block_index}",
            )
        return self._read_fast(client, inode, block_index, placed, tags)

    def _read(self, client, inode, block_index, placed, tags):
        ino = inode.ino
        gw = self.node_for(ino, block_index)
        t0 = self.sim.now
        # control leg: client → gateway node (site-local)
        yield self.messages.send(client, gw, nbytes=CONTROL_BYTES)
        return (
            yield from self._read_rest(
                client, inode, block_index, placed, tags, gw, t0
            )
        )

    def _read_rest(self, client, inode, block_index, placed, tags, gw, t0):
        """Read continuation after the control leg (lease not yet held)."""
        ino = inode.ino
        bs = self.fs.block_size
        yield from self._ensure_lease(gw, ino)
        entry = self.cache.lookup(ino, block_index)
        if entry is not None:
            if self._wan_cut(gw):
                self.stale_hits += 1  # stale-within-lease service
            yield self.disks[gw].transfer(bs)
            yield self.engine.transfer(
                gw, client, bs, tags=tuple(tags) + self.tags,
                **self.service._pair_kwargs(gw, client),
            )
            self._served_hit(ino, bs, t0)
            return entry.data if self.fs.store_data else None
        data = yield self._fetch(gw, inode, block_index, placed)
        yield self.engine.transfer(
            gw, client, bs, tags=tuple(tags) + self.tags,
            **self.service._pair_kwargs(gw, client),
        )
        self._served_miss(bs, t0)
        return data

    def _served_hit(self, ino, bs, t0) -> None:
        self.served_bytes += bs
        if OBS.enabled:
            OBS.inc("cache.read.ok", gw=self.name)
            OBS.observe(
                "cache.read.latency", self.sim.now - t0,
                gw=self.name, tier="hit",
            )
            lease = self._lease.get(ino)
            if lease is not None:
                OBS.observe(
                    "cache.staleness", self.sim.now - lease.validated_at,
                    gw=self.name,
                )

    def _served_miss(self, bs, t0) -> None:
        self.served_bytes += bs
        if OBS.enabled:
            OBS.inc("cache.read.ok", gw=self.name)
            OBS.observe(
                "cache.read.latency", self.sim.now - t0,
                gw=self.name, tier="miss",
            )

    def _read_fast(self, client, inode, block_index, placed, tags) -> Event:
        """Callback-chain read: control delay → lease/lookup → disk → LAN.

        The lease is checked at the instant the control message lands
        (exactly where the process path checks it); if it lapsed mid-
        flight, the remainder falls back to the generator path to do the
        WAN revalidation. Hits ride :meth:`Pipe.fast_transfer` when the
        gateway disk is idle; misses join the shared batched fetch.
        """
        ino = inode.ino
        bs = self.fs.block_size
        gw = self.node_for(ino, block_index)
        sim = self.sim
        t0 = sim.now
        done = sim.event(name=f"gwread:{ino}:{block_index}")
        # Inlined messages.send (no partition by construction): one
        # callback at the delivery instant, same counter.
        self.messages.messages_sent += 1

        def lan_leg(on_done) -> None:
            evt = self.engine.transfer(
                gw, client, bs, tags=tuple(tags) + self.tags,
                **self.service._pair_kwargs(gw, client),
            )
            evt.callbacks.append(on_done)

        def miss_fetched(evt) -> None:
            if not evt.ok:
                done.fail(evt.value)
                return
            data = evt.value
            lan_leg(lambda _e: (self._served_miss(bs, t0), done.succeed(data)))

        def arrived() -> None:
            lease = self._lease.get(ino)
            if lease is None or lease.expires_at <= sim.now:
                # Lease lapsed in flight: revalidate on the process path.
                proc = sim.process(
                    self._read_rest(
                        client, inode, block_index, placed, tags, gw, t0
                    ),
                    name=f"gwread:{ino}:{block_index}",
                )
                proc.callbacks.append(
                    lambda e: done.succeed(e.value) if e.ok
                    else done.fail(e.value)
                )
                return
            entry = self.cache.lookup(ino, block_index)
            if entry is None:
                self._fetch(gw, inode, block_index, placed).callbacks.append(
                    miss_fetched
                )
                return
            data = entry.data if self.fs.store_data else None

            def hit_disk_done() -> None:
                lan_leg(
                    lambda _e: (self._served_hit(ino, bs, t0),
                                done.succeed(data))
                )

            disk = self.disks[gw]
            if not disk.fast_transfer(bs, hit_disk_done):
                disk.transfer(bs).callbacks.append(lambda _e: hit_disk_done())

        sim.schedule_callback(
            self.messages.delivery_time(client, gw, CONTROL_BYTES),
            arrived,
            name=f"gwctl:{ino}",
        )
        return done

    # -- miss batching → coalesced WAN fetch -------------------------------------

    def _fetch(self, gw: str, inode, block_index: int, placed) -> Event:
        key = (inode.ino, block_index)
        inflight = self._fetching.get(key)
        if inflight is not None:
            return inflight
        done = self.sim.event(name=f"gwfetch:{key}")
        self._fetching[key] = done
        self._pending.append((gw, inode, block_index, placed, done))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.sim.process(self._drain(), name="gw-fetch-drain")
        return done

    def _drain(self):
        # One zero-delay hop so a read-ahead burst lands in one batch.
        yield self.sim.timeout(0.0)
        self._drain_scheduled = False
        pending, self._pending = self._pending, []
        if self.fs.replication.active:
            # Replicated home filesystems keep per-block replica fan-out,
            # exactly like the direct-mount client path.
            for item in pending:
                self.sim.process(
                    self._fetch_replicated(item), name="gw-fetch-repl"
                )
            return
        groups: Dict[Tuple[str, int], List[tuple]] = {}
        for item in pending:
            gw, _inode, _block, placed, _done = item
            groups.setdefault((gw, placed[0]), []).append(item)
        for (gw, nsd_id), items in groups.items():
            # plan_transfers groups contiguous physical runs; the "block
            # index" slot carries the batch position so runs map back to
            # their waiters even across different inodes.
            triples = [
                (nsd_id, item[3][1], idx) for idx, item in enumerate(items)
            ]
            for run in plan_transfers(triples, self.max_coalesce):
                run_items = [items[idx] for idx in run.blocks]
                self.sim.process(
                    self._fetch_run(gw, nsd_id, run.phys, run_items),
                    name=f"gw-fetchr:{nsd_id}:{run.phys[0]}+{len(run.phys)}",
                )

    def _fetch_run(self, gw, nsd_id, phys_list, items):
        bs = self.fs.block_size
        total = bs * len(items)
        try:
            if len(items) == 1:
                data = yield self.service.read_block(
                    gw, nsd_id, phys_list[0], 0, bs, tags=self.tags + ("read",)
                )
                datas = [data]
            else:
                datas = yield self.service.read_blocks(
                    gw, nsd_id, phys_list, tags=self.tags + ("read",)
                )
        except BaseException as exc:
            for _gw, inode, block, _placed, done in items:
                del self._fetching[(inode.ino, block)]
                done.fail(exc)
            return
        self.origin_bytes += total
        # install: one aggregated local media write for the whole run
        yield self.disks[gw].transfer(total)
        for (_gw, inode, block, _placed, done), data in zip(items, datas):
            if not self.fs.store_data:
                data = None
            self.cache.insert(inode.ino, block, data, bs)
            del self._fetching[(inode.ino, block)]
            done.succeed(data)

    def _fetch_replicated(self, item):
        gw, inode, block, _placed, done = item
        bs = self.fs.block_size
        try:
            data = yield self.fs.integrity.read_block(
                gw,
                self.fs.replica_placements(inode, block),
                tags=self.tags + ("read",),
            )
        except BaseException as exc:
            del self._fetching[(inode.ino, block)]
            done.fail(exc)
            return
        self.origin_bytes += bs
        yield self.disks[gw].transfer(bs)
        if not self.fs.store_data:
            data = None
        self.cache.insert(inode.ino, block, data, bs)
        del self._fetching[(inode.ino, block)]
        done.succeed(data)

    # -- write path --------------------------------------------------------------

    def write_block(
        self, client, inode, block, nsd_id, phys, lo, payload, tags: tuple = ()
    ) -> Event:
        """Accept one block write from a local client (mode decides when
        it is acked); event fires at the ack."""
        return self.sim.process(
            self._write(client, inode, block, nsd_id, phys, lo, payload, tags),
            name=f"gwwrite:{inode.ino}:{block}",
        )

    def _write(self, client, inode, block, nsd_id, phys, lo, payload, tags):
        ino = inode.ino
        gw = self.node_for(ino, block)
        length = payload if isinstance(payload, int) else len(payload)
        t0 = self.sim.now
        # data leg: client → gateway (site-local), then local media write
        yield self.engine.transfer(
            client, gw, max(length, 1), tags=tuple(tags) + self.tags,
            **self.service._pair_kwargs(client, gw),
        )
        yield self.disks[gw].transfer(max(length, 1))
        # A partial write into an uncached block must read-modify-write
        # against home first — otherwise a later cache hit would serve a
        # block whose untouched bytes read as zeros.
        partial = lo != 0 or length != self.fs.block_size
        if partial and self.cache.peek(ino, block) is None:
            yield self._fetch(gw, inode, block, (nsd_id, phys))
        if self.mode == "writethrough":
            self.cache.apply_write(
                ino, block, lo,
                None if isinstance(payload, int) else payload,
                length, dirty_seq=0,
            )
            yield self._home_write_event(gw, inode, block, nsd_id, phys, lo, payload)
            self.writes_through += 1
        else:
            yield from self._enqueue(gw, inode, block, nsd_id, phys, lo, payload)
        self.write_acks += 1
        # ack message gateway → client
        yield self.messages.send(gw, client, nbytes=CONTROL_BYTES)
        if OBS.enabled:
            OBS.observe(
                "cache.write.latency", self.sim.now - t0,
                gw=self.name, mode=self.mode,
            )

    def _home_write_event(self, gw, inode, block, nsd_id, phys, lo, payload):
        if self.fs.replication.active:
            return self.fs.integrity.write_block(
                gw,
                self.fs.replica_placements(inode, block),
                lo,
                payload,
                tags=self.tags + ("write",),
            )
        return self.service.write_block(
            gw, nsd_id, phys, lo, payload, tags=self.tags + ("write",)
        )

    def _enqueue(self, gw, inode, block, nsd_id, phys, lo, payload):
        """Append to the bounded dirty queue (backpressure when full)."""
        while len(self._dirty_q) >= self.max_dirty:
            self.writeback_stalls += 1
            gate = self.sim.event(name="gw-queue-space")
            self._space_waiters.append(gate)
            yield gate
        ino = inode.ino
        self._seq += 1
        seq = self._seq
        lease = self._lease.get(ino)
        self._dirty_q.append(
            _QueuedWrite(
                seq, gw, ino, block, nsd_id, phys, lo, payload,
                version=lease.version if lease is not None else 0,
            )
        )
        self._last_seq[ino] = seq
        self.queue_high_water = max(self.queue_high_water, len(self._dirty_q))
        self.cache.apply_write(
            ino, block, lo,
            None if isinstance(payload, int) else payload,
            payload if isinstance(payload, int) else len(payload),
            dirty_seq=seq,
        )
        if not self._flusher_running:
            self._flusher_running = True
            self.sim.process(self._flusher(), name=f"{self.name}-flusher")

    def _flusher(self):
        """Single ordered drain of the dirty queue to the home cluster."""
        while self._dirty_q:
            part = self._partition
            if part is not None and part.heals > self._heals_seen:
                # A WAN partition healed with writes still queued: replay
                # continues in order, but first revalidate each queued
                # inode once — a foreign version advance during the cut
                # is a write conflict (detected, counted, last-writer-wins).
                self._heals_seen = part.heals
                yield from self._replay_check()
            batch: List[_QueuedWrite] = [self._dirty_q.popleft()]
            while (
                self._dirty_q
                and len(batch) < self.max_coalesce
                and self._dirty_q[0].gw == batch[0].gw
                and self._dirty_q[0].nsd_id == batch[0].nsd_id
            ):
                batch.append(self._dirty_q.popleft())
            total = sum(
                q.payload if isinstance(q.payload, int) else len(q.payload)
                for q in batch
            )
            # read the dirty data back off the gateway's local media
            yield self.disks[batch[0].gw].transfer(max(total, 1))
            if self.fs.replication.active:
                for q in batch:
                    inode = self.fs.inodes.get(q.ino)
                    yield self._home_write_event(
                        q.gw, inode, q.block, q.nsd_id, q.phys, q.lo, q.payload
                    )
            else:
                items = [(q.phys, q.lo, q.payload) for q in batch]
                yield self.service.write_blocks(
                    batch[0].gw, batch[0].nsd_id, items,
                    tags=self.tags + ("write",),
                )
            for q in batch:
                self.writes_flushed += 1
                self.flushed_bytes += (
                    q.payload if isinstance(q.payload, int) else len(q.payload)
                )
                self.cache.mark_flushed(q.ino, q.block, q.seq)
            self._flushed_seq = batch[-1].seq
            self._wake_barriers()
            self._wake_space()
        self._flusher_running = False
        self._wake_barriers()

    def _replay_check(self):
        inos: List[int] = []
        for q in self._dirty_q:
            if q.ino not in inos:
                inos.append(q.ino)
        for ino in inos:
            gw = self.node_for(ino, 0)
            yield self.messages.round_trip(
                gw, self.home_node, request_bytes=256, reply_bytes=256
            )
            version, writer = self.lease_server.validate(ino)
            queued_version = max(
                (q.version for q in self._dirty_q if q.ino == ino), default=0
            )
            if (
                version != queued_version
                and writer
                and writer not in self.local_nodes
                and writer not in self.nodes
            ):
                self.conflicts += 1
                if OBS.enabled:
                    OBS.inc("cache.conflicts", gw=self.name)
            self._admit(ino)
            self.lease_renewals += 1

    def _wake_barriers(self) -> None:
        if not self._barriers:
            return
        ready = [(t, e) for t, e in self._barriers if t <= self._flushed_seq]
        self._barriers = [
            (t, e) for t, e in self._barriers if t > self._flushed_seq
        ]
        for _t, evt in ready:
            evt.succeed()

    def _wake_space(self) -> None:
        while self._space_waiters and len(self._dirty_q) < self.max_dirty:
            self._space_waiters.pop(0).succeed()

    def flush_barrier(self, ino: Optional[int] = None) -> Event:
        """Event firing once every queued write (of ``ino``, or all) has
        reached the home cluster. Immediate outside writeback mode."""
        evt = self.sim.event(name=f"gwbarrier:{ino}")
        target = (
            self._last_seq.get(ino, 0) if ino is not None else self._seq
        )
        if self.mode != "writeback" or target <= self._flushed_seq:
            evt.succeed()
        else:
            self._barriers.append((target, evt))
        return evt

    # -- reporting ---------------------------------------------------------------

    @property
    def dirty_queue_depth(self) -> int:
        return len(self._dirty_q)

    @property
    def origin_offload(self) -> float:
        """Fraction of bytes served to clients that never crossed the WAN."""
        if not self.served_bytes:
            return 0.0
        return max(0.0, 1.0 - self.origin_bytes / self.served_bytes)

    def metrics(self) -> Dict[str, float]:
        out = {
            "served_bytes": float(self.served_bytes),
            "origin_bytes": float(self.origin_bytes),
            "origin_offload": self.origin_offload,
            "write_acks": float(self.write_acks),
            "writes_through": float(self.writes_through),
            "writes_flushed": float(self.writes_flushed),
            "flushed_bytes": float(self.flushed_bytes),
            "writeback_stalls": float(self.writeback_stalls),
            "queue_high_water": float(self.queue_high_water),
            "dirty_queue_depth": float(self.dirty_queue_depth),
            "lease_renewals": float(self.lease_renewals),
            "lease_breaks": float(self.lease_breaks),
            "stale_invalidations": float(self.stale_invalidations),
            "stale_hits": float(self.stale_hits),
            "conflicts": float(self.conflicts),
        }
        out.update({f"cache_{k}": v for k, v in self.cache.stats().items()})
        return out


class GatewayMount(MountedFs):
    """A client mount whose block traffic runs through a gateway.

    Everything above the block layer (tokens, page pool, read-ahead,
    write-behind, metadata) is the stock :class:`MountedFs`; only the
    remote read/write hooks are redirected, plus a gateway flush barrier
    on ``fsync`` and token revocation so writeback stays ordered behind
    durability and coherence points.
    """

    def __init__(
        self,
        gateway: CacheGateway,
        node: str,
        identity: Identity = ROOT,
        access: str = "rw",
        **mount_kwargs,
    ) -> None:
        # Client-side coalescing stays off: the gateway batches misses
        # itself, so WAN scatter-gather happens exactly once, at the edge.
        mount_kwargs.pop("max_coalesce", None)
        super().__init__(
            gateway.fs, node, identity=identity, access=access, **mount_kwargs
        )
        self.gateway = gateway
        gateway.local_nodes.add(node)

    def _remote_read_event(self, inode, block_index, nsd_id, phys):
        return self.gateway.read_block(
            self.node, inode, block_index, (nsd_id, phys),
            tags=self.tags + ("read",),
        )

    def _remote_write_event(self, inode, block, nsd_id, phys, lo, payload):
        return self.gateway.write_block(
            self.node, inode, block, nsd_id, phys, lo, payload,
            tags=self.tags + ("write",),
        )

    def _fsync(self, ino: int):
        yield from super()._fsync(ino)
        yield self.gateway.flush_barrier(ino)

    def _revoke_flush(self, ino: int, lo: int, hi: int):
        yield from super()._revoke_flush(ino, lo, hi)
        yield self.gateway.flush_barrier(ino)
