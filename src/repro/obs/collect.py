"""Sim-clock scrape collector.

A :class:`Collector` is an ordinary simulation process that scrapes the
registry every ``interval`` sim-seconds. It never drains on its own —
the repo's experiments always ``run(until=event)``, so an endless
collector loop is safe and keeps the scrape cadence uniform across an
entire run.

Telemetry must not perturb scheduling: the collector only *reads*
subsystem state (stored metrics and callbacks). Its timeouts consume
sequence numbers, but the kernel's determinism contract orders same-time
events by ``(priority, seq)`` relative order, which is unchanged for all
non-collector events; golden-metrics tests pin this.
"""

from __future__ import annotations

from repro.obs.registry import OBS, MetricsRegistry


class Collector:
    """Periodic scraper bound to one simulation."""

    def __init__(self, sim, registry: MetricsRegistry = None, interval: float = None):
        self.sim = sim
        self.registry = registry if registry is not None else OBS
        self.interval = (
            interval if interval is not None else self.registry.scrape_interval
        )
        self.process = None

    def start(self) -> "Collector":
        if self.process is None:
            self.process = self.sim.process(self._run(), name="obs.collector")
        return self

    def _run(self):
        registry = self.registry
        sim = self.sim
        # Scrape at t=start immediately so the first row anchors deltas.
        registry.scrape(sim)
        while True:
            yield sim.timeout(self.interval)
            registry.scrape(sim)


def start_collector(sim, interval: float = None) -> Collector:
    """Attach a collector for the global registry to ``sim``."""
    return Collector(sim, OBS, interval).start()
