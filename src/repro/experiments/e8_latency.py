"""E8 — §2's central question: does WAN latency kill throughput?

"there were real concerns that the latencies involved in a widespread
network such as the TeraGrid would render them inoperable ... It not only
demonstrated that the latencies (measured at 80ms round trip
SDSC-Baltimore) did not prevent the Global File System from performing,
but that a GFS could provide some of the most efficient data transfers
possible over TCP/IP."

The sweep makes the mechanism explicit: a single TCP stream collapses with
RTT (window-limited), while the NSD architecture's many parallel streams
keep the aggregate at line rate — the paper's whole reason for existing.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import ExperimentResult
from repro.net.flow import FlowEngine
from repro.net.tcp import TcpModel
from repro.net.topology import Network
from repro.obs.registry import OBS
from repro.sim.kernel import Simulation
from repro.util.tables import Table
from repro.util.units import GB, Gbps, MiB

DEFAULT_RTTS = (0.002, 0.020, 0.080, 0.160)
DEFAULT_STREAMS = (1, 4, 16, 64)


def measure(
    rtt: float, streams: int, window: float, link_rate: float, nbytes: float
) -> float:
    """Aggregate bytes/s for ``streams`` parallel transfers over one link."""
    sim = Simulation()
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", link_rate, delay=rtt / 2, efficiency=0.94)
    engine = FlowEngine(sim, net, default_tcp=TcpModel(window=window, mss=8960))
    per_stream = nbytes / streams
    # The cell tag makes each flow's trace record self-describing: a
    # `python -m repro trace E8` run shows window/RTT-bound singles and
    # link-bound 64-stream cells side by side (the paper's §2 mechanism).
    cell = f"rtt{int(rtt * 1e3)}ms-s{streams}"
    events = [
        engine.transfer("a", "b", per_stream, tags=(cell,))
        for _ in range(streams)
    ]
    sim.run(until=sim.all_of(events))
    if OBS.enabled:
        # One scrape per cell: each sweep cell is its own simulation, so
        # the cell's aggregate rate lands as a gauge sample at cell end.
        OBS.set_gauge("e8.cell.rate", nbytes / sim.now, sim.now, cell=cell)
        OBS.scrape(sim)
    return nbytes / sim.now


def run_e8(
    rtts: Sequence[float] = DEFAULT_RTTS,
    stream_counts: Sequence[int] = DEFAULT_STREAMS,
    window: float = float(MiB(2)),
    link_rate: float = Gbps(10),
    nbytes: float = GB(4),
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E8",
        title="latency ablation: RTT x parallel streams on a 10 GbE WAN",
        paper_claim="80 ms RTT does not prevent line-rate transfers given NSD-style parallelism",
    )
    table = Table(
        ["RTT ms"] + [f"{s} streams (Gb/s)" for s in stream_counts],
        title=f"aggregate throughput, {int(window / MiB(1))} MiB windows",
    )
    for rtt in rtts:
        row = [rtt * 1e3]
        for streams in stream_counts:
            rate = measure(rtt, streams, window, link_rate, nbytes)
            row.append(rate * 8 / 1e9)
            result.metrics[f"rate_rtt{int(rtt * 1e3)}_s{streams}"] = rate
        table.add_row(row)
    result.table = table
    single_80 = result.metrics["rate_rtt80_s1"]
    many_80 = result.metrics[f"rate_rtt80_s{max(stream_counts)}"]
    result.metrics["parallelism_gain_at_80ms"] = many_80 / single_80
    result.notes = (
        "single-stream rate ~ window/RTT; parallel streams recover the line rate"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e8()))
