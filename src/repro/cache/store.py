"""The gateway cluster's shared block cache.

Bookkeeping only — latency (local disk service, LAN/WAN transfers) is
charged by :class:`~repro.cache.gateway.CacheGateway`, which owns the
storage pipes. Like the client :class:`~repro.core.pagepool.PagePool`,
entries hold real bytes when the home filesystem stores data and lengths
in size-only mode; the accounting is identical either way.

Dirty entries (writeback data not yet flushed home) are pinned: eviction
only ever removes clean blocks. When every resident block is dirty the
insert raises :class:`CacheWedgedError` naming the block — the writeback
queue bound is sized against cache slots precisely so this cannot happen
in a correctly configured gateway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cache.policy import make_policy

Key = Tuple[int, int]  # (ino, logical block index)


class CacheWedgedError(MemoryError):
    """Every resident block is dirty; nothing can be evicted."""


@dataclass
class GatewayEntry:
    data: Optional[bytes]  # None in size-only mode
    length: int
    dirty: bool = False
    #: sequence number of the queued write that dirtied this entry last;
    #: a flush only cleans the entry if no later write superseded it.
    dirty_seq: int = 0


class GatewayBlockCache:
    """Bounded shared cache of home-filesystem blocks at the edge site."""

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int,
        policy: str = "lru",
        store_data: bool = False,
    ) -> None:
        if capacity_bytes < block_size:
            raise ValueError("gateway cache smaller than one block")
        self.block_size = block_size
        self.slots = int(capacity_bytes // block_size)
        self.capacity = self.slots * block_size
        self.store_data = store_data
        self.policy = make_policy(policy, self.slots)
        self._entries: Dict[Key, GatewayEntry] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0
        self.invalidations = 0

    # -- lookup ---------------------------------------------------------------

    def lookup(self, ino: int, block: int) -> Optional[GatewayEntry]:
        """Policy-visible lookup: counts a hit or a miss."""
        entry = self._entries.get((ino, block))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self.policy.on_access((ino, block))
        return entry

    def peek(self, ino: int, block: int) -> Optional[GatewayEntry]:
        """Lookup without policy or statistics side effects."""
        return self._entries.get((ino, block))

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- insertion / update -----------------------------------------------------

    def insert(
        self, ino: int, block: int, data: Optional[bytes], length: int
    ) -> None:
        """Install a clean block fetched from the home cluster."""
        key = (ino, block)
        old = self._entries.get(key)
        if old is not None:
            if old.dirty:
                # A writeback landed while the fetch was in flight; the
                # dirty copy is newer than what the home cluster served.
                return
            old.data, old.length = data, length
            self.policy.on_access(key)
            return
        self._evict_for(key)
        self._entries[key] = GatewayEntry(data=data, length=length)
        self.policy.on_insert(key)
        self.inserts += 1

    def apply_write(
        self,
        ino: int,
        block: int,
        offset: int,
        data: Optional[bytes],
        length: int,
        dirty_seq: int = 0,
    ) -> GatewayEntry:
        """Merge a client write into the cache (dirty until flushed home).

        ``dirty_seq == 0`` means write-through: the entry stays clean
        because the home copy is updated before the client is acked.
        """
        if offset < 0 or offset + length > self.block_size:
            raise ValueError("write exceeds block bounds")
        key = (ino, block)
        entry = self._entries.get(key)
        if entry is None:
            self._evict_for(key)
            entry = GatewayEntry(data=None if data is None else b"", length=0)
            self._entries[key] = entry
            self.policy.on_insert(key)
            self.inserts += 1
        else:
            self.policy.on_access(key)
        if data is not None:
            old = entry.data or b""
            if len(old) < offset:
                old = old + b"\x00" * (offset - len(old))
            entry.data = old[:offset] + data + old[offset + length:]
            entry.length = len(entry.data)
        else:
            entry.length = max(entry.length, offset + length)
        if dirty_seq:
            entry.dirty = True
            entry.dirty_seq = dirty_seq
        return entry

    def mark_flushed(self, ino: int, block: int, seq: int) -> None:
        """A queued write reached the home cluster; unpin if not superseded."""
        entry = self._entries.get((ino, block))
        if entry is not None and entry.dirty and entry.dirty_seq <= seq:
            entry.dirty = False
            entry.dirty_seq = 0

    def invalidate_ino(self, ino: int) -> int:
        """Drop every clean block of ``ino`` (lease break); dirty survive."""
        victims = [
            k for k, e in self._entries.items() if k[0] == ino and not e.dirty
        ]
        for key in victims:
            del self._entries[key]
            self.policy.on_remove(key)
        self.invalidations += len(victims)
        return len(victims)

    # -- stats ------------------------------------------------------------------

    @property
    def used_blocks(self) -> int:
        return len(self._entries)

    @property
    def dirty_blocks(self) -> int:
        return sum(1 for e in self._entries.values() if e.dirty)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "inserts": float(self.inserts),
            "invalidations": float(self.invalidations),
            "used_blocks": float(self.used_blocks),
            "dirty_blocks": float(self.dirty_blocks),
            "slots": float(self.slots),
            "hit_ratio": self.hit_ratio,
        }

    # -- internals ---------------------------------------------------------------

    def _evict_for(self, incoming: Key) -> None:
        if len(self._entries) < self.slots:
            return
        victim = self.policy.victim(
            lambda k: not self._entries[k].dirty
        )
        if victim is None:
            ino, block = incoming
            raise CacheWedgedError(
                f"gateway cache wedged inserting block {block} of ino {ino}: "
                f"all {len(self._entries)} resident blocks are dirty "
                "(writeback flusher cannot keep up; raise capacity or lower "
                "the dirty-queue bound)"
            )
        del self._entries[victim]
        self.policy.on_remove(victim)
        self.evictions += 1
