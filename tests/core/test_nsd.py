"""Tests for the NSD block layer (store/fetch, service, server tags)."""

import pytest

from repro.core.nsd import Nsd, NsdServer
from repro.sim import Simulation
from repro.storage import Hba, make_ds4100


class TestNsdStore:
    def make(self, store_data=True):
        return Nsd(nsd_id=0, name="nsd0", total_blocks=8, block_size=1024,
                   store_data=store_data)

    def test_store_fetch_roundtrip(self):
        nsd = self.make()
        nsd.store(3, 100, b"hello")
        assert nsd.fetch(3, 100, 5) == b"hello"

    def test_fetch_zero_fills_unwritten(self):
        nsd = self.make()
        assert nsd.fetch(0, 0, 10) == bytes(10)
        nsd.store(0, 5, b"xy")
        assert nsd.fetch(0, 0, 8) == b"\x00" * 5 + b"xy" + b"\x00"

    def test_merge_preserves_neighbours(self):
        nsd = self.make()
        nsd.store(0, 0, b"AAAA")
        nsd.store(0, 2, b"bb")
        assert nsd.fetch(0, 0, 4) == b"AAbb"

    def test_bounds_checked(self):
        nsd = self.make()
        with pytest.raises(ValueError):
            nsd.store(99, 0, b"x")
        with pytest.raises(ValueError):
            nsd.store(0, 1020, b"xxxxx")
        with pytest.raises(ValueError):
            nsd.fetch(0, 1000, 100)

    def test_size_only_mode(self):
        nsd = self.make(store_data=False)
        nsd.store(0, 0, b"data")
        assert nsd.fetch(0, 0, 4) == bytes(4)  # zeros, but counted
        assert nsd.writes == 1 and nsd.reads == 1

    def test_trim(self):
        nsd = self.make()
        nsd.store(0, 0, b"ABCDEFGH")
        nsd.trim(0, 3)
        assert nsd.fetch(0, 0, 8) == b"ABC" + bytes(5)
        with pytest.raises(ValueError):
            nsd.trim(0, 9999)

    def test_discard(self):
        nsd = self.make()
        nsd.store(0, 0, b"gone")
        nsd.discard(0)
        assert nsd.fetch(0, 0, 4) == bytes(4)

    def test_capacity(self):
        nsd = self.make()
        assert nsd.capacity == 8 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            Nsd(0, "x", total_blocks=0, block_size=1024)


class TestNsdServer:
    def test_disk_io_through_hba_and_lun(self):
        sim = Simulation()
        array = make_ds4100(sim, "b0")
        nsd = Nsd(0, "n", total_blocks=8, block_size=1 << 20, lun=array.luns[0])
        server = NsdServer("node0", [nsd], hba=Hba(sim))
        evt = server.disk_io(sim, nsd, "read", 1 << 20)
        sim.run(until=evt)
        assert sim.now > 0
        assert server.bytes_served == 1 << 20

    def test_diskless_server_instant(self):
        sim = Simulation()
        nsd = Nsd(0, "n", total_blocks=8, block_size=1024)
        server = NsdServer("node0", [nsd])
        evt = server.disk_io(sim, nsd, "write", 1024)
        sim.run(until=evt)
        assert sim.now == 0.0

    def test_tags_carried(self):
        nsd = Nsd(0, "n", total_blocks=8, block_size=1024)
        server = NsdServer("node0", [nsd], tags=("lane2",))
        assert server.tags == ("lane2",)
