"""SC'02: the FCIP hardware-assist demonstration (paper §2, Figs 1–2).

San Diego: ~30 TB of FC disk behind a Sun F15K running QFS/SAM, exported
with SANergy over a Storage Area Network. Two pairs of Nishan 4000 boxes
encode FC frames into IP and ride a 10 Gb/s SDSC → Baltimore path (4 GbE
channels per box pair → 8 Gb/s usable max). Measured RTT: 80 ms.

There is no GPFS here: SANergy lets the remote host issue *block* reads
straight to the SAN, so the data path is SCSI-command round trips over the
tunnel with a fixed number of outstanding commands — which is exactly why
the demonstration sustained ~720 MB/s of the 8 Gb/s ceiling (8 × 8 MB
commands pipelined over an 80 ms RTT path land at ~90 MB/s each).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.net.fcip import FcipTunnel, add_fcip_tunnel
from repro.net.flow import FlowEngine
from repro.net.message import MessageService
from repro.net.tcp import TcpModel
from repro.net.topology import Network
from repro.sim.kernel import Event, Simulation
from repro.storage.array import StorageArray
from repro.storage.controller import ControllerSpec
from repro.storage.disk import FC_2005
from repro.util.timeseries import RateMeter
from repro.util.units import GB, MB, MiB

#: One-way SDSC → Baltimore propagation delay (measured 80 ms RTT).
ONE_WAY_DELAY = 0.040


@dataclass
class Sc02Scenario:
    sim: Simulation
    network: Network
    engine: FlowEngine
    messages: MessageService
    tunnel: FcipTunnel
    array: StorageArray
    client: "SanergyClient"


class SanergyClient:
    """A SANergy host in Baltimore reading blocks over the extended SAN."""

    def __init__(
        self,
        sim: Simulation,
        engine: FlowEngine,
        messages: MessageService,
        array: StorageArray,
        local_node: str = "baltimore-sf6800",
        san_node: str = "sdsc-san",
        command_bytes: int = MiB(8),
        outstanding: int = 8,
    ) -> None:
        if outstanding < 1 or command_bytes < 1:
            raise ValueError("outstanding and command_bytes must be >= 1")
        self.sim = sim
        self.engine = engine
        self.messages = messages
        self.array = array
        self.local_node = local_node
        self.san_node = san_node
        self.command_bytes = command_bytes
        self.outstanding = outstanding
        self.meter = RateMeter(window=1.0, name="sc02-read")

    def stream_read(self, nbytes: float) -> Event:
        """Read ``nbytes`` with a fixed window of outstanding SCSI commands."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        return self.sim.process(self._stream(nbytes), name="sanergy-read")

    def _one_command(self, lun_idx: int, size: float) -> Generator[Event, None, None]:
        # SCSI command out (latency only), disk service, data frames back.
        yield self.messages.send(self.local_node, self.san_node, nbytes=512)
        lun = self.array.luns[lun_idx % len(self.array.luns)]
        yield lun.io("read", size, sequential=True)
        yield self.engine.transfer(
            self.san_node, self.local_node, size, tags=("sc02",)
        )
        self.meter.record(self.sim.now, size)

    def _stream(self, nbytes: float) -> Generator[Event, None, None]:
        remaining = nbytes
        in_flight: List[Event] = []
        lun_idx = 0
        while remaining > 0 or in_flight:
            while remaining > 0 and len(in_flight) < self.outstanding:
                size = min(self.command_bytes, remaining)
                remaining -= size
                in_flight.append(
                    self.sim.process(
                        self._one_command(lun_idx, size), name="scsi-cmd"
                    )
                )
                lun_idx += 1
            finished = yield self.sim.any_of(in_flight)
            in_flight = [e for e in in_flight if e not in finished]


def build_sc02(
    sim: Simulation | None = None,
    nishan_pairs: int = 2,
    outstanding: int = 12,
    command_bytes: int = MiB(8),
) -> Sc02Scenario:
    """The Fig 1 configuration."""
    sim = sim or Simulation()
    net = Network()
    net.add_node("sdsc-san", site="sdsc", kind="switch")  # Brocade + QFS server
    net.add_node("baltimore-sf6800", site="baltimore", kind="host")
    tunnel = add_fcip_tunnel(
        net, "sdsc-san", "baltimore-sf6800", wan_delay=ONE_WAY_DELAY, pairs=nishan_pairs
    )
    engine = FlowEngine(sim, net, default_tcp=TcpModel(window=float(GB(1))))
    messages = MessageService(sim, net)
    # The QFS disk cache: FC drives behind fast controllers; sized so the
    # spindles are never the bottleneck (the paper's 17-30 TB farm wasn't).
    array = StorageArray(
        sim,
        "qfs-cache",
        controller_spec=ControllerSpec("sun-t3", read_rate=MB(400), write_rate=MB(300)),
        disk_spec=FC_2005,
        raid_sets=16,
        data_disks=8,
        parity_disks=1,
        detailed=False,
    )
    client = SanergyClient(
        sim,
        engine,
        messages,
        array,
        command_bytes=command_bytes,
        outstanding=outstanding,
    )
    return Sc02Scenario(
        sim=sim,
        network=net,
        engine=engine,
        messages=messages,
        tunnel=tunnel,
        array=array,
        client=client,
    )
