"""Max-min fair bandwidth allocation with per-flow rate caps.

Vectorized progressive filling ("water-filling"). Each iteration either

* fixes every flow whose cap is at or below its current fair share on every
  link of its path (such a flow is cap-limited in the final allocation,
  because fair shares only grow as other flows get fixed below them), or
* saturates the current bottleneck link(s), fixing their flows at the
  bottleneck share.

Each iteration removes at least one link or the whole capped set, so the
loop runs O(links) times; each iteration is dense numpy over an L×F
incidence matrix (see the HPC guide: vectorize the hot loop, profile before
going lower-level — this routine is the simulator's hot spot).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Relative tolerance when comparing rates.
_REL_EPS = 1e-9


def max_min_rates(
    link_caps: Sequence[float],
    flow_links: Sequence[Sequence[int]],
    flow_caps: Sequence[float],
) -> np.ndarray:
    """Allocate rates to flows.

    Parameters
    ----------
    link_caps:
        Usable capacity of each link (bytes/s), indexed by link id.
    flow_links:
        For each flow, the link ids on its path (may be empty for loopback
        flows, which then get exactly their cap).
    flow_caps:
        Per-flow rate cap (``inf`` allowed only for flows with a non-empty
        path; a pathless flow must have a finite cap).

    Returns
    -------
    numpy array of allocated rates, same order as ``flow_links``.

    Properties (tested): no link oversubscribed; every flow gets a positive
    rate; a flow is either at its cap or has a bottleneck link that is fully
    used; allocation is max-min fair.
    """
    nflows = len(flow_links)
    caps = np.asarray(link_caps, dtype=float)
    nlinks = caps.shape[0]
    fcaps = np.asarray(flow_caps, dtype=float)
    if fcaps.shape[0] != nflows:
        raise ValueError("flow_caps length must match flow_links")
    if np.any(fcaps <= 0):
        raise ValueError("flow caps must be positive")
    if np.any(caps <= 0):
        raise ValueError("link capacities must be positive")

    rates = np.zeros(nflows)
    if nflows == 0:
        return rates

    # Incidence matrix M[l, f] = flow f crosses link l. Kept as bool for
    # masking; Mf is the float view used in matmuls (bool @ bool would be a
    # logical OR, not a count).
    M = np.zeros((nlinks, nflows), dtype=bool)
    for f, path in enumerate(flow_links):
        for l in path:
            M[l, f] = True
    Mf = M.astype(np.float64)

    pathless = ~M.any(axis=0)
    if np.any(pathless & ~np.isfinite(fcaps)):
        raise ValueError("a flow with an empty path must have a finite cap")
    rates[pathless] = fcaps[pathless]

    unfixed = ~pathless
    remaining = caps.copy()

    # Bound: every round fixes at least one flow (either the capped set, or
    # the flows of a newly saturated bottleneck link), so nflows + nlinks
    # rounds always suffice; the +2 covers the empty-set early exits.
    for _ in range(nflows + nlinks + 2):
        if not unfixed.any():
            break
        counts = Mf @ unfixed  # active flows per link
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(counts > 0, remaining / np.maximum(counts, 1), np.inf)
        # Per-flow fair share: min share over the links of its path.
        shares_per_flow = np.where(M, share[:, None], np.inf).min(axis=0)

        capped = unfixed & (fcaps <= shares_per_flow * (1 + _REL_EPS))
        if capped.any():
            rates[capped] = fcaps[capped]
            remaining = remaining - Mf @ (rates * capped)
            remaining = np.maximum(remaining, 0.0)
            unfixed &= ~capped
            continue

        live = shares_per_flow[unfixed]
        m = live.min()
        newly = unfixed & (shares_per_flow <= m * (1 + _REL_EPS))
        rates[newly] = np.minimum(shares_per_flow[newly], fcaps[newly])
        remaining = remaining - Mf @ (rates * newly)
        remaining = np.maximum(remaining, 0.0)
        unfixed &= ~newly
    else:  # pragma: no cover - loop bound is a proof, not a code path
        raise RuntimeError("progressive filling failed to converge")

    return rates


def link_utilization(
    link_caps: Sequence[float],
    flow_links: Sequence[Sequence[int]],
    rates: np.ndarray,
) -> np.ndarray:
    """Per-link used fraction under allocation ``rates`` (diagnostics)."""
    caps = np.asarray(link_caps, dtype=float)
    used = np.zeros_like(caps)
    for f, path in enumerate(flow_links):
        for l in path:
            used[l] += rates[f]
    return used / caps
