"""E8 benchmark — latency ablation: the paper's central mechanism."""

from repro.experiments.e8_latency import run_e8
from repro.util.units import Gbps


def test_e8_latency(run_experiment):
    result = run_experiment(run_e8)
    # a single 2 MiB-window stream collapses at 80 ms (window/RTT ~ 26 MB/s)
    assert result.metric("rate_rtt80_s1") < Gbps(0.3)
    # 64 parallel streams recover ~line rate at the same RTT (the NSD effect)
    assert result.metric("rate_rtt80_s64") > Gbps(9)
    assert result.metric("parallelism_gain_at_80ms") > 20
    # monotone in streams at every RTT
    for rtt in (2, 20, 80, 160):
        rates = [result.metric(f"rate_rtt{rtt}_s{s}") for s in (1, 4, 16, 64)]
        assert rates == sorted(rates)
