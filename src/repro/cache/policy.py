"""Eviction policies for the gateway block cache.

The gateway cache (:mod:`repro.cache.store`) separates *bookkeeping*
(which blocks are resident, which are dirty) from *policy* (which clean
block to evict next). Two policies ship:

* :class:`LruPolicy` — classic least-recently-used, the same ordering the
  client :class:`~repro.core.pagepool.PagePool` uses;
* :class:`TwoQPolicy` — a 2Q/ARC-style scan-resistant policy: first
  touches land in a FIFO probation queue (``A1in``), re-references
  promote to a protected LRU (``Am``), and a bounded ghost list
  (``A1out``) remembers recently evicted probation keys so a second miss
  on them goes straight to the protected queue. A single streaming scan
  (the staging workload E7 models) then cannot flush the hot set that
  repeat-access jobs (the GFS workload) depend on.

Both policies are pure data structures — no randomness, no wall clock —
so cache contents are bit-reproducible for a given access sequence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Optional

Key = Hashable


class LruPolicy:
    """Least-recently-used over all resident keys."""

    name = "lru"

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ValueError("policy needs at least one slot")
        self.slots = slots
        self._order: "OrderedDict[Key, None]" = OrderedDict()

    def on_insert(self, key: Key) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_access(self, key: Key) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def on_remove(self, key: Key) -> None:
        self._order.pop(key, None)

    def victim(self, evictable: Callable[[Key], bool]) -> Optional[Key]:
        """Oldest key passing ``evictable`` (dirty blocks are pinned)."""
        for key in self._order:
            if evictable(key):
                return key
        return None


class TwoQPolicy:
    """Simplified 2Q: FIFO probation + protected LRU + ghost history."""

    name = "2q"

    #: fraction of slots the probation FIFO may occupy before it is
    #: evicted from preferentially (the classic Kin knob).
    KIN_FRACTION = 0.25
    #: ghost-list capacity as a fraction of slots (the Kout knob).
    KOUT_FRACTION = 0.50

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ValueError("policy needs at least one slot")
        self.slots = slots
        self.kin = max(1, int(slots * self.KIN_FRACTION))
        self.kout = max(1, int(slots * self.KOUT_FRACTION))
        self._a1in: "OrderedDict[Key, None]" = OrderedDict()  # FIFO
        self._am: "OrderedDict[Key, None]" = OrderedDict()  # LRU
        self._ghosts: "OrderedDict[Key, None]" = OrderedDict()
        self.promotions = 0
        self.ghost_hits = 0

    def on_insert(self, key: Key) -> None:
        if key in self._ghosts:
            # Seen recently: this block has a re-reference interval shorter
            # than the ghost horizon, so it is hot — protect it.
            del self._ghosts[key]
            self.ghost_hits += 1
            self._am[key] = None
            self._am.move_to_end(key)
        else:
            self._a1in[key] = None

    def on_access(self, key: Key) -> None:
        if key in self._am:
            self._am.move_to_end(key)
        elif key in self._a1in:
            # Re-referenced while on probation: promote to the protected LRU.
            del self._a1in[key]
            self._am[key] = None
            self.promotions += 1

    def on_remove(self, key: Key) -> None:
        self._a1in.pop(key, None)
        self._am.pop(key, None)

    def _remember_ghost(self, key: Key) -> None:
        self._ghosts[key] = None
        while len(self._ghosts) > self.kout:
            self._ghosts.popitem(last=False)

    def victim(self, evictable: Callable[[Key], bool]) -> Optional[Key]:
        """Probation FIFO first (when over Kin), then the protected LRU."""
        if len(self._a1in) > self.kin:
            for key in self._a1in:
                if evictable(key):
                    self._remember_ghost(key)
                    return key
        for key in self._am:
            if evictable(key):
                return key
        # Protected queue fully pinned: fall back to any evictable
        # probation entry regardless of Kin.
        for key in self._a1in:
            if evictable(key):
                self._remember_ghost(key)
                return key
        return None


POLICIES = {"lru": LruPolicy, "2q": TwoQPolicy}


def make_policy(name: str, slots: int):
    """Instantiate a policy by name (``"lru"`` or ``"2q"``)."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    return cls(slots)
