"""Tests for the from-scratch RSA implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth.rsa import (
    _modinv,
    generate_keypair,
    is_probable_prime,
)


def rng(seed=0):
    return np.random.default_rng(seed)


KEY = generate_keypair(bits=256, rng=rng(42))  # small but fast for tests


class TestPrimality:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 101, 7919, 104729, 2**31 - 1])
    def test_primes(self, p):
        assert is_probable_prime(p, rng())

    @pytest.mark.parametrize("n", [0, 1, 4, 9, 100, 7917, 2**31 - 2, 561, 41041])
    def test_composites_and_carmichael(self, n):
        # 561 and 41041 are Carmichael numbers (fool Fermat, not Miller-Rabin)
        assert not is_probable_prime(n, rng())


class TestModInv:
    def test_inverse(self):
        assert (_modinv(3, 26) * 3) % 26 == 1

    def test_no_inverse(self):
        with pytest.raises(ValueError):
            _modinv(4, 26)


class TestKeygen:
    def test_deterministic_given_rng(self):
        a = generate_keypair(bits=128, rng=rng(7))
        b = generate_keypair(bits=128, rng=rng(7))
        assert a == b

    def test_different_seeds_different_keys(self):
        a = generate_keypair(bits=128, rng=rng(1))
        b = generate_keypair(bits=128, rng=rng(2))
        assert a.n != b.n

    def test_modulus_size(self):
        key = generate_keypair(bits=256, rng=rng(3))
        assert key.n.bit_length() in (255, 256)

    def test_min_bits(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=32)


class TestSignVerify:
    def test_roundtrip(self):
        sig = KEY.sign(b"mmauth handshake")
        assert KEY.public.verify(b"mmauth handshake", sig)

    def test_tampered_message_rejected(self):
        sig = KEY.sign(b"original")
        assert not KEY.public.verify(b"tampered", sig)

    def test_wrong_key_rejected(self):
        other = generate_keypair(bits=256, rng=rng(99))
        sig = KEY.sign(b"msg")
        assert not other.public.verify(b"msg", sig)

    def test_signature_out_of_range_rejected(self):
        assert not KEY.public.verify(b"msg", 0)
        assert not KEY.public.verify(b"msg", KEY.n + 5)


class TestEncryptDecrypt:
    def test_roundtrip(self):
        m = 123456789
        assert KEY.decrypt(KEY.public.encrypt(m)) == m

    def test_range_checks(self):
        with pytest.raises(ValueError):
            KEY.public.encrypt(KEY.n)
        with pytest.raises(ValueError):
            KEY.decrypt(-1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**64))
    def test_roundtrip_property(self, m):
        m %= KEY.n
        assert KEY.decrypt(KEY.public.encrypt(m)) == m

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=64))
    def test_sign_verify_property(self, msg):
        sig = KEY.sign(msg)
        assert KEY.public.verify(msg, sig)
        assert not KEY.public.verify(msg + b"x", sig)
