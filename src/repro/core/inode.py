"""Inodes: per-object metadata.

Ownership carries both the classic numeric ``uid``/``gid`` *and* an
optional GSI distinguished name ``owner_dn`` — the SDSC extension of §6:
on a Global File System mounted from several administrative domains, the
DN is the stable identity and per-site UIDs are derived views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple


class FileType(Enum):
    FILE = "file"
    DIRECTORY = "dir"


@dataclass
class Inode:
    ino: int
    ftype: FileType
    uid: int = 0
    gid: int = 0
    owner_dn: Optional[str] = None
    mode: int = 0o644
    size: int = 0
    ctime: float = 0.0
    mtime: float = 0.0
    atime: float = 0.0
    nlink: int = 1
    #: logical block index → (nsd_id, physical block)
    blocks: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: logical block index → extra replicas beyond the primary, each
    #: (nsd_id, physical block); empty when the filesystem runs R=1.
    replicas: Dict[int, Tuple[Tuple[int, int], ...]] = field(default_factory=dict)
    #: HSM state: None = resident; otherwise the tape location token.
    hsm_offline: Optional[str] = None

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.ftype is FileType.FILE

    @property
    def allocated_blocks(self) -> int:
        return len(self.blocks)

    def owner_matches(self, uid: int, dn: Optional[str]) -> bool:
        """True when the caller is this object's owner.

        DN identity wins when both sides have one (the GSI extension);
        otherwise falls back to numeric UID comparison (classic behaviour —
        and the cross-site hazard the extension removes).
        """
        if self.owner_dn is not None and dn is not None:
            return self.owner_dn == dn
        return self.uid == uid


class InodeTable:
    """Inode storage with allocation."""

    def __init__(self) -> None:
        self._inodes: Dict[int, Inode] = {}
        self._next_ino = 1

    def allocate(self, ftype: FileType, now: float, uid: int = 0, gid: int = 0,
                 owner_dn: Optional[str] = None, mode: int = 0o644) -> Inode:
        ino = self._next_ino
        self._next_ino += 1
        inode = Inode(
            ino=ino,
            ftype=ftype,
            uid=uid,
            gid=gid,
            owner_dn=owner_dn,
            mode=mode,
            ctime=now,
            mtime=now,
            atime=now,
        )
        self._inodes[ino] = inode
        return inode

    def get(self, ino: int) -> Inode:
        try:
            return self._inodes[ino]
        except KeyError:
            raise KeyError(f"no inode {ino}") from None

    def drop(self, ino: int) -> None:
        self._inodes.pop(ino, None)

    def __len__(self) -> int:
        return len(self._inodes)

    def __iter__(self):
        """Inodes in ino order (deterministic sweep order for the scrubber)."""
        return iter(sorted(self._inodes.values(), key=lambda i: i.ino))

    def __contains__(self, ino: int) -> bool:
        return ino in self._inodes
