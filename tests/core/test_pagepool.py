"""Tests for the page pool."""

import pytest

from repro.core.pagepool import PagePool, PoolWedgedError


def pool(capacity_blocks=4, block_size=1024):
    return PagePool(capacity_blocks * block_size, block_size)


class TestBasics:
    def test_miss_then_hit(self):
        p = pool()
        assert p.get(1, 0) is None
        p.put_clean(1, 0, b"x" * 10, 10)
        entry = p.get(1, 0)
        assert entry is not None and entry.data == b"x" * 10
        assert p.hits == 1 and p.misses == 1

    def test_peek_no_stats(self):
        p = pool()
        p.put_clean(1, 0, b"", 0)
        p.peek(1, 0)
        p.peek(9, 9)
        assert p.hits == 0 and p.misses == 0

    def test_contains(self):
        p = pool()
        p.put_clean(1, 0, b"", 0)
        assert (1, 0) in p and (1, 1) not in p

    def test_too_small_pool_rejected(self):
        with pytest.raises(ValueError):
            PagePool(512, 1024)


class TestWriteAndDirty:
    def test_write_marks_dirty(self):
        p = pool()
        p.write(1, 0, 0, b"abc", 3)
        entry = p.peek(1, 0)
        assert entry.dirty and entry.dirty_lo == 0 and entry.dirty_hi == 3
        assert p.dirty_blocks(1) == [0]

    def test_dirty_span_grows(self):
        p = pool()
        p.write(1, 0, 10, b"x" * 5, 5)
        p.write(1, 0, 2, b"y" * 3, 3)
        entry = p.peek(1, 0)
        assert (entry.dirty_lo, entry.dirty_hi) == (2, 15)

    def test_write_merges_data(self):
        p = pool()
        p.put_clean(1, 0, b"AAAAAAAA", 8)
        p.write(1, 0, 2, b"bb", 2)
        assert p.peek(1, 0).data == b"AAbbAAAA"

    def test_write_beyond_existing_zero_fills(self):
        p = pool()
        p.write(1, 0, 4, b"zz", 2)
        assert p.peek(1, 0).data == b"\x00\x00\x00\x00zz"

    def test_size_only_mode(self):
        p = pool()
        p.write(1, 0, 0, None, 100)
        entry = p.peek(1, 0)
        assert entry.data is None and entry.length == 100 and entry.dirty

    def test_mark_clean(self):
        p = pool()
        p.write(1, 0, 0, b"a", 1)
        p.mark_clean(1, 0)
        assert not p.peek(1, 0).dirty
        assert p.dirty_blocks(1) == []

    def test_dirty_range_filter(self):
        p = pool(capacity_blocks=8)
        for b in range(4):
            p.write(1, b, 0, b"d", 1)
        # blocks 2,3 overlap byte range [2048, 4096)
        assert p.dirty_blocks(1, 2048, 4096) == [2, 3]

    def test_put_clean_over_dirty_rejected(self):
        p = pool()
        p.write(1, 0, 0, b"d", 1)
        with pytest.raises(ValueError):
            p.put_clean(1, 0, b"x", 1)

    def test_bounds_checked(self):
        p = pool()
        with pytest.raises(ValueError):
            p.write(1, 0, 1020, b"xxxxx", 5)


class TestEviction:
    def test_lru_evicts_clean(self):
        p = pool(capacity_blocks=2)
        p.put_clean(1, 0, b"a", 1)
        p.put_clean(1, 1, b"b", 1)
        p.get(1, 0)  # touch 0 → 1 is LRU
        p.put_clean(1, 2, b"c", 1)
        assert (1, 1) not in p
        assert (1, 0) in p
        assert p.evictions == 1

    def test_dirty_blocks_not_evicted(self):
        p = pool(capacity_blocks=2)
        p.write(1, 0, 0, b"d", 1)
        p.put_clean(1, 1, b"c", 1)
        p.put_clean(1, 2, b"c", 1)  # must evict (1,1), not the dirty (1,0)
        assert (1, 0) in p
        assert (1, 1) not in p

    def test_all_dirty_pool_errors(self):
        p = pool(capacity_blocks=2)
        p.write(1, 0, 0, b"d", 1)
        p.write(1, 1, 0, b"d", 1)
        with pytest.raises(MemoryError):
            p.put_clean(1, 2, b"c", 1)

    def test_wedged_pool_names_the_block(self):
        # Regression: the error must say which insert wedged and why,
        # not just "pool full" — and be a MemoryError subclass so old
        # callers keep catching it.
        p = pool(capacity_blocks=2)
        p.write(7, 0, 0, b"d", 1)
        p.write(7, 1, 0, b"d", 1)
        with pytest.raises(PoolWedgedError, match=r"block 5 of ino 9") as exc:
            p.put_clean(9, 5, b"c", 1)
        assert "dirty" in str(exc.value)
        assert issubclass(PoolWedgedError, MemoryError)

    def test_used_accounting(self):
        p = pool(capacity_blocks=4)
        p.put_clean(1, 0, b"a", 1)
        p.put_clean(1, 1, b"a", 1)
        assert p.used == 2 * 1024
        p.invalidate(1, 0)
        assert p.used == 1024


class TestInvalidate:
    def test_invalidate_one(self):
        p = pool()
        p.put_clean(1, 0, b"a", 1)
        p.invalidate(1, 0)
        assert (1, 0) not in p

    def test_invalidate_whole_ino_keeps_dirty(self):
        p = pool()
        p.put_clean(1, 0, b"a", 1)
        p.write(1, 1, 0, b"d", 1)
        p.put_clean(2, 0, b"other", 5)
        p.invalidate(1)
        assert (1, 0) not in p
        assert (1, 1) in p  # dirty survives
        assert (2, 0) in p  # other ino untouched


class TestStats:
    def test_stats_snapshot(self):
        p = pool(capacity_blocks=4)
        p.put_clean(1, 0, b"a", 1)
        p.get(1, 0)
        p.get(1, 1)
        p.write(1, 2, 0, b"d", 1)
        s = p.stats()
        assert s["hits"] == 1.0 and s["misses"] == 1.0
        assert s["hit_ratio"] == 0.5
        assert s["used"] == 2 * 1024.0
        assert s["capacity"] == 4 * 1024.0
        assert s["dirty_blocks"] == 1.0
        assert all(isinstance(v, float) for v in s.values())

    def test_hit_ratio_zero_when_untouched(self):
        assert pool().hit_ratio == 0.0
