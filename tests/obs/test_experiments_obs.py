"""Experiment-level telemetry: golden invariance, determinism, SLO stability.

The expensive guarantees from the issue land here:

* enabling the registry must NOT change any experiment's golden metrics
  (telemetry reads state; it never perturbs the event schedule);
* two same-seed runs export bit-identical .prom/.jsonl/.meta.json;
* the SLO tracker's output schema is stable across seeds (values may
  differ; keys and objective names may not).
"""

import json
from contextlib import contextmanager
from pathlib import Path

from repro.obs import OBS, export_metrics_dir, validate_metrics_dir

GOLDEN_PATH = (
    Path(__file__).resolve().parents[1]
    / "integration" / "golden" / "golden_metrics.json"
)


@contextmanager
def obs_enabled():
    OBS.reset()
    OBS.enable()
    try:
        yield OBS
    finally:
        OBS.disable()
        OBS.reset()


def golden_metrics(key: str) -> dict:
    return json.loads(GOLDEN_PATH.read_text())[key]["metrics"]


def assert_metrics_match_golden(result, key: str) -> None:
    got = {k: repr(v) for k, v in result.metrics.items()}
    want = golden_metrics(key)
    assert got == want, f"{key} metrics drifted with telemetry enabled"


class TestGoldenInvarianceWithTelemetry:
    """OBS on → same goldens. Pins the 'observation changes nothing' claim."""

    def test_e8(self):
        from repro.experiments.e8_latency import run_e8
        from repro.util.units import GB

        with obs_enabled():
            result = run_e8(nbytes=GB(1))
        assert_metrics_match_golden(result, "E8")

    def test_e3(self):
        from repro.experiments.fig8_sc04 import run_fig8
        from repro.util.units import MB

        with obs_enabled():
            result = run_fig8(
                nsd_servers=21,
                clients_per_site=12,
                per_client_phase_bytes=MB(96),
                phases=2,
            )
        assert_metrics_match_golden(result, "E3")

    def test_e13(self):
        from repro.experiments.e13_chaos import run_e13_quick

        with obs_enabled():
            result = run_e13_quick()
        assert_metrics_match_golden(result, "E13")
        assert result.obs is not None  # telemetry rides outside metrics

    def test_e14(self):
        from repro.experiments.e14_integrity import run_e14_quick

        with obs_enabled():
            result = run_e14_quick()
        assert_metrics_match_golden(result, "E14")
        assert result.obs is not None


def run_e13_exported(tmp_path, name, seed=0):
    from repro.experiments.e13_chaos import run_e13_quick

    out = tmp_path / name
    with obs_enabled():
        result = run_e13_quick(seed=seed)
        paths = export_metrics_dir(
            OBS, str(out), "E13", meta=result.obs or {}
        )
    return result, paths


class TestE13Telemetry:
    def test_same_seed_exports_bit_identical(self, tmp_path):
        _, a = run_e13_exported(tmp_path, "a")
        _, b = run_e13_exported(tmp_path, "b")
        for kind in ("prom", "jsonl", "meta"):
            assert (
                Path(a[kind]).read_bytes() == Path(b[kind]).read_bytes()
            ), f"{kind} artifact differs between same-seed runs"
        validate_metrics_dir(str(tmp_path / "a"))

    def test_phases_and_slo_in_meta(self, tmp_path):
        result, paths = run_e13_exported(tmp_path, "m")
        meta = json.loads(Path(paths["meta"]).read_text())
        assert [p["name"] for p in meta["phases"]] == [
            "nominal", "degraded", "failed-over", "recovered",
        ]
        names = [s["name"] for s in meta["slo"]]
        assert names == ["wan_read_latency", "zero_failed_reads"]
        for slo in meta["slo"]:
            assert not slo["breached"], f"{slo['name']} breached in E13 quick"
        # zero-budget objective must be JSON-safe (None, never inf).
        zero = meta["slo"][1]
        assert zero["target"] == 1.0
        assert zero["burn_rate"] is None

    def test_health_report_renders_phases(self, tmp_path):
        from repro.obs.health import render_report

        run_e13_exported(tmp_path, "h")
        text = render_report(str(tmp_path / "h"))
        for needle in (
            "wan_read_latency", "zero_failed_reads",
            "nominal", "degraded", "failed-over", "recovered",
            "read p50", "read p99", "availability",
        ):
            assert needle in text

    def test_slo_schema_stable_across_seeds(self, tmp_path):
        r0, _ = run_e13_exported(tmp_path, "s0", seed=0)
        r1, _ = run_e13_exported(tmp_path, "s1", seed=7)
        slo0, slo1 = r0.obs["slo"], r1.obs["slo"]
        assert [s["name"] for s in slo0] == [s["name"] for s in slo1]
        for a, b in zip(slo0, slo1):
            assert sorted(a) == sorted(b), "SLO result keys differ by seed"

    def test_slo_values_deterministic_per_seed(self, tmp_path):
        r0, _ = run_e13_exported(tmp_path, "d0", seed=7)
        r1, _ = run_e13_exported(tmp_path, "d1", seed=7)
        assert json.dumps(r0.obs, sort_keys=True) == json.dumps(
            r1.obs, sort_keys=True
        )


class TestE8Telemetry:
    def test_per_cell_scrapes_validate(self, tmp_path):
        from repro.experiments.e8_latency import run_e8
        from repro.util.units import MB

        with obs_enabled():
            run_e8(nbytes=MB(64))
            # One scrape per sweep cell, each from its own simulation.
            sims = {row["sim"] for row in OBS.rows}
            assert len(sims) == len(OBS.rows) == 16
            cells = {
                key for row in OBS.rows for key in row["gauges"]
                if key.startswith("e8.cell.rate")
            }
            assert len(cells) == 16
            paths = export_metrics_dir(OBS, str(tmp_path), "E8")
        validate_metrics_dir(str(tmp_path))
        assert json.loads(
            Path(paths["meta"]).read_text()
        )["exp_id"] == "E8"


class TestE14Telemetry:
    def test_phases_and_zero_failed_reads_slo(self):
        from repro.experiments.e14_integrity import run_e14_quick

        with obs_enabled():
            result = run_e14_quick()
        assert [p["name"] for p in result.obs["phases"]] == [
            "nominal", "partitioned", "recovered",
        ]
        [slo] = result.obs["slo"]
        assert slo["name"] == "zero_failed_reads"
        assert not slo["breached"]
        assert slo["events"] > 0
