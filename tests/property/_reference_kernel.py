"""Event loop, events, and generator-based processes.

The kernel is deliberately minimal but complete enough for the reproduction:

* :class:`Event` — one-shot occurrence carrying a value or an exception.
* :class:`Timeout` — event that fires after a delay.
* :class:`Process` — drives a generator; each yielded event suspends the
  process until the event fires. A process is itself an event (fires when the
  generator returns), so processes compose: ``yield other_process``.
* :class:`AllOf` / :class:`AnyOf` — barrier / race combinators.
* :class:`Simulation` — the clock and the heap.

Determinism: events scheduled at equal times fire in (priority, scheduling
order). There is no wall-clock anywhere.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.profile import PROFILE

#: Priority for ordinary events.
NORMAL = 1
#: Priority for "urgent" bookkeeping events that must precede normal ones
#: scheduled at the same instant (used by resource releases).
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, running without events...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence.

    Life cycle: *pending* → *triggered* (scheduled on the heap) →
    *processed* (callbacks run). ``succeed``/``fail`` trigger it; waiting
    processes resume with the value, or have the failure thrown into them.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_processed",
        "_defused",
        "name",
    )

    def __init__(self, sim: "Simulation", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError(f"event {self!r} has not fired yet")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger with an exception; waiters have it thrown into them."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay=0.0, priority=NORMAL)
        return self

    # -- internal ------------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks. Called by the event loop exactly once."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if self._ok is False and not callbacks and not self._defused:
            raise self._value  # unhandled failure with nobody listening

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or self.__class__.__name__
        return f"<{label} triggered={self._triggered} ok={self._ok}>"


class Timeout(Event):
    """Event that fires ``delay`` seconds after construction."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        super().__init__(sim, name=f"Timeout({delay})")
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=delay, priority=NORMAL)


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim, name=self.__class__.__name__)
        self.events = list(events)
        self._count = 0
        if any(e.sim is not sim for e in self.events):
            raise SimulationError("all events of a condition must share a simulation")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # ``processed`` (not ``triggered``): a Timeout is "triggered" from
        # construction, but only events whose callbacks have started running
        # have actually occurred at this instant.
        return {e: e.value for e in self.events if e.processed and e.ok}


class AllOf(_Condition):
    """Fires when every child event has fired; value is ``{event: value}``.

    Fails fast if any child fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event.ok:
                event._defused = True  # late failure: condition already decided
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires (success or failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self.succeed(self._collect())


class Process(Event):
    """Drives a generator; suspends on each yielded :class:`Event`.

    The process fires (as an event) when its generator returns; the generator's
    return value becomes the process's value. Uncaught exceptions in the
    generator fail the process; if nothing is waiting on it, they propagate
    out of :meth:`Simulation.run` (no silent death).
    """

    __slots__ = ("gen", "_target")

    def __init__(self, sim: "Simulation", gen: Generator[Event, Any, Any], name: str = "") -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise TypeError(f"process requires a generator, got {type(gen).__name__}")
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._target: Optional[Event] = None
        # Kick off on a zero-delay init event so creation order == start order.
        init = Event(sim, name=f"init:{self.name}")
        init.callbacks.append(self._resume)
        init.succeed()
        self._target = init

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        # Deliver asynchronously so the interrupter continues first.
        def _deliver(_evt: Event) -> None:
            if self._triggered:
                return  # finished in the meantime
            target = self._target
            if target is not None and target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            self._step(lambda: self.gen.throw(Interrupt(cause)))

        evt = Event(self.sim, name=f"interrupt:{self.name}")
        evt.callbacks.append(_deliver)
        evt.succeed()

    # -- internals -----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        if event.ok:
            self._step(lambda: self.gen.send(event.value))
        else:
            event._defused = True  # type: ignore[attr-defined]
            self._step(lambda: self.gen.throw(event.value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._triggered = True
            self._ok = False
            self._value = exc
            self.sim._enqueue(self, delay=0.0, priority=NORMAL)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
        if target.sim is not self.sim:
            raise SimulationError(f"process {self.name!r} yielded event from another simulation")
        if target.callbacks is None:
            # Already processed: resume immediately via a fresh trigger.
            relay = Event(self.sim, name=f"relay:{self.name}")
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                target._defused = True  # type: ignore[attr-defined]
                relay.fail(target.value)
            self._target = relay
        else:
            target.callbacks.append(self._resume)
            self._target = target


class Simulation:
    """The event loop: a clock plus a heap of pending events."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self.rng = None  # set lazily by RngRegistry users

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- event factories -------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def schedule_callback(self, delay: float, fn: Callable[[], None], name: str = "") -> Event:
        """Run ``fn`` after ``delay`` seconds (bookkeeping helper)."""
        evt = Event(self, name=name or "callback")
        evt.callbacks.append(lambda _e: fn())
        evt._triggered = True
        evt._ok = True
        self._enqueue(evt, delay=delay, priority=NORMAL)
        return evt

    # -- running -----------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        t, _prio, _seq, event = heapq.heappop(self._heap)
        if t < self._now:
            raise SimulationError("time went backwards (kernel bug)")
        self._now = t
        if PROFILE.enabled:
            PROFILE.count("kernel.events")
        event._process()

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the schedule drains, time ``until`` passes, or an event fires.

        Returns the event's value when ``until`` is an event.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._heap:
                    raise SimulationError(
                        f"schedule drained before event {stop!r} fired (deadlock?)"
                    )
                self.step()
            if stop.ok:
                return stop.value
            stop._defused = True  # type: ignore[attr-defined]
            raise stop.value
        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self._now = horizon
        return None
