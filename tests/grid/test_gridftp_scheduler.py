"""Tests for GridFTP and the GUR scheduler."""

import pytest

from repro.grid import GridFtp, GurScheduler, ReservationError, SiteResources
from repro.net import FlowEngine, MessageService, Network, TcpModel
from repro.sim import Simulation
from repro.storage.pipes import Pipe
from repro.util.units import GB, Gbps, MB, MiB, TB


def wan(rate=Gbps(10), delay=0.030, window=MiB(8)):
    net = Network()
    net.add_node("sdsc")
    net.add_node("ncsa")
    net.add_link("sdsc", "ncsa", rate, delay=delay, efficiency=1.0)
    sim = Simulation()
    engine = FlowEngine(sim, net, default_tcp=TcpModel(window=float(window)))
    msgs = MessageService(sim, net)
    return sim, engine, msgs


class TestGridFtp:
    def test_setup_cost_round_trips(self):
        sim, engine, msgs = wan(delay=0.040)
        ftp = GridFtp(sim, engine, msgs)
        res = sim.run(until=ftp.transfer("sdsc", "ncsa", 0))
        # 4 round trips of 80 ms
        assert res.setup_time == pytest.approx(4 * 0.080, rel=0.01)
        assert res.rate == 0.0

    def test_single_stream_window_limited(self):
        # 8 MiB window / 60 ms RTT ≈ 140 MB/s << 10 GbE
        sim, engine, msgs = wan(delay=0.030)
        ftp = GridFtp(sim, engine, msgs)
        res = sim.run(until=ftp.transfer("sdsc", "ncsa", GB(1.4), streams=1))
        assert res.transfer_rate < MB(150)

    def test_parallel_streams_scale(self):
        sim, engine, msgs = wan(delay=0.030)
        ftp = GridFtp(sim, engine, msgs)
        r1 = sim.run(until=ftp.transfer("sdsc", "ncsa", GB(1.4), streams=1))
        r8 = sim.run(until=ftp.transfer("sdsc", "ncsa", GB(1.4), streams=8))
        assert r8.transfer_rate > 6 * r1.transfer_rate

    def test_disk_stage_binds(self):
        sim, engine, msgs = wan()
        slow_disk = Pipe(sim, rate=MB(50), name="scratch")
        ftp = GridFtp(sim, engine, msgs, dst_disk=slow_disk)
        res = sim.run(until=ftp.transfer("sdsc", "ncsa", MB(500), streams=8))
        assert res.transfer_rate <= MB(51)

    def test_validation(self):
        sim, engine, msgs = wan()
        ftp = GridFtp(sim, engine, msgs)
        with pytest.raises(ValueError):
            ftp.transfer("sdsc", "ncsa", -1)
        with pytest.raises(ValueError):
            ftp.transfer("sdsc", "ncsa", 1, streams=0)


class TestGurScheduler:
    def make(self):
        sim = Simulation()
        sched = GurScheduler(sim)
        sched.add_site(SiteResources("sdsc", compute_nodes=256, scratch_bytes=TB(100)))
        sched.add_site(SiteResources("small", compute_nodes=64, scratch_bytes=TB(10)))
        return sim, sched

    def test_admission(self):
        _, sched = self.make()
        res = sched.reserve("sdsc", nodes=128, scratch=TB(50))
        assert sched.admissions == 1
        assert sched.free_scratch("sdsc") == TB(50)
        sched.release(res)
        assert sched.free_scratch("sdsc") == TB(100)

    def test_scratch_refusal(self):
        _, sched = self.make()
        with pytest.raises(ReservationError, match="scratch"):
            sched.reserve("small", nodes=8, scratch=TB(50))
        assert sched.rejections == 1

    def test_node_refusal(self):
        _, sched = self.make()
        with pytest.raises(ReservationError, match="nodes"):
            sched.reserve("small", nodes=128)

    def test_paper_exclusion_effect(self):
        """A 50 TB staging job excludes the small site; a GFS job does not."""
        _, sched = self.make()
        staged_sites = sched.eligible_sites(nodes=8, scratch=TB(50))
        gfs_sites = sched.eligible_sites(nodes=8, scratch=0)
        assert "small" not in staged_sites
        assert set(gfs_sites) == {"sdsc", "small"}

    def test_double_release_rejected(self):
        _, sched = self.make()
        res = sched.reserve("sdsc", nodes=1)
        sched.release(res)
        with pytest.raises(ReservationError):
            sched.release(res)

    def test_unknown_site(self):
        _, sched = self.make()
        with pytest.raises(ReservationError):
            sched.reserve("ghost", nodes=1)

    def test_duplicate_site(self):
        _, sched = self.make()
        with pytest.raises(ValueError):
            sched.add_site(SiteResources("sdsc", compute_nodes=1, scratch_bytes=0))

    def test_concurrent_reservations_deplete_pool(self):
        _, sched = self.make()
        r1 = sched.reserve("small", nodes=40)
        with pytest.raises(ReservationError):
            sched.reserve("small", nodes=40)
        sched.release(r1)
        sched.reserve("small", nodes=40)
