"""Tests for FCIP tunnels and the control-message service."""

import pytest

from repro.net import FlowEngine, MessageService, Network, TcpModel, add_fcip_tunnel
from repro.net.fcip import FCIP_EFFICIENCY, NISHAN_TRUNK_RATE
from repro.sim import Simulation
from repro.util.units import GB, Gbps, MB


class TestFcip:
    def make(self, pairs=2):
        net = Network()
        net.add_node("sdsc-san", kind="switch")
        net.add_node("baltimore-san", kind="switch")
        tunnel = add_fcip_tunnel(
            net, "sdsc-san", "baltimore-san", wan_delay=0.040, pairs=pairs
        )
        return net, tunnel

    def test_tunnel_rate(self):
        _, tunnel = self.make(pairs=2)
        # two Nishan pairs × 4 GbE channels = 8 Gb/s raw
        assert tunnel.forward.rate == pytest.approx(2 * NISHAN_TRUNK_RATE)
        assert tunnel.usable_rate == pytest.approx(Gbps(8) * FCIP_EFFICIENCY)

    def test_sc02_scale_throughput(self):
        # 8 Gb/s max, 90% FCIP efficiency → 900 MB/s ceiling; paper saw 720.
        net, _ = self.make(pairs=2)
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
        evt = eng.transfer("sdsc-san", "baltimore-san", MB(900))
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0 + 0.040)

    def test_validation(self):
        net = Network()
        net.add_node("x")
        net.add_node("y")
        with pytest.raises(ValueError):
            add_fcip_tunnel(net, "x", "y", 0.01, pairs=0)


class TestMessageService:
    def make(self):
        net = Network()
        net.add_node("sw", kind="switch")
        net.add_host("a", "sw", Gbps(1), nic_delay=0.0)
        net.add_host("b", "sw", Gbps(1), nic_delay=0.040)
        sim = Simulation()
        return sim, MessageService(sim, net)

    def test_send_latency(self):
        sim, svc = self.make()
        evt = svc.send("a", "b", payload="hello", nbytes=0)
        got = sim.run(until=evt)
        assert got == "hello"
        assert sim.now == pytest.approx(0.040)

    def test_local_message_fast(self):
        sim, svc = self.make()
        evt = svc.send("a", "a")
        sim.run(until=evt)
        assert sim.now < 1e-5

    def test_round_trip(self):
        sim, svc = self.make()
        evt = svc.round_trip("a", "b", request_bytes=0, reply_bytes=0, service_time=0.5)
        sim.run(until=evt)
        assert sim.now == pytest.approx(0.040 + 0.5 + 0.040)

    def test_serialization_counted(self):
        sim, svc = self.make()
        # 1.25 MB at ~GbE payload rate adds ~10ms.
        t = svc.delivery_time("a", "b", nbytes=1.25e6)
        assert t > 0.040
        assert svc.messages_sent == 0
        svc.send("a", "b")
        assert svc.messages_sent == 1
