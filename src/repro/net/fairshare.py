"""Max-min fair bandwidth allocation with per-flow rate caps.

Vectorized progressive filling ("water-filling"). Each iteration either

* fixes every flow whose cap is at or below its current fair share on every
  link of its path (such a flow is cap-limited in the final allocation,
  because fair shares only grow as other flows get fixed below them), or
* saturates the current bottleneck link(s), fixing their flows at the
  bottleneck share.

Each iteration removes at least one link or the whole capped set, so the
loop runs O(links) times; each iteration is dense numpy over an L×F
incidence matrix (see the HPC guide: vectorize the hot loop, profile before
going lower-level — this routine is the simulator's hot spot).

Two entry points share the solver core:

* :func:`max_min_rates` — stateless, rebuilds the incidence matrix per
  call. Fine for one-shot questions and property tests.
* :class:`FairshareState` — persistent incidence state for the flow
  engine's event loop: columns are added/removed as flows come and go
  (amortized growth, freed columns reused), the link-sharing graph is
  partitioned into connected components with a union-find, and
  :meth:`FairshareState.solve` re-runs water-filling only for components
  marked dirty by a membership or capacity change. Adding a flow between
  SDSC and NCSA must not re-solve an untouched DEISA mesh.

The allocation is the unique max-min fair solution, so solving components
independently yields the same rates as one global solve (components share
no links by construction).

Route-class aggregation (weights)
---------------------------------

Columns carry an integer *weight*: a weight-``w`` column stands for ``w``
flows with the same link-incidence column and the same per-flow cap (a
"route class"). Water-filling treats it as ``w`` demanders on every link
it crosses, and the column's solved rate is the *per-member* rate — by
symmetry, max-min fairness gives identical members identical rates, so no
division back is ever needed.

Exactness argument (why weighted class-space solving is bit-identical to
solving one column per member flow):

* per-link active counts are sums of integer weights — exact in IEEE
  doubles under any summation order, so class space and flow space
  compute the same ``counts``;
* fair shares (``remaining / counts``), per-flow share minima, and every
  cap comparison are single operations on identical inputs;
* the only genuine float *accumulation* is draining fixed flows from
  ``remaining``. It is computed per link as the **exactly rounded** sum
  of the round's fixed demand (``math.fsum``), with each class's demand
  ``w * r`` contributed as its power-of-two decomposition
  ``sum(r * 2^i for set bits i of w)`` — every term exact, so flow space
  (``w`` copies of ``r``) and class space feed fsum term multisets with
  the same exact value, and exactly rounded sums of equal reals are
  bit-equal.

The same argument makes the result independent of how the union-find
happens to have coarsened components: per-link quantities only ever see
that link's own flows, so gluing unrelated groups into one solve cannot
move a bit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.sim.profile import PROFILE

#: Relative tolerance when comparing rates.
_REL_EPS = 1e-9


def _pow2_terms(w: int) -> Tuple[float, ...]:
    """Power-of-two decomposition of integer ``w`` as exact float factors."""
    out = []
    while w:
        low = w & -w
        out.append(float(low))
        w -= low
    return tuple(out)


def _exact_drain(
    remaining: np.ndarray,
    fixed_cols: np.ndarray,
    rates: np.ndarray,
    weights: np.ndarray,
    flows_cat: np.ndarray,
    links_cat: np.ndarray,
) -> None:
    """Subtract the newly fixed columns' demand from ``remaining``.

    Per link the update is the exactly rounded (``math.fsum``) value of
    ``remaining[l] - sum(w_c * r_c)`` over the round's fixed columns
    crossing ``l``, with each ``w_c * r_c`` expanded into exact
    power-of-two terms — see the module docstring's exactness argument.
    Clamped at zero like the allocation loop always has.

    Vectorized by weight bit: set bit ``b`` of column ``c`` contributes
    one ``(link, r_c * 2^b)`` entry per link it crosses. A link receiving
    a single entry is updated with plain IEEE subtraction — exactly
    rounded by definition, so bit-equal to the fsum of the same two
    terms (and to flow space, where ``2^b`` equal members sum exactly).
    Only links receiving multiple entries pay for ``math.fsum``.
    """
    if not fixed_cols.size:
        return
    w_fixed = weights[fixed_cols].astype(np.int64)
    maxw = int(w_fixed.max())
    mask = np.zeros(weights.shape[0], dtype=bool)
    links_parts: List[np.ndarray] = []
    vals_parts: List[np.ndarray] = []
    bit = 1
    while bit <= maxw:
        cols_b = fixed_cols if maxw == 1 else fixed_cols[(w_fixed & bit) != 0]
        if cols_b.size:
            mask[:] = False
            mask[cols_b] = True
            sel = mask[flows_cat]
            links_parts.append(links_cat[sel])
            vals_parts.append(rates[flows_cat[sel]] * float(bit))
        bit <<= 1
    if len(links_parts) == 1:
        links_e, vals_e = links_parts[0], vals_parts[0]
    else:
        links_e = np.concatenate(links_parts)
        vals_e = np.concatenate(vals_parts)
    if not links_e.size:
        return
    counts = np.bincount(links_e, minlength=remaining.shape[0])
    is_multi = counts[links_e] > 1
    if is_multi.any():
        order = np.argsort(links_e[is_multi], kind="stable")
        ml = links_e[is_multi][order]
        mv = (-vals_e[is_multi][order]).tolist()
        seg = np.flatnonzero(np.diff(ml)) + 1
        seg_starts = np.concatenate(([0], seg))
        seg_ends = np.concatenate((seg, [ml.shape[0]]))
        for link, a, b in zip(ml[seg_starts].tolist(),
                              seg_starts.tolist(), seg_ends.tolist()):
            acc = math.fsum([remaining[link], *mv[a:b]])
            remaining[link] = acc if acc > 0.0 else 0.0
        single = ~is_multi
        if not single.any():
            return
        links_e, vals_e = links_e[single], vals_e[single]
    rem = remaining[links_e] - vals_e
    remaining[links_e] = np.where(rem > 0.0, rem, 0.0)


def _water_fill(
    M: np.ndarray,
    Mf: np.ndarray,
    caps: np.ndarray,
    fcaps: np.ndarray,
    rates: np.ndarray,
    unfixed: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> None:
    """Progressive filling over incidence ``M``; writes ``rates`` in place.

    ``M`` is the L×F bool incidence matrix, ``Mf`` its float view (bool @
    bool would be a logical OR, not a count). Only flows in ``unfixed``
    participate; columns outside it must already hold their final rate 0
    contribution (pathless flows never enter here). ``weights`` holds the
    integer member multiplicity per column (``None`` = all ones); the
    solved rate of a weight-``w`` column is the per-member rate.

    Bit-identity note: the per-flow fair share is a *min* over the links
    of a path and the per-link active count is a sum of integer weights —
    both are exact in IEEE floats under any evaluation order, so the
    sparse gather/``reduceat``/``bincount`` formulation below produces
    the same bits as the dense formulation, and class space the same bits
    as flow space. The ``remaining`` drain is the one genuine float
    accumulation; it goes through :func:`_exact_drain` (exactly rounded
    per link), which the module docstring argues is multiplicity- and
    association-independent.
    """
    nlinks, nflows = M.shape
    remaining = caps.copy()
    if weights is None:
        weights = np.ones(nflows)

    # CSC view: for each flow (in column order), the link rows it crosses.
    flows_cat, links_cat = np.nonzero(M.T)
    per_flow = np.bincount(flows_cat, minlength=nflows)
    starts = np.zeros(nflows, dtype=np.intp)
    if nflows:
        np.cumsum(per_flow[:-1], out=starts[1:])
    sparse = bool(nflows) and bool(per_flow.all())  # reduceat needs >=1 link/flow

    # Bound: every round fixes at least one flow (either the capped set, or
    # the flows of a newly saturated bottleneck link), so nflows + nlinks
    # rounds always suffice; the +2 covers the empty-set early exits.
    with np.errstate(divide="ignore", invalid="ignore"):
        for _ in range(nflows + nlinks + 2):
            if not unfixed.any():
                break
            if sparse:
                live_entries = unfixed[flows_cat]
                counts = np.bincount(
                    links_cat[live_entries],
                    weights=weights[flows_cat[live_entries]],
                    minlength=nlinks,
                )
            else:
                counts = Mf @ (unfixed * weights)  # active members per link
            share = np.where(counts > 0, remaining / np.maximum(counts, 1), np.inf)
            # Per-flow fair share: min share over the links of its path.
            if sparse:
                shares_per_flow = np.minimum.reduceat(share[links_cat], starts)
            else:
                shares_per_flow = np.where(M, share[:, None], np.inf).min(axis=0)

            capped = unfixed & (fcaps <= shares_per_flow * (1 + _REL_EPS))
            if capped.any():
                rates[capped] = fcaps[capped]
                unfixed &= ~capped
                # Skip the drain when this round fixed the last columns:
                # remaining is local and never read again, so the skip
                # cannot move a bit of any rate.
                if unfixed.any():
                    _exact_drain(remaining, np.nonzero(capped)[0], rates,
                                 weights, flows_cat, links_cat)
                continue

            live = shares_per_flow[unfixed]
            m = live.min()
            newly = unfixed & (shares_per_flow <= m * (1 + _REL_EPS))
            rates[newly] = np.minimum(shares_per_flow[newly], fcaps[newly])
            unfixed &= ~newly
            if unfixed.any():
                _exact_drain(remaining, np.nonzero(newly)[0], rates,
                             weights, flows_cat, links_cat)
        else:  # pragma: no cover - loop bound is a proof, not a code path
            raise RuntimeError("progressive filling failed to converge")


def max_min_rates(
    link_caps: Sequence[float],
    flow_links: Sequence[Sequence[int]],
    flow_caps: Sequence[float],
    flow_weights: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Allocate rates to flows.

    Parameters
    ----------
    link_caps:
        Usable capacity of each link (bytes/s), indexed by link id.
    flow_links:
        For each flow, the link ids on its path (may be empty for loopback
        flows, which then get exactly their cap).
    flow_caps:
        Per-flow rate cap (``inf`` allowed only for flows with a non-empty
        path; a pathless flow must have a finite cap).
    flow_weights:
        Optional member multiplicity per entry (route-class aggregation):
        a weight-``w`` entry stands for ``w`` identical flows and its
        returned rate is the per-member rate. Default all ones.

    Returns
    -------
    numpy array of allocated rates, same order as ``flow_links``.

    Properties (tested): no link oversubscribed; every flow gets a positive
    rate; a flow is either at its cap or has a bottleneck link that is fully
    used; allocation is max-min fair; a weight-``w`` entry gets the same
    rate as ``w`` separate weight-1 entries would, bit for bit.
    """
    nflows = len(flow_links)
    caps = np.asarray(link_caps, dtype=float)
    nlinks = caps.shape[0]
    fcaps = np.asarray(flow_caps, dtype=float)
    if fcaps.shape[0] != nflows:
        raise ValueError("flow_caps length must match flow_links")
    if np.any(fcaps <= 0):
        raise ValueError("flow caps must be positive")
    if np.any(caps <= 0):
        raise ValueError("link capacities must be positive")
    if flow_weights is None:
        weights = np.ones(nflows)
    else:
        weights = np.asarray(flow_weights, dtype=float)
        if weights.shape[0] != nflows:
            raise ValueError("flow_weights length must match flow_links")
        if np.any(weights < 1) or np.any(weights != np.floor(weights)):
            raise ValueError("flow weights must be positive integers")

    rates = np.zeros(nflows)
    if nflows == 0:
        return rates

    # Incidence matrix M[l, f] = flow f crosses link l.
    M = np.zeros((nlinks, nflows), dtype=bool)
    for f, path in enumerate(flow_links):
        for l in path:
            M[l, f] = True

    pathless = ~M.any(axis=0)
    if np.any(pathless & ~np.isfinite(fcaps)):
        raise ValueError("a flow with an empty path must have a finite cap")
    rates[pathless] = fcaps[pathless]

    _water_fill(M, M.astype(np.float64), caps, fcaps, rates, ~pathless, weights)
    return rates


def link_utilization(
    link_caps: Sequence[float],
    flow_links: Sequence[Sequence[int]],
    rates: Sequence[float],
) -> np.ndarray:
    """Per-link used fraction under allocation ``rates`` (diagnostics).

    The single implementation of this accumulation — the flow engine's
    :meth:`~repro.net.flow.FlowEngine.link_utilization` delegates here.
    """
    caps = np.asarray(link_caps, dtype=float)
    used = np.zeros_like(caps)
    lengths = np.fromiter(
        (len(p) for p in flow_links), dtype=np.intp, count=len(flow_links)
    )
    total = int(lengths.sum())
    if total:
        idx = np.fromiter(
            (l for path in flow_links for l in path), dtype=np.intp, count=total
        )
        np.add.at(used, idx, np.repeat(np.asarray(rates, dtype=float), lengths))
    return used / caps


class FairshareState:
    """Persistent incidence/cap arrays + component-partitioned re-solve.

    Owns the L×C incidence matrix the solver runs over, where C is a
    column *capacity* (doubled on demand). A flow occupies one column from
    :meth:`add_flow` until :meth:`remove_flow`; freed columns go on a free
    list and are reused LIFO, so the matrix is built once and patched per
    event instead of rebuilt per solve.

    Links are partitioned by a union-find into connected components of the
    link-sharing graph (two links are connected when some active flow
    crosses both). A membership or capacity change dirties only the
    touched component; :meth:`solve` water-fills dirty components in
    isolation and returns the columns whose rate changed. Flow departures
    never split components eagerly (the partition only coarsens); after
    :attr:`_REBUILD_REMOVALS` removals the partition is rebuilt from the
    active flows, which re-tightens it at amortized O(path) per removal.
    """

    #: Removals tolerated before the (only-coarsening) partition is rebuilt.
    _REBUILD_REMOVALS = 512

    def __init__(self, link_caps: Sequence[float] = (), capacity: int = 64) -> None:
        caps = np.array(link_caps, dtype=float)
        if np.any(caps <= 0):
            raise ValueError("link capacities must be positive")
        self._caps = caps
        self._nlinks = caps.shape[0]
        cap = max(int(capacity), 1)
        self._M = np.zeros((self._nlinks, cap), dtype=bool)
        self._fcaps = np.zeros(cap)
        self._rates = np.zeros(cap)
        self._weights = np.zeros(cap)
        self._active = np.zeros(cap, dtype=bool)
        self._paths: List[Optional[List[int]]] = [None] * cap
        # Popped back-first so fresh columns are handed out in index order.
        self._free: List[int] = list(range(cap - 1, -1, -1))
        self.nactive = 0
        # Union-find over link ids; a component's id is its root link.
        self._parent: List[int] = list(range(self._nlinks))
        self._size: List[int] = [1] * self._nlinks
        #: root link id -> set of active columns in that component.
        self._comp_cols: Dict[int, Set[int]] = {}
        self._dirty: Set[int] = set()
        #: columns rated outside solve() (pathless flows), reported once.
        self._fresh: List[int] = []
        self._removals = 0
        #: Always-on solve counters (scraped by repro.obs; PROFILE keeps
        #: the opt-in fine-grained versions).
        self.solves = 0
        self.solved_rows = 0
        self.single_flow_solves = 0
        self.weight_changes = 0

    # -- union-find -----------------------------------------------------------

    def _find(self, l: int) -> int:
        parent = self._parent
        root = l
        while parent[root] != root:
            root = parent[root]
        while parent[l] != root:  # path compression
            parent[l], l = root, parent[l]
        return root

    def _union(self, a: int, b: int) -> int:
        """Merge the components of roots ``a`` and ``b``; return the root."""
        if a == b:
            return a
        # Union by size; smaller root id wins ties for determinism.
        if (self._size[a], -a) < (self._size[b], -b):
            a, b = b, a
        self._parent[b] = a
        self._size[a] += self._size[b]
        cols = self._comp_cols.pop(b, None)
        if cols:
            self._comp_cols.setdefault(a, set()).update(cols)
        if b in self._dirty:
            self._dirty.discard(b)
            self._dirty.add(a)
        return a

    # -- capacity maintenance -------------------------------------------------

    def _grow_cols(self) -> None:
        old = self._M.shape[1]
        new = max(2 * old, 1)
        PROFILE.count("fairshare.matrix_growths")
        M = np.zeros((self._nlinks, new), dtype=bool)
        M[:, :old] = self._M
        self._M = M
        for name in ("_fcaps", "_rates", "_weights"):
            arr = np.zeros(new)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        active = np.zeros(new, dtype=bool)
        active[:old] = self._active
        self._active = active
        self._paths.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def _grow_links(self, nlinks: int) -> None:
        M = np.zeros((nlinks, self._M.shape[1]), dtype=bool)
        M[: self._nlinks] = self._M
        self._M = M
        self._parent.extend(range(self._nlinks, nlinks))
        self._size.extend([1] * (nlinks - self._nlinks))
        self._nlinks = nlinks

    def set_link_caps(self, link_caps: Sequence[float]) -> None:
        """Adopt the current capacity vector; dirty components that changed.

        Called by the engine before every solve, so ``Link.set_rate``
        changes are picked up at the next event with no further plumbing —
        but only the components containing a changed link re-solve.
        """
        caps = np.asarray(link_caps, dtype=float)
        if caps.shape[0] > self._nlinks:
            self._grow_links(caps.shape[0])
        elif caps.shape[0] < self._nlinks:
            raise ValueError("links cannot be removed from a FairshareState")
        if self._caps.shape[0] == caps.shape[0] and np.array_equal(caps, self._caps):
            return
        if np.any(caps <= 0):
            raise ValueError("link capacities must be positive")
        old = self._caps
        for l in range(caps.shape[0]):
            if l >= old.shape[0] or caps[l] != old[l]:
                root = self._find(l)
                if self._comp_cols.get(root):
                    self._dirty.add(root)
        self._caps = caps.copy()

    # -- flow membership --------------------------------------------------------

    def add_flow(self, path: Sequence[int], fcap: float, weight: int = 1) -> int:
        """Insert a flow crossing link ids ``path``; returns its column.

        ``weight`` is the route-class member multiplicity: a weight-``w``
        column is solved as ``w`` identical flows, and its rate is the
        per-member rate. Use :meth:`set_weight` for join/leave updates.
        """
        if fcap <= 0:
            raise ValueError("flow caps must be positive")
        if weight < 1 or weight != int(weight):
            raise ValueError("flow weight must be a positive integer")
        if not self._free:
            self._grow_cols()
        col = self._free.pop()
        self._fcaps[col] = fcap
        self._rates[col] = 0.0
        self._weights[col] = float(weight)
        self._active[col] = True
        self.nactive += 1
        path = list(path)
        self._paths[col] = path
        if path:
            # The network may have grown links since the last solve; row
            # growth happens here, capacities arrive via set_link_caps.
            need = max(path) + 1
            if need > self._nlinks:
                self._grow_links(need)
            self._M[path, col] = True
            root = self._find(path[0])
            for l in path[1:]:
                root = self._union(root, self._find(l))
            self._comp_cols.setdefault(root, set()).add(col)
            self._dirty.add(root)
        else:
            if not np.isfinite(fcap):
                raise ValueError("a flow with an empty path must have a finite cap")
            # Pathless flows are their own trivial component: the rate is
            # the cap, now and forever — rated at the next solve(), no
            # water-filling needed.
            self._fresh.append(col)
        return col

    def remove_flow(self, col: int) -> None:
        """Release ``col``; its component re-solves on the next ``solve()``."""
        if not self._active[col]:
            raise ValueError(f"column {col} is not active")
        path = self._paths[col]
        self._active[col] = False
        self._paths[col] = None
        self._rates[col] = 0.0
        self._fcaps[col] = 0.0
        self._weights[col] = 0.0
        self.nactive -= 1
        if path:
            self._M[path, col] = False
            root = self._find(path[0])
            cols = self._comp_cols.get(root)
            if cols is not None:
                cols.discard(col)
                if cols:
                    self._dirty.add(root)
                else:
                    del self._comp_cols[root]
                    self._dirty.discard(root)
            self._removals += 1
        self._free.append(col)

    def set_weight(self, col: int, weight: int) -> None:
        """Adjust a column's member multiplicity (route-class join/leave).

        The column's component re-solves at the next :meth:`solve`. Weight
        0 parks the column: it stays registered (its links stay unioned,
        so a later re-join is a pure weight bump with no matrix or
        union-find churn) but is skipped by the solver entirely — a parked
        column costs nothing per solve. A parked column's links staying
        glued cannot move a bit: per-link arithmetic only ever sees a
        link's own member flows (see the module docstring).
        """
        if not self._active[col]:
            raise ValueError(f"column {col} is not active")
        if weight < 0 or weight != int(weight):
            raise ValueError("flow weight must be a non-negative integer")
        old = self._weights[col]
        w = float(weight)
        if w == old:
            return
        self._weights[col] = w
        self.weight_changes += 1
        path = self._paths[col]
        if path:
            self._dirty.add(self._find(path[0]))
        # Pathless classes keep rate == fcap at any weight; nothing to do.

    def weight_of(self, col: int) -> int:
        return int(self._weights[col])

    def rate_of(self, col: int) -> float:
        return float(self._rates[col])

    @property
    def rates(self) -> np.ndarray:
        """Current per-column rates (authoritative; do not mutate)."""
        return self._rates

    @property
    def capacity(self) -> int:
        """Current column capacity (callers keeping parallel arrays)."""
        return self._M.shape[1]

    # -- solving ---------------------------------------------------------------

    def _rebuild_partition(self) -> None:
        """Recompute components from the active flows (undoes coarsening)."""
        PROFILE.count("fairshare.partition_rebuilds")
        dirty_cols = [c for r in self._dirty for c in self._comp_cols.get(r, ())]
        self._parent = list(range(self._nlinks))
        self._size = [1] * self._nlinks
        self._comp_cols = {}
        self._dirty = set()
        for col in np.nonzero(self._active)[0]:
            path = self._paths[int(col)]
            if not path:
                continue
            root = self._find(path[0])
            for l in path[1:]:
                root = self._union(root, self._find(l))
            self._comp_cols.setdefault(root, set()).add(int(col))
        for col in dirty_cols:
            path = self._paths[col]
            if path:
                self._dirty.add(self._find(path[0]))
        self._removals = 0

    def solve(self) -> Tuple[np.ndarray, np.ndarray]:
        """Re-solve dirty components.

        Returns ``(cols, old_rates)``: the columns whose rate changed and
        the rates they had before this solve (the new rates are readable
        via :attr:`rates` / :meth:`rate_of`). Untouched components keep
        their rates and do not appear.
        """
        moved_cols: List[np.ndarray] = []
        moved_old: List[np.ndarray] = []
        if self._fresh:
            fresh = np.asarray(self._fresh, dtype=np.intp)
            self._fresh = []
            moved_cols.append(fresh)
            moved_old.append(self._rates[fresh].copy())
            self._rates[fresh] = self._fcaps[fresh]
        if self._removals >= self._REBUILD_REMOVALS:
            self._rebuild_partition()
        for root in sorted(self._dirty):
            cols_set = self._comp_cols.get(root)
            if not cols_set:
                continue
            # Weight-0 (parked) class columns keep the component glued but
            # take no bandwidth; the solver never sees them.
            comp_cols = np.fromiter(cols_set, dtype=np.intp,
                                    count=len(cols_set))
            live_cols = comp_cols[self._weights[comp_cols] > 0.0]
            if not live_cols.size:
                continue
            if live_cols.size == 1:
                # Single-column component: water-filling reduces to one
                # round. counts are ``w`` on every link of the path, so the
                # column's share is min(caps over path) / w — division by a
                # constant is weakly monotone, so the min commutes with it
                # and this produces the same bits as the general solver.
                c = int(live_cols[0])
                path = self._paths[c]
                m = self._caps[path[0]]
                for l in path[1:]:
                    cl = self._caps[l]
                    if cl < m:
                        m = cl
                w = self._weights[c]
                if w != 1.0:
                    m = m / w
                fcap = self._fcaps[c]
                rate = fcap if fcap <= m * (1 + _REL_EPS) else min(m, fcap)
                self.single_flow_solves += 1
                PROFILE.count("fairshare.single_flow_solves")
                if rate != self._rates[c]:
                    moved = np.asarray([c], dtype=np.intp)
                    moved_cols.append(moved)
                    moved_old.append(self._rates[moved].copy())
                    self._rates[c] = rate
                continue
            cols = np.sort(live_cols)
            sub = self._M[:, cols]
            links = np.nonzero(sub.any(axis=1))[0]
            subM = sub[links]
            fcaps = self._fcaps[cols]
            rates = np.zeros(cols.shape[0])
            self.solves += 1
            self.solved_rows += int(cols.shape[0])
            PROFILE.count("fairshare.solves")
            PROFILE.count("fairshare.solved_rows", cols.shape[0])
            _water_fill(
                subM,
                subM.astype(np.float64),
                self._caps[links],
                fcaps,
                rates,
                np.ones(cols.shape[0], dtype=bool),
                self._weights[cols],
            )
            diff = rates != self._rates[cols]
            if diff.any():
                moved = cols[diff]
                moved_cols.append(moved)
                moved_old.append(self._rates[moved].copy())
                self._rates[moved] = rates[diff]
        self._dirty.clear()
        if not moved_cols:
            empty = np.empty(0)
            return empty.astype(np.intp), empty
        return np.concatenate(moved_cols), np.concatenate(moved_old)

    # -- diagnostics ------------------------------------------------------------

    def link_usage(self) -> np.ndarray:
        """Per-link allocated bytes/s under the current rates.

        One dense matvec over the incidence state — the bottleneck-
        attribution layer (``repro.sim.trace``) divides this by the
        capacity vector to find which links are saturated at each rate
        change. Only called when tracing is enabled.
        """
        return self._M @ (self._rates * self._active * self._weights)

    def class_stats(self) -> Tuple[int, int]:
        """(active solver columns, total member weight across them).

        The aggregation ratio ``members / columns`` is the solver-dimension
        reduction route-class aggregation bought (1.0 when unaggregated).
        """
        act = self._active
        return int(np.count_nonzero(act)), int(self._weights[act].sum())

    def component_sizes(self) -> List[int]:
        """Active-flow count per link-sharing component (for tests/benches)."""
        return sorted(len(cols) for cols in self._comp_cols.values() if cols)
