"""Property tests for the fluid flow engine.

* conservation: every transfer delivers exactly its byte count, regardless
  of how transfers overlap;
* physicality: nothing finishes faster than the bottleneck allows;
* determinism: identical runs produce identical completion times.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import FlowEngine, Network, TcpModel
from repro.sim import Simulation
from repro.util.units import GB, MB


def star_network(n_hosts=4, host_rate=MB(100), trunk_rate=MB(250)):
    """Hosts around a hub with a trunk to a sink."""
    net = Network()
    net.add_node("hub")
    net.add_node("sink-sw")
    net.add_link("hub", "sink-sw", trunk_rate, delay=0.001, efficiency=1.0)
    net.add_node("sink")
    net.add_link("sink-sw", "sink", trunk_rate * 2, efficiency=1.0)
    for i in range(n_hosts):
        net.add_host(f"h{i}", "hub", host_rate, nic_delay=0.0005, efficiency=1.0)
    return net


transfer_st = st.tuples(
    st.integers(0, 3),  # source host
    st.floats(1e4, 5e8),  # bytes
    st.floats(0.0, 2.0),  # start delay
)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(transfers=st.lists(transfer_st, min_size=1, max_size=10))
def test_all_bytes_delivered(transfers):
    sim = Simulation()
    net = star_network()
    engine = FlowEngine(sim, net, default_tcp=TcpModel(window=float(GB(1))))
    done_events = []

    def starter(sim, src, nbytes, delay):
        yield sim.timeout(delay)
        done_events.append(engine.transfer(f"h{src}", "sink", nbytes))

    for src, nbytes, delay in transfers:
        sim.process(starter(sim, src, nbytes, delay))
    sim.run()
    assert engine.active_count == 0
    assert engine.completed_flows == len(transfers)
    assert engine.bytes_moved == pytest.approx(sum(t[1] for t in transfers))
    for evt in done_events:
        assert evt.processed and evt.ok


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(transfers=st.lists(transfer_st, min_size=1, max_size=8))
def test_no_faster_than_bottleneck(transfers):
    sim = Simulation()
    net = star_network()
    engine = FlowEngine(sim, net, default_tcp=TcpModel(window=float(GB(1))))
    records = []

    def starter(sim, src, nbytes, delay):
        yield sim.timeout(delay)
        t0 = sim.now
        flow = yield engine.transfer(f"h{src}", "sink", nbytes)
        records.append((nbytes, sim.now - t0))

    procs = [
        sim.process(starter(sim, src, nbytes, delay))
        for src, nbytes, delay in transfers
    ]
    sim.run()
    host_rate = MB(100)
    for nbytes, elapsed in records:
        # can never beat a dedicated host NIC plus propagation
        assert elapsed >= nbytes / host_rate * (1 - 1e-9)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(transfers=st.lists(transfer_st, min_size=1, max_size=8))
def test_deterministic_replay(transfers):
    def run_once():
        sim = Simulation()
        net = star_network()
        engine = FlowEngine(sim, net, default_tcp=TcpModel(window=float(GB(1))))
        finish_times = []

        def starter(sim, src, nbytes, delay):
            yield sim.timeout(delay)
            yield engine.transfer(f"h{src}", "sink", nbytes)
            finish_times.append(sim.now)

        for src, nbytes, delay in transfers:
            sim.process(starter(sim, src, nbytes, delay))
        sim.run()
        return finish_times

    assert run_once() == run_once()
