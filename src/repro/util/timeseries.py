"""Time-series recording for experiment output.

The paper's figures are throughput-vs-time traces (Figs 2, 5, 8) and
throughput-vs-scale curves (Fig 11). :class:`TimeSeries` is the carrier for
both; :class:`RateMeter` turns discrete completion events ("N bytes finished
at time t") into a windowed rate trace like the SCinet monitoring used at
SC'04.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


@dataclass
class TimeSeries:
    """An append-only series of ``(t, value)`` samples with monotone ``t``.

    Provides the aggregate statistics the experiment harnesses report
    (mean/max/percentiles) and resampling onto a uniform grid for plotting
    figure-shaped output.
    """

    name: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, value: float) -> None:
        """Append a sample; ``t`` must be >= the previous sample's time."""
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"non-monotone time {t} after {self.times[-1]} in series {self.name!r}"
            )
        self.times.append(float(t))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    @property
    def empty(self) -> bool:
        return not self.times

    def max(self) -> float:
        if self.empty:
            raise ValueError(f"empty series {self.name!r}")
        return max(self.values)

    def min(self) -> float:
        if self.empty:
            raise ValueError(f"empty series {self.name!r}")
        return min(self.values)

    def mean(self) -> float:
        if self.empty:
            raise ValueError(f"empty series {self.name!r}")
        return sum(self.values) / len(self.values)

    def time_weighted_mean(self) -> float:
        """Mean of a piecewise-constant signal sampled at change points."""
        if len(self.times) < 2:
            return self.mean()
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return self.mean()
        return total / span

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` in [0, 100] (nearest-rank)."""
        if self.empty:
            raise ValueError(f"empty series {self.name!r}")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} out of range")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def value_at(self, t: float) -> float:
        """Piecewise-constant (previous-sample) interpolation at time ``t``."""
        if self.empty:
            raise ValueError(f"empty series {self.name!r}")
        i = bisect.bisect_right(self.times, t) - 1
        if i < 0:
            return self.values[0]
        return self.values[i]

    def resample(self, times: Sequence[float]) -> "TimeSeries":
        """Sample the series onto ``times`` (piecewise-constant)."""
        out = TimeSeries(name=self.name)
        for t in times:
            out.add(t, self.value_at(t))
        return out

    def slice(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with ``t0 <= t < t1``."""
        out = TimeSeries(name=self.name)
        for t, v in self:
            if t0 <= t < t1:
                out.add(t, v)
        return out

    def windowed_mean(self, window: float, t_end: float | None = None) -> "TimeSeries":
        """Time-weighted mean per ``window`` of a piecewise-constant signal.

        This is what a monitoring station (e.g. the SCinet per-link graphs
        of Fig 8) reports: the integral of the instantaneous rate over each
        window, divided by the window.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        out = TimeSeries(name=self.name)
        if self.empty:
            return out
        t0 = self.times[0]
        last = t_end if t_end is not None else self.times[-1]
        if last <= t0:
            return out
        nbins = int(math.ceil((last - t0) / window))
        # integrate between change points
        edges = [t0 + i * window for i in range(nbins + 1)]
        for i in range(nbins):
            lo, hi = edges[i], min(edges[i + 1], last)
            # walk the samples inside [lo, hi)
            total = 0.0
            t = lo
            idx = bisect.bisect_right(self.times, lo) - 1
            while t < hi:
                nxt_change = (
                    self.times[idx + 1] if idx + 1 < len(self.times) else float("inf")
                )
                seg_end = min(hi, nxt_change)
                value = self.values[max(0, idx)]
                total += value * (seg_end - t)
                t = seg_end
                if t >= nxt_change:
                    idx += 1
            out.add(edges[i + 1], total / (hi - lo) if hi > lo else 0.0)
        return out

    @staticmethod
    def sum_of(series: Iterable["TimeSeries"], name: str = "sum") -> "TimeSeries":
        """Pointwise sum of piecewise-constant series on the union grid."""
        series = list(series)
        grid = sorted({t for s in series for t in s.times})
        out = TimeSeries(name=name)
        for t in grid:
            out.add(t, sum(s.value_at(t) for s in series if not s.empty and t >= s.times[0]))
        return out


class RateMeter:
    """Windowed byte-rate meter.

    Feed it ``record(t, nbytes)`` events; read back a rate trace with one
    sample per ``window`` seconds — the same reduction the SCinet bandwidth
    monitors applied to the SC'04 links (Fig 8).
    """

    def __init__(self, window: float = 1.0, name: str = "") -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self.name = name
        self._events: list[tuple[float, float]] = []
        self.total_bytes = 0.0

    def record(self, t: float, nbytes: float) -> None:
        """Record that ``nbytes`` completed at simulation time ``t``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self._events and t < self._events[-1][0]:
            raise ValueError(f"non-monotone time {t} in meter {self.name!r}")
        self._events.append((float(t), float(nbytes)))
        self.total_bytes += nbytes

    def series(self, t_end: float | None = None) -> TimeSeries:
        """Aggregate into a per-window rate trace (bytes/second samples).

        An empty window — ``t_end <= 0``, i.e. at or before the first
        window's start — yields an empty series rather than one
        catch-all bin covering no time.
        """
        out = TimeSeries(name=self.name)
        if not self._events:
            return out
        t0 = 0.0
        last = t_end if t_end is not None else self._events[-1][0]
        if last <= t0:
            return out
        nbins = int(math.ceil((last - t0) / self.window))
        bins = [0.0] * nbins
        for t, nbytes in self._events:
            i = min(nbins - 1, int((t - t0) / self.window))
            bins[i] += nbytes
        for i, total in enumerate(bins):
            out.add(t0 + (i + 1) * self.window, total / self.window)
        return out

    def mean_rate(self, t_end: float | None = None) -> float:
        """Overall bytes/second from first window start to ``t_end``."""
        if not self._events:
            return 0.0
        last = t_end if t_end is not None else self._events[-1][0]
        if last <= 0:
            return 0.0
        return self.total_bytes / last
