"""Simulation-time instrumentation.

:class:`Monitor` bundles the rate meters and gauges an experiment registers,
stamped with the simulation clock; the experiment harnesses read figures out
of it at the end of a run.

Since the telemetry layer landed, the primitives live in
:mod:`repro.obs.metrics` — :class:`Gauge` here is a thin shim that binds
an :class:`repro.obs.metrics.Gauge` to one simulation's clock so existing
``gauge.set(value)`` call sites keep working unchanged.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.metrics import Gauge as ObsGauge
from repro.sim.kernel import Simulation
from repro.util.timeseries import RateMeter, TimeSeries


class Gauge:
    """A sampled scalar (queue depth, cache occupancy) over sim time.

    Every :meth:`set` records a timestamped sample — the full history is
    kept (not just the last value), so ``rate_series``-style queries work
    for gauges the same way they do for meters.
    """

    def __init__(self, sim: Simulation, name: str = "") -> None:
        self.sim = sim
        self.obs = ObsGauge(name=name)

    @property
    def name(self) -> str:
        return self.obs.name

    def set(self, value: float) -> None:
        self.obs.set(value, self.sim.now)

    def last(self) -> float:
        # MetricError subclasses ValueError and names the gauge.
        return self.obs.last()

    @property
    def series(self) -> TimeSeries:
        """The full sample history as a :class:`TimeSeries`."""
        return self.obs.series()


class Monitor:
    """Named rate meters + gauges bound to one simulation."""

    def __init__(self, sim: Simulation, window: float = 1.0) -> None:
        self.sim = sim
        self.window = window
        self.meters: Dict[str, RateMeter] = {}
        self.gauges: Dict[str, Gauge] = {}

    def meter(self, name: str, window: float | None = None) -> RateMeter:
        m = self.meters.get(name)
        if m is None:
            m = RateMeter(window=window or self.window, name=name)
            self.meters[name] = m
        return m

    def record_bytes(self, name: str, nbytes: float) -> None:
        """Record ``nbytes`` completed now on meter ``name``."""
        self.meter(name).record(self.sim.now, nbytes)

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = Gauge(self.sim, name=name)
            self.gauges[name] = g
        return g

    def rate_series(self, name: str, t_end: float | None = None) -> TimeSeries:
        """Rate trace of meter ``name``; raises ``KeyError`` if never recorded.

        (Looking the meter up via :meth:`meter` would silently create an
        empty one, turning a typo into an empty series downstream.)

        An empty window — ``t_end <= 0``, i.e. at or before the first
        window's start — yields an empty series; see
        :meth:`repro.util.timeseries.RateMeter.series`.
        """
        m = self.meters.get(name)
        if m is None:
            raise KeyError(
                f"no meter {name!r} was ever recorded; "
                f"known meters: {sorted(self.meters)}"
            )
        return m.series(t_end if t_end is not None else self.sim.now)

    def gauge_series(self, name: str) -> TimeSeries:
        """Sample history of gauge ``name``; raises ``KeyError`` if unknown.

        The gauge counterpart of :meth:`rate_series` — same typo
        protection, same :class:`TimeSeries` carrier.
        """
        g = self.gauges.get(name)
        if g is None:
            raise KeyError(
                f"no gauge {name!r} was ever set; "
                f"known gauges: {sorted(self.gauges)}"
            )
        return g.series
