"""Distributed byte-range lock tokens.

GPFS serializes conflicting file access with *tokens* handed out by a token
manager node; a client keeps a token until a conflicting request forces a
revoke, at which point the holder flushes affected dirty data and releases.
Because tokens are cached, steady-state streaming pays no per-IO lock
traffic — only the first touch and true sharing pay WAN round trips, which
is why GPFS's locking survived the TeraGrid latencies (§3).

Modes: ``"ro"`` (shared) and ``"rw"`` (exclusive). Ranges are half-open
byte intervals ``[start, end)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.net.message import MessageService
from repro.sim.kernel import Event, Simulation
from repro.sim.resources import Resource

RO = "ro"
RW = "rw"


class ManagerMovedError(RuntimeError):
    """A token RPC was parked at a crashed manager whose role has since
    moved to a successor node: the caller must re-issue the request,
    which will target the new ``TokenManager.node``."""


def _check_mode(mode: str) -> None:
    if mode not in (RO, RW):
        raise ValueError(f"mode must be 'ro' or 'rw', got {mode!r}")


def _check_range(start: int, end: int) -> None:
    if start < 0 or end <= start:
        raise ValueError(f"invalid byte range [{start}, {end})")


@dataclass
class HeldToken:
    holder: str  # client node name
    mode: str
    start: int
    end: int

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def conflicts_with(self, other_holder: str, mode: str, start: int, end: int) -> bool:
        if self.holder == other_holder:
            return False
        if not self.overlaps(start, end):
            return False
        return self.mode == RW or mode == RW


def merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union of half-open intervals, sorted and coalesced."""
    if not ranges:
        return []
    ordered = sorted(ranges)
    out = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = out[-1]
        if start <= last_end:
            out[-1] = (last_start, max(last_end, end))
        else:
            out.append((start, end))
    return out


def covers(ranges: List[Tuple[int, int]], start: int, end: int) -> bool:
    """True when the union of ``ranges`` contains ``[start, end)``."""
    pos = start
    for r_start, r_end in merge_ranges(ranges):
        if r_start > pos:
            return False
        if r_end >= end:
            return True
        if r_end > pos:
            pos = r_end
    return pos >= end


#: Revoke handler: generator process run on the client when it must give up
#: ``[start, end)`` of ``ino``; must flush dirty data before returning.
RevokeHandler = Callable[[int, int, int], Generator[Event, None, None]]


class TokenManager:
    """The token server for one filesystem, living on ``node``."""

    def __init__(self, sim: Simulation, messages: MessageService, node: str) -> None:
        self.sim = sim
        self.messages = messages
        self.node = node
        self._held: Dict[int, List[HeldToken]] = {}
        self._handlers: Dict[str, RevokeHandler] = {}
        self._ino_locks: Dict[int, Resource] = {}
        self.grants = 0
        self.revokes = 0
        #: Optional repro.faults.DiskLeaseDetector: when the holder of a
        #: conflicting token is dead, revocation waits for its lease to
        #: expire instead of messaging a corpse forever.
        self.failure_detector = None
        self.dead_holder_releases = 0
        #: Optional repro.faults.QuorumService: a manager node cut off
        #: from the majority of NSD server nodes parks every grant until
        #: the partition heals — the split-brain gate.
        self.quorum = None
        self.quorum_parked_grants = 0
        #: Optional grant observer ``fn(client, ino, mode, start, end)``,
        #: called synchronously after each grant lands (still inside the
        #: per-ino lock, revocations already complete). The caching
        #: gateway's lease server hooks this to version inodes; ``None``
        #: keeps the grant path byte-for-byte the pre-hook code.
        self.on_grant = None
        #: Optional repro.faults.NodeHealth: when set (manager failover
        #: armed), grants park while the manager node is down and abort
        #: with :class:`ManagerMovedError` once the role moves. ``None``
        #: keeps the grant path byte-for-byte the pre-failover code.
        self.health = None
        #: Takeover epoch: bumped by :meth:`complete_takeover`. An acquire
        #: that observes an epoch change mid-protocol raises
        #: :class:`ManagerMovedError` so the client re-targets the RPC.
        self.epoch = 0
        self.in_takeover = False
        self._takeover_waiters: List[Event] = []
        #: Per-holder mirror of granted tokens — the client-side state a
        #: survivor replays to a new manager at takeover. Updated at the
        #: same commit points as ``_held`` so mirror == manager state
        #: restricted to the holder, under every interleaving.
        self._mirrors: Dict[str, Dict[int, List[HeldToken]]] = {}
        self.manager_moves = 0
        self.redirects = 0
        #: Revokes abandoned because the holder died mid-flush (the
        #: crash-time lock sweep: without it the per-ino lock leaks).
        self.revokes_abandoned_dead = 0

    def register_client(self, node: str, handler: RevokeHandler) -> None:
        self._handlers[node] = handler

    def registered_clients(self) -> List[str]:
        return list(self._handlers)

    def _lock_for(self, ino: int) -> Resource:
        lock = self._ino_locks.get(ino)
        if lock is None:
            lock = Resource(self.sim, capacity=1, name=f"tm-ino{ino}")
            self._ino_locks[ino] = lock
        return lock

    def holders(self, ino: int) -> List[HeldToken]:
        return list(self._held.get(ino, []))

    def client_ranges(self, ino: int, holder: str, mode: Optional[str] = None) -> List[Tuple[int, int]]:
        """Ranges ``holder`` currently holds on ``ino`` (optionally by mode).

        A ``rw`` token also satisfies ``ro`` coverage.
        """
        out = []
        for tok in self._held.get(ino, []):
            if tok.holder != holder:
                continue
            if mode == RW and tok.mode != RW:
                continue
            out.append((tok.start, tok.end))
        return out

    def acquire(
        self,
        client: str,
        ino: int,
        start: int,
        end: int,
        mode: str,
        desired: Optional[Tuple[int, int]] = None,
    ) -> Event:
        """Grant at least ``[start, end)`` in ``mode`` to ``client``.

        ``desired`` is the GPFS "desired range": when nothing conflicts with
        it, the manager grants the whole desired range so a streaming client
        pays one token round trip instead of one per IO. When something does
        conflict with the desired range, only the required range is granted
        (revoking exactly the holders that block it).
        """
        _check_mode(mode)
        _check_range(start, end)
        if desired is not None:
            dstart, dend = desired
            if not (dstart <= start and end <= dend):
                raise ValueError("desired range must contain the required range")
        if client not in self._handlers:
            raise KeyError(f"client {client!r} never registered with the token manager")
        return self.sim.process(
            self._acquire(client, ino, start, end, mode, desired), name="token-acquire"
        )

    def _manager_fence(self, epoch0: int):
        """Park while the manager node is down or a takeover is running.

        Resumes silently when the manager restarts in place; raises
        :class:`ManagerMovedError` when the epoch advanced (a successor
        took over), so the caller re-issues the RPC at the new node.
        Callers gate the ``yield from`` on ``health is not None`` — with
        failover unarmed the grant path stays event-for-event identical.
        """
        while True:
            if self.epoch != epoch0:
                raise ManagerMovedError(
                    f"token manager moved to {self.node!r} (epoch {self.epoch})"
                )
            health = self.health
            if health is None or (not self.in_takeover and health.is_up(self.node)):
                return
            yield self.sim.any_of(
                [self._takeover_event(), health.wait_restart(self.node)]
            )

    def _takeover_event(self) -> Event:
        """Event firing at the next :meth:`complete_takeover`."""
        event = Event(self.sim)
        self._takeover_waiters.append(event)
        return event

    def _acquire(self, client, ino, start, end, mode, desired):
        epoch0 = self.epoch
        if self.health is not None:
            yield from self._manager_fence(epoch0)
        # request message to the manager node
        yield self.messages.send(client, self.node, nbytes=256)
        # Quorum gate: a minority-side manager must not hand out tokens
        # the majority side could also grant. Park (don't fail) — after
        # heal the grant proceeds with whatever state survived.
        while self.quorum is not None and not self.quorum.has_quorum(self.node):
            self.quorum_parked_grants += 1
            yield self.quorum.partition.wait_heal()
        with self._lock_for(ino).request() as req:
            yield req
            if self.health is not None:
                # The manager may have died while we queued on the lock.
                yield from self._manager_fence(epoch0)
            holders = self._held.setdefault(ino, [])
            grant_start, grant_end = start, end
            if desired is not None:
                dstart, dend = desired
                if not any(
                    t.conflicts_with(client, mode, dstart, dend) for t in holders
                ):
                    grant_start, grant_end = dstart, dend
            conflicting = [
                t
                for t in holders
                if t.conflicts_with(client, mode, grant_start, grant_end)
            ]
            # Revoke conflict holders in parallel.
            revocations = [
                self.sim.process(
                    self._revoke(ino, tok, grant_start, grant_end),
                    name="token-revoke",
                )
                for tok in conflicting
            ]
            if revocations:
                yield self.sim.all_of(revocations)
                if self.health is not None:
                    # ... or while the revocations ran. Never commit a
                    # grant into a table a successor has since rebuilt.
                    yield from self._manager_fence(epoch0)
            token = HeldToken(
                holder=client, mode=mode, start=grant_start, end=grant_end
            )
            holders.append(token)
            self._mirrors.setdefault(client, {}).setdefault(ino, []).append(token)
            self.grants += 1
            if self.on_grant is not None:
                self.on_grant(client, ino, mode, grant_start, grant_end)
        # grant reply back to the client
        yield self.messages.send(self.node, client, nbytes=256)
        return True

    def _revoke(self, ino: int, token: HeldToken, start: int, end: int):
        """Take ``[start, end)`` back from ``token``'s holder."""
        self.revokes += 1
        # A dead holder can neither flush nor release: wait for the lease
        # detector to declare it (which bounds the stall at the lease
        # duration, exactly as in GPFS), then reclaim its tokens outright.
        det = self.failure_detector
        if (
            det is not None
            and det.watches(token.holder)
            and not det.is_responsive(token.holder)
        ):
            yield det.declared_dead(token.holder)
            self.dead_holder_releases += 1
            self._shrink(ino, token, start, end)
            return
        # revoke message manager → holder
        yield self.messages.send(self.node, token.holder, nbytes=256)
        handler = self._handlers.get(token.holder)
        if handler is not None:
            lo, hi = max(start, token.start), min(end, token.end)
            flush = self.sim.process(handler(ino, lo, hi), name="revoke-flush")
            if det is not None and det.watches(token.holder):
                # Crash-time lock sweep: the holder can die *after* the
                # entry check above, wedging its flush forever (parked
                # RPCs to a dead server, a severed partition) while the
                # caller holds the per-ino lock. Race the flush against
                # the holder's death declaration and reclaim outright if
                # the corpse wins — the lock drains instead of leaking.
                yield self.sim.any_of([flush, det.declared_dead(token.holder)])
                if not flush.triggered:
                    self.revokes_abandoned_dead += 1
                    self.dead_holder_releases += 1
                    self._shrink(ino, token, start, end)
                    return
            else:
                yield flush
        # release message holder → manager
        yield self.messages.send(token.holder, self.node, nbytes=256)
        self._shrink(ino, token, start, end)

    def _shrink(self, ino: int, token: HeldToken, start: int, end: int) -> None:
        """Remove ``[start, end)`` from ``token``, splitting if needed."""
        if self.in_takeover:
            # State is frozen between the ghost snapshot and the replay
            # rebuild; the acquire driving this shrink will observe the
            # epoch change and re-issue against the rebuilt table.
            return
        holders = self._held.get(ino, [])
        if token not in holders:
            return
        holders.remove(token)
        pieces = []
        if token.start < start:
            pieces.append(HeldToken(token.holder, token.mode, token.start, start))
        if end < token.end:
            pieces.append(HeldToken(token.holder, token.mode, end, token.end))
        holders.extend(pieces)
        mirrored = self._mirrors.get(token.holder, {}).get(ino)
        if mirrored is not None and token in mirrored:
            mirrored.remove(token)
            mirrored.extend(pieces)

    def release_all(self, client: str, ino: Optional[int] = None) -> None:
        """Drop every token ``client`` holds (on one ino, or everywhere)."""
        inos = [ino] if ino is not None else list(self._held)
        mirror = self._mirrors.get(client)
        for i in inos:
            self._held[i] = [t for t in self._held.get(i, []) if t.holder != client]
            if mirror is not None:
                mirror.pop(i, None)

    # -- manager failover ------------------------------------------------------

    def begin_takeover(self) -> None:
        """Freeze the token table while a successor rebuilds it: new
        grants park at the fence, shrinks no-op, and every in-flight
        acquire aborts at the next fence once the epoch advances."""
        if self.in_takeover:
            raise RuntimeError("takeover already in progress")
        self.in_takeover = True

    def rebuild_from_replay(self, live_clients: List[str]) -> Dict[int, List[HeldToken]]:
        """Reconstruct ``_held`` from surviving clients' replayed state.

        Each live client reports the token ranges it believes it holds
        (its mirror); the union — deterministically ordered — becomes the
        new table. Tokens of clients that cannot reply are dropped.
        """
        if not self.in_takeover:
            raise RuntimeError("rebuild outside a takeover")
        held: Dict[int, List[HeldToken]] = {}
        for client in sorted(live_clients):
            for ino in sorted(self._mirrors.get(client, {})):
                tokens = self._mirrors[client][ino]
                if tokens:
                    held.setdefault(ino, []).extend(tokens)
        self._held = held
        return held

    def complete_takeover(self, node: str) -> None:
        """Move the manager role to ``node`` and release parked work."""
        if not self.in_takeover:
            raise RuntimeError("no takeover in progress")
        self.node = node
        self.in_takeover = False
        self.epoch += 1
        self.manager_moves += 1
        waiters, self._takeover_waiters = self._takeover_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(node)


class TokenClient:
    """Client-side token cache for one mount."""

    #: Redirect attempts before giving up; each retry needs a fresh
    #: takeover epoch, so this bounds pathological churn, not latency.
    MAX_REDIRECTS = 8

    def __init__(self, manager: TokenManager, node: str, handler: RevokeHandler) -> None:
        self.manager = manager
        self.node = node
        manager.register_client(node, self._on_revoke)
        self._user_handler = handler
        self.acquisitions = 0
        self.cache_hits = 0
        self.redirects = 0

    def _on_revoke(self, ino: int, start: int, end: int):
        yield from self._user_handler(ino, start, end)

    def has(self, ino: int, start: int, end: int, mode: str) -> bool:
        held = self.manager.client_ranges(ino, self.node, mode=mode if mode == RW else None)
        if mode == RO:
            # any token (ro or rw) covers reads
            held = self.manager.client_ranges(ino, self.node)
        return covers(held, start, end)

    def ensure(
        self,
        ino: int,
        start: int,
        end: int,
        mode: str,
        desired: Optional[Tuple[int, int]] = None,
    ) -> Event:
        """Acquire only if not already covered (token caching)."""
        _check_mode(mode)
        _check_range(start, end)
        if self.has(ino, start, end, mode):
            self.cache_hits += 1
            evt = self.manager.sim.event(name="token-cached")
            evt.succeed(True)
            return evt
        self.acquisitions += 1
        if self.manager.health is None:
            # Failover unarmed: the direct path, zero added event hops.
            return self.manager.acquire(
                self.node, ino, start, end, mode, desired=desired
            )
        return self.manager.sim.process(
            self._acquire_redirect(ino, start, end, mode, desired),
            name="token-ensure",
        )

    def _acquire_redirect(self, ino, start, end, mode, desired):
        """Retry-aware acquire: a grant RPC parked at a crashed manager
        fails with :class:`ManagerMovedError` at takeover; re-issuing it
        targets the successor (``manager.node`` is read per attempt)."""
        for _ in range(self.MAX_REDIRECTS):
            try:
                result = yield self.manager.acquire(
                    self.node, ino, start, end, mode, desired=desired
                )
            except ManagerMovedError:
                self.redirects += 1
                self.manager.redirects += 1
                continue
            return result
        raise ManagerMovedError(
            f"token acquire from {self.node!r} redirected "
            f"{self.MAX_REDIRECTS} times without landing"
        )

    def release_all(self, ino: Optional[int] = None) -> None:
        self.manager.release_all(self.node, ino)
