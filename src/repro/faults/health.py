"""Ground-truth node liveness, separate from *detected* liveness.

The injector flips nodes here instantly; nothing on the data path reads
this directly except the machinery that models a dead machine (an RPC
parked on a crashed server, a heartbeat process that has stopped
renewing). Detected state lives in ``NsdService.down_nodes`` and is only
ever set by the lease detector — the gap between the two is exactly the
detection latency E13 measures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.kernel import Event, Simulation


class NodeHealth:
    """Tracks which nodes are actually up, and when they crashed."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._down: Dict[str, float] = {}  # node -> crash sim-time
        self._restart_waiters: Dict[str, List[Event]] = {}
        #: Ground-truth transition log ``(sim time, "crash"|"restore",
        #: node)`` — the fuzz oracle replays this post-hoc to validate
        #: every detector declaration against what actually happened.
        self.transitions: List[Tuple[float, str, str]] = []

    def is_up(self, node: str) -> bool:
        return node not in self._down

    def crash_time(self, node: str) -> float | None:
        """Sim time at which ``node`` crashed, or None if it is up."""
        return self._down.get(node)

    def crash(self, node: str) -> None:
        if node in self._down:
            raise RuntimeError(f"node {node!r} is already down")
        self._down[node] = self.sim.now
        self.transitions.append((self.sim.now, "crash", node))

    def restore(self, node: str) -> None:
        if node not in self._down:
            raise RuntimeError(f"node {node!r} is not down")
        del self._down[node]
        self.transitions.append((self.sim.now, "restore", node))
        for event in self._restart_waiters.pop(node, []):
            if not event.triggered:
                event.succeed(node)

    def down_intervals(self, node: str) -> List[Tuple[float, float]]:
        """Closed intervals during which ``node`` was down (end is +inf
        for a crash with no restore yet)."""
        out: List[Tuple[float, float]] = []
        start: float | None = None
        for t, kind, n in self.transitions:
            if n != node:
                continue
            if kind == "crash":
                start = t
            elif start is not None:
                out.append((start, t))
                start = None
        if start is not None:
            out.append((start, float("inf")))
        return out

    def was_down(self, node: str, t: float) -> bool:
        return any(a <= t <= b for a, b in self.down_intervals(node))

    def wait_restart(self, node: str) -> Event:
        """Event that fires when ``node`` next comes back up.

        If the node is currently up the event fires immediately (callers
        race it against other conditions via ``any_of``).
        """
        event = Event(self.sim)
        if node not in self._down:
            event.succeed(node)
        else:
            self._restart_waiters.setdefault(node, []).append(event)
        return event
