"""Rate-limited service stages.

A :class:`Pipe` is the building block of the storage path: a stage that
serves one request at a time (or ``capacity`` in parallel) at a fixed
byte rate with optional per-IO latency. Chaining pipes gives additive
latency and bottleneck-limited throughput, which is exactly the
balanced-configuration arithmetic the paper applies to its NSD servers
(GbE in, FC out, controller behind).
"""

from __future__ import annotations

from typing import Generator

from repro.sim.kernel import Event, Simulation
from repro.sim.resources import Request, Resource
from repro.sim.trace import TRACE


class Pipe:
    """A queued, rate-limited stage."""

    def __init__(
        self,
        sim: Simulation,
        rate: float,
        per_io_latency: float = 0.0,
        capacity: int = 1,
        name: str = "pipe",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"pipe rate must be positive, got {rate}")
        if per_io_latency < 0:
            raise ValueError("per_io_latency must be non-negative")
        self.sim = sim
        self.rate = float(rate)
        self.per_io_latency = float(per_io_latency)
        self.name = name
        self._res = Resource(sim, capacity=capacity, name=name)
        self.bytes_served = 0.0
        self.ios_served = 0

    def service_time(self, nbytes: float) -> float:
        """Time to serve ``nbytes`` once granted."""
        return self.per_io_latency + nbytes / self.rate

    def transfer(self, nbytes: float) -> Event:
        """Queue ``nbytes`` through the stage; fires when served."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.sim.process(self._serve(nbytes), name=f"{self.name}-xfer")

    def _serve(self, nbytes: float) -> Generator[Event, None, None]:
        # One enabled-check per IO; queue wait and service become separate
        # spans so traces show where a stage's latency actually went.
        tr = TRACE if TRACE.enabled else None
        lane = f"pipe:{self.name}"
        with self._res.request() as req:
            wid = tr.begin(self.sim, "wait", cat="storage.queue", lane=lane,
                           bytes=nbytes) if tr else 0
            yield req
            if wid:
                tr.end(self.sim, wid)
            sid = tr.begin(self.sim, "service", cat="storage.service",
                           lane=lane, bytes=nbytes) if tr else 0
            yield self.sim.timeout(self.service_time(nbytes))
            if sid:
                tr.end(self.sim, sid)
        self.bytes_served += nbytes
        self.ios_served += 1

    def fast_transfer(self, nbytes: float, callback) -> bool:
        """Serve ``nbytes`` through an *idle* stage without a process.

        When a slot is free and nobody is queued, the slot is taken
        synchronously (no grant event) and ``callback()`` runs after the
        service time — one kernel event instead of the process + request +
        timeout chain of :meth:`transfer`. Service completes at exactly
        the sim time the slow path would have used, and contenders
        arriving meanwhile queue behind the held slot as usual. Returns
        False (doing nothing) when the stage is busy or tracing is on —
        the caller must fall back to :meth:`transfer`.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        res = self._res
        if TRACE.enabled or res.queue or len(res.users) >= res.capacity:
            return False
        # Untriggered Request: valid for release(), never enters the heap.
        req = Request(res)
        res.users.append(req)

        def _served() -> None:
            self.bytes_served += nbytes
            self.ios_served += 1
            res.release(req)
            callback()

        self.sim.schedule_callback(
            self.service_time(nbytes), _served, name=f"{self.name}-fastxfer"
        )
        return True

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting (not being served)."""
        return len(self._res.queue)
