"""Tests for RngRegistry, Monitor, and Gauge."""

import pytest

from repro.sim import Gauge, Monitor, RngRegistry, Simulation


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=7).stream("disk").random(5)
        b = RngRegistry(seed=7).stream("disk").random(5)
        assert (a == b).all()

    def test_different_names_independent(self):
        reg = RngRegistry(seed=7)
        a = reg.stream("disk").random(5)
        b = reg.stream("net").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random(5)
        b = RngRegistry(seed=2).stream("x").random(5)
        assert not (a == b).all()

    def test_stream_cached(self):
        reg = RngRegistry()
        assert reg.stream("x") is reg.stream("x")

    def test_helpers(self):
        reg = RngRegistry(seed=3)
        u = reg.uniform("u", 2.0, 3.0)
        assert 2.0 <= u < 3.0
        e = reg.exponential("e", mean=5.0)
        assert e >= 0
        i = reg.integers("i", 0, 10)
        assert 0 <= i < 10
        assert reg.choice("c", ["only"]) == "only"

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            RngRegistry().exponential("e", mean=0)


class TestMonitor:
    def test_meter_records_at_sim_time(self):
        sim = Simulation()
        mon = Monitor(sim, window=1.0)

        def proc(sim):
            yield sim.timeout(0.5)
            mon.record_bytes("net", 100)
            yield sim.timeout(1.0)
            mon.record_bytes("net", 300)

        sim.process(proc(sim))
        sim.run()
        series = mon.rate_series("net", t_end=2.0)
        assert series.values == [100.0, 300.0]

    def test_meter_cached_by_name(self):
        sim = Simulation()
        mon = Monitor(sim)
        assert mon.meter("a") is mon.meter("a")
        assert mon.meter("a") is not mon.meter("b")

    def test_gauge(self):
        sim = Simulation()
        mon = Monitor(sim)

        def proc(sim):
            mon.gauge("queue").set(3)
            yield sim.timeout(2)
            mon.gauge("queue").set(5)

        sim.process(proc(sim))
        sim.run()
        g = mon.gauge("queue")
        assert g.last() == 5
        assert g.series.times == [0.0, 2.0]

    def test_gauge_unset_raises(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            Gauge(sim, name="g").last()

    def test_gauge_unset_error_names_gauge(self):
        sim = Simulation()
        with pytest.raises(ValueError, match="'depth'"):
            Gauge(sim, name="depth").last()

    def test_rate_series_unknown_meter_raises(self):
        # Regression: rate_series used to silently create an empty meter
        # for a typo'd name; now it must raise with the known names.
        sim = Simulation()
        mon = Monitor(sim)
        mon.record_bytes("net", 100)
        with pytest.raises(KeyError, match="nett"):
            mon.rate_series("nett")
        assert sorted(mon.meters) == ["net"]  # no meter leaked

    def test_rate_series_error_lists_known_meters(self):
        sim = Simulation()
        mon = Monitor(sim)
        mon.record_bytes("disk", 1)
        mon.record_bytes("net", 1)
        with pytest.raises(KeyError, match="disk.*net"):
            mon.rate_series("wan")

    def test_meter_windowing_bins_by_window(self):
        sim = Simulation()
        mon = Monitor(sim, window=2.0)

        def proc(sim):
            mon.record_bytes("net", 100)  # t=0, bin [0,2)
            yield sim.timeout(1.0)
            mon.record_bytes("net", 100)  # t=1, bin [0,2)
            yield sim.timeout(2.0)
            mon.record_bytes("net", 600)  # t=3, bin [2,4)

        sim.process(proc(sim))
        sim.run()
        series = mon.rate_series("net", t_end=4.0)
        # Per-window byte totals divided by the window length.
        assert series.times == [2.0, 4.0]
        assert series.values == [100.0, 300.0]

    def test_meter_respects_custom_window(self):
        sim = Simulation()
        mon = Monitor(sim, window=1.0)
        assert mon.meter("fine", window=0.25).window == 0.25
        assert mon.meter("coarse").window == 1.0

    def test_rate_series_empty_window_at_t_zero(self):
        # Asking for the trace at sim start (t_end=0) is an empty window,
        # not a crash and not a single all-of-time bin.
        sim = Simulation()
        mon = Monitor(sim, window=1.0)
        mon.record_bytes("net", 100)
        assert mon.rate_series("net", t_end=0.0).empty
        # Implicit t_end=sim.now at t=0 behaves the same way.
        assert mon.rate_series("net").empty

    def test_gauge_history_survives_many_sets(self):
        # Regression: Gauge must keep timestamped samples, not only the
        # last value — series-style queries need the history.
        sim = Simulation()
        mon = Monitor(sim)

        def proc(sim):
            for v in (1, 2, 3):
                mon.gauge("depth").set(v)
                yield sim.timeout(1.0)

        sim.process(proc(sim))
        sim.run()
        series = mon.gauge_series("depth")
        assert series.times == [0.0, 1.0, 2.0]
        assert series.values == [1.0, 2.0, 3.0]

    def test_gauge_series_unknown_gauge_raises(self):
        sim = Simulation()
        mon = Monitor(sim)
        mon.gauge("depth").set(1)
        with pytest.raises(KeyError, match="depth"):
            mon.gauge_series("depht")
