"""Tests for the metric primitives: Counter, Gauge, Histogram."""

import pytest

from repro.obs.metrics import (
    BOUND_SCHEMES,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    canonical_key,
    counter_delta,
    merge_histograms,
    parse_key,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricError):
            Counter("c").inc(-1)

    def test_reset_starts_new_window(self):
        c = Counter("c")
        c.inc(10)
        c.reset()
        c.inc(3)
        assert c.value == 3.0

    def test_counter_delta_plain_increase(self):
        assert counter_delta(10.0, 14.0) == 4.0

    def test_counter_delta_reset_aware(self):
        # A drop means the counter was reset mid-window: everything now
        # on it accumulated since the reset (Prometheus rate() semantics).
        assert counter_delta(10.0, 3.0) == 3.0


class TestGauge:
    def test_keeps_sample_history_not_just_last(self):
        g = Gauge("g")
        g.set(3.0, t=0.0)
        g.set(5.0, t=2.0)
        assert g.last() == 5.0
        assert g.series().times == [0.0, 2.0]
        assert g.series().values == [3.0, 5.0]

    def test_unset_last_raises_naming_gauge(self):
        with pytest.raises(MetricError, match="'depth'"):
            Gauge("depth").last()

    def test_bounded_samples(self):
        g = Gauge("g", max_samples=3)
        for i in range(5):
            g.set(float(i), t=float(i))
        assert len(g.samples) == 3
        assert g.dropped == 2
        assert g.last() == 4.0  # newest value survives


class TestHistogramBucketing:
    def test_boundary_value_lands_in_its_bucket(self):
        # le semantics: an observation exactly equal to a bound belongs
        # to that bound's bucket, deterministically (bisect, not log()).
        h = Histogram("h", bounds=[1.0, 2.0, 4.0])
        h.observe(2.0)
        assert h.counts == [0, 1, 0, 0]

    def test_just_above_boundary_goes_to_next_bucket(self):
        h = Histogram("h", bounds=[1.0, 2.0, 4.0])
        h.observe(2.0000001)
        assert h.counts == [0, 0, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", bounds=[1.0, 2.0])
        h.observe(100.0)
        assert h.counts == [0, 0, 1]

    def test_every_scheme_bound_is_its_own_bucket(self):
        h = Histogram("h")  # latency/v1
        for b in BOUND_SCHEMES["latency/v1"]:
            h.observe(b)
        assert h.counts[:-1] == [1] * len(h.bounds)
        assert h.counts[-1] == 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(MetricError):
            Histogram("h", bounds=[])
        with pytest.raises(MetricError):
            Histogram("h", bounds=[1.0, 1.0])
        with pytest.raises(MetricError):
            Histogram("h", bounds=[2.0, 1.0])


class TestHistogramQuantiles:
    def test_interpolation_within_bucket(self):
        h = Histogram("h", bounds=[1.0, 2.0, 4.0])
        for _ in range(10):
            h.observe(1.2)
        for _ in range(10):
            h.observe(3.0)
        # rank 10 falls at the end of bucket (1, 2]: frac 1.0 → 2.0,
        # clamped to observed [1.2, 3.0].
        assert h.quantile(0.5) == 2.0
        # rank 20 interpolates to the top of bucket (2, 4] then clamps
        # to the observed maximum.
        assert h.quantile(1.0) == 3.0

    def test_clamped_to_observed_extremes(self):
        h = Histogram("h", bounds=[1.0, 2.0])
        h.observe(1.5)
        assert h.quantile(0.0) == 1.5
        assert h.quantile(0.99) == 1.5

    def test_percentile_properties(self):
        h = Histogram("h")
        for i in range(1000):
            h.observe(0.001 * (i + 1))
        assert h.p50 <= h.p95 <= h.p99 <= h.p999 <= h.max

    def test_empty_quantile_raises(self):
        with pytest.raises(MetricError):
            Histogram("h").quantile(0.5)

    def test_out_of_range_quantile_raises(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(MetricError):
            h.quantile(1.5)


class TestHistogramMerge:
    def test_merge_sums_buckets_and_extremes(self):
        a = Histogram("a", bounds=[1.0, 2.0])
        b = Histogram("b", bounds=[1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.min == 0.5
        assert a.max == 9.0
        assert a.sum == pytest.approx(11.0)

    def test_merge_different_bounds_rejected(self):
        a = Histogram("a", bounds=[1.0, 2.0])
        b = Histogram("b", bounds=[1.0, 3.0])
        with pytest.raises(MetricError):
            a.merge(b)

    def test_merge_histograms_helper(self):
        hs = []
        for i in range(3):
            h = Histogram(f"h{i}", bounds=[1.0, 2.0])
            h.observe(float(i))
            hs.append(h)
        merged = merge_histograms(hs, name="m")
        assert merged.count == 3
        assert merge_histograms([]).count == 0


class TestHistogramSnapshots:
    def test_roundtrip(self):
        h = Histogram("h")
        for v in (0.001, 0.01, 0.01, 5.0):
            h.observe(v)
        back = Histogram.from_dict(h.to_dict(), name="h")
        assert back.counts == h.counts
        assert back.count == h.count
        assert back.sum == h.sum
        assert back.min == h.min
        assert back.max == h.max

    def test_explicit_bounds_ride_along(self):
        h = Histogram("h", bounds=[1.0, 2.0])
        h.observe(1.5)
        d = h.to_dict()
        assert d["bounds"] == [1.0, 2.0]
        assert Histogram.from_dict(d).bounds == (1.0, 2.0)

    def test_delta_between_snapshots(self):
        h = Histogram("h", bounds=[1.0, 2.0])
        h.observe(0.5)
        prev = h.to_dict()
        h.observe(1.5)
        h.observe(1.6)
        d = Histogram.delta(prev, h.to_dict(), name="w")
        assert d.count == 2
        assert d.counts == [0, 2, 0]

    def test_delta_since_beginning(self):
        h = Histogram("h", bounds=[1.0])
        h.observe(0.5)
        d = Histogram.delta(None, h.to_dict())
        assert d.count == 1

    def test_count_le_is_conservative(self):
        h = Histogram("h", bounds=[1.0, 2.0])
        h.observe(0.5)
        h.observe(1.5)
        # A threshold inside bucket (1, 2] must not credit that bucket.
        assert h.count_le(1.7) == 1
        assert h.count_le(2.0) == 2


class TestKeys:
    def test_canonical_key_sorts_labels(self):
        assert canonical_key("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"
        assert canonical_key("m") == "m"

    def test_parse_roundtrip(self):
        key = canonical_key("nsd.rpc.total", {"op": "read", "sim": "1"})
        family, labels = parse_key(key)
        assert family == "nsd.rpc.total"
        assert labels == {"op": "read", "sim": "1"}
        assert parse_key("plain") == ("plain", {})
