"""Tests for TimeSeries.windowed_mean."""

import pytest

from repro.util.timeseries import TimeSeries


def make(points):
    ts = TimeSeries()
    for t, v in points:
        ts.add(t, v)
    return ts


class TestWindowedMean:
    def test_constant_signal(self):
        ts = make([(0.0, 10.0), (5.0, 10.0)])
        wm = ts.windowed_mean(1.0, t_end=5.0)
        assert wm.values == [10.0] * 5

    def test_step_mid_window(self):
        # 0 for [0, 0.5), 100 for [0.5, 1.0) → window mean 50
        ts = make([(0.0, 0.0), (0.5, 100.0)])
        wm = ts.windowed_mean(1.0, t_end=1.0)
        assert wm.values == [pytest.approx(50.0)]

    def test_step_at_boundary(self):
        ts = make([(0.0, 10.0), (1.0, 30.0)])
        wm = ts.windowed_mean(1.0, t_end=2.0)
        assert wm.values == [pytest.approx(10.0), pytest.approx(30.0)]

    def test_spike_diluted(self):
        # a 0.1s spike of 1000 in an otherwise-zero 1s window → 100
        ts = make([(0.0, 0.0), (0.4, 1000.0), (0.5, 0.0)])
        wm = ts.windowed_mean(1.0, t_end=1.0)
        assert wm.values == [pytest.approx(100.0)]

    def test_partial_last_window(self):
        ts = make([(0.0, 10.0)])
        wm = ts.windowed_mean(1.0, t_end=1.5)
        assert len(wm) == 2
        assert wm.values[1] == pytest.approx(10.0)

    def test_empty(self):
        assert TimeSeries().windowed_mean(1.0).empty

    def test_bad_window(self):
        with pytest.raises(ValueError):
            make([(0, 1)]).windowed_mean(0.0)

    def test_total_mass_preserved(self):
        ts = make([(0.0, 5.0), (1.3, 20.0), (2.7, 0.0), (4.0, 0.0)])
        wm = ts.windowed_mean(1.0, t_end=4.0)
        integral_direct = 5.0 * 1.3 + 20.0 * (2.7 - 1.3)
        assert sum(wm.values) * 1.0 == pytest.approx(integral_direct)
