"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's figures/tables via its
``repro.experiments`` harness, prints the figure-shaped output, and asserts
the *shape* of the paper's result (who wins, by roughly what factor, where
crossovers fall). Absolute numbers are expected to differ — the substrate
is a simulator, not SDSC's machine room (see EXPERIMENTS.md).

Simulations are deterministic, so a single round is meaningful;
``run_experiment`` wraps pedantic single-shot benchmarking and output
printing.
"""

import pytest

from repro.experiments.harness import format_result


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment once under the benchmark clock and print it."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )
        with capsys.disabled():
            print()
            print(format_result(result))
        return result

    return _run
