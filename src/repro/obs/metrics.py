"""Typed metric primitives: :class:`Counter`, :class:`Gauge`, :class:`Histogram`.

These are the values a :class:`~repro.obs.registry.MetricsRegistry` holds.
They are deliberately clock-free — callers stamp simulation time where a
timestamp matters (gauge samples), and the registry's scrape pipeline
(:mod:`repro.obs.collect`) turns current values into a time series. That
split keeps the primitives usable from any layer (kernel, NSD service,
experiments) without threading a simulation through every call site.

Histograms are **log-bucketed**: bucket ``i`` covers values in
``(bounds[i-1], bounds[i]]`` (Prometheus ``le`` semantics) with one
overflow bucket above the last bound. Bucket membership is decided by
``bisect`` over the precomputed bounds — never by ``log()`` arithmetic —
so boundary values land deterministically: an observation exactly equal
to a bound belongs to that bound's bucket.

Everything here is wall-clock-free and therefore bit-reproducible: two
runs with the same seed produce identical snapshots.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class MetricError(ValueError):
    """Metric misuse: type collisions, negative counter steps, bad bounds."""


#: Named bucket schemes. Exported snapshots reference a scheme by name
#: instead of shipping 40 floats per histogram per scrape; readers
#: (``repro.obs.health``) map the name back through this table.
BOUND_SCHEMES: Dict[str, Tuple[float, ...]] = {
    # 10 us .. ~91 hours in factor-2 steps: covers a cache-hit pread and
    # a tape recall on the same axis.
    "latency/v1": tuple(1e-5 * 2.0**i for i in range(35)),
}

DEFAULT_LATENCY_BOUNDS = BOUND_SCHEMES["latency/v1"]


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a canonical metric key into ``(family, labels)``.

    Inverse of :func:`canonical_key`:
    ``"nsd.rpc.total{op=read}"`` → ``("nsd.rpc.total", {"op": "read"})``.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest[:-1].split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def canonical_key(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """Canonical registry key: ``name`` or ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def counter_delta(prev: float, cur: float) -> float:
    """Increase of a cumulative counter between two scrapes.

    Reset-aware, like Prometheus ``rate()``: a value that went *down* means
    the counter was reset mid-window, so everything currently on it was
    accumulated since the reset.
    """
    return cur - prev if cur >= prev else cur


class Counter:
    """A monotonically increasing total (events, bytes, errors)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise MetricError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def reset(self) -> None:
        """Start a new window at zero (scrape differencing handles the drop)."""
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name!r} {self.value}>"


class Gauge:
    """A sampled scalar that keeps its *history*, not just the last value.

    Every :meth:`set` records a ``(t, value)`` sample (bounded; old samples
    are never silently reordered), so rate/series-style queries work for
    gauges the same way they do for rate meters.
    """

    __slots__ = ("name", "samples", "max_samples", "dropped")

    def __init__(self, name: str = "", max_samples: int = 100_000) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []
        self.max_samples = max_samples
        self.dropped = 0

    def set(self, value: float, t: float) -> None:
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            self.samples[-1] = (float(t), float(value))
            return
        self.samples.append((float(t), float(value)))

    @property
    def empty(self) -> bool:
        return not self.samples

    def last(self) -> float:
        if not self.samples:
            raise MetricError(f"gauge {self.name!r} never set")
        return self.samples[-1][1]

    @property
    def value(self) -> float:
        return self.last()

    def series(self):
        """The sample history as a :class:`~repro.util.timeseries.TimeSeries`."""
        from repro.util.timeseries import TimeSeries

        out = TimeSeries(name=self.name)
        for t, v in self.samples:
            out.add(t, v)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name!r} {len(self.samples)} samples>"


class Histogram:
    """Log-bucketed distribution with exact count/sum/min/max.

    ``bounds`` are ascending bucket upper edges (``le``); observations
    above the last bound land in an overflow bucket whose effective upper
    edge for interpolation is the observed maximum.
    """

    __slots__ = ("name", "scheme", "bounds", "counts", "count", "sum",
                 "min", "max")

    def __init__(
        self,
        name: str = "",
        bounds: Optional[Sequence[float]] = None,
        scheme: str = "latency/v1",
    ) -> None:
        self.name = name
        if bounds is None:
            self.scheme = scheme
            bounds = BOUND_SCHEMES[scheme]
        else:
            self.scheme = "explicit"
            bounds = tuple(float(b) for b in bounds)
            if not bounds or any(
                b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
            ):
                raise MetricError(
                    f"histogram {name!r}: bounds must be non-empty and "
                    f"strictly ascending"
                )
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    @property
    def empty(self) -> bool:
        return self.count == 0

    def observe(self, value: float) -> None:
        """Record one observation (``value <= bounds[i]`` → bucket ``i``)."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise MetricError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r} vs {other.name!r})"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], interpolated within the bucket.

        Standard bucket interpolation: find the bucket holding rank
        ``q * count`` and interpolate linearly between its edges; the
        first bucket's lower edge is 0 and the overflow bucket's upper
        edge is the exact observed maximum. Results are clamped to the
        exact ``[min, max]`` observed.
        """
        if self.count == 0:
            raise MetricError(f"histogram {self.name!r} is empty")
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (rank - cum) / n
                value = lo + (hi - lo) * frac
                return min(self.max, max(self.min, value))
            cum += n
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def mean(self) -> float:
        if self.count == 0:
            raise MetricError(f"histogram {self.name!r} is empty")
        return self.sum / self.count

    def count_le(self, threshold: float) -> int:
        """Observations known to be ``<= threshold``.

        Conservative at sub-bucket resolution: only buckets whose upper
        edge is ``<= threshold`` are counted, so an SLO threshold that
        falls mid-bucket never over-credits compliance.
        """
        total = 0
        for i, bound in enumerate(self.bounds):
            if bound > threshold:
                break
            total += self.counts[i]
        return total

    def to_dict(self) -> dict:
        """Sparse snapshot: per-bucket (non-cumulative) counts keyed by ``le``.

        The overflow bucket is keyed ``"+Inf"``. ``scheme`` names the
        bucket-bounds table (see :data:`BOUND_SCHEMES`); explicit bounds
        ride along so any snapshot is self-describing.
        """
        buckets = {
            str(self.bounds[i]): n
            for i, n in enumerate(self.counts[:-1])
            if n
        }
        if self.counts[-1]:
            buckets["+Inf"] = self.counts[-1]
        out = {
            "count": self.count,
            "sum": self.sum,
            "scheme": self.scheme,
            "buckets": buckets,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        if self.scheme == "explicit":
            out["bounds"] = list(self.bounds)
        return out

    @classmethod
    def from_dict(cls, d: dict, name: str = "") -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output (for readers)."""
        scheme = d.get("scheme", "latency/v1")
        if scheme == "explicit":
            h = cls(name=name, bounds=d["bounds"])
        else:
            h = cls(name=name, scheme=scheme)
        edges = {str(b): i for i, b in enumerate(h.bounds)}
        for le, n in d.get("buckets", {}).items():
            idx = len(h.bounds) if le == "+Inf" else edges[le]
            h.counts[idx] += int(n)
        h.count = int(d.get("count", 0))
        h.sum = float(d.get("sum", 0.0))
        h.min = float(d.get("min", float("inf")))
        h.max = float(d.get("max", float("-inf")))
        return h

    @classmethod
    def delta(cls, prev: Optional[dict], cur: dict, name: str = "") -> "Histogram":
        """Histogram of observations made *between* two snapshots.

        ``prev=None`` means "since the beginning". min/max of a window are
        not recoverable from cumulative snapshots; the delta keeps the
        later snapshot's extremes, which bound the window's true extremes.
        """
        out = cls.from_dict(cur, name=name)
        if prev is not None:
            ref = cls.from_dict(prev)
            if ref.bounds == out.bounds:
                for i, n in enumerate(ref.counts):
                    out.counts[i] -= n
                out.count -= ref.count
                out.sum -= ref.sum
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name!r} n={self.count}>"


def merge_histograms(hists: Iterable[Histogram], name: str = "") -> Histogram:
    """Merge several same-bounds histograms into a fresh one."""
    hists = list(hists)
    if not hists:
        return Histogram(name=name)
    out = Histogram(name=name, bounds=hists[0].bounds) \
        if hists[0].scheme == "explicit" else \
        Histogram(name=name, scheme=hists[0].scheme)
    for h in hists:
        out.merge(h)
    return out
