"""E7 benchmark — §1: GridFTP staging vs direct GFS access."""

from repro.experiments.e7_staging_vs_gfs import run_e7
from repro.util.units import GB


def test_e7_staging_vs_gfs(run_experiment):
    fractions = (0.02, 0.5, 1.0)
    result = run_experiment(
        run_e7,
        dataset_bytes=GB(6),
        output_bytes=GB(0.2),
        compute_seconds=60.0,
        fractions=fractions,
    )
    # staging always moves the whole dataset; GFS moves only what's touched
    # (plus the job output, which both modes move)
    assert result.metric("staged_moved_0.02") > 10 * result.metric("gfs_moved_0.02")
    # time-to-science: compute starts immediately on the GFS, after the
    # full stage-in with staging
    assert result.metric("staged_ttfb_0.02") > 10 * result.metric("gfs_ttfb_0.02")
    # database-style access: GFS data-handling overhead wins at small
    # fractions, staging wins for full-dataset reuse (the crossover)
    assert result.metric("gfs_overhead_0.02") < result.metric("staged_overhead_0.02")
    assert result.metric("staged_overhead_1.0") < result.metric("gfs_overhead_1.0")
    # §1's exclusion effect: staged jobs see fewer eligible sites
    assert result.metric("staged_eligible_sites") < result.metric("gfs_eligible_sites")
