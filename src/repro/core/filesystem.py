"""The Filesystem object: geometry + metadata + data-plane handles.

One :class:`Filesystem` corresponds to a GPFS device (``/dev/gpfs-sc04``):
a stripe geometry over a set of NSDs, an inode table and namespace, an
allocation map, a token manager, and the NSD data-plane service. Mounts
(:class:`repro.core.client.MountedFs`) are created against it from any
node of any authorized cluster.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.allocation import AllocationMap
from repro.core.blocks import StripeGeometry
from repro.core.inode import Inode, InodeTable
from repro.core.namespace import Namespace
from repro.core.nsd import Nsd, NsdService
from repro.core.tokens import TokenManager
from repro.net.message import MessageService
from repro.sim.kernel import Simulation


class Filesystem:
    """A GPFS-like filesystem over a set of NSDs."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        block_size: int,
        nsds: List[Nsd],
        service: NsdService,
        messages: MessageService,
        manager_node: str,
        owner_cluster: str = "",
        store_data: bool = True,
    ) -> None:
        if not nsds:
            raise ValueError("a filesystem needs at least one NSD")
        if any(n.block_size != block_size for n in nsds):
            raise ValueError("all NSDs must match the filesystem block size")
        self.sim = sim
        self.name = name
        self.block_size = int(block_size)
        self.nsds = {n.nsd_id: n for n in nsds}
        self._nsd_order = [n.nsd_id for n in nsds]
        self.geometry = StripeGeometry(block_size, len(nsds))
        self.service = service
        self.messages = messages
        self.manager_node = manager_node
        self.owner_cluster = owner_cluster
        self.store_data = store_data
        self.inodes = InodeTable()
        self.namespace = Namespace(self.inodes, now=sim.now)
        self.allocation = AllocationMap({n.nsd_id: n.total_blocks for n in nsds})
        self.token_manager = TokenManager(sim, messages, manager_node)
        self.mounts: list = []

    # -- capacity ----------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.allocation.total_blocks * self.block_size

    @property
    def free_bytes(self) -> int:
        return self.allocation.free_blocks * self.block_size

    @property
    def used_bytes(self) -> int:
        return self.allocation.allocated_blocks * self.block_size

    # -- block placement ------------------------------------------------------------

    def nsd_id_for(self, ino: int, block_index: int) -> int:
        """Which NSD a logical block of a file lives on."""
        slot = self.geometry.nsd_for(ino, block_index)
        return self._nsd_order[slot]

    def lookup_block(self, inode: Inode, block_index: int) -> Optional[Tuple[int, int]]:
        """(nsd_id, physical block) if allocated, else None."""
        return inode.blocks.get(block_index)

    def ensure_block(self, inode: Inode, block_index: int) -> Tuple[int, int]:
        """Allocate the block on its striping target if needed."""
        placed = inode.blocks.get(block_index)
        if placed is not None:
            return placed
        nsd_id = self.nsd_id_for(inode.ino, block_index)
        phys = self.allocation.alloc_on(nsd_id)
        inode.blocks[block_index] = (nsd_id, phys)
        return nsd_id, phys

    def free_file_blocks(self, inode: Inode, from_block: int = 0) -> int:
        """Release blocks >= ``from_block``; returns count freed."""
        doomed = [b for b in inode.blocks if b >= from_block]
        for b in doomed:
            nsd_id, phys = inode.blocks.pop(b)
            self.allocation.free_on(nsd_id, phys)
            self.nsds[nsd_id].discard(phys)
        return len(doomed)

    def stats(self) -> Dict[str, float]:
        """Aggregate counters (for harness output)."""
        return {
            "capacity": self.capacity,
            "used": self.used_bytes,
            "blocks_read": self.service.blocks_read,
            "blocks_written": self.service.blocks_written,
            "token_grants": self.token_manager.grants,
            "token_revokes": self.token_manager.revokes,
        }
