"""E14 — integrity soak: rot, a dead drive, and a WAN partition at once.

E13 shows the system riding through *fail-stop* faults; this experiment
attacks the data itself. The filesystem runs with GPFS-style replication
(``mmcrfs -r 2``: two copies of every block in distinct failure groups)
and end-to-end checksums while ANL clients stream a file whose contents
are a known deterministic pattern — so every returned byte can be
checked against ground truth. Mid-stream the schedule injects:

* **silent bit-rot** on several NSDs (``corrupt_block`` flips a stored
  byte without touching the checksum) — only end-to-end verification
  can catch it; reads must fail over to the clean replica and
  read-repair the rotten one, and the background scrubber must find and
  rebuild whatever the readers never touch;
* a **drive death** in a DS4100 (RAID rebuild steals controller
  bandwidth while degraded);
* a **WAN partition** that cuts off the filesystem-manager side
  (``nsd00``–``nsd02``) as the *minority*: the token manager parks
  grants, the lease detector goes quorumless and must *not* declare the
  majority servers dead just because their renewals parked, and client
  RPCs to minority NSDs stall until heal — inside the retry budget, so
  nothing surfaces to the application.

Reported: **wrong bytes returned (must be 0)**, corrupt reads detected
and served correctly (must be 100%), read-repairs + scrub repairs with
**zero damaged replicas left at rest**, scrub bandwidth overhead, and
the minority-side unavailability window around the partition.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.replication import ReplicationPolicy
from repro.core.scrub import Scrubber
from repro.experiments.e13_chaos import window_mean
from repro.experiments.harness import ExperimentResult
from repro.faults import FaultSchedule, RetryPolicy, attach_faults
from repro.obs import OBS, AvailabilityObjective, SloTracker
from repro.util.tables import Table
from repro.util.units import MB, MiB

#: Seconds the drain phase will wait for the scrubber to finish healing
#: every replica after the readers complete.
DRAIN_LIMIT = 60.0


def pattern_chunk(chunk_index: int, length: int) -> bytes:
    """Deterministic file contents: chunk ``k`` is a 9-byte motif repeated.

    The motif encodes the chunk index, so any misplaced, stale, or
    bit-flipped data a read returns differs from the recomputed pattern.
    """
    motif = chunk_index.to_bytes(8, "big") + b"\xa5"
    reps = -(-length // len(motif))
    return (motif * reps)[:length]


def damage_at_rest(fs) -> int:
    """Count replicas whose at-rest contents fail checksum verification."""
    bad = 0
    for inode in fs.inodes:
        for block_index in sorted(inode.blocks):
            for nsd_id, phys in fs.replica_placements(inode, block_index):
                nsd = fs.nsds[nsd_id]
                if nsd.checksum(phys) is None and phys not in nsd._poisoned:
                    continue  # never written
                if not nsd.verify_full(phys):
                    bad += 1
    return bad


def default_schedule(
    t0: float,
    corruptions: List[tuple],
    minority: List[str],
    array: str = "ds4100-01",
    partition_after: float = 1.6,
    partition_duration: float = 1.8,
) -> FaultSchedule:
    """The E14 script: rot on pinned replicas, a drive death, one partition."""
    schedule = FaultSchedule()
    for k, (nsd_name, phys) in enumerate(corruptions):
        schedule.corrupt_block(t0 + 0.3 + 0.1 * k, nsd_name, phys=phys)
    schedule.fail_disk(t0 + 1.2, array, lun=0)
    schedule.partition(t0 + partition_after, minority, partition_duration)
    return schedule


def run_e14(
    file_bytes: float = MiB(192),
    anl_clients: int = 4,
    copies: int = 2,
    lease_duration: float = 1.5,
    partition_after: float = 1.6,
    partition_duration: float = 1.8,
    scrub_interval: float = 1.0,
    scrub_rate: float = 512 * MiB(1),
    corrupt_count: int = 4,
    schedule: Optional[FaultSchedule] = None,
    nsd_servers: int = 8,
    ds4100_count: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Integrity soak on the SDSC 2005 build; deterministic for a seed."""
    from repro.topology.sdsc2005 import build_sdsc2005

    result = ExperimentResult(
        exp_id="E14",
        title="end-to-end integrity: replication, rot, scrub, partition quorum",
        paper_claim="(§6.2 NSD server lists / mmcrfs -r: a production WAN "
        "mount must survive data faults, not just dead nodes)",
    )
    scenario = build_sdsc2005(
        nsd_servers=nsd_servers,
        ds4100_count=ds4100_count,
        sdsc_clients=1,
        anl_clients=anl_clients,
        ncsa_clients=0,
        block_size=MiB(1),
        store_data=True,
        seed=seed,
        replication=ReplicationPolicy(
            copies=copies, quorum="all", verify_reads=True
        ),
    )
    g = scenario.gfs
    fs = scenario.fs
    service = fs.service
    chunk = int(MiB(1))
    size = int(file_bytes)

    # Seed the file with pattern data from a machine-room client.
    stage = scenario.mount_clients("sdsc", 1, pagepool_bytes=MiB(128))[0]

    def seed_file():
        handle = yield stage.open("/integrity", "w", create=True)
        pos = 0
        while pos < size:
            n = min(chunk, size - pos)
            yield stage.write(handle, pattern_chunk(pos // chunk, n))
            pos += n
        yield stage.close(handle)

    g.run(until=g.sim.process(seed_file(), name="seed"))

    mounts = scenario.mount_clients(
        "anl", anl_clients, readahead=8, pagepool_bytes=MiB(96)
    )
    t0 = g.sim.now
    # Pin the rot: primaries of late-in-file blocks (the readers WILL hit
    # these — exercising verify-on-read, failover, and read-repair) plus
    # one secondary replica no reader ever touches (only the scrubber can
    # find that one). The partition minority is the manager's side of the
    # machine room, so the quorum gate itself is exercised, not just
    # parked client RPCs.
    inode = fs.namespace.resolve("/integrity")
    nblocks = (size + chunk - 1) // chunk
    late = [min(nblocks - 1, int(nblocks * f)) for f in (0.70, 0.80, 0.90, 0.95)]
    corruptions: List[tuple] = []
    for block_index in late[: max(0, corrupt_count - 1)]:
        nsd_id, phys = fs.replica_placements(inode, block_index)[0]
        corruptions.append((fs.nsds[nsd_id].name, phys))
    if corrupt_count > 0 and copies > 1:
        nsd_id, phys = fs.replica_placements(inode, nblocks // 2)[1]
        corruptions.append((fs.nsds[nsd_id].name, phys))
    minority = ["nsd00", "nsd01", "nsd02"]
    if schedule is None:
        schedule = default_schedule(
            t0,
            corruptions,
            minority,
            partition_after=partition_after,
            partition_duration=partition_duration,
        )
    harness = attach_faults(
        g.sim,
        service,
        manager_node=fs.manager_node,
        schedule=schedule,
        engine=g.engine,
        network=g.network,
        lease_duration=lease_duration,
        retry=RetryPolicy(),
        retry_rng_streams=g.rng,
        token_managers=[fs.token_manager],
        arrays={a.name: a for a in scenario.arrays},
    )
    scrubber = Scrubber(
        g.sim, fs, interval=scrub_interval, rate=scrub_rate
    ).start()

    reads_ok = [0]
    reads_failed = [0]
    wrong_bytes = [0]
    ok_times: List[float] = []

    def reader(mount):
        handle = yield mount.open("/integrity", "r")
        pos = 0
        while pos < size:
            n = min(chunk, size - pos)
            try:
                got = yield mount.pread(handle, pos, n)
            except ConnectionError:
                reads_failed[0] += 1
            else:
                reads_ok[0] += 1
                ok_times.append(g.sim.now)
                want = pattern_chunk(pos // chunk, n)
                if got != want:
                    wrong_bytes[0] += sum(
                        a != b for a, b in zip(got, want)
                    ) + abs(len(got) - len(want))
            pos += n
        yield mount.close(handle)

    readers = [
        g.sim.process(reader(m), name=f"reader:{m.node}") for m in mounts
    ]
    g.run(until=g.sim.all_of(readers))
    t_readers_done = g.sim.now

    # Drain: the scrubber keeps sweeping until no replica at rest fails
    # verification (bounded, so a repair bug cannot hang the experiment).
    while damage_at_rest(fs) > 0 and g.sim.now < t_readers_done + DRAIN_LIMIT:
        g.run(until=g.sim.timeout(scrub_interval))
    t_end = g.sim.now
    scrubber.stop()
    harness.stop()

    # -- phase windows --------------------------------------------------------
    t_cut = t0 + partition_after
    t_heal = t_cut + partition_duration
    series = g.engine.tag_rate_series("anl")
    result.series["anl_rate"] = series
    nominal = window_mean(series, t0, t_cut)
    partitioned = window_mean(series, t_cut, t_heal)
    recovered = window_mean(series, t_heal, t_readers_done)
    # Unavailability seen by the readers around the cut: the gap from the
    # cut to the first read completion after heal (0 when the stream
    # finished before the partition ever bit).
    after_heal = [t for t in ok_times if t >= t_heal]
    unavail = (after_heal[0] - t_cut) if after_heal else 0.0

    table = Table(
        ["phase", "window s", "ANL aggregate MB/s"],
        title=f"{anl_clients} ANL clients each verifying "
        f"{int(file_bytes / MB(1))} MB against the known pattern "
        f"(R={copies}, quorum=all, end-to-end checksums)",
    )
    table.add_row(["nominal", t_cut - t0, nominal / 1e6])
    table.add_row(["partitioned (cut->heal)", t_heal - t_cut, partitioned / 1e6])
    table.add_row(
        ["recovered", t_readers_done - t_heal, recovered / 1e6]
    )
    result.table = table

    client_bytes = float(file_bytes) * anl_clients
    scrub = scrubber.metrics()
    result.metrics.update(harness.metrics())
    result.metrics.update(fs.integrity.metrics())
    result.metrics.update(scrub)
    corrupt_detected = fs.integrity.corrupt_reads_detected
    result.metrics.update(
        {
            "reads_ok": float(reads_ok[0]),
            "reads_failed": float(reads_failed[0]),
            "wrong_bytes": float(wrong_bytes[0]),
            "bytes_read": client_bytes,
            "corrupt_blocks_injected": float(
                sum(1 for a in schedule if a.kind == "corrupt_block")
            ),
            "corrupt_reads_served_correctly_pct": (
                100.0 if wrong_bytes[0] == 0 else
                100.0 * (1.0 - wrong_bytes[0] / client_bytes)
            ),
            "damage_at_rest_end": float(damage_at_rest(fs)),
            "scrub_overhead_ratio": (
                scrub["scrub_bytes_read"] / client_bytes if client_bytes else 0.0
            ),
            "unavailability_s": unavail,
            "wall_seconds": t_end - t0,
            "rate_nominal": nominal,
            "rate_partitioned": partitioned,
            "rate_recovered": recovered,
        }
    )
    result.notes = (
        f"rot on {len(corruptions)} replicas + a drive death + a "
        f"{partition_duration:.1f}s partition of the manager-side minority "
        f"{minority}: zero wrong bytes, zero failed reads, every damaged "
        "replica repaired (read-repair or scrub) by end of run"
    )

    if OBS.enabled:
        OBS.scrape(g.sim)
        phases = [
            {"name": "nominal", "t0": t0, "t1": t_cut},
            {"name": "partitioned", "t0": t_cut, "t1": t_heal},
            {"name": "recovered", "t0": t_heal, "t1": t_readers_done},
        ]
        tracker = SloTracker().add(AvailabilityObjective(
            name="zero_failed_reads",
            ok_metric="client.read.ok",
            err_metric="client.read.errors",
            target=1.0,
            window=2.0,
        ))
        result.obs = {"phases": phases, "slo": tracker.evaluate(OBS.rows)}
    return result


def run_e14_quick(**overrides) -> ExperimentResult:
    """Scaled-down E14 for CI and the --quick registry."""
    params = dict(
        file_bytes=MiB(64),
        anl_clients=2,
        lease_duration=1.0,
        partition_after=0.8,
        partition_duration=1.2,
        corrupt_count=3,
        ds4100_count=2,
    )
    params.update(overrides)
    return run_e14(**params)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e14()))
