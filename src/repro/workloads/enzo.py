"""Enzo: periodic checkpoint dumps from a running simulation.

"The Enzo application requires multiple Terabytes per hour be routinely
written and read" (§1); at SC'04 it ran on DataStar "writing its output
directly [to] the GPFS disks in Pittsburgh" at about a terabyte per hour
(§4). The generator alternates compute phases with checkpoint dumps — each
dump a set of per-processor files written concurrently.
"""

from __future__ import annotations

from typing import Generator, List

from repro.sim.kernel import Event
from repro.workloads.base import WorkloadResult, payload_for


class EnzoRun:
    """A cosmology run: compute → dump → compute → dump ..."""

    def __init__(
        self,
        mounts: List,
        out_dir: str,
        steps: int = 4,
        bytes_per_dump: float = 0,
        compute_seconds: float = 60.0,
        chunk: int = 0,
    ) -> None:
        """``mounts``: one mount per writer rank (files fan out across them)."""
        if not mounts:
            raise ValueError("EnzoRun needs at least one mount")
        if steps < 1 or bytes_per_dump <= 0:
            raise ValueError("steps >= 1 and bytes_per_dump > 0 required")
        self.mounts = mounts
        self.out_dir = out_dir.rstrip("/")
        self.steps = steps
        self.bytes_per_dump = bytes_per_dump
        self.compute_seconds = compute_seconds
        self.chunk = chunk or mounts[0].fs.block_size * 4

    def run(self) -> Event:
        sim = self.mounts[0].sim
        return sim.process(self._run(), name="enzo")

    def _run(self) -> Generator[Event, None, WorkloadResult]:
        sim = self.mounts[0].sim
        t0 = sim.now
        result = WorkloadResult(name="enzo")
        yield self.mounts[0].mkdir(self.out_dir)
        for step in range(self.steps):
            yield sim.timeout(self.compute_seconds)
            writers = [
                sim.process(
                    self._dump_rank(rank, step), name=f"enzo-dump{step}.{rank}"
                )
                for rank in range(len(self.mounts))
            ]
            yield sim.all_of(writers)
            result.bytes_written += self.bytes_per_dump
            result.ops += 1
        result.elapsed = sim.now - t0
        result.extra["dumps"] = float(self.steps)
        return result

    def _dump_rank(self, rank: int, step: int) -> Generator[Event, None, None]:
        mount = self.mounts[rank]
        per_rank = self.bytes_per_dump / len(self.mounts)
        path = f"{self.out_dir}/dump{step:04d}.cpu{rank:04d}"
        handle = yield mount.open(path, "w", create=True)
        written = 0.0
        while written < per_rank:
            n = int(min(self.chunk, per_rank - written))
            yield mount.write(handle, payload_for(mount, n))
            written += n
        yield mount.close(handle)
