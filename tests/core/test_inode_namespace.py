"""Tests for inodes and the namespace."""

import pytest

from repro.core.inode import FileType, InodeTable
from repro.core.namespace import (
    DirectoryNotEmpty,
    FileExists,
    IsADirectory,
    Namespace,
    NoSuchFile,
    NotADirectory,
    split_path,
)


class TestInodeTable:
    def test_allocate_unique_inos(self):
        t = InodeTable()
        a = t.allocate(FileType.FILE, now=1.0)
        b = t.allocate(FileType.FILE, now=1.0)
        assert a.ino != b.ino
        assert len(t) == 2

    def test_get_and_drop(self):
        t = InodeTable()
        a = t.allocate(FileType.FILE, now=0.0)
        assert t.get(a.ino) is a
        t.drop(a.ino)
        assert a.ino not in t
        with pytest.raises(KeyError):
            t.get(a.ino)

    def test_timestamps(self):
        t = InodeTable()
        a = t.allocate(FileType.FILE, now=42.0)
        assert a.ctime == a.mtime == a.atime == 42.0


class TestOwnerMatching:
    def test_dn_wins_when_both_present(self):
        t = InodeTable()
        inode = t.allocate(FileType.FILE, now=0, uid=500, owner_dn="/CN=alice")
        # Same DN, different uid (the cross-site case): matches.
        assert inode.owner_matches(uid=777, dn="/CN=alice")
        # Different DN, same uid: no match (UID collision across sites!).
        assert not inode.owner_matches(uid=500, dn="/CN=bob")

    def test_uid_fallback_without_dn(self):
        t = InodeTable()
        inode = t.allocate(FileType.FILE, now=0, uid=500)
        assert inode.owner_matches(uid=500, dn=None)
        assert not inode.owner_matches(uid=501, dn=None)
        # caller has a DN but the file doesn't: uid comparison
        assert inode.owner_matches(uid=500, dn="/CN=alice")


class TestSplitPath:
    def test_normalizes(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []
        assert split_path("/a//b/") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            split_path("a/b")


class TestNamespace:
    def setup_method(self):
        self.inodes = InodeTable()
        self.ns = Namespace(self.inodes)

    def test_root_exists(self):
        assert self.ns.resolve("/").is_dir

    def test_create_and_resolve(self):
        inode = self.ns.create_file("/data.bin", now=1.0, uid=5)
        got = self.ns.resolve("/data.bin")
        assert got is inode
        assert got.uid == 5

    def test_nested(self):
        self.ns.mkdir("/a", now=0)
        self.ns.mkdir("/a/b", now=0)
        self.ns.create_file("/a/b/f", now=0)
        assert self.ns.resolve("/a/b/f").is_file
        assert self.ns.listdir("/a") == ["b"]

    def test_duplicate_rejected(self):
        self.ns.create_file("/x", now=0)
        with pytest.raises(FileExists):
            self.ns.create_file("/x", now=0)
        with pytest.raises(FileExists):
            self.ns.mkdir("/x", now=0)

    def test_missing_parent(self):
        with pytest.raises(NoSuchFile):
            self.ns.create_file("/no/such/file", now=0)

    def test_file_as_directory(self):
        self.ns.create_file("/f", now=0)
        with pytest.raises(NotADirectory):
            self.ns.create_file("/f/child", now=0)
        with pytest.raises(NotADirectory):
            self.ns.listdir("/f")

    def test_unlink(self):
        self.ns.create_file("/f", now=0)
        inode = self.ns.unlink("/f", now=1)
        assert inode.nlink == 0
        assert not self.ns.exists("/f")

    def test_unlink_directory_rejected(self):
        self.ns.mkdir("/d", now=0)
        with pytest.raises(IsADirectory):
            self.ns.unlink("/d", now=0)

    def test_rmdir(self):
        self.ns.mkdir("/d", now=0)
        self.ns.rmdir("/d", now=1)
        assert not self.ns.exists("/d")

    def test_rmdir_nonempty(self):
        self.ns.mkdir("/d", now=0)
        self.ns.create_file("/d/f", now=0)
        with pytest.raises(DirectoryNotEmpty):
            self.ns.rmdir("/d", now=0)

    def test_rmdir_on_file(self):
        self.ns.create_file("/f", now=0)
        with pytest.raises(NotADirectory):
            self.ns.rmdir("/f", now=0)

    def test_rename(self):
        self.ns.create_file("/old", now=0)
        self.ns.mkdir("/dir", now=0)
        self.ns.rename("/old", "/dir/new", now=1)
        assert not self.ns.exists("/old")
        assert self.ns.resolve("/dir/new").is_file

    def test_rename_over_existing_rejected(self):
        self.ns.create_file("/a", now=0)
        self.ns.create_file("/b", now=0)
        with pytest.raises(FileExists):
            self.ns.rename("/a", "/b", now=0)

    def test_rename_missing(self):
        with pytest.raises(NoSuchFile):
            self.ns.rename("/ghost", "/new", now=0)

    def test_walk(self):
        self.ns.mkdir("/a", now=0)
        self.ns.create_file("/a/f1", now=0)
        self.ns.mkdir("/a/sub", now=0)
        self.ns.create_file("/b", now=0)
        assert self.ns.walk() == ["/a", "/a/f1", "/a/sub", "/b"]

    def test_listdir_sorted(self):
        for name in ["zeta", "alpha", "mid"]:
            self.ns.create_file(f"/{name}", now=0)
        assert self.ns.listdir("/") == ["alpha", "mid", "zeta"]
