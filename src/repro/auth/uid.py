"""UID/GID domains and grid-mapfiles.

§6 of the paper: "a user will, most likely, have different UIDs at SDSC,
NCSA, ANL". A :class:`UidDomain` is one site's account database; a
:class:`GridMapFile` maps GSI DNs to local usernames (the Globus
grid-mapfile). Together they implement the two ownership models the
reproduction compares:

* UID ownership (classic GPFS): a file is owned by a number that means
  different people at different sites.
* DN ownership (the SDSC extension): ownership follows the certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class Account:
    username: str
    uid: int
    gid: int


class UidDomain:
    """One administrative domain's users."""

    def __init__(self, site: str) -> None:
        self.site = site
        self._by_name: Dict[str, Account] = {}
        self._by_uid: Dict[int, Account] = {}

    def add_user(self, username: str, uid: int, gid: int = 100) -> Account:
        if username in self._by_name:
            raise ValueError(f"user {username!r} already exists at {self.site}")
        if uid in self._by_uid:
            raise ValueError(f"uid {uid} already taken at {self.site}")
        acct = Account(username, uid, gid)
        self._by_name[username] = acct
        self._by_uid[uid] = acct
        return acct

    def lookup(self, username: str) -> Account:
        try:
            return self._by_name[username]
        except KeyError:
            raise KeyError(f"no user {username!r} at {self.site}") from None

    def lookup_uid(self, uid: int) -> Optional[Account]:
        return self._by_uid.get(uid)

    def __contains__(self, username: str) -> bool:
        return username in self._by_name


class GridMapFile:
    """DN → local username mapping for one site."""

    def __init__(self, domain: UidDomain) -> None:
        self.domain = domain
        self._map: Dict[str, str] = {}

    def add(self, dn: str, username: str) -> None:
        if username not in self.domain:
            raise KeyError(
                f"cannot map {dn!r}: no local user {username!r} at {self.domain.site}"
            )
        self._map[dn] = username

    def resolve(self, dn: str) -> Account:
        """The local account for ``dn`` (KeyError if unmapped)."""
        try:
            username = self._map[dn]
        except KeyError:
            raise KeyError(
                f"DN {dn!r} not in grid-mapfile at {self.domain.site}"
            ) from None
        return self.domain.lookup(username)

    def dn_of_uid(self, uid: int) -> Optional[str]:
        """Reverse lookup: which DN maps to this local uid (if any)."""
        acct = self.domain.lookup_uid(uid)
        if acct is None:
            return None
        for dn, username in self._map.items():
            if username == acct.username:
                return dn
        return None
