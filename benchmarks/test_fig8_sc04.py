"""E3 benchmark — Fig 8: SC'04 three-lane SCinet transfer rates."""

from repro.experiments.fig8_sc04 import run_fig8
from repro.util.units import Gbps, MB


def test_fig8_sc04(run_experiment):
    result = run_experiment(
        run_fig8,
        nsd_servers=40,
        clients_per_site=24,
        per_client_phase_bytes=MB(160),
        phases=2,
    )
    # paper: each 10 GbE between 7 and 9 Gb/s
    assert result.metric("lane_min_mean") > Gbps(6)
    assert result.metric("lane_max_mean") < Gbps(9.5)
    # aggregate ~24 Gb/s, stable
    assert Gbps(20) < result.metric("aggregate_mean") < Gbps(28.5)
    # reads and writes "remarkably constant" (alternating phases comparable)
    read, write = result.metric("read_mean"), result.metric("write_mean")
    assert 0.6 < read / write < 1.67
