"""Tests for Gfs/Cluster administration (mm* command surface)."""

import pytest

from repro.core.cluster import ClusterError, Gfs, NsdSpec
from repro.util.units import Gbps, KiB

from tests.core.testbed import mounted, small_gfs


class TestGfs:
    def test_duplicate_cluster_rejected(self):
        g = Gfs()
        g.add_cluster("sdsc")
        with pytest.raises(ClusterError):
            g.add_cluster("sdsc")

    def test_unknown_cluster(self):
        g = Gfs()
        with pytest.raises(ClusterError):
            g.cluster("ghost")

    def test_node_membership_tracked(self):
        g, cluster, fs, _ = small_gfs()
        assert g.cluster_of_node("c0") is cluster
        assert g.cluster_of_node("sw") is None

    def test_node_in_two_clusters_rejected(self):
        g, cluster, fs, _ = small_gfs()
        other = g.add_cluster("ncsa")
        with pytest.raises(ClusterError):
            other.add_node("c0")

    def test_unknown_node_rejected(self):
        g = Gfs()
        c = g.add_cluster("sdsc")
        with pytest.raises(ClusterError):
            c.add_node("not-on-network")


class TestMmcrfs:
    def test_basic_creation(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4, blocks_per_nsd=100, block_size=KiB(256))
        assert fs.capacity == 4 * 100 * KiB(256)
        assert len(fs.nsds) == 4

    def test_duplicate_device_rejected(self):
        g, cluster, fs, _ = small_gfs()
        with pytest.raises(ClusterError):
            cluster.mmcrfs("gpfs0", [NsdSpec(server="nsd0", blocks=10)])

    def test_foreign_server_rejected(self):
        g, cluster, fs, _ = small_gfs()
        g.network.add_host("intruder", "sw", Gbps(1))
        with pytest.raises(ClusterError):
            cluster.mmcrfs("gpfs1", [NsdSpec(server="intruder", blocks=10)])

    def test_empty_specs_rejected(self):
        g, cluster, _, _ = small_gfs()
        with pytest.raises(ClusterError):
            cluster.mmcrfs("gpfs1", [])

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            NsdSpec(server="x", blocks=0)

    def test_filesystem_lookup(self):
        g, cluster, fs, _ = small_gfs()
        assert cluster.filesystem("gpfs0") is fs
        with pytest.raises(ClusterError):
            cluster.filesystem("nope")


class TestMmmount:
    def test_local_mount(self):
        g, cluster, fs, _ = small_gfs()
        m = mounted(g, cluster, node="c0")
        assert m.fs is fs
        assert m in fs.mounts

    def test_mount_from_foreign_node_rejected(self):
        g, cluster, fs, _ = small_gfs()
        g.network.add_host("stray", "sw", Gbps(1))
        with pytest.raises(ClusterError):
            cluster.mmmount("gpfs0", "stray")

    def test_unknown_device_rejected(self):
        g, cluster, fs, _ = small_gfs()
        with pytest.raises(ClusterError):
            cluster.mmmount("nope", "c0")

    def test_mount_takes_metadata_rtt(self):
        g, cluster, fs, _ = small_gfs()
        evt = cluster.mmmount("gpfs0", "c0")
        g.run(until=evt)
        assert g.sim.now > 0


class TestUsers:
    def test_add_user_identity(self):
        g, cluster, _, _ = small_gfs()
        ident = cluster.add_user("alice", uid=5001, dn="/CN=alice")
        assert ident.uid == 5001
        assert ident.dn == "/CN=alice"

    def test_identity_for_dn(self):
        g, cluster, _, _ = small_gfs()
        cluster.add_user("alice", uid=5001, dn="/CN=alice")
        ident = cluster.identity_for_dn("/CN=alice")
        assert ident.uid == 5001 and ident.dn == "/CN=alice"
        classic = cluster.identity_for_dn("/CN=alice", use_dn_ownership=False)
        assert classic.dn is None

    def test_unmapped_dn(self):
        g, cluster, _, _ = small_gfs()
        with pytest.raises(KeyError):
            cluster.identity_for_dn("/CN=stranger")


class TestMmauthAdmin:
    def test_genkey(self):
        g, cluster, _, _ = small_gfs()
        pub = cluster.mmauth_genkey()
        assert cluster.keystore.has_own
        assert pub == cluster.keystore.own.public

    def test_genkey_deterministic_per_cluster(self):
        g1 = small_gfs(seed=5)[0:2]
        g2 = small_gfs(seed=5)[0:2]
        assert g1[1].mmauth_genkey() == g2[1].mmauth_genkey()

    def test_grant_requires_existing_fs(self):
        g, cluster, _, _ = small_gfs()
        with pytest.raises(ClusterError):
            cluster.mmauth_grant("ncsa", "nope", "ro")
        cluster.mmauth_grant("ncsa", "gpfs0", "ro")
        assert cluster.granted_access("ncsa", "gpfs0") == "ro"
        assert cluster.granted_access("ncsa", "other") is None

    def test_grant_access_validated(self):
        g, cluster, _, _ = small_gfs()
        with pytest.raises(ValueError):
            cluster.mmauth_grant("ncsa", "gpfs0", "admin")

    def test_cipher_update(self):
        g, cluster, _, _ = small_gfs()
        cluster.mmauth_update("AUTHONLY")
        assert cluster.cipher.name == "AUTHONLY"
        with pytest.raises(KeyError):
            cluster.mmauth_update("ROT13")

    def test_cipher_change_blocked_with_active_mounts(self):
        g, cluster, _, _ = small_gfs()
        cluster.active_remote_mounts = 1
        with pytest.raises(ClusterError):
            cluster.mmauth_update("AES128")
        with pytest.raises(ClusterError):
            cluster.mmauth_genkey()


class TestRemoteDefs:
    def test_mmremotefs_requires_cluster_def(self):
        g, cluster, _, _ = small_gfs()
        with pytest.raises(ClusterError):
            cluster.mmremotefs_add("remote-gpfs", "sdsc2", "gpfs0")

    def test_mmremotecluster_validation(self):
        g, cluster, _, _ = small_gfs()
        other_key = small_gfs(seed=9)[1].mmauth_genkey()
        with pytest.raises(ClusterError):
            cluster.mmremotecluster_add("ncsa", other_key, [])
        cluster.mmremotecluster_add("ncsa", other_key, ["contact0"])
        assert "ncsa" in cluster.remote_clusters

    def test_device_name_collision(self):
        g, cluster, _, _ = small_gfs()
        key = small_gfs(seed=9)[1].mmauth_genkey()
        cluster.mmremotecluster_add("ncsa", key, ["n0"])
        with pytest.raises(ClusterError):
            cluster.mmremotefs_add("gpfs0", "ncsa", "whatever")  # local name taken
