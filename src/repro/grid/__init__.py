"""Grid substrate: the staging model the paper argues against, plus the
co-scheduler used at SC'04.

* :mod:`repro.grid.gridftp`   — parallel-stream wholesale file transfer
  (the pre-GFS mode of operation: "data required for the computation would
  be moved to the chosen compute facility's local disk", §1)
* :mod:`repro.grid.staging`   — stage-in → compute → stage-out job model,
  and its direct-GFS-access counterpart, for the E7 comparison
* :mod:`repro.grid.scheduler` — GUR-style co-reservation of compute + disk
  ("Nodes scheduled using GUR", Fig 7), including the §1 failure mode:
  "the computational system chosen may not be able to guarantee enough
  room to receive a required dataset"
"""

from repro.grid.gridftp import GridFtp, GridFtpResult
from repro.grid.staging import StagedJob, DirectGfsJob, JobReport, JobSpec
from repro.grid.scheduler import GurScheduler, SiteResources, Reservation, ReservationError

__all__ = [
    "GridFtp",
    "GridFtpResult",
    "StagedJob",
    "DirectGfsJob",
    "JobReport",
    "JobSpec",
    "GurScheduler",
    "SiteResources",
    "Reservation",
    "ReservationError",
]
