"""Stripe geometry: mapping byte ranges to file blocks and NSDs.

GPFS stripes a file's blocks round-robin across the filesystem's disks,
starting at a per-file rotation offset so that files do not all hammer
disk 0. All functions here are pure; the data plane builds on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class BlockRange:
    """The portion of one file block touched by a byte range."""

    block_index: int  # logical block number within the file
    offset: int  # first byte within the block
    length: int  # bytes touched within the block

    def __post_init__(self) -> None:
        if self.block_index < 0 or self.offset < 0 or self.length <= 0:
            raise ValueError(f"invalid block range {self}")

    @property
    def is_full_block(self) -> bool:
        return self.offset == 0  # caller checks length == block_size


class StripeGeometry:
    """Block size + NSD count → placement arithmetic."""

    def __init__(self, block_size: int, num_nsds: int) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if num_nsds <= 0:
            raise ValueError("num_nsds must be positive")
        self.block_size = int(block_size)
        self.num_nsds = int(num_nsds)

    def block_of(self, offset: int) -> int:
        """Logical block index containing byte ``offset``."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        return offset // self.block_size

    def split(self, offset: int, length: int) -> List[BlockRange]:
        """Decompose ``[offset, offset+length)`` into per-block pieces."""
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        pieces: List[BlockRange] = []
        pos = offset
        end = offset + length
        while pos < end:
            block = pos // self.block_size
            in_block = pos - block * self.block_size
            take = min(self.block_size - in_block, end - pos)
            pieces.append(BlockRange(block, in_block, take))
            pos += take
        return pieces

    def nsd_for(self, ino: int, block_index: int) -> int:
        """Round-robin NSD placement with per-file rotation."""
        if block_index < 0:
            raise ValueError("block_index must be non-negative")
        return (ino + block_index) % self.num_nsds

    def blocks_in(self, offset: int, length: int) -> Iterator[int]:
        """Logical block indices touched by the byte range."""
        for piece in self.split(offset, length):
            yield piece.block_index

    def span_bytes(self, piece: BlockRange) -> tuple[int, int]:
        """Absolute byte range of a piece: (start, end)."""
        start = piece.block_index * self.block_size + piece.offset
        return start, start + piece.length
