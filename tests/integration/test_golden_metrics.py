"""Golden-metrics regression: fast paths must be *bit-identical*, not close.

The kernel fast paths and the NSD/network caches (ARCHITECTURE.md §10)
all claim exact-semantics: same event order, same floats, same reported
numbers. This pins that claim to disk. ``golden/golden_metrics.json``
was captured on the pre-optimization kernel; every metric (and, for
E3/E8, every table cell) is stored as ``repr`` so the comparison is
bit-level on the float values — ``pytest.approx`` would hide exactly
the class of drift these tests exist to catch.

The coalescing test is different in kind: with ``max_coalesce > 1`` the
event *schedule* legitimately changes (fewer, larger RPCs), so instead
of bit-identity it asserts logical equivalence with the legacy per-block
path — same bytes moved, same block counts, same checksum verification
count, same data read back.

Regenerate goldens (only after an *intentional* semantic change)::

    PYTHONPATH=src python tests/integration/capture_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "golden_metrics.json"


def _capture(res) -> dict:
    """repr-encode an ExperimentResult exactly like the capture script."""
    out = {"metrics": {k: repr(v) for k, v in res.metrics.items()}}
    if res.table is not None:
        out["table"] = [[repr(c) for c in row] for row in res.table.rows]
    return out


def _golden(key: str) -> dict:
    data = json.loads(GOLDEN_PATH.read_text())
    return data[key]


def _assert_identical(got: dict, want: dict, key: str) -> None:
    for name in sorted(set(got["metrics"]) | set(want["metrics"])):
        assert got["metrics"].get(name) == want["metrics"].get(name), (
            f"{key} metric {name!r} drifted: "
            f"{got['metrics'].get(name)} != golden {want['metrics'].get(name)}"
        )
    if "table" in want:  # E13/E14 goldens pin metrics only
        assert got.get("table") == want["table"], f"{key} table drifted"


def test_e8_quick_bit_identical():
    from repro.experiments.e8_latency import run_e8
    from repro.util.units import GB

    _assert_identical(_capture(run_e8(nbytes=GB(1))), _golden("E8"), "E8")


def test_e3_quick_bit_identical():
    from repro.experiments.fig8_sc04 import run_fig8
    from repro.util.units import MB

    res = run_fig8(
        nsd_servers=21,
        clients_per_site=12,
        per_client_phase_bytes=MB(96),
        phases=2,
    )
    _assert_identical(_capture(res), _golden("E3"), "E3")


def test_e13_quick_bit_identical():
    from repro.experiments.e13_chaos import run_e13_quick

    _assert_identical(_capture(run_e13_quick()), _golden("E13"), "E13")


def test_e14_quick_bit_identical():
    from repro.experiments.e14_integrity import run_e14_quick

    _assert_identical(_capture(run_e14_quick()), _golden("E14"), "E14")


# -- coalescing-on vs legacy logical equivalence ------------------------------


def _coalesce_testbed(max_coalesce: int):
    from repro.core.cluster import Gfs, NsdSpec
    from repro.util.units import Gbps, KiB

    g = Gfs(seed=0)
    net = g.network
    net.add_node("sw", kind="switch")
    servers = [f"nsd{i}" for i in range(4)]
    for name in servers + ["writer", "reader"]:
        net.add_host(name, "sw", Gbps(10), site="lab")
    cluster = g.add_cluster("lab")
    cluster.add_nodes(servers + ["writer", "reader"])
    fs = cluster.mmcrfs(
        "gold0",
        [NsdSpec(server=s, blocks=4096) for s in servers],
        block_size=KiB(256),
        store_data=True,
    )
    w = g.run(cluster.mmmount("gold0", "writer", max_coalesce=max_coalesce))
    r = g.run(cluster.mmmount("gold0", "reader", max_coalesce=max_coalesce))
    return g, fs, w, r


def _payload(n: int) -> bytes:
    import hashlib

    out = bytearray()
    h = hashlib.sha256(b"coalesce-golden").digest()
    while len(out) < n:
        out.extend(h)
        h = hashlib.sha256(h).digest()
    return bytes(out[:n])


def test_coalescing_logically_equivalent_to_legacy():
    """Same workload, coalescing off vs on: identical logical effects.

    Bytes read/written, per-block service counters, and checksum
    verification counts must match exactly; only the RPC *shape*
    (``nsd.coalesced_rpcs``) may differ. Data must read back identical.
    """
    from repro.util.units import KiB, MiB

    data = _payload(int(MiB(3)) + 12345)
    results = {}
    for mc in (1, 8):
        g, fs, w, r = _coalesce_testbed(mc)
        h = g.run(w.open("/g", "w+", create=True))
        g.run(w.write(h, data))
        g.run(w.close(h))
        h2 = g.run(r.open("/g", "r"))
        back = g.run(r.read(h2, len(data)))
        # a second, partially-cached read (readahead overlap + RMW path)
        g.run(r.pread(h2, int(KiB(300)), int(MiB(1))))
        g.run(r.close(h2))
        assert back == data, f"data corrupted with max_coalesce={mc}"
        results[mc] = {
            "bytes_written": w.bytes_written,
            "bytes_read": r.bytes_read,
            "blocks_written": fs.service.blocks_written,
            "blocks_read": fs.service.blocks_read,
            "checksum_verifications": fs.service.checksum_verifications,
        }
    assert results[1] == results[8], (
        f"coalescing changed logical effects: {results[1]} != {results[8]}"
    )


def test_multi_block_rpc_verify_counts_match_per_block():
    """read_blocks(verify=True) verifies every block, like N read_block calls."""
    from repro.util.units import KiB

    g, fs, w, _ = _coalesce_testbed(max_coalesce=8)
    service = fs.service
    bs = fs.block_size
    nsd_id = min(fs.nsds)

    def io():
        yield service.write_blocks(
            "writer", nsd_id, [(p, 0, bytes([p]) * int(bs)) for p in range(6)]
        )
        datas = yield service.read_blocks(
            "writer", nsd_id, range(6), verify=True
        )
        assert [d[:1] for d in datas] == [bytes([p]) for p in range(6)]
        assert all(len(d) == int(bs) for d in datas)

    g.run(g.sim.process(io()))
    assert service.checksum_verifications == 6
    assert service.blocks_written == 6
    assert service.blocks_read == 6
    assert int(KiB(256)) == int(bs)
