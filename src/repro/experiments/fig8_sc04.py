"""E3 — Fig 8: SC'04 transfer rates over three SCinet 10 GbE links.

Paper: "Individual transfer rates on each 10 Gb/s connection varied between
7 and 9 Gb/s, with the aggregate performance relatively stable at
approximately 24 Gb/s (3 Gb/s [sic]). The momentary peak was over 27 Gb/s,
sufficient to win this portion of the Bandwidth challenge. Both reads and
writes were demonstrated, in an alternate manner, but the rates were
remarkably constant. Rates between the show floor and both NCSA and SDSC
were virtually identical."
"""

from __future__ import annotations

from typing import List

from repro.experiments.harness import ExperimentResult
from repro.topology.sc04 import build_sc04
from repro.util.tables import Table
from repro.util.units import MB, MiB, fmt_bits_rate
from repro.workloads.base import payload_for


def run_fig8(
    nsd_servers: int = 40,
    clients_per_site: int = 24,
    per_client_phase_bytes: float = MB(256),
    phases: int = 4,
) -> ExperimentResult:
    scenario = build_sc04(
        nsd_servers=nsd_servers,
        sdsc_clients=clients_per_site,
        ncsa_clients=clients_per_site,
        with_disks=False,  # floor FS did ~15 GB/s; the 3x10GbE uplinks bind
        store_data=False,
    )
    g = scenario.gfs
    mounts = scenario.sdsc_mounts + scenario.ncsa_mounts
    chunk = MiB(2)

    # Pre-stage one file per client on the floor (local to the servers, so
    # staging does not cross the measured uplinks).
    staging = g.run(
        until=scenario.floor.mmmount("gpfs-sc04", "flr-nsd00", tags=("stage",))
    )

    def stage():
        for i in range(len(mounts)):
            handle = yield staging.open(f"/enzo{i:03d}", "w", create=True)
            yield staging.write(handle, int(per_client_phase_bytes))
            yield staging.close(handle)

    g.run(until=g.sim.process(stage(), name="stage"))
    t_start = g.sim.now

    def client_phase(mount, path, kind):
        handle = yield mount.open(path, "r" if kind == "read" else "r+")
        size = int(per_client_phase_bytes)
        pos = 0
        while pos < size:
            n = int(min(chunk, size - pos))
            if kind == "read":
                yield mount.pread(handle, pos, n)
            else:
                yield mount.pwrite(handle, pos, payload_for(mount, n))
            pos += n
        yield mount.close(handle)
        mount.pool.invalidate(handle.inode.ino)

    phase_kinds: List[str] = []
    for p in range(phases):
        kind = "read" if p % 2 == 0 else "write"
        phase_kinds.append(kind)
        procs = [
            g.sim.process(
                client_phase(m, f"/enzo{i:03d}", kind), name=f"ph{p}-c{i}"
            )
            for i, m in enumerate(mounts)
        ]
        g.run(until=g.sim.all_of(procs))

    t_end = g.sim.now
    # The SCinet monitors reported windowed per-link rates; reduce the exact
    # piecewise-constant traces the same way (1 s windows).
    lane_series = {
        tag: g.engine.tag_rate_series(tag)
        .slice(t_start, t_end)
        .windowed_mean(1.0, t_end=t_end)
        for tag in scenario.lane_tags()
    }
    from repro.util.timeseries import TimeSeries

    total = TimeSeries.sum_of(lane_series.values(), name="aggregate")

    result = ExperimentResult(
        exp_id="E3",
        title="Fig 8: SC'04 transfer rates, three 10 GbE SCinet uplinks",
        paper_claim="7-9 Gb/s per link; ~24 Gb/s aggregate; >27 Gb/s peak; reads ≈ writes",
    )
    table = Table(["link", "mean", "peak"], title="SCinet bandwidth-challenge monitors")
    lane_means = []
    for tag, series in lane_series.items():
        busy = [v for v in series.values if v > 0]
        mean = sum(busy) / len(busy) if busy else 0.0
        lane_means.append(mean)
        result.series[tag] = series
        table.add_row([tag, fmt_bits_rate(mean), fmt_bits_rate(series.max())])
    busy_total = [v for v in total.values if v > 0]
    agg_mean = sum(busy_total) / len(busy_total) if busy_total else 0.0
    table.add_row(["aggregate", fmt_bits_rate(agg_mean), fmt_bits_rate(total.max())])
    result.series["aggregate"] = total
    result.table = table
    result.metrics["aggregate_mean"] = agg_mean
    result.metrics["aggregate_peak"] = total.max()
    result.metrics["lane_min_mean"] = min(lane_means)
    result.metrics["lane_max_mean"] = max(lane_means)

    # reads-vs-writes constancy (alternating phases)
    span = (t_end - t_start) / phases
    read_rates, write_rates = [], []
    for p, kind in enumerate(phase_kinds):
        sl = total.slice(t_start + p * span + 1, t_start + (p + 1) * span)
        if sl.empty:
            continue
        (read_rates if kind == "read" else write_rates).append(sl.mean())
    if read_rates and write_rates:
        result.metrics["read_mean"] = sum(read_rates) / len(read_rates)
        result.metrics["write_mean"] = sum(write_rates) / len(write_rates)
    result.notes = (
        f"{2 * clients_per_site} clients at SDSC+NCSA alternating "
        f"{phases} read/write phases against {nsd_servers} floor servers"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_fig8()))
