"""Tests for repro.util.timeseries."""

import pytest

from repro.util.timeseries import RateMeter, TimeSeries


class TestTimeSeries:
    def test_add_and_len(self):
        ts = TimeSeries(name="x")
        ts.add(0.0, 1.0)
        ts.add(1.0, 2.0)
        assert len(ts) == 2
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]

    def test_monotone_time_enforced(self):
        ts = TimeSeries()
        ts.add(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.add(4.9, 1.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries()
        ts.add(1.0, 1.0)
        ts.add(1.0, 2.0)
        assert len(ts) == 2

    def test_stats(self):
        ts = TimeSeries()
        for i, v in enumerate([10.0, 30.0, 20.0]):
            ts.add(float(i), v)
        assert ts.max() == 30.0
        assert ts.min() == 10.0
        assert ts.mean() == 20.0

    def test_stats_on_empty_raise(self):
        ts = TimeSeries(name="e")
        for fn in (ts.max, ts.min, ts.mean):
            with pytest.raises(ValueError):
                fn()

    def test_percentile(self):
        ts = TimeSeries()
        for i in range(100):
            ts.add(float(i), float(i + 1))
        assert ts.percentile(50) == 50.0
        assert ts.percentile(100) == 100.0
        assert ts.percentile(0) == 1.0

    def test_percentile_range_check(self):
        ts = TimeSeries()
        ts.add(0, 1)
        with pytest.raises(ValueError):
            ts.percentile(101)

    def test_value_at_piecewise_constant(self):
        ts = TimeSeries()
        ts.add(0.0, 1.0)
        ts.add(10.0, 5.0)
        assert ts.value_at(-1.0) == 1.0  # clamp before first
        assert ts.value_at(0.0) == 1.0
        assert ts.value_at(9.99) == 1.0
        assert ts.value_at(10.0) == 5.0
        assert ts.value_at(100.0) == 5.0

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.add(0.0, 0.0)
        ts.add(1.0, 10.0)  # value 0 held for 1s
        ts.add(3.0, 0.0)  # value 10 held for 2s
        assert ts.time_weighted_mean() == pytest.approx(20.0 / 3.0)

    def test_resample(self):
        ts = TimeSeries()
        ts.add(0.0, 1.0)
        ts.add(2.0, 3.0)
        rs = ts.resample([0.0, 1.0, 2.0, 3.0])
        assert rs.values == [1.0, 1.0, 3.0, 3.0]

    def test_slice(self):
        ts = TimeSeries()
        for t in range(5):
            ts.add(float(t), float(t))
        sl = ts.slice(1.0, 3.0)
        assert sl.times == [1.0, 2.0]

    def test_sum_of(self):
        a = TimeSeries(name="a")
        a.add(0.0, 1.0)
        a.add(2.0, 2.0)
        b = TimeSeries(name="b")
        b.add(1.0, 10.0)
        total = TimeSeries.sum_of([a, b])
        # grid: 0,1,2 — b contributes only from t=1
        assert total.times == [0.0, 1.0, 2.0]
        assert total.values == [1.0, 11.0, 12.0]


class TestRateMeter:
    def test_total_and_mean(self):
        m = RateMeter(window=1.0)
        m.record(0.5, 100.0)
        m.record(1.5, 300.0)
        assert m.total_bytes == 400.0
        assert m.mean_rate(t_end=2.0) == pytest.approx(200.0)

    def test_series_bins(self):
        m = RateMeter(window=1.0)
        m.record(0.25, 100.0)
        m.record(0.75, 100.0)
        m.record(1.5, 50.0)
        s = m.series(t_end=2.0)
        assert s.values == [200.0, 50.0]
        assert s.times == [1.0, 2.0]

    def test_empty_meter(self):
        m = RateMeter()
        assert m.mean_rate() == 0.0
        assert m.series().empty

    def test_empty_window_yields_empty_series(self):
        # t_end <= 0 is a degenerate window: no bins, not one catch-all
        # bin covering zero time.
        m = RateMeter(window=1.0)
        m.record(0.5, 100.0)
        assert m.series(t_end=0.0).empty
        assert m.series(t_end=-1.0).empty

    def test_all_events_at_t_zero(self):
        # Events recorded exactly at t=0 with no explicit t_end also form
        # an empty window (consistent with mean_rate's last<=0 rule).
        m = RateMeter(window=1.0)
        m.record(0.0, 100.0)
        assert m.series().empty
        assert m.mean_rate() == 0.0
        # An explicit horizon widens the window and recovers the sample.
        assert m.series(t_end=1.0).values == [100.0]

    def test_monotonicity_enforced(self):
        m = RateMeter()
        m.record(2.0, 1.0)
        with pytest.raises(ValueError):
            m.record(1.0, 1.0)

    def test_negative_bytes_rejected(self):
        m = RateMeter()
        with pytest.raises(ValueError):
            m.record(0.0, -1.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            RateMeter(window=0.0)
