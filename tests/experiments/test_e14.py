"""E14 integrity soak: acceptance criteria as executable assertions."""

from repro.experiments.e14_integrity import (
    damage_at_rest,
    pattern_chunk,
    run_e14_quick,
)


class TestPatternChunk:
    def test_deterministic_and_chunk_distinct(self):
        assert pattern_chunk(3, 64) == pattern_chunk(3, 64)
        assert pattern_chunk(3, 64) != pattern_chunk(4, 64)

    def test_length_exact(self):
        for n in (0, 1, 8, 9, 10, 1000):
            assert len(pattern_chunk(0, n)) == n


class TestE14Acceptance:
    @classmethod
    def setup_class(cls):
        cls.result = run_e14_quick()
        cls.metrics = cls.result.metrics

    def test_zero_wrong_bytes(self):
        # The headline: rot + a dead drive + a partition, and the
        # application never sees a single wrong byte or failed read.
        assert self.metrics["wrong_bytes"] == 0.0
        assert self.metrics["reads_failed"] == 0.0
        assert self.metrics["corrupt_reads_served_correctly_pct"] == 100.0

    def test_rot_was_actually_injected_and_detected(self):
        assert self.metrics["corrupt_blocks_injected"] >= 3.0
        # readers tripped over some of it (verify-on-read + failover) ...
        assert self.metrics["corrupt_reads_detected"] >= 1.0
        assert self.metrics["degraded_reads"] >= 1.0
        # ... and the scrubber found the cold replica no reader touches
        assert self.metrics["scrub_rot_found"] >= 1.0

    def test_every_damaged_replica_repaired(self):
        assert self.metrics["damage_at_rest_end"] == 0.0
        repairs = (
            self.metrics["read_repairs"] + self.metrics["scrub_repairs"]
        )
        assert repairs >= self.metrics["corrupt_blocks_injected"] - (
            self.metrics["corrupt_reads_detected"]  # dedup: one repair per block
        )
        assert repairs >= 1.0
        assert self.metrics["scrub_repair_failures"] == 0.0

    def test_partition_exercised_without_split_brain(self):
        assert self.metrics["partitions"] == 1.0
        assert self.metrics["partition_heals"] == 1.0
        assert self.metrics["partition_parked_rpcs"] >= 1.0
        assert self.metrics["quorum_denials"] >= 1.0
        assert self.metrics["quorum_suppressed_checks"] >= 1.0
        # the quorumless minority never declared the majority dead
        assert self.metrics["failures_detected"] == 0.0
        assert self.metrics["unavailability_s"] > 0.0

    def test_scrub_cost_reported(self):
        assert self.metrics["scrub_bytes_read"] > 0.0
        assert self.metrics["scrub_overhead_ratio"] > 0.0

    def test_same_seed_identical_metrics(self):
        again = run_e14_quick()
        assert again.metrics == self.metrics  # bit-identical, not approx


class TestDamageAtRest:
    def test_counts_and_clears(self):
        from repro.core.replication import ReplicationPolicy

        from tests.core.testbed import mounted, run_io, small_gfs

        g, cluster, fs, _ = small_gfs(
            nsd_servers=4, replication=ReplicationPolicy(copies=2)
        )
        m = mounted(g, cluster, node="c0")

        def gen():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, b"\x21" * (4 * 256 * 1024))
            yield m.close(h)

        run_io(g, gen())
        assert damage_at_rest(fs) == 0
        inode = fs.namespace.resolve("/f")
        nsd_id, phys = fs.replica_placements(inode, 0)[1]
        fs.nsds[nsd_id].corrupt(phys)
        assert damage_at_rest(fs) == 1
        fs.nsds[nsd_id].store(phys, 0, b"\x21" * 256 * 1024)
        assert damage_at_rest(fs) == 0
