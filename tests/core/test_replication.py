"""Replication data path: placement, fan-out writes, failover, read-repair."""

import pytest

from repro.core.blocks import replica_slots
from repro.core.replication import (
    AllReplicasFailed,
    ReplicaQuorumError,
    ReplicationPolicy,
)

from tests.core.testbed import mounted, run_io, small_gfs

BS = 256 * 1024  # small_gfs default block size
PAYLOAD = 8 * BS


class TestReplicaSlots:
    def test_prefers_distinct_failure_groups(self):
        # groups: 0 0 1 1 — the replica of slot 0 must skip slot 1 (same
        # group) and land on slot 2.
        assert replica_slots(0, 2, [0, 0, 1, 1]) == [2]

    def test_falls_back_to_distinct_slots(self):
        # one failure group everywhere: still never two copies per slot
        assert replica_slots(1, 3, [0, 0, 0, 0]) == [2, 3]

    def test_three_way_across_groups(self):
        assert replica_slots(0, 3, [0, 1, 2, 0, 1, 2]) == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            replica_slots(5, 2, [0, 1])  # primary out of range
        with pytest.raises(ValueError):
            replica_slots(0, 0, [0, 1])  # copies < 1
        with pytest.raises(ValueError):
            replica_slots(0, 3, [0, 1])  # more copies than slots


class TestReplicationPolicy:
    def test_defaults_inactive(self):
        policy = ReplicationPolicy()
        assert not policy.active

    def test_active_forms(self):
        assert ReplicationPolicy(copies=2).active
        assert ReplicationPolicy(verify_reads=True).active

    def test_ack_threshold(self):
        assert ReplicationPolicy(copies=3, quorum="all").ack_threshold(3) == 3
        assert ReplicationPolicy(copies=3, quorum="majority").ack_threshold(3) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationPolicy(copies=0)
        with pytest.raises(ValueError):
            ReplicationPolicy(quorum="some")


def _replicated_gfs(copies=2, quorum="all", nsd_servers=4):
    return small_gfs(
        nsd_servers=nsd_servers,
        replication=ReplicationPolicy(
            copies=copies, quorum=quorum, verify_reads=True
        ),
    )


def _write_pattern(g, m, path="/f", nbytes=PAYLOAD):
    payload = bytes(range(256)) * (nbytes // 256)

    def gen():
        h = yield m.open(path, "w", create=True)
        yield m.write(h, payload)
        yield m.close(h)

    run_io(g, gen())
    return payload


def _read_all(g, m, path="/f", nbytes=PAYLOAD):
    def gen():
        h = yield m.open(path, "r")
        data = yield m.pread(h, 0, nbytes)
        yield m.close(h)
        return data

    return run_io(g, gen())


class TestReplicatedWrites:
    def test_every_block_has_copies_in_distinct_groups(self):
        g, cluster, fs, _ = _replicated_gfs()
        m = mounted(g, cluster, node="c0")
        _write_pattern(g, m)
        inode = fs.namespace.resolve("/f")
        assert inode.blocks  # primary map populated
        for block_index in inode.blocks:
            placements = fs.replica_placements(inode, block_index)
            assert len(placements) == 2
            groups = [fs.nsds[nsd_id].failure_group for nsd_id, _ in placements]
            assert len(set(groups)) == 2

    def test_both_replicas_hold_verified_data(self):
        g, cluster, fs, _ = _replicated_gfs()
        m = mounted(g, cluster, node="c0")
        _write_pattern(g, m)
        inode = fs.namespace.resolve("/f")
        for block_index in inode.blocks:
            for nsd_id, phys in fs.replica_placements(inode, block_index):
                assert fs.nsds[nsd_id].verify_full(phys)


class TestReadPath:
    def test_corrupt_primary_served_from_survivor_and_repaired(self):
        g, cluster, fs, _ = _replicated_gfs()
        m = mounted(g, cluster, node="c0")
        payload = _write_pattern(g, m)
        inode = fs.namespace.resolve("/f")
        primary_nsd, primary_phys = fs.replica_placements(inode, 2)[0]
        fs.nsds[primary_nsd].corrupt(primary_phys)
        m.pool.invalidate(inode.ino)

        data = _read_all(g, m)
        assert data == payload  # zero wrong bytes despite the rot
        assert fs.integrity.corrupt_reads_detected == 1
        assert fs.integrity.degraded_reads == 1
        g.run(until=g.sim.timeout(1.0))  # let background read-repair land
        assert fs.integrity.read_repairs == 1
        assert fs.nsds[primary_nsd].verify_full(primary_phys)

    def test_all_replicas_rotten_fails_loudly(self):
        g, cluster, fs, _ = _replicated_gfs()
        m = mounted(g, cluster, node="c0")
        _write_pattern(g, m)
        inode = fs.namespace.resolve("/f")
        for nsd_id, phys in fs.replica_placements(inode, 0):
            fs.nsds[nsd_id].corrupt(phys)
        m.pool.invalidate(inode.ino)
        with pytest.raises(AllReplicasFailed):
            _read_all(g, m, nbytes=BS)

    def test_down_primary_read_prefers_survivor(self):
        g, cluster, fs, _ = _replicated_gfs()
        m = mounted(g, cluster, node="c0")
        payload = _write_pattern(g, m)
        inode = fs.namespace.resolve("/f")
        service = fs.service
        # Take down the primary server (and its backups) of block 0 only.
        primary_nsd, _ = fs.replica_placements(inode, 0)[0]
        service.mark_down(service.servers[primary_nsd].node)
        for backup in service.backup_servers.get(primary_nsd, []):
            service.mark_down(backup.node)
        m.pool.invalidate(inode.ino)
        data = _read_all(g, m)
        assert data == payload
        assert fs.integrity.degraded_reads >= 1


class TestWriteQuorum:
    def _down_one_replica_path(self, fs):
        """Make one replica of block 0 unwritable (primary + backups down)."""
        service = fs.service
        inode = fs.namespace.resolve("/f")
        placements = fs.replica_placements(inode, 0)
        nsd_id, _ = placements[-1]
        service.mark_down(service.servers[nsd_id].node)
        for backup in service.backup_servers.get(nsd_id, []):
            service.mark_down(backup.node)
        return placements

    def test_majority_quorum_absorbs_one_dead_replica(self):
        g, cluster, fs, _ = _replicated_gfs(copies=3, quorum="majority")
        m = mounted(g, cluster, node="c0")
        _write_pattern(g, m)
        placements = self._down_one_replica_path(fs)
        evt = fs.integrity.write_block("c0", placements, 0, b"\x7f" * BS)
        assert g.run(until=evt) == BS
        assert fs.integrity.replica_write_failures == 1
        assert fs.integrity.quorum_failures == 0

    def test_all_quorum_fails_on_one_dead_replica(self):
        g, cluster, fs, _ = _replicated_gfs(copies=3, quorum="all")
        m = mounted(g, cluster, node="c0")
        _write_pattern(g, m)
        placements = self._down_one_replica_path(fs)
        evt = fs.integrity.write_block("c0", placements, 0, b"\x7f" * BS)
        with pytest.raises(ReplicaQuorumError):
            g.run(until=evt)
        assert fs.integrity.quorum_failures == 1


class TestInactivePolicyInvariance:
    def _workload(self, replication):
        kwargs = {} if replication is None else {"replication": replication}
        g, cluster, fs, _ = small_gfs(nsd_servers=4, **kwargs)
        m = mounted(g, cluster, node="c0")
        _write_pattern(g, m)
        m.pool.invalidate(fs.namespace.resolve("/f").ino)
        _read_all(g, m)
        return g.sim.now

    def test_r1_no_verify_is_bit_identical_to_legacy(self):
        # copies=1, verify off → the policy is inactive and the client
        # must take the exact legacy path: identical completion time.
        legacy = self._workload(None)
        inactive = self._workload(ReplicationPolicy(copies=1))
        assert legacy == inactive

    def test_truncate_trims_every_replica(self):
        g, cluster, fs, _ = _replicated_gfs()
        m = mounted(g, cluster, node="c0")
        _write_pattern(g, m)
        inode = fs.namespace.resolve("/f")
        placements = fs.replica_placements(inode, 0)

        def trunc():
            h = yield m.open("/f", "r+")
            yield m.truncate(h, BS // 2)
            yield m.close(h)

        run_io(g, trunc())
        for nsd_id, phys in placements:
            assert len(fs.nsds[nsd_id]._data.get(phys, b"")) <= BS // 2
