"""E4 — Fig 11: production GFS scaling with remote node count.

Paper (§5): "MPI IO, 128 MB Block Size, 1 MB Transfer Size ... with a
measured maximum of almost 6 GB/s, within a network environment with a
theoretical maximum of 8 GB/s. The observed discrepancy between read and
write rates is not yet understood, but is not an immediate handicap since
we expect the dominant usage of the GFS to be remote reads."

Our model attributes the gap to DS4100 write-side limits (RAID-5 parity on
SATA + write-cache mirroring between the dual controllers), calibrated at
50 MB/s per controller — see EXPERIMENTS.md §E4.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.harness import ExperimentResult
from repro.topology.sdsc2005 import build_sdsc2005
from repro.util.tables import Table
from repro.util.units import MiB
from repro.workloads.mpiio import mpiio_collective

DEFAULT_COUNTS = (1, 2, 4, 8, 16, 32, 48, 64)


def run_fig11(
    node_counts: Sequence[int] = DEFAULT_COUNTS,
    region_bytes: int = MiB(128),
    transfer_bytes: int = MiB(1),
    nsd_servers: int = 64,
    ds4100_count: int = 32,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E4",
        title="Fig 11: speed vs node count, reads and writes (MPI-IO 128MB/1MB)",
        paper_claim="reads scale to ~6 GB/s (8 GB/s network ceiling); writes ~half; gap 'not yet understood'",
    )
    table = Table(
        ["nodes", "read MB/s", "write MB/s", "read/node", "r/w"],
        title="MPI IO, 128 MB block, 1 MB transfer",
    )
    read_rates: List[float] = []
    write_rates: List[float] = []
    for count in node_counts:
        scenario = build_sdsc2005(
            nsd_servers=nsd_servers,
            ds4100_count=ds4100_count,
            sdsc_clients=max(node_counts),
            anl_clients=0,
            ncsa_clients=0,
            store_data=False,
        )
        g = scenario.gfs
        mounts = scenario.mount_clients("sdsc", count, pagepool_bytes=MiB(256))
        w = g.run(
            until=mpiio_collective(
                mounts, "/mpiio", "write",
                region_bytes=region_bytes, transfer_bytes=transfer_bytes,
            )
        )
        for m in mounts:  # cold caches for the read pass
            m.pool.invalidate(scenario.fs.namespace.resolve("/mpiio").ino)
        r = g.run(
            until=mpiio_collective(
                mounts, "/mpiio", "read",
                region_bytes=region_bytes, transfer_bytes=transfer_bytes,
            )
        )
        read_rate = r.extra["rate"]
        write_rate = w.extra["rate"]
        read_rates.append(read_rate)
        write_rates.append(write_rate)
        table.add_row(
            [
                count,
                read_rate / 1e6,
                write_rate / 1e6,
                read_rate / count / 1e6,
                read_rate / write_rate if write_rate else float("nan"),
            ]
        )
    result.table = table
    result.metrics["max_read"] = max(read_rates)
    result.metrics["max_write"] = max(write_rates)
    result.metrics["rw_gap_at_max"] = (
        read_rates[-1] / write_rates[-1] if write_rates[-1] else float("nan")
    )
    result.metrics["read_scaling_4x"] = (
        read_rates[min(2, len(read_rates) - 1)] / read_rates[0]
    )
    result.notes = (
        f"{nsd_servers} NSD servers (GbE each), {ds4100_count} DS4100 bricks; "
        "sweep re-runs on a fresh scenario per point"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_fig11()))
