"""Tests for trace-driven replay."""

import pytest

from repro.workloads.replay import TraceOp, TraceReplay, parse_trace

from tests.core.testbed import mounted, small_gfs


def bed():
    g, cluster, fs, _ = small_gfs()
    m = mounted(g, cluster, node="c0")
    return g, fs, m


SAMPLE = """
# a small app
0.0   open   /a.dat  -  -
0.0   write  /a.dat  0  4096
0.5   read   /a.dat  0  1024
1.0   fsync  /a.dat  -  -
1.0   close  /a.dat  -  -
"""


class TestParse:
    def test_sample(self):
        ops = parse_trace(SAMPLE.splitlines())
        assert len(ops) == 5
        assert ops[0] == TraceOp(0.0, "open", "/a.dat")
        assert ops[1].length == 4096

    def test_comments_and_blanks_skipped(self):
        ops = parse_trace(["# only a comment", "", "0 open /x - -"])
        assert len(ops) == 1

    def test_field_count_enforced(self):
        with pytest.raises(ValueError, match="5 fields"):
            parse_trace(["0 open /x"])

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown trace op"):
            TraceOp(0, "mmap", "/x")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TraceOp(-1, "open", "/x")


class TestReplay:
    def test_sample_replays(self):
        g, fs, m = bed()
        replay = TraceReplay(m, SAMPLE)
        result = g.run(until=replay.run())
        assert result.ops == 5
        assert result.bytes_written == 4096
        assert result.bytes_read == 1024
        assert fs.namespace.resolve("/a.dat").size == 4096

    def test_timestamps_respected(self):
        g, fs, m = bed()
        replay = TraceReplay(m, SAMPLE)
        result = g.run(until=replay.run())
        assert result.elapsed >= 1.0  # last op stamped at t=1.0

    def test_closed_loop_never_reorders(self):
        # a huge write at t=0 pushes the t=0.001 read later; both complete
        g, fs, m = bed()
        trace = [
            TraceOp(0.0, "open", "/big"),
            TraceOp(0.0, "write", "/big", 0, 8 * fs.block_size),
            TraceOp(0.001, "read", "/big", 0, 1024),
            TraceOp(0.001, "close", "/big"),
        ]
        result = g.run(until=TraceReplay(m, trace).run())
        assert result.bytes_read == 1024

    def test_unopened_file_rejected(self):
        g, fs, m = bed()
        replay = TraceReplay(m, [TraceOp(0, "read", "/ghost", 0, 1)])
        with pytest.raises(ValueError, match="unopened"):
            g.run(until=replay.run())

    def test_forgotten_handles_closed(self):
        g, fs, m = bed()
        trace = [
            TraceOp(0.0, "open", "/leak"),
            TraceOp(0.0, "write", "/leak", 0, 2048),
        ]
        g.run(until=TraceReplay(m, trace).run())
        assert m.pool.total_dirty_blocks == 0  # implicit close flushed

    def test_mkdir_and_unlink(self):
        g, fs, m = bed()
        trace = [
            TraceOp(0.0, "mkdir", "/d"),
            TraceOp(0.0, "open", "/d/f"),
            TraceOp(0.0, "write", "/d/f", 0, 100),
            TraceOp(0.0, "close", "/d/f"),
            TraceOp(0.1, "unlink", "/d/f"),
        ]
        g.run(until=TraceReplay(m, trace).run())
        assert fs.namespace.listdir("/d") == []

    def test_validation(self):
        g, fs, m = bed()
        with pytest.raises(ValueError, match="empty"):
            TraceReplay(m, [])
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceReplay(m, [TraceOp(1, "open", "/x"), TraceOp(0, "close", "/x")])
