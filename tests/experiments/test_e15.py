"""E15 caching gateway: acceptance criteria as executable assertions."""

from repro.experiments.e15_gateway import run_e15_quick, site_floor_s
from repro.util.units import MiB

FULL_CELLS = ("r20_f100_w0", "r20_f100_w25", "r80_f100_w0", "r80_f100_w25")
ALL_CELLS = FULL_CELLS + (
    "r20_f50_w0", "r20_f50_w25", "r80_f50_w0", "r80_f50_w25",
)


class TestE15Acceptance:
    @classmethod
    def setup_class(cls):
        cls.result = run_e15_quick()
        cls.metrics = cls.result.metrics

    def test_warm_reads_within_2x_site_floor(self):
        # The headline: once the working set is cache-resident, per-op
        # latency is the site-local floor — independent of WAN RTT.
        floor = site_floor_s(int(MiB(1)))
        for cell in FULL_CELLS:
            warm = self.metrics[f"{cell}_warm_mean_s"]
            assert warm <= 2.0 * floor, (cell, warm, floor)

    def test_warm_speedup_grows_with_rtt(self):
        # Direct mounts pay the RTT per op; warm gateway reads don't.
        assert (
            self.metrics["r80_f100_w0_warm_speedup"]
            > self.metrics["r20_f100_w0_warm_speedup"]
            > 1.5
        )

    def test_cold_reads_match_direct_mount(self):
        # The cache adds a LAN hop and a media write, never a second
        # WAN round trip: cold streaming stays within 1.5x direct.
        for cell in ALL_CELLS:
            assert self.metrics[f"{cell}_cold_vs_direct"] < 1.5, cell

    def test_small_cache_degrades_not_breaks(self):
        # Half-residency thrashes (low hit ratio) but still reads
        # correctly and never beats the full-residency config.
        assert (
            self.metrics["r80_f50_w0_hit_ratio"]
            < self.metrics["r80_f100_w0_hit_ratio"]
        )
        assert (
            self.metrics["r80_f50_w0_warm_mean_s"]
            > self.metrics["r80_f100_w0_warm_mean_s"]
        )

    def test_no_lost_acked_writes_in_sweep(self):
        for cell in ALL_CELLS:
            assert self.metrics[f"{cell}_lost_acked_writes"] == 0.0, cell
        # the mixed phases did exercise writeback
        assert self.metrics["r20_f100_w25_write_acks"] >= 1.0

    def test_chaos_partition_contract(self):
        # WAN cut mid-workload: every read inside the lease is served
        # (stale-within-lease from cache), writeback keeps acking, and
        # the queue replays at heal with nothing lost.
        assert self.metrics["chaos_partitions"] == 1.0
        assert self.metrics["chaos_heals"] == 1.0
        assert self.metrics["chaos_reads_failed"] == 0.0
        assert self.metrics["chaos_reads_ok"] == 140.0
        assert self.metrics["chaos_stale_hits"] >= 1.0
        assert self.metrics["chaos_lost_acked_writes"] == 0.0
        assert (
            self.metrics["chaos_writes_flushed"]
            == self.metrics["chaos_write_acks"]
            >= 1.0
        )
        assert self.metrics["chaos_dirty_queue_end"] == 0.0

    def test_same_seed_identical_metrics(self):
        again = run_e15_quick()
        assert again.metrics == self.metrics  # bit-identical, not approx
