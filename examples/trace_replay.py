#!/usr/bin/env python
"""Replay a recorded application I/O trace against the Global File System.

Proprietary applications can't ship with a reproduction, but their I/O
*shape* can: record (time, op, path, offset, length) and replay it here.
The trace below is a plausible restart-checkpoint-analyze cycle; swap in
your own file via ``TraceReplay(mount, open("app.trace"))``.

Run:  python examples/trace_replay.py
"""

from repro.core.cluster import Gfs, NsdSpec
from repro.util.units import Gbps, MiB, fmt_rate, fmt_time
from repro.workloads.replay import TraceReplay

TRACE = """
# time  op      path              offset    length
0.0     mkdir   /run7             -         -
0.0     open    /run7/restart.in  -         -
0.0     write   /run7/restart.in  0         16777216
0.2     close   /run7/restart.in  -         -
# the app starts: reads its restart file
1.0     open    /run7/restart.in  -         -
1.0     read    /run7/restart.in  0         16777216
1.5     close   /run7/restart.in  -         -
# compute ... first checkpoint
30.0    open    /run7/ckpt00      -         -
30.0    write   /run7/ckpt00      0         33554432
31.0    fsync   /run7/ckpt00      -         -
31.0    close   /run7/ckpt00      -         -
# compute ... second checkpoint overwrites a region of the first's size
60.0    open    /run7/ckpt01      -         -
60.0    write   /run7/ckpt01      0         33554432
61.0    fsync   /run7/ckpt01      -         -
61.0    close   /run7/ckpt01      -         -
# analysis samples a few slices
62.0    open    /run7/ckpt01      -         -
62.0    read    /run7/ckpt01      1048576   262144
62.1    read    /run7/ckpt01      16777216  262144
62.2    read    /run7/ckpt01      25165824  262144
62.5    close   /run7/ckpt01      -         -
# the first checkpoint is obsolete
63.0    unlink  /run7/ckpt00      -         -
"""


def main():
    gfs = Gfs(seed=1)
    net = gfs.network
    net.add_node("sw", kind="switch")
    for i in range(8):
        net.add_host(f"nsd{i}", "sw", Gbps(1))
    net.add_host("app", "sw", Gbps(1))
    cluster = gfs.add_cluster("site")
    cluster.add_nodes([f"nsd{i}" for i in range(8)] + ["app"])
    cluster.mmcrfs(
        "gpfs0",
        [NsdSpec(server=f"nsd{i}", blocks=2048) for i in range(8)],
        block_size=MiB(1),
    )
    mount = gfs.run(until=cluster.mmmount("gpfs0", "app"))

    replay = TraceReplay(mount, TRACE)
    result = gfs.run(until=replay.run())
    print(f"replayed {result.ops} operations in {fmt_time(result.elapsed)} (sim time)")
    print(f"  wrote {result.bytes_written / 1e6:.0f} MB, "
          f"read {result.bytes_read / 1e6:.1f} MB")
    print(f"  aggregate when active: {fmt_rate(result.bytes_total / result.elapsed)}"
          " (trace pacing included)")
    print(cluster.mmlsfs("gpfs0"))


if __name__ == "__main__":
    main()
