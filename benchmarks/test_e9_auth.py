"""E9 benchmark — §6: multi-cluster auth costs and semantics."""

from repro.experiments.e9_auth import run_e9
from repro.util.units import MB


def test_e9_auth(run_experiment):
    result = run_experiment(run_e9, read_bytes=MB(96))
    # the RSA handshake costs extra WAN round trips over rsh-trust
    assert result.metric("mount_time_AUTHONLY") > result.metric("mount_time_EMPTY")
    # AUTHONLY costs nothing on the data path
    rate_plain = result.metric("read_rate_AUTHONLY")
    assert abs(rate_plain - result.metric("read_rate_EMPTY")) < 0.05 * rate_plain
    # encryption taxes throughput, in cipher-strength order
    assert result.metric("read_rate_AES128") < 0.8 * rate_plain
    assert result.metric("read_rate_AES256") < result.metric("read_rate_AES128")
    assert result.metric("read_rate_3DES") < result.metric("read_rate_AES256")
    # ro/rw grant enforcement
    assert result.metric("rw_on_ro_refused") == 1.0
