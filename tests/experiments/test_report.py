"""Tests for the combined report runner."""

import json

import pytest

from repro.experiments.report import _registry, main, run_trace

ALL_IDS = [f"E{i}" for i in range(1, 18)] + [f"A{i}" for i in range(1, 7)]


class TestRegistry:
    def test_quick_and_full_cover_every_experiment(self):
        assert sorted(_registry(True)) == sorted(ALL_IDS)
        assert sorted(_registry(False)) == sorted(ALL_IDS)

    def test_entries_are_callable(self):
        for label, thunk in _registry(True).values():
            assert callable(thunk) and label


class TestCli:
    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "E99"])

    def test_single_quick_run(self, capsys, tmp_path):
        out = tmp_path / "report.txt"
        rc = main(["--quick", "--only", "A3", "--out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "A3:" in text
        assert "window" in text

    def test_stdout_contains_result(self, capsys):
        main(["--quick", "--only", "A3"])
        captured = capsys.readouterr()
        assert "ablation" in captured.out


class TestProfileJson:
    def test_profile_json_written_per_experiment(self, capsys, tmp_path):
        path = tmp_path / "prof.json"
        rc = main(["--quick", "--only", "A3", "--profile-json", str(path)])
        assert rc == 0
        snap = json.loads(path.read_text())
        # --profile-json implies profiling even without --profile.
        assert "flowengine.recomputes" in snap["A3"]["counters"]
        assert set(snap["A3"]) == {"counters", "timers"}


class TestTraceDir:
    def test_trace_dir_writes_parseable_chrome_trace(self, capsys, tmp_path):
        d = tmp_path / "traces"
        rc = main(["--quick", "--only", "A3", "--trace-dir", str(d)])
        assert rc == 0
        doc = json.loads((d / "A3.trace.json").read_text())
        events = doc["traceEvents"]
        assert events
        assert all({"ph", "name", "pid", "tid"} <= set(e) for e in events)
        # The report section carries the attribution summary.
        assert "bottlenecks:" in capsys.readouterr().out

    def test_tracer_left_disabled_and_empty(self, capsys, tmp_path):
        from repro.sim.trace import TRACE

        main(["--quick", "--only", "A3", "--trace-dir", str(tmp_path)])
        assert not TRACE.enabled
        assert not TRACE.flows and len(TRACE._events) == 0


class TestRunTrace:
    def test_unknown_id_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            run_trace("E99", str(tmp_path / "t.json"), quick=True)

    def test_writes_trace_and_prints_bound_table(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        rc = run_trace("A3", str(out), quick=True)
        assert rc == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "b" and e.get("cat") == "flow"
                   for e in doc["traceEvents"])
        err = capsys.readouterr().err
        assert "distinct bounds" in err
        assert "flow-s" in err
