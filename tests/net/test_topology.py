"""Tests for Network topology and routing."""

import pytest

from repro.net import Link, Network
from repro.net.topology import RoutingError
from repro.util.units import Gbps


def triangle() -> Network:
    net = Network()
    for name in ["a", "b", "c"]:
        net.add_node(name, kind="switch")
    net.add_link("a", "b", Gbps(10), delay=0.010)
    net.add_link("b", "c", Gbps(10), delay=0.010)
    net.add_link("a", "c", Gbps(1), delay=0.030)
    return net


class TestLink:
    def test_usable_rate(self):
        link = Link("a", "b", rate=1000.0, efficiency=0.9)
        assert link.usable_rate == pytest.approx(900.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Link("a", "b", rate=0)
        with pytest.raises(ValueError):
            Link("a", "b", rate=1, delay=-1)
        with pytest.raises(ValueError):
            Link("a", "b", rate=1, efficiency=0)
        with pytest.raises(ValueError):
            Link("a", "b", rate=1, efficiency=1.5)


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_node("x")
        with pytest.raises(ValueError):
            net.add_node("x")

    def test_link_to_unknown_node_rejected(self):
        net = Network()
        net.add_node("x")
        with pytest.raises(RoutingError):
            net.add_link("x", "ghost", Gbps(1))

    def test_duplex_creates_two_links(self):
        net = Network()
        net.add_node("x")
        net.add_node("y")
        fwd, back = net.add_link("x", "y", Gbps(1))
        assert fwd.src == "x" and back.src == "y"
        assert len(net.links) == 2

    def test_simplex(self):
        net = Network()
        net.add_node("x")
        net.add_node("y")
        fwd, back = net.add_link("x", "y", Gbps(1), duplex=False)
        assert back is None
        net.path("x", "y")
        with pytest.raises(RoutingError):
            net.path("y", "x")

    def test_asymmetric_rates(self):
        net = Network()
        net.add_node("x")
        net.add_node("y")
        fwd, back = net.add_link("x", "y", Gbps(10), rate_back=Gbps(1))
        assert back.rate == Gbps(1)

    def test_add_host(self):
        net = Network()
        net.add_node("sw", kind="switch")
        node = net.add_host("h1", "sw", Gbps(1), site="sdsc")
        assert node.site == "sdsc"
        assert net.path("h1", "sw")

    def test_hosts_filter(self):
        net = Network()
        net.add_node("sw", kind="switch")
        net.add_host("h1", "sw", Gbps(1), site="sdsc")
        net.add_host("h2", "sw", Gbps(1), site="ncsa")
        assert [n.name for n in net.hosts("sdsc")] == ["h1"]
        assert len(net.hosts()) == 2

    def test_link_indices_match_capacities(self):
        net = triangle()
        caps = net.link_capacities()
        for link in net.links:
            assert caps[link.index] == link.usable_rate


class TestRouting:
    def test_routes_by_delay(self):
        net = triangle()
        # a->c direct is 30ms; via b is 20ms → prefer via b.
        path = net.path("a", "c")
        assert [l.dst for l in path] == ["b", "c"]

    def test_loopback_empty(self):
        net = triangle()
        assert net.path("a", "a") == []

    def test_no_route_raises(self):
        net = Network()
        net.add_node("island1")
        net.add_node("island2")
        with pytest.raises(RoutingError):
            net.path("island1", "island2")

    def test_unknown_node_raises(self):
        net = triangle()
        with pytest.raises(RoutingError):
            net.path("a", "nowhere")

    def test_path_cache_invalidated_on_new_link(self):
        net = triangle()
        assert len(net.path("a", "c")) == 2
        net.add_link("a", "c", Gbps(10), delay=0.001)
        assert len(net.path("a", "c")) == 1

    def test_one_way_delay_and_rtt(self):
        net = triangle()
        assert net.one_way_delay("a", "c") == pytest.approx(0.020)
        assert net.rtt("a", "c") == pytest.approx(0.040)

    def test_bottleneck_rate(self):
        net = Network()
        for n in "xyz":
            net.add_node(n)
        net.add_link("x", "y", Gbps(10), efficiency=1.0)
        net.add_link("y", "z", Gbps(1), efficiency=1.0)
        assert net.bottleneck_rate("x", "z") == pytest.approx(Gbps(1))
        assert net.bottleneck_rate("x", "x") == float("inf")
