"""Per-NSD physical block allocation.

Each NSD exposes a pool of physical blocks; the filesystem's allocation map
hands them out and reclaims them on truncate/unlink. Free space is tracked
per NSD so ``df``-style accounting and ENOSPC behaviour are exact.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class OutOfSpaceError(OSError):
    """ENOSPC: the target NSD has no free physical blocks."""


class NsdAllocator:
    """Free-list allocator for one NSD's physical blocks."""

    def __init__(self, nsd_id: int, total_blocks: int) -> None:
        if total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        self.nsd_id = nsd_id
        self.total_blocks = total_blocks
        self._next_fresh = 0  # never-used blocks below this are allocated
        self._free: List[int] = []  # recycled blocks
        self.allocated = 0

    def alloc(self) -> int:
        """Allocate one physical block id."""
        if self._free:
            self.allocated += 1
            return self._free.pop()
        if self._next_fresh < self.total_blocks:
            block = self._next_fresh
            self._next_fresh += 1
            self.allocated += 1
            return block
        raise OutOfSpaceError(f"NSD {self.nsd_id} is full ({self.total_blocks} blocks)")

    def free(self, block: int) -> None:
        """Return a physical block to the pool."""
        if not 0 <= block < self._next_fresh:
            raise ValueError(f"block {block} was never allocated on NSD {self.nsd_id}")
        self._free.append(block)
        self.allocated -= 1

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self.allocated


class AllocationMap:
    """All NSD allocators of one filesystem."""

    def __init__(self, blocks_per_nsd: Dict[int, int]) -> None:
        if not blocks_per_nsd:
            raise ValueError("need at least one NSD")
        self._allocators = {
            nsd_id: NsdAllocator(nsd_id, count) for nsd_id, count in blocks_per_nsd.items()
        }

    def alloc_on(self, nsd_id: int) -> int:
        return self._allocator(nsd_id).alloc()

    def alloc_replica_set(self, nsd_ids: "List[int]") -> List[Tuple[int, int]]:
        """Allocate one physical block on each NSD, all-or-nothing.

        Replication must not leave a block half-placed: if any NSD in the
        set is full, every allocation already made is rolled back before
        the ENOSPC propagates.
        """
        placed: List[Tuple[int, int]] = []
        try:
            for nsd_id in nsd_ids:
                placed.append((nsd_id, self.alloc_on(nsd_id)))
        except OutOfSpaceError:
            for nsd_id, phys in placed:
                self.free_on(nsd_id, phys)
            raise
        return placed

    def free_on(self, nsd_id: int, block: int) -> None:
        self._allocator(nsd_id).free(block)

    def _allocator(self, nsd_id: int) -> NsdAllocator:
        try:
            return self._allocators[nsd_id]
        except KeyError:
            raise KeyError(f"unknown NSD id {nsd_id}") from None

    @property
    def total_blocks(self) -> int:
        return sum(a.total_blocks for a in self._allocators.values())

    @property
    def free_blocks(self) -> int:
        return sum(a.free_blocks for a in self._allocators.values())

    @property
    def allocated_blocks(self) -> int:
        return sum(a.allocated for a in self._allocators.values())

    def utilization(self) -> float:
        return self.allocated_blocks / self.total_blocks
