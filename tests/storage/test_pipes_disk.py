"""Tests for Pipe and Disk."""

import pytest

from repro.sim import Simulation
from repro.storage import Disk, DiskSpec, FC_2005, Pipe, SATA_2005
from repro.util.units import GB, MB


class TestPipe:
    def test_service_time(self):
        sim = Simulation()
        pipe = Pipe(sim, rate=MB(100), per_io_latency=0.01)
        assert pipe.service_time(MB(100)) == pytest.approx(1.01)

    def test_serialization(self):
        sim = Simulation()
        pipe = Pipe(sim, rate=MB(100))
        e1 = pipe.transfer(MB(100))
        e2 = pipe.transfer(MB(100))
        sim.run(until=e1)
        assert sim.now == pytest.approx(1.0)
        sim.run(until=e2)
        assert sim.now == pytest.approx(2.0)

    def test_capacity_parallelism(self):
        sim = Simulation()
        pipe = Pipe(sim, rate=MB(100), capacity=2)
        events = [pipe.transfer(MB(100)) for _ in range(2)]
        for e in events:
            sim.run(until=e)
        assert sim.now == pytest.approx(1.0)

    def test_counters(self):
        sim = Simulation()
        pipe = Pipe(sim, rate=MB(100))
        sim.run(until=pipe.transfer(MB(50)))
        assert pipe.bytes_served == MB(50)
        assert pipe.ios_served == 1

    def test_queue_depth(self):
        sim = Simulation()
        pipe = Pipe(sim, rate=MB(1))
        pipe.transfer(MB(10))
        pipe.transfer(MB(10))
        sim.run(until=0.001)
        assert pipe.queue_depth == 1

    def test_validation(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            Pipe(sim, rate=0)
        with pytest.raises(ValueError):
            Pipe(sim, rate=1, per_io_latency=-1)
        pipe = Pipe(sim, rate=1)
        with pytest.raises(ValueError):
            pipe.transfer(-1)


class TestDiskSpec:
    def test_profiles_sane(self):
        assert SATA_2005.capacity == GB(250)
        assert FC_2005.read_rate > SATA_2005.read_rate
        assert FC_2005.seek_time < SATA_2005.seek_time

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskSpec("bad", capacity=0, read_rate=1, write_rate=1, seek_time=0)
        with pytest.raises(ValueError):
            DiskSpec("bad", capacity=1, read_rate=1, write_rate=1, seek_time=-1)


class TestDisk:
    def test_sequential_read_time(self):
        sim = Simulation()
        disk = Disk(sim, SATA_2005)
        evt = disk.io("read", MB(60), sequential=True)
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0)

    def test_random_read_pays_seek(self):
        sim = Simulation()
        disk = Disk(sim, SATA_2005)
        evt = disk.io("read", MB(60), sequential=False)
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0 + SATA_2005.seek_time)

    def test_write_slower_than_read(self):
        sim = Simulation()
        disk = Disk(sim, SATA_2005)
        evt = disk.io("write", MB(55), sequential=True)
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0)

    def test_reads_and_writes_share_actuator(self):
        sim = Simulation()
        disk = Disk(sim, SATA_2005)
        e1 = disk.io("read", MB(60))
        e2 = disk.io("write", MB(55))
        sim.run(until=e2)
        assert sim.now == pytest.approx(2.0)
        assert e1.processed

    def test_byte_accounting(self):
        sim = Simulation()
        disk = Disk(sim, SATA_2005)
        sim.run(until=disk.io("read", MB(10)))
        sim.run(until=disk.io("write", MB(5)))
        assert disk.bytes_read == MB(10)
        assert disk.bytes_written == MB(5)

    def test_bad_kind(self):
        disk = Disk(Simulation(), SATA_2005)
        with pytest.raises(ValueError):
            disk.io("append", 10)
        with pytest.raises(ValueError):
            disk.io("read", -10)
