"""The 2005 production Global File System at SDSC (paper §5, Figs 9–11).

0.5 PB of SATA behind 64 two-way IA64 NSD servers:

* 32 IBM DS4100 bricks, 67 × 250 GB SATA each (32 × 67 × 250 GB = 536 TB
  raw), seven 8+P RAID-5 sets per brick, dual 2 Gb/s controllers;
* each NSD server: one GbE NIC (the 64 Gb/s aggregate of the initial
  build; the §8 plan doubles it to 128 Gb/s) and one FC HBA;
* mounted by the TeraGrid cluster and DataStar at SDSC, all 32 nodes at
  ANL, and nodes at NCSA over the TeraGrid WAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.client import MountedFs
from repro.core.cluster import Cluster, Gfs, NsdSpec
from repro.core.filesystem import Filesystem
from repro.net.tcp import TUNED_2005
from repro.storage.array import StorageArray, make_ds4100
from repro.storage.san import Hba
from repro.topology.teragrid import add_teragrid_backbone
from repro.util.units import Gbps, MiB


@dataclass
class Sdsc2005Scenario:
    gfs: Gfs
    sdsc: Cluster
    fs: Filesystem
    arrays: List[StorageArray]
    #: client node names by site
    clients: Dict[str, List[str]] = field(default_factory=dict)
    remote_clusters: Dict[str, Cluster] = field(default_factory=dict)

    def mount_clients(
        self, site: str, count: int | None = None, **mount_kwargs
    ) -> List[MountedFs]:
        """Mount the filesystem on ``count`` client nodes at ``site``."""
        g = self.gfs
        nodes = self.clients[site]
        if count is not None:
            nodes = nodes[:count]
        mounts = []
        device = "gpfs-wan"
        for node in nodes:
            owner = g.cluster_of_node(node)
            if owner is self.sdsc:
                evt = self.sdsc.mmmount(
                    device, node, tags=("gfs", site), **mount_kwargs
                )
            else:
                cluster = self.remote_clusters[site]
                evt = cluster.mmmount(
                    device + "-remote", node, tags=("gfs", site), **mount_kwargs
                )
            mounts.append(g.run(until=evt))
        return mounts


def build_sdsc2005(
    nsd_servers: int = 64,
    ds4100_count: int = 32,
    sdsc_clients: int = 64,
    anl_clients: int = 32,
    ncsa_clients: int = 8,
    server_nic: float = Gbps(1),
    block_size: int = MiB(1),
    store_data: bool = False,
    with_disks: bool = True,
    seed: int = 0,
    replication=None,
) -> Sdsc2005Scenario:
    """Figs 9–10: the production configuration (parameterized for sweeps)."""
    if nsd_servers < 1 or ds4100_count < 1:
        raise ValueError("need at least one server and one brick")
    g = Gfs(seed=seed, default_tcp=TUNED_2005)
    net = g.network
    add_teragrid_backbone(net, sites=("sdsc", "ncsa", "anl"))
    # SDSC machine-room GbE fabric hangs off the site switch
    net.add_node("sdsc-gbe", site="sdsc", kind="switch")
    net.add_link("sdsc-gbe", "sdsc-sw", Gbps(128), delay=20e-6, efficiency=0.96)

    sdsc = g.add_cluster("sdsc", site="sdsc")

    arrays: List[StorageArray] = []
    luns = []
    if with_disks:
        arrays = [make_ds4100(g.sim, f"ds4100-{i:02d}") for i in range(ds4100_count)]
        luns = [lun for a in arrays for lun in a.luns]

    def _blocks_for(lun) -> int:
        # NSD capacity mirrors the backing LUN (2 TB per 8+P SATA set);
        # diskless test builds get a nominal size.
        if lun is None:
            return 16384
        return int(lun.capacity // block_size)

    specs: List[NsdSpec] = []
    for i in range(nsd_servers):
        name = f"nsd{i:02d}"
        net.add_host(name, "sdsc-gbe", server_nic, site="sdsc")
        sdsc.add_node(name)
        hba = Hba(g.sim) if with_disks else None
        lun = luns[i % len(luns)] if luns else None
        specs.append(NsdSpec(server=name, blocks=_blocks_for(lun), lun=lun, hba=hba))
    # Spread remaining LUNs over the servers (224 LUNs / 64 servers):
    # extra NSDs share the server's NIC and HBA.
    if luns:
        hbas = {spec.server: spec.hba for spec in specs}
        for j in range(nsd_servers, len(luns)):
            server = f"nsd{j % nsd_servers:02d}"
            specs.append(
                NsdSpec(server=server, blocks=_blocks_for(luns[j]), lun=luns[j],
                        hba=hbas[server])
            )
    fs = sdsc.mmcrfs(
        "gpfs-wan",
        specs,
        block_size=block_size,
        store_data=store_data,
        replication=replication,
    )

    clients: Dict[str, List[str]] = {"sdsc": [], "anl": [], "ncsa": []}
    for i in range(sdsc_clients):
        name = f"sdsc-tg{i:03d}"
        net.add_host(name, "sdsc-gbe", Gbps(1), site="sdsc")
        sdsc.add_node(name)
        clients["sdsc"].append(name)

    sdsc.mmauth_update("AUTHONLY")
    sdsc_pub = sdsc.mmauth_genkey()
    remote_clusters: Dict[str, Cluster] = {}
    for site, count in (("anl", anl_clients), ("ncsa", ncsa_clients)):
        cluster = g.add_cluster(site, site=site)
        cluster.mmauth_update("AUTHONLY")
        for i in range(count):
            name = f"{site}-n{i:03d}"
            net.add_host(name, f"{site}-sw", Gbps(1), site=site)
            cluster.add_node(name)
            clients[site].append(name)
        pub = cluster.mmauth_genkey()
        sdsc.mmauth_add(site, pub)
        sdsc.mmauth_grant(site, "gpfs-wan", "rw")
        cluster.mmremotecluster_add("sdsc", sdsc_pub, contact_nodes=["nsd00"])
        cluster.mmremotefs_add("gpfs-wan-remote", "sdsc", "gpfs-wan")
        remote_clusters[site] = cluster

    return Sdsc2005Scenario(
        gfs=g,
        sdsc=sdsc,
        fs=fs,
        arrays=arrays,
        clients=clients,
        remote_clusters=remote_clusters,
    )


def attach_bgl(
    scenario: Sdsc2005Scenario,
    io_nodes: int = 64,
    nic_rate: float = Gbps(2),
    compute_per_io: int = 64,
) -> List[str]:
    """Attach Blue Gene/L "Intimidata" to the production GFS (§5).

    "an exact match to the maximum I/O rate of our IBM Blue Gene/L system,
    Intimidata, which is also planned to use the GFS as its native file
    system". BG/L compute nodes do no direct I/O: every ``compute_per_io``
    compute nodes funnel through one I/O node, which runs the filesystem
    client. With 64 I/O nodes at 2 Gb/s the aggregate is the 128 Gb/s
    design point of §8.
    """
    if io_nodes < 1 or compute_per_io < 1:
        raise ValueError("io_nodes and compute_per_io must be >= 1")
    g = scenario.gfs
    net = g.network
    net.add_node("bgl-fabric", site="sdsc", kind="switch")
    # the BG/L tree network feeding the I/O nodes is not the bottleneck
    net.add_link("bgl-fabric", "sdsc-gbe", Gbps(256), delay=5e-6, efficiency=0.96)
    names = []
    for i in range(io_nodes):
        name = f"bgl-io{i:03d}"
        net.add_host(name, "bgl-fabric", nic_rate, site="sdsc",
                     compute_nodes=compute_per_io)
        scenario.sdsc.add_node(name)
        names.append(name)
    scenario.clients["bgl"] = names
    return names
