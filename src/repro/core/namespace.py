"""Directory tree and path resolution."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.inode import FileType, Inode, InodeTable


class FsError(OSError):
    """Base for filesystem errors."""


class NoSuchFile(FsError):
    pass


class NotADirectory(FsError):
    pass


class IsADirectory(FsError):
    pass


class FileExists(FsError):
    pass


class DirectoryNotEmpty(FsError):
    pass


class PermissionDenied(FsError):
    pass


def split_path(path: str) -> List[str]:
    """Normalize an absolute path into components."""
    if not path.startswith("/"):
        raise ValueError(f"paths must be absolute, got {path!r}")
    return [part for part in path.split("/") if part]


class Namespace:
    """The directory tree of one filesystem."""

    def __init__(self, inodes: InodeTable, now: float = 0.0) -> None:
        self.inodes = inodes
        root = inodes.allocate(FileType.DIRECTORY, now, mode=0o755)
        self.root_ino = root.ino
        self._dirs: Dict[int, Dict[str, int]] = {root.ino: {}}

    # -- resolution ------------------------------------------------------------

    def resolve(self, path: str) -> Inode:
        """Path → inode; raises NoSuchFile / NotADirectory."""
        parts = split_path(path)
        inode = self.inodes.get(self.root_ino)
        for part in parts:
            if not inode.is_dir:
                raise NotADirectory(f"{part!r} reached through a non-directory in {path!r}")
            entries = self._dirs[inode.ino]
            if part not in entries:
                raise NoSuchFile(path)
            inode = self.inodes.get(entries[part])
        return inode

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except FsError:
            return False

    def _resolve_parent(self, path: str) -> Tuple[Inode, str]:
        parts = split_path(path)
        if not parts:
            raise FsError("cannot operate on the root directory")
        parent_path = "/" + "/".join(parts[:-1])
        parent = self.resolve(parent_path)
        if not parent.is_dir:
            raise NotADirectory(parent_path)
        return parent, parts[-1]

    # -- mutation ----------------------------------------------------------------

    def create_file(
        self,
        path: str,
        now: float,
        uid: int = 0,
        gid: int = 0,
        owner_dn: Optional[str] = None,
        mode: int = 0o644,
    ) -> Inode:
        parent, name = self._resolve_parent(path)
        if name in self._dirs[parent.ino]:
            raise FileExists(path)
        inode = self.inodes.allocate(
            FileType.FILE, now, uid=uid, gid=gid, owner_dn=owner_dn, mode=mode
        )
        self._dirs[parent.ino][name] = inode.ino
        parent.mtime = now
        return inode

    def mkdir(
        self,
        path: str,
        now: float,
        uid: int = 0,
        gid: int = 0,
        owner_dn: Optional[str] = None,
        mode: int = 0o755,
    ) -> Inode:
        parent, name = self._resolve_parent(path)
        if name in self._dirs[parent.ino]:
            raise FileExists(path)
        inode = self.inodes.allocate(
            FileType.DIRECTORY, now, uid=uid, gid=gid, owner_dn=owner_dn, mode=mode
        )
        self._dirs[parent.ino][name] = inode.ino
        self._dirs[inode.ino] = {}
        parent.mtime = now
        return inode

    def listdir(self, path: str) -> List[str]:
        inode = self.resolve(path)
        if not inode.is_dir:
            raise NotADirectory(path)
        return sorted(self._dirs[inode.ino])

    def unlink(self, path: str, now: float) -> Inode:
        """Remove a file entry; returns the (now unlinked) inode."""
        parent, name = self._resolve_parent(path)
        entries = self._dirs[parent.ino]
        if name not in entries:
            raise NoSuchFile(path)
        inode = self.inodes.get(entries[name])
        if inode.is_dir:
            raise IsADirectory(path)
        del entries[name]
        inode.nlink -= 1
        parent.mtime = now
        return inode

    def rmdir(self, path: str, now: float) -> None:
        parent, name = self._resolve_parent(path)
        entries = self._dirs[parent.ino]
        if name not in entries:
            raise NoSuchFile(path)
        inode = self.inodes.get(entries[name])
        if not inode.is_dir:
            raise NotADirectory(path)
        if self._dirs[inode.ino]:
            raise DirectoryNotEmpty(path)
        del entries[name]
        del self._dirs[inode.ino]
        self.inodes.drop(inode.ino)
        parent.mtime = now

    def rename(self, old: str, new: str, now: float) -> None:
        src_parent, src_name = self._resolve_parent(old)
        if src_name not in self._dirs[src_parent.ino]:
            raise NoSuchFile(old)
        dst_parent, dst_name = self._resolve_parent(new)
        if dst_name in self._dirs[dst_parent.ino]:
            raise FileExists(new)
        ino = self._dirs[src_parent.ino].pop(src_name)
        self._dirs[dst_parent.ino][dst_name] = ino
        src_parent.mtime = now
        dst_parent.mtime = now

    def walk(self, path: str = "/") -> List[str]:
        """All paths under ``path`` (depth-first, files and dirs)."""
        inode = self.resolve(path)
        if not inode.is_dir:
            return [path]
        out: List[str] = []
        base = path.rstrip("/")
        for name in sorted(self._dirs[inode.ino]):
            child = f"{base}/{name}"
            out.append(child)
            child_ino = self.inodes.get(self._dirs[inode.ino][name])
            if child_ino.is_dir:
                out.extend(self.walk(child))
        return out
