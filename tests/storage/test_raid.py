"""Tests for RaidSet (aggregate and detailed modes)."""

import pytest

from repro.sim import Simulation
from repro.storage import RaidSet, SATA_2005
from repro.util.units import KiB, MB


def make(detailed, **kw):
    sim = Simulation()
    raid = RaidSet(sim, SATA_2005, detailed=detailed, **kw)
    return sim, raid


class TestGeometry:
    def test_capacity_excludes_parity(self):
        _, raid = make(False)
        assert raid.capacity == 8 * SATA_2005.capacity

    def test_full_stripe(self):
        _, raid = make(False, segment=KiB(256))
        assert raid.full_stripe == 8 * KiB(256)

    def test_validation(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            RaidSet(sim, SATA_2005, data_disks=0)
        with pytest.raises(ValueError):
            RaidSet(sim, SATA_2005, segment=0)
        raid = RaidSet(sim, SATA_2005)
        with pytest.raises(ValueError):
            raid.io("bogus", 1)
        with pytest.raises(ValueError):
            raid.io("read", -1)


class TestRates:
    def test_read_rate_is_data_disks_times_disk(self):
        _, raid = make(False)
        assert raid.read_rate() == 8 * SATA_2005.read_rate

    def test_full_stripe_write_pays_parity_share(self):
        _, raid = make(False)
        full = raid.write_rate(raid.full_stripe)
        assert full == pytest.approx(8 * SATA_2005.write_rate * 8 / 9)

    def test_partial_stripe_write_half_rate(self):
        _, raid = make(False)
        full = raid.write_rate(raid.full_stripe)
        partial = raid.write_rate(raid.full_stripe // 2)
        assert partial == pytest.approx(full / 2)

    def test_raid0_no_parity_penalty(self):
        sim = Simulation()
        raid = RaidSet(sim, SATA_2005, parity_disks=0)
        assert raid.write_rate(1) == 8 * SATA_2005.write_rate


class TestAggregateIo:
    def test_read_time(self):
        sim, raid = make(False)
        evt = raid.io("read", 8 * MB(60))  # 1s at 8 disks x 60 MB/s
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0)

    def test_write_slower_than_read(self):
        sim, raid = make(False)
        nbytes = 8 * MB(55)
        evt = raid.io("write", nbytes)
        sim.run(until=evt)
        assert sim.now == pytest.approx(nbytes / raid.write_rate(nbytes))

    def test_random_io_pays_seek(self):
        sim, raid = make(False)
        evt = raid.io("read", MB(8), sequential=False)
        sim.run(until=evt)
        assert sim.now == pytest.approx(MB(8) / raid.read_rate() + SATA_2005.seek_time)

    def test_byte_accounting(self):
        sim, raid = make(False)
        sim.run(until=raid.io("read", MB(1)))
        sim.run(until=raid.io("write", MB(2)))
        assert raid.bytes_read == MB(1)
        assert raid.bytes_written == MB(2)


class TestDetailedIo:
    def test_members_created(self):
        _, raid = make(True)
        assert len(raid.disks) == 9

    def test_read_striped_across_data_disks(self):
        sim, raid = make(True)
        evt = raid.io("read", 8 * MB(60))
        sim.run(until=evt)
        # each data disk reads 60 MB at 60 MB/s in parallel
        assert sim.now == pytest.approx(1.0)

    def test_full_stripe_write_engages_parity_disk(self):
        sim, raid = make(True)
        nbytes = raid.full_stripe
        evt = raid.io("write", nbytes)
        sim.run(until=evt)
        parity = raid.disks[8]
        assert parity.bytes_written > 0

    def test_partial_stripe_write_rmw_doubles_member_work(self):
        sim, raid = make(True)
        small = raid.full_stripe // 4
        evt = raid.io("write", small)
        sim.run(until=evt)
        chunk = small / 8
        # RMW: each member serviced 2x the chunk
        assert sim.now == pytest.approx(2 * chunk / SATA_2005.write_rate)

    def test_zero_byte_io_completes(self):
        sim, raid = make(True)
        evt = raid.io("read", 0)
        sim.run(until=evt)
        assert evt.processed

    def test_detailed_vs_aggregate_agree_on_large_reads(self):
        simd, raidd = make(True)
        sima, raida = make(False)
        n = 8 * MB(120)
        ed = raidd.io("read", n)
        ea = raida.io("read", n)
        simd.run(until=ed)
        sima.run(until=ea)
        assert simd.now == pytest.approx(sima.now, rel=1e-6)
