"""One-call wiring of the fault subsystem onto a built filesystem.

:class:`FaultHarness` composes the three pieces — ground-truth
:class:`NodeHealth`, the :class:`DiskLeaseDetector`, and a
:class:`FaultInjector` replaying a :class:`FaultSchedule` — and attaches
them to an ``NsdService`` (plus optional client retry policy and token
managers). Experiments use :func:`attach_faults` so a chaos run differs
from a nominal run by exactly one call::

    harness = attach_faults(
        sim, service, engine=engine, network=net, manager_node="nsd00",
        schedule=FaultSchedule().crash_node(2.0, "nsd01"),
        retry=RetryPolicy(), retry_rng_streams=rngs,
    )
    ...
    harness.stop()
    result.metrics.update(harness.metrics())

With an **empty** schedule the harness is inert on the data path: lease
heartbeats ride the latency-only message service and the retry wrapper
adds only zero-delay event hops, so nominal metrics are unchanged — the
invariance E13's acceptance criteria (and a test) pin down.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.faults.detector import DiskLeaseDetector
from repro.faults.health import NodeHealth
from repro.faults.injector import FaultInjector
from repro.faults.partition import PartitionState
from repro.faults.quorum import QuorumService
from repro.faults.recovery import RecoveryManager
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.sim.kernel import Event, Simulation


class FaultHarness:
    """Health + lease detector + injector, wired and started together."""

    def __init__(
        self,
        sim: Simulation,
        service,
        manager_node: str,
        schedule: Optional[FaultSchedule] = None,
        engine=None,
        network=None,
        lease_duration: float = 1.5,
        renew_interval: Optional[float] = None,
        check_interval: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        retry_rng=None,
        retry_rng_streams=None,
        token_managers: Iterable = (),
        arrays: Dict[str, object] | None = None,
        watch_nodes: Iterable[str] = (),
        gateways: Iterable = (),
        filesystem=None,
        recovery: Optional[bool] = None,
        election_sweep: float = 0.25,
    ) -> None:
        self.sim = sim
        self.service = service
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.health = NodeHealth(sim)
        nodes = list(
            dict.fromkeys(
                [srv.node for srv in service.servers.values()]
                + [b.node for bl in service.backup_servers.values() for b in bl]
                + list(watch_nodes)
            )
        )
        self.detector = DiskLeaseDetector(
            sim,
            service,
            self.health,
            manager_node,
            nodes,
            lease_duration=lease_duration,
            renew_interval=renew_interval,
            check_interval=check_interval,
            token_managers=token_managers,
        )
        # Partition support is created only when the schedule asks for it,
        # so nominal and non-partition chaos runs carry zero extra state.
        self.partition: Optional[PartitionState] = None
        self.quorum: Optional[QuorumService] = None
        if any(a.kind in ("partition", "partition_heal") for a in self.schedule):
            self.partition = PartitionState(sim)
            self.quorum = QuorumService(service, self.partition)
        self.injector = FaultInjector(
            sim,
            self.schedule,
            health=self.health,
            network=network,
            engine=engine,
            arrays=arrays,
            nsds={nsd.name: nsd for nsd in service.nsds.values()},
            partition=self.partition,
        )
        self.retry = retry
        self._retry_rng = retry_rng
        self._retry_rng_streams = retry_rng_streams
        self.token_managers = list(token_managers)
        # Manager failover arms automatically when the schedule kills a
        # manager (or explicitly via recovery=True); unarmed runs carry
        # zero recovery state, so existing metrics stay bit-identical.
        wants_recovery = (
            recovery
            if recovery is not None
            else any(a.kind == "crash_manager" for a in self.schedule)
        )
        self.recovery: Optional[RecoveryManager] = None
        if wants_recovery:
            if filesystem is None:
                raise ValueError(
                    "manager failover (crash_manager / recovery=True) needs "
                    "the filesystem= argument"
                )
            quorum = self.quorum
            if quorum is None:
                quorum = QuorumService(service, self.partition)
            self.recovery = RecoveryManager(
                sim,
                filesystem,
                self.detector,
                self.health,
                quorum,
                election_sweep=election_sweep,
            )
            if filesystem.token_manager not in self.token_managers:
                self.token_managers.append(filesystem.token_manager)
        #: Caching gateways (repro.cache.CacheGateway) riding this
        #: filesystem: a partition schedule wires them for heal-replay.
        self.gateways = list(gateways)
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FaultHarness":
        if self._started:
            raise RuntimeError("harness already started")
        self._started = True
        self.service.attach_health(self.health)
        if self.retry is not None:
            self.service.attach_retry(
                self.retry,
                rng=self._retry_rng,
                rng_streams=self._retry_rng_streams,
            )
        if self.partition is not None:
            self.service.attach_partition(self.partition)
            self.service.messages.attach_partition(self.partition)
            self.detector.quorum = self.quorum
            for gw in self.gateways:
                gw.attach_partition(self.partition)
        for tm in self.token_managers:
            tm.failure_detector = self.detector
            if self.quorum is not None:
                tm.quorum = self.quorum
        if self.recovery is not None:
            self.recovery.tm.health = self.health
            self.detector.watch_manager = True
            self.recovery.start()
        self.detector.start()
        self.injector.start()
        from repro.obs.registry import OBS

        if OBS.enabled:
            from repro.obs.wire import attach_detector

            attach_detector(self.detector)
        return self

    def stop(self) -> None:
        """Tear down the background processes (end of measurement)."""
        self.detector.stop()
        self.injector.stop()
        if self.recovery is not None:
            self.recovery.stop()

    # -- conveniences --------------------------------------------------------

    def declared_dead(self, node: str) -> Event:
        return self.detector.declared_dead(node)

    @property
    def schedule_done(self) -> bool:
        return self.injector.done

    def metrics(self) -> Dict[str, float]:
        out = self.detector.metrics()
        out["failovers"] = float(self.service.failovers)
        out["rpc_retries"] = float(getattr(self.service, "retries", 0))
        out["rpc_timeouts"] = float(getattr(self.service, "rpc_timeouts", 0))
        out["faults_injected"] = float(len(self.injector.log))
        dead_releases = sum(
            getattr(tm, "dead_holder_releases", 0) for tm in self.token_managers
        )
        if self.token_managers:
            out["dead_holder_releases"] = float(dead_releases)
        # Partition/quorum metrics appear only when the schedule used a
        # partition — existing chaos runs (E13) keep an identical key set.
        if self.partition is not None:
            out["partitions"] = float(self.partition.partitions)
            out["partition_heals"] = float(self.partition.heals)
            out["partition_parked_rpcs"] = float(self.service.partition_parked)
            out["partition_parked_msgs"] = float(
                self.service.messages.partition_parked
            )
            out.update(self.quorum.metrics())
            out["quorum_parked_grants"] = float(
                sum(getattr(tm, "quorum_parked_grants", 0) for tm in self.token_managers)
            )
        # Recovery metrics only when manager failover is armed, so every
        # pre-existing chaos run keeps an identical key set.
        if self.recovery is not None:
            out.update(self.recovery.metrics())
            out["manager_downs"] = float(self.service.manager_downs)
        # Gateway replay/conflict metrics only when gateways ride along,
        # so gateway-free chaos runs keep an identical key set.
        if self.gateways:
            out["gateway_write_acks"] = float(
                sum(gw.write_acks for gw in self.gateways)
            )
            out["gateway_writes_flushed"] = float(
                sum(gw.writes_flushed for gw in self.gateways)
            )
            out["gateway_conflicts"] = float(
                sum(gw.conflicts for gw in self.gateways)
            )
            out["gateway_stale_hits"] = float(
                sum(gw.stale_hits for gw in self.gateways)
            )
        return out


def attach_faults(
    sim: Simulation, service, manager_node: str, **kwargs
) -> FaultHarness:
    """Build and start a :class:`FaultHarness` in one call."""
    return FaultHarness(sim, service, manager_node, **kwargs).start()
