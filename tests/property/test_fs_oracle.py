"""Property test: the filesystem vs a flat-byte-array oracle.

Hypothesis drives random sequences of pwrite/pread/truncate/fsync against
one file on a small GFS (real data mode) and against a plain Python
``bytearray``; after every operation the filesystem must agree with the
oracle byte-for-byte. This exercises stripe split math, page-pool merge
logic, read-modify-write, sparse zero-fill, write-behind flushing, and
truncate as one system.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.util.units import KiB

from tests.core.testbed import mounted, run_io, small_gfs

BLOCK = int(KiB(4))
MAX_OFF = 6 * BLOCK  # spans several blocks and both partial/full pieces


op_write = st.tuples(
    st.just("write"),
    st.integers(0, MAX_OFF),
    st.binary(min_size=1, max_size=2 * BLOCK),
)
op_read = st.tuples(
    st.just("read"), st.integers(0, MAX_OFF), st.integers(1, 3 * BLOCK)
)
op_truncate = st.tuples(st.just("truncate"), st.integers(0, MAX_OFF), st.none())
op_fsync = st.tuples(st.just("fsync"), st.none(), st.none())


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=st.lists(st.one_of(op_write, op_read, op_truncate, op_fsync),
                    min_size=1, max_size=12))
def test_fs_matches_oracle(ops):
    g, cluster, fs, _ = small_gfs(
        nsd_servers=3, clients=1, block_size=BLOCK, blocks_per_nsd=256
    )
    m = mounted(g, cluster, node="c0")
    oracle = bytearray()

    def apply(op):
        kind, a, b = op
        handle = yield m.open("/oracle", "r+", create=True)
        if kind == "write":
            yield m.pwrite(handle, a, b)
            if len(oracle) < a:
                oracle.extend(b"\x00" * (a - len(oracle)))
            oracle[a : a + len(b)] = b
        elif kind == "read":
            data = yield m.pread(handle, a, b)
            expect = bytes(oracle[a : a + b])
            assert data == expect, (kind, a, b, len(oracle))
        elif kind == "truncate":
            yield m.truncate(handle, a)
            del oracle[a:]
        elif kind == "fsync":
            yield m.fsync(handle)
        yield m.close(handle)
        # size must always agree
        assert handle.inode.size == len(oracle)

    def driver():
        for op in ops:
            yield g.sim.process(apply(op), name="apply")

    run_io(g, driver())
    # final full-file readback equals the oracle
    def final():
        handle = yield m.open("/oracle", "r")
        data = yield m.read(handle, len(oracle) + 10)
        assert data == bytes(oracle)
        yield m.close(handle)

    run_io(g, final())


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    writes=st.lists(
        st.tuples(st.integers(0, MAX_OFF), st.binary(min_size=1, max_size=BLOCK)),
        min_size=1,
        max_size=6,
    )
)
def test_two_clients_alternating_writes_match_oracle(writes):
    """Writes alternate between two client nodes; token revocation must
    keep both caches coherent with the oracle."""
    g, cluster, fs, _ = small_gfs(
        nsd_servers=3, clients=2, block_size=BLOCK, blocks_per_nsd=256
    )
    mounts = [mounted(g, cluster, node=f"c{i}") for i in range(2)]
    oracle = bytearray()

    def one_write(m, offset, data):
        handle = yield m.open("/shared", "r+", create=True)
        yield m.pwrite(handle, offset, data)
        yield m.close(handle)

    def driver():
        for i, (offset, data) in enumerate(writes):
            m = mounts[i % 2]
            yield g.sim.process(one_write(m, offset, data), name="w")
            if len(oracle) < offset:
                oracle.extend(b"\x00" * (offset - len(oracle)))
            oracle[offset : offset + len(data)] = data
        # both clients must read back the oracle
        for m in mounts:
            handle = yield m.open("/shared", "r")
            got = yield m.read(handle, len(oracle) + 1)
            assert got == bytes(oracle)
            yield m.close(handle)

    run_io(g, driver())
