"""Run every experiment and emit a combined report.

Usage::

    python -m repro.experiments.report            # full-size runs (slow)
    python -m repro.experiments.report --quick    # scaled-down, a few min
    python -m repro.experiments.report --only E1 E8 A3
    python -m repro.experiments.report --out report.txt
    python -m repro.experiments.report --quick --profile   # + solver counters
    python -m repro.experiments.report --quick --profile-json prof.json
    python -m repro.experiments.report --quick --trace-dir traces/

``--profile-json`` writes ``PROFILE.snapshot()`` per experiment as JSON
(machine-readable counterpart of ``--profile``'s text table).
``--trace-dir`` runs every experiment under the flight recorder, writes
``<id>.trace.json`` Chrome traces into the directory, and embeds each
run's bottleneck-attribution summary in its report section.
``--metrics-dir`` runs every experiment with the :data:`repro.obs.OBS`
registry enabled and exports a Prometheus snapshot (``<id>.prom``), the
scrape time series (``<id>.metrics.jsonl``) and phase/SLO metadata
(``<id>.meta.json``) per experiment — the input to
``python -m repro health``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments.harness import ExperimentResult, format_result
from repro.util.units import GB, KiB, MB, MiB


def _registry(quick: bool) -> Dict[str, Tuple[str, Callable[[], ExperimentResult]]]:
    """id → (description, thunk). Quick mode shrinks workloads, not shapes."""
    from repro.experiments.ablations import (
        run_a1_blocksize,
        run_a2_server_scaling,
        run_a3_window,
        run_a4_upgrade_path,
        run_a5_degraded,
        run_a6_loss,
    )
    from repro.experiments.e12_scec import run_e12_scec
    from repro.experiments.e13_chaos import run_e13, run_e13_quick
    from repro.experiments.e14_integrity import run_e14, run_e14_quick
    from repro.experiments.e15_gateway import run_e15, run_e15_quick
    from repro.experiments.e16_failover import run_e16, run_e16_quick
    from repro.experiments.e17_fleet import run_e17, run_e17_quick
    from repro.experiments.e5_anl_remote import run_e5_anl
    from repro.experiments.e6_deisa import run_e6_deisa
    from repro.experiments.e7_staging_vs_gfs import run_e7
    from repro.experiments.e8_latency import run_e8
    from repro.experiments.e9_auth import run_e9
    from repro.experiments.e10_hsm import run_e10
    from repro.experiments.e11_bgl import run_e11_bgl
    from repro.experiments.fig2_sc02 import run_fig2
    from repro.experiments.fig5_sc03 import run_fig5
    from repro.experiments.fig8_sc04 import run_fig8
    from repro.experiments.fig11_scaling import run_fig11

    if quick:
        return {
            "E1": ("Fig 2 SC'02", lambda: run_fig2(total_bytes=GB(4))),
            "E2": ("Fig 5 SC'03", lambda: run_fig5(
                nsd_servers=20, sdsc_viz_nodes=8, ncsa_viz_nodes=2,
                per_node_bytes=MB(600), restart_after=3.0, restart_pause=2.0)),
            "E3": ("Fig 8 SC'04", lambda: run_fig8(
                nsd_servers=21, clients_per_site=12,
                per_client_phase_bytes=MB(96), phases=2)),
            "E4": ("Fig 11 scaling", lambda: run_fig11(
                node_counts=(1, 8, 32), region_bytes=MiB(32),
                nsd_servers=32, ds4100_count=16)),
            "E5": ("ANL remote", lambda: run_e5_anl(anl_nodes=16, per_node_bytes=MB(64))),
            "E6": ("DEISA", lambda: run_e6_deisa(per_pair_bytes=MB(80))),
            "E7": ("staging vs GFS", lambda: run_e7(
                dataset_bytes=GB(2), output_bytes=MB(128),
                compute_seconds=30.0, fractions=(0.02, 1.0), ncsa_clients=4)),
            "E8": ("latency ablation", lambda: run_e8(nbytes=GB(1))),
            "E9": ("auth", lambda: run_e9(read_bytes=MB(48))),
            "E10": ("HSM", lambda: run_e10(files=12, file_bytes=int(MB(24)),
                                           blocks_per_nsd=96)),
            "E11": ("BG/L", lambda: run_e11_bgl(io_nodes=8,
                                                per_io_node_bytes=MB(64),
                                                nsd_servers=32)),
            "E12": ("SCEC capacity", lambda: run_e12_scec(
                ranks=8, scaled_bytes=MB(256), nsd_servers=32,
                ds4100_count=16)),
            "E13": ("chaos soak", run_e13_quick),
            "E14": ("integrity soak", run_e14_quick),
            "E15": ("caching gateway", run_e15_quick),
            "E16": ("manager failover", run_e16_quick),
            "E17": ("fleet scale", run_e17_quick),
            "A1": ("block size", lambda: run_a1_blocksize(
                block_sizes=(KiB(256), MiB(1), MiB(4)), read_bytes=MB(96))),
            "A2": ("server scaling", lambda: run_a2_server_scaling(
                server_counts=(8, 16), clients=12, region_bytes=MiB(16))),
            "A3": ("TCP window", lambda: run_a3_window()),
            "A4": ("GbE upgrade", lambda: run_a4_upgrade_path(
                clients=12, nsd_servers=4, region_bytes=MiB(16))),
            "A5": ("degraded/failover", lambda: run_a5_degraded(read_bytes=MB(150))),
            "A6": ("loss sweep", lambda: run_a6_loss(losses=(0.0, 1e-5, 1e-3))),
        }
    return {
        "E1": ("Fig 2 SC'02", run_fig2),
        "E2": ("Fig 5 SC'03", run_fig5),
        "E3": ("Fig 8 SC'04", run_fig8),
        "E4": ("Fig 11 scaling", run_fig11),
        "E5": ("ANL remote", run_e5_anl),
        "E6": ("DEISA", run_e6_deisa),
        "E7": ("staging vs GFS", run_e7),
        "E8": ("latency ablation", run_e8),
        "E9": ("auth", run_e9),
        "E10": ("HSM", run_e10),
        "E11": ("BG/L", run_e11_bgl),
        "E12": ("SCEC capacity", run_e12_scec),
        "E13": ("chaos soak", run_e13),
        "E14": ("integrity soak", run_e14),
        "E15": ("caching gateway", run_e15),
        "E16": ("manager failover", run_e16),
        "E17": ("fleet scale", run_e17),
        "A1": ("block size", run_a1_blocksize),
        "A2": ("server scaling", run_a2_server_scaling),
        "A3": ("TCP window", run_a3_window),
        "A4": ("GbE upgrade", run_a4_upgrade_path),
        "A5": ("degraded/failover", run_a5_degraded),
        "A6": ("loss sweep", run_a6_loss),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down runs (minutes, same shapes)")
    parser.add_argument("--only", nargs="*", metavar="ID",
                        help="run only these experiment ids (e.g. E1 A3)")
    parser.add_argument("--out", metavar="FILE", help="also write to FILE")
    parser.add_argument("--profile", action="store_true",
                        help="collect and print simulator self-profiling "
                             "(kernel events, solver work) per experiment")
    parser.add_argument("--profile-json", metavar="FILE",
                        help="write PROFILE.snapshot() per experiment as "
                             "JSON to FILE (implies profiling)")
    parser.add_argument("--trace-dir", metavar="DIR",
                        help="run under the flight recorder; write "
                             "<id>.trace.json Chrome traces into DIR and "
                             "report per-run bottleneck attribution")
    parser.add_argument("--metrics-dir", metavar="DIR",
                        help="run with the repro.obs telemetry registry "
                             "enabled; write <id>.prom, <id>.metrics.jsonl "
                             "and <id>.meta.json into DIR (readable by "
                             "`python -m repro health`)")
    args = parser.parse_args(argv)

    registry = _registry(args.quick)
    wanted = args.only or list(registry)
    unknown = [e for e in wanted if e not in registry]
    if unknown:
        parser.error(f"unknown experiment ids {unknown}; known: {list(registry)}")

    from repro.sim.profile import PROFILE
    from repro.sim.trace import TRACE

    profiling = args.profile or args.profile_json is not None
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
    if args.metrics_dir:
        os.makedirs(args.metrics_dir, exist_ok=True)

    from repro.obs import OBS, export_metrics_dir

    sections = []
    profile_snapshots: Dict[str, dict] = {}
    for exp_id in wanted:
        label, thunk = registry[exp_id]
        t0 = time.time()
        print(f"[{exp_id}] {label} ...", file=sys.stderr, flush=True)
        if profiling:
            PROFILE.reset()
            PROFILE.enable()
        if args.trace_dir:
            TRACE.enable()
        if args.metrics_dir:
            OBS.reset()
            OBS.enable()
        try:
            result = thunk()
        finally:
            PROFILE.disable()
            TRACE.disable()
            OBS.disable()
        elapsed = time.time() - t0
        if profiling:
            profile_snapshots[exp_id] = PROFILE.snapshot()
        if args.trace_dir:
            result.trace_summary = TRACE.metrics_snapshot()
            trace_path = os.path.join(args.trace_dir, f"{exp_id}.trace.json")
            with open(trace_path, "w") as fh:
                json.dump(TRACE.to_chrome(), fh)
            TRACE.reset()
        if args.metrics_dir:
            paths = export_metrics_dir(
                OBS, args.metrics_dir, exp_id, meta=result.obs or {}
            )
            OBS.reset()
            print(f"[{exp_id}] metrics -> {paths['prom']}",
                  file=sys.stderr, flush=True)
        section = format_result(result) + f"\n({elapsed:.1f}s wall)"
        if args.profile:
            section += "\n" + PROFILE.report()
        sections.append(section)

    report = ("\n\n" + "=" * 72 + "\n\n").join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        print(f"\nwritten to {args.out}", file=sys.stderr)
    if args.profile_json:
        with open(args.profile_json, "w") as fh:
            json.dump(profile_snapshots, fh, indent=2, sort_keys=True)
        print(f"profile counters written to {args.profile_json}",
              file=sys.stderr)
    return 0


def run_trace(exp_id: str, out: str, quick: bool = False) -> int:
    """``python -m repro trace <exp-id> --out trace.json`` backend.

    Runs one experiment under the flight recorder and writes the Chrome
    trace-event JSON (loadable in Perfetto / ``chrome://tracing``); prints
    the bottleneck-attribution summary to stderr.
    """
    registry = _registry(quick)
    if exp_id not in registry:
        raise SystemExit(
            f"unknown experiment id {exp_id!r}; known: {list(registry)}"
        )
    label, thunk = registry[exp_id]
    print(f"[{exp_id}] {label} (tracing) ...", file=sys.stderr, flush=True)

    from repro.sim.trace import TRACE

    TRACE.enable()
    try:
        result = thunk()
    finally:
        TRACE.disable()
    result.trace_summary = TRACE.metrics_snapshot()
    with open(out, "w") as fh:
        json.dump(TRACE.to_chrome(), fh)
    summary = result.trace_summary
    ev = summary["events"]
    print(
        f"{out}: {len(summary['bounds'])} distinct bounds over "
        f"{summary['flows']['recorded']} flows, "
        f"{ev['buffered']} events ({ev['dropped']} evicted)",
        file=sys.stderr,
    )
    for bound, entry in sorted(
        summary["bounds"].items(), key=lambda kv: -kv[1]["sim_seconds"]
    ):
        print(
            f"  {bound:<32} {entry['flows']:>6} flows "
            f"{entry['sim_seconds']:>10.3f} flow-s",
            file=sys.stderr,
        )
    TRACE.reset()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
