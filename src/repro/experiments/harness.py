"""Experiment result carrier and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.tables import Table
from repro.util.timeseries import TimeSeries


@dataclass
class ExperimentResult:
    """One reproduced figure/table."""

    exp_id: str  # "E1" .. "A3"
    title: str  # e.g. "Fig 2: SC'02 read performance"
    paper_claim: str  # the number/shape the paper reports
    table: Optional[Table] = None
    series: Dict[str, TimeSeries] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: str = ""
    #: ``TRACE.metrics_snapshot()`` when the run was traced (span counts,
    #: bottleneck attribution, per-link saturation); ``None`` otherwise.
    trace_summary: Optional[dict] = None
    #: Telemetry sidecar when the run had the repro.obs registry enabled:
    #: ``{"phases": [...], "slo": [...]}``. Deliberately NOT part of
    #: ``metrics`` — the golden-metrics tests pin that key set, and
    #: telemetry must not change goldens.
    obs: Optional[dict] = None

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"experiment {self.exp_id} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            ) from None


def sparkline(series: TimeSeries, width: int = 60) -> str:
    """Terminal-friendly rendering of a rate trace."""
    if series.empty:
        return "(empty)"
    t0, t1 = series.times[0], series.times[-1]
    if t1 <= t0:
        return "(single sample)"
    grid = [t0 + (t1 - t0) * i / (width - 1) for i in range(width)]
    values = [series.value_at(t) for t in grid]
    peak = max(values) or 1.0
    blocks = " ▁▂▃▄▅▆▇█"
    chars = [blocks[min(8, int(v / peak * 8.999))] for v in values]
    return "".join(chars)


def format_result(result: ExperimentResult) -> str:
    """Render an experiment for the terminal / EXPERIMENTS.md."""
    lines = [
        f"== {result.exp_id}: {result.title} ==",
        f"paper: {result.paper_claim}",
    ]
    if result.metrics:
        for name in sorted(result.metrics):
            lines.append(f"  {name} = {result.metrics[name]:.4g}")
    if result.table is not None:
        lines.append(result.table.render())
    for name, series in result.series.items():
        lines.append(f"  {name}: {sparkline(series)}")
    if result.trace_summary:
        bounds = result.trace_summary.get("bounds") or {}
        if bounds:
            top = sorted(
                bounds.items(), key=lambda kv: -kv[1]["sim_seconds"]
            )[:4]
            lines.append(
                "bottlenecks: "
                + ", ".join(
                    f"{bound} ({entry['flows']} flows, "
                    f"{entry['sim_seconds']:.3g} flow-s)"
                    for bound, entry in top
                )
            )
    if result.obs:
        for slo in result.obs.get("slo") or []:
            burn = slo.get("burn_rate")
            burn_s = f"{burn:.2f}x budget burn" if burn is not None else "zero budget"
            lines.append(
                f"slo {slo['name']}: "
                f"{'BREACHED' if slo['breached'] else 'ok'} "
                f"(compliance {slo['compliance'] * 100:.3f}% "
                f"vs target {slo['target'] * 100:g}%, {burn_s})"
            )
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)
