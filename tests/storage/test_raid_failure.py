"""Tests for RAID degraded mode, rebuild, and hot spares."""

import pytest

from repro.sim import Simulation
from repro.storage import RaidSet, SATA_2005, make_ds4100
from repro.storage.raid import DataLossError, RaidState
from repro.util.units import MB


def make(detailed=False):
    sim = Simulation()
    return sim, RaidSet(sim, SATA_2005, detailed=detailed)


class TestFailure:
    def test_single_failure_degrades(self):
        _, raid = make()
        raid.fail_disk()
        assert raid.state is RaidState.DEGRADED
        assert raid.service_factor == raid.degraded_factor

    def test_second_failure_loses_data(self):
        sim, raid = make()
        raid.fail_disk()
        raid.fail_disk()
        assert raid.state is RaidState.FAILED
        with pytest.raises(DataLossError):
            raid.io("read", MB(1))

    def test_degraded_reads_slower(self):
        sim_h, healthy = make()
        sim_d, degraded = make()
        degraded.fail_disk()
        n = 8 * MB(60)
        sim_h.run(until=healthy.io("read", n))
        sim_d.run(until=degraded.io("read", n))
        assert sim_d.now == pytest.approx(sim_h.now / degraded.degraded_factor)

    def test_degraded_detailed_mode(self):
        sim, raid = make(detailed=True)
        raid.fail_disk()
        evt = raid.io("read", MB(8))
        sim.run(until=evt)
        assert sim.now > 0


class TestRebuild:
    def test_rebuild_duration_and_recovery(self):
        sim, raid = make()
        raid.fail_disk()
        evt = raid.rebuild()
        assert raid.state is RaidState.REBUILDING
        sim.run(until=evt)
        assert raid.state is RaidState.HEALTHY
        # 250 GB at 25 MB/s = 10_000 s (~2.8 h), the Fig 9 exposure window
        assert sim.now == pytest.approx(SATA_2005.capacity / raid.rebuild_rate)

    def test_io_continues_during_rebuild(self):
        sim, raid = make()
        raid.fail_disk()
        raid.rebuild()
        evt = raid.io("read", 8 * MB(60))
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0 / raid.rebuilding_factor)

    def test_rebuild_requires_degraded(self):
        _, raid = make()
        with pytest.raises(ValueError):
            raid.rebuild()

    def test_rebuild_after_data_loss_rejected(self):
        _, raid = make()
        raid.fail_disk()
        raid.fail_disk()
        with pytest.raises(DataLossError):
            raid.rebuild()


class TestHotSpares:
    def test_auto_rebuild_consumes_spare(self):
        sim = Simulation()
        array = make_ds4100(sim, "b0")
        assert array.hot_spares == 4
        evt = array.fail_disk(0)
        assert evt is not None
        assert array.hot_spares == 3
        assert array.luns[0].raid.state is RaidState.REBUILDING
        sim.run(until=evt)
        assert array.luns[0].raid.state is RaidState.HEALTHY

    def test_no_spares_stays_degraded(self):
        sim = Simulation()
        array = make_ds4100(sim, "b0")
        array.hot_spares = 0
        evt = array.fail_disk(0)
        assert evt is None
        assert array.luns[0].raid.state is RaidState.DEGRADED

    def test_spares_exhaust(self):
        sim = Simulation()
        array = make_ds4100(sim, "b0")
        for lun_idx in range(4):
            assert array.fail_disk(lun_idx) is not None
        assert array.hot_spares == 0
        assert array.fail_disk(4) is None
