"""NVO: database-style partial access to a huge catalog.

§1: the National Virtual Observatory dataset is "approximately 50 Terabytes
and is used as input by several applications ... the application may treat
the very large dataset more as a database, not requiring anywhere near the
full amount of data, but instead retrieving individual pieces of very
large files". Queries hit random offsets; a Zipf-ish skew concentrates on
popular sky regions so the client cache sees realistic reuse.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.sim.kernel import Event
from repro.workloads.base import WorkloadResult


class NvoQueryStream:
    """A stream of cutout queries against one catalog file."""

    def __init__(
        self,
        mount,
        catalog_path: str,
        queries: int,
        bytes_per_query: int,
        rng: np.random.Generator,
        think_seconds: float = 0.0,
        zipf_regions: int = 0,
    ) -> None:
        if queries < 1 or bytes_per_query < 1:
            raise ValueError("queries and bytes_per_query must be >= 1")
        self.mount = mount
        self.catalog_path = catalog_path
        self.queries = queries
        self.bytes_per_query = bytes_per_query
        self.rng = rng
        self.think_seconds = think_seconds
        self.zipf_regions = zipf_regions

    def run(self) -> Event:
        return self.mount.sim.process(self._run(), name="nvo")

    def _offsets(self, size: int):
        span = max(1, size - self.bytes_per_query)
        if self.zipf_regions > 0:
            # skewed popularity: region ~ Zipf, offset uniform inside it
            region_size = max(1, size // self.zipf_regions)
            ranks = self.rng.zipf(1.5, size=self.queries)
            regions = (ranks - 1) % self.zipf_regions
            inner = self.rng.integers(0, region_size, size=self.queries)
            offsets = np.minimum(regions * region_size + inner, span)
        else:
            offsets = self.rng.integers(0, span, size=self.queries)
        return [int(o) for o in offsets]

    def _run(self) -> Generator[Event, None, WorkloadResult]:
        sim = self.mount.sim
        t0 = sim.now
        result = WorkloadResult(name="nvo")
        handle = yield self.mount.open(self.catalog_path, "r")
        for offset in self._offsets(handle.inode.size):
            data = yield self.mount.pread(handle, offset, self.bytes_per_query)
            got = len(data) if isinstance(data, (bytes, bytearray)) else self.bytes_per_query
            result.bytes_read += got
            result.ops += 1
            if self.think_seconds:
                yield sim.timeout(self.think_seconds)
        yield self.mount.close(handle)
        result.elapsed = sim.now - t0
        result.extra["cache_hits"] = float(self.mount.pool.hits)
        return result
