"""Tests for the metrics registry, callbacks, scrape rows, and collector."""

import pytest

from repro.obs.collect import Collector
from repro.obs.export import validate_snapshot_row
from repro.obs.metrics import MetricError, counter_delta
from repro.obs.registry import SCHEMA, MetricsRegistry
from repro.sim.kernel import Simulation


class TestRegistration:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_labels_distinguish_children(self):
        reg = MetricsRegistry()
        a = reg.counter("rpc", op="read")
        b = reg.counter("rpc", op="write")
        assert a is not b
        a.inc(3)
        assert b.value == 0.0

    def test_family_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(MetricError, match="already registered as counter"):
            reg.gauge("m")

    def test_kind_collision_caught_across_labels(self):
        # The *family* has one kind, labels or not.
        reg = MetricsRegistry()
        reg.counter("m", op="read")
        with pytest.raises(MetricError):
            reg.histogram("m", op="write")

    def test_duplicate_callback_key_raises(self):
        reg = MetricsRegistry()
        reg.register_callback("depth", lambda: 1.0)
        with pytest.raises(MetricError, match="already registered"):
            reg.register_callback("depth", lambda: 2.0)

    def test_callback_cannot_shadow_stored_metric(self):
        reg = MetricsRegistry()
        reg.gauge("depth")
        with pytest.raises(MetricError):
            reg.register_callback("depth", lambda: 1.0)

    def test_callback_kind_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.register_callback("x", lambda: 1.0, kind="histogram")


class TestScrape:
    def test_row_shape_is_valid(self):
        sim = Simulation()
        reg = MetricsRegistry()
        reg.inc("events", 5)
        reg.set_gauge("depth", 3.0, t=0.0)
        reg.observe("lat", 0.01)
        row = reg.scrape(sim)
        validate_snapshot_row(row)
        assert row["schema"] == SCHEMA
        assert row["counters"]["events"] == 5.0
        assert row["gauges"]["depth"] == 3.0
        assert row["histograms"]["lat"]["count"] == 1

    def test_unset_gauges_and_empty_histograms_omitted(self):
        sim = Simulation()
        reg = MetricsRegistry()
        reg.gauge("never_set")
        reg.histogram("never_observed")
        row = reg.scrape(sim)
        assert "never_set" not in row["gauges"]
        assert "never_observed" not in row["histograms"]

    def test_callbacks_evaluated_at_scrape_time(self):
        sim = Simulation()
        reg = MetricsRegistry()
        state = {"depth": 0}
        reg.register_callback("kernel.depth", lambda: state["depth"])
        reg.register_callback(
            "kernel.events", lambda: state["depth"] * 10, kind="counter"
        )
        state["depth"] = 7
        row = reg.scrape(sim)
        assert row["gauges"]["kernel.depth"] == 7.0
        assert row["counters"]["kernel.events"] == 70.0

    def test_multi_callback_merges_canonical_keys(self):
        sim = Simulation()
        reg = MetricsRegistry()
        reg.register_multi(lambda: {
            "counters": {"flow.bytes{sim=1}": 42},
            "gauges": {"net.link.utilization{link=a->b,sim=1}": 0.5},
        })
        row = reg.scrape(sim)
        assert row["counters"]["flow.bytes{sim=1}"] == 42.0
        assert row["gauges"]["net.link.utilization{link=a->b,sim=1}"] == 0.5

    def test_windowed_counter_reset_semantics(self):
        # A counter reset between scrapes must still yield the correct
        # per-window delta via counter_delta (Prometheus rate() rules).
        sim = Simulation()
        reg = MetricsRegistry()
        c = reg.counter("io")
        c.inc(10)
        r0 = reg.scrape(sim)
        c.reset()
        c.inc(4)
        r1 = reg.scrape(sim)
        assert counter_delta(r0["counters"]["io"], r1["counters"]["io"]) == 4.0
        c.inc(1)
        r2 = reg.scrape(sim)
        assert counter_delta(r1["counters"]["io"], r2["counters"]["io"]) == 1.0

    def test_reset_clears_everything(self):
        sim = Simulation()
        reg = MetricsRegistry()
        reg.inc("c")
        reg.register_callback("cb", lambda: 1.0)
        reg.register_multi(lambda: {})
        reg.scrape(sim)
        reg.reset()
        assert reg.rows == []
        assert reg.last_row() is None
        row = reg.scrape(sim)
        assert row["counters"] == {}
        # The callback slot is free again after a reset.
        reg.register_callback("cb", lambda: 2.0)


class TestCollector:
    def test_scrapes_on_sim_cadence(self):
        sim = Simulation()
        reg = MetricsRegistry()
        reg.enable()
        reg.inc("ticks")
        Collector(sim, reg, interval=0.5).start()

        def run():
            yield sim.timeout(2.0)

        sim.run(until=sim.process(run()))
        # Immediate scrape at t=0, then every 0.5s until the run ends.
        times = [row["t"] for row in reg.rows]
        assert times[0] == 0.0
        assert times == sorted(times)
        assert len(reg.rows) >= 4
        for row in reg.rows:
            validate_snapshot_row(row)

    def test_rows_tagged_with_sim_id(self):
        reg = MetricsRegistry()
        for _ in range(2):
            sim = Simulation()
            reg.scrape(sim)
        assert reg.rows[0]["sim"] != reg.rows[1]["sim"]
