"""Route-class aggregation is an optimization, not an approximation.

The load-bearing claims from the fairshare/flow module docstrings, pinned
bit-for-bit:

* a weight-``w`` solver column gets the same rate as ``w`` separate
  weight-1 columns would, under any topology;
* an aggregated :class:`FlowEngine` and an unaggregated one, driven by
  the same schedule, produce identical per-flow rate series, tag series,
  completion times, and churn counters;
* class join/leave round-trips (weight churn, parking at 0, rejoin)
  leave the solver's rates equal to a fresh build of the final state.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import FlowEngine, Network, TcpModel
from repro.net.fairshare import FairshareState, max_min_rates
from repro.sim import Simulation
from repro.util.units import GB, MB


# -- solver-level properties --------------------------------------------------

link_caps_st = st.lists(st.floats(1e5, 4e9), min_size=1, max_size=6)


@st.composite
def weighted_problem(draw):
    caps = draw(link_caps_st)
    nclasses = draw(st.integers(1, 5))
    links, fcaps, weights = [], [], []
    for _ in range(nclasses):
        path = draw(st.lists(st.integers(0, len(caps) - 1),
                             unique=True, max_size=len(caps)))
        links.append(path)
        if path:
            fcaps.append(draw(st.sampled_from(
                [1e5, 3.7e7, 1e9, float("inf")])))
        else:
            fcaps.append(draw(st.sampled_from([1e5, 3.7e7, 1e9])))
        weights.append(draw(st.integers(1, 23)))
    return caps, links, fcaps, weights


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(problem=weighted_problem())
def test_weighted_solve_equals_expanded(problem):
    """One weight-w column == w weight-1 columns, bit for bit."""
    caps, links, fcaps, weights = problem
    agg = max_min_rates(caps, links, fcaps, weights)
    exp_links = [p for p, w in zip(links, weights) for _ in range(w)]
    exp_caps = [c for c, w in zip(fcaps, weights) for _ in range(w)]
    flat = max_min_rates(caps, exp_links, exp_caps)
    expanded = np.concatenate(
        [np.full(w, r) for r, w in zip(agg, weights)]
    )
    assert expanded.tobytes() == flat.tobytes()


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(problem=weighted_problem(),
       churn=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 23)),
                      max_size=30))
def test_join_leave_roundtrip_equals_fresh_build(problem, churn):
    """Arbitrary weight churn ends bit-equal to a fresh state.

    The churned state passes through intermediate weights (including 0 =
    parked) and re-solves along the way; only the final weights may
    matter.
    """
    caps, links, fcaps, weights = problem
    churned = FairshareState(caps)
    cols = [churned.add_flow(p, c) for p, c in zip(links, fcaps)]
    churned.solve()
    for idx, w in churn:
        churned.set_weight(cols[idx % len(cols)], w)
        churned.solve()
    for col, w in zip(cols, weights):
        churned.set_weight(col, w)
    churned.solve()

    fresh = FairshareState(caps)
    fcols = [fresh.add_flow(p, c, weight=w)
             for p, c, w in zip(links, fcaps, weights)]
    fresh.solve()
    got = [churned.rate_of(c) for c in cols]
    want = [fresh.rate_of(c) for c in fcols]
    assert np.asarray(got).tobytes() == np.asarray(want).tobytes()
    assert churned.link_usage().tobytes() == fresh.link_usage().tobytes()


def test_set_weight_validation():
    state = FairshareState([1e9])
    col = state.add_flow([0], 1e8)
    with pytest.raises(ValueError):
        state.set_weight(col, -1)
    with pytest.raises(ValueError):
        state.set_weight(col, 1.5)
    state.remove_flow(col)
    with pytest.raises(ValueError):
        state.set_weight(col, 2)


def test_parked_column_is_skipped_but_rejoinable():
    state = FairshareState([1e9])
    a = state.add_flow([0], 1e12)
    b = state.add_flow([0], 1e12)
    state.solve()
    assert state.rate_of(a) == state.rate_of(b) == pytest.approx(5e8)
    state.set_weight(b, 0)
    state.solve()
    assert state.rate_of(a) == pytest.approx(1e9)
    assert state.class_stats() == (2, 1)  # column kept, zero members
    state.set_weight(b, 3)
    state.solve()
    assert state.rate_of(a) == state.rate_of(b) == pytest.approx(2.5e8)


# -- engine-level bit identity ------------------------------------------------


def mesh_network(n_hosts, n_sinks, host_rate, trunk_rate):
    """Hosts behind one hub, sinks behind one spine — shared-trunk mesh."""
    net = Network()
    net.add_node("hub")
    net.add_node("spine")
    net.add_link("hub", "spine", trunk_rate, delay=0.002, efficiency=1.0)
    for i in range(n_hosts):
        net.add_host(f"h{i}", "hub", host_rate, nic_delay=0.0005,
                     efficiency=1.0)
    for j in range(n_sinks):
        net.add_host(f"s{j}", "spine", host_rate * 2, nic_delay=0.0005,
                     efficiency=1.0)
    return net


schedule_st = st.lists(
    st.tuples(
        st.integers(0, 3),        # source host
        st.integers(0, 1),        # sink
        st.floats(1e4, 2e8),      # bytes
        st.floats(0.0, 1.5),      # start delay
    ),
    min_size=1,
    max_size=14,
)


def run_schedule(schedule, aggregate):
    """Drive one engine; return every exact per-flow/tag observable."""
    sim = Simulation()
    net = mesh_network(4, 2, MB(100), MB(250))
    engine = FlowEngine(
        sim, net, default_tcp=TcpModel(window=float(GB(1))),
        aggregate=aggregate,
    )
    finishes = []

    def starter(sim, i, src, dst, nbytes, delay):
        yield sim.timeout(delay)
        # Per-flow tag: its tag series IS its exact rate series. The
        # shared tag exercises multi-flow sum association.
        yield engine.transfer(f"h{src}", f"s{dst}", nbytes,
                              tags=(f"flow{i}", "all"))
        finishes.append((i, sim.now))

    for i, (src, dst, nbytes, delay) in enumerate(schedule):
        sim.process(starter(sim, i, src, dst, nbytes, delay))
    sim.run()
    series = {
        tag: (tuple(s.times), tuple(s.values))
        for tag, s in engine._tag_series.items()
    }
    return {
        "finishes": sorted(finishes),
        "series": series,
        "bytes_moved": engine.bytes_moved,
        "rate_changes": engine.rate_changes,
        "recomputes": engine.recomputes,
    }


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedule_st)
def test_engine_agg_vs_unagg_bit_identical(schedule):
    """aggregate=True is bitwise indistinguishable from aggregate=False.

    Exact (==, not approx) on: per-flow rate series, the shared-tag sum
    series, completion times, bytes moved, and the member-level
    rate-change counter.
    """
    agg = run_schedule(schedule, aggregate=True)
    unagg = run_schedule(schedule, aggregate=False)
    assert agg == unagg


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedule_st)
def test_engine_agg_solver_is_smaller(schedule):
    """Aggregation never uses more solver columns than flows exist."""
    sim = Simulation()
    net = mesh_network(4, 2, MB(100), MB(250))
    engine = FlowEngine(sim, net, default_tcp=TcpModel(window=float(GB(1))))
    peak = {"cols": 0, "flows": 0}

    def starter(sim, src, dst, nbytes, delay):
        yield sim.timeout(delay)
        evt = engine.transfer(f"h{src}", f"s{dst}", nbytes)
        peak["cols"] = max(peak["cols"], engine.class_count())
        peak["flows"] = max(peak["flows"], engine.active_count)
        yield evt

    for src, dst, nbytes, delay in schedule:
        sim.process(starter(sim, src, dst, nbytes, delay))
    sim.run()
    assert peak["cols"] <= peak["flows"]
    # 4 hosts x 2 sinks: the class space is bounded by the route space.
    assert peak["cols"] <= 8
