"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` needs bdist_wheel; when that is
unavailable, `python setup.py develop` installs the same editable package.
"""
from setuptools import setup

setup()
