"""Token-manager failover: election, takeover epoch, client-replay rebuild.

GPFS survives the loss of *any* node — including the token/metadata
manager, whose in-memory state dies with it. The documented recovery is
not a replicated log: the new manager **asks the survivors**. Every
client already knows exactly which byte-range tokens it holds, so the
successor rebuilds the token table by having each registered client
replay its held ranges, then resumes granting. This module reproduces
that protocol on top of the fault subsystem:

1. **Detection** — the manager node stops renewing its own disk lease;
   the :class:`~repro.faults.detector.DiskLeaseDetector` (armed with
   ``watch_manager``) declares it dead while suppressing declarations of
   everyone else (their renewals were landing on a corpse, so their
   expiries prove nothing).
2. **Election** — deterministic: the lowest-id live NSD server node that
   holds node quorum becomes the successor. No votes, no randomness —
   every survivor computes the same answer from the same membership
   list, which is how GPFS picks configuration managers too. If no
   candidate qualifies (minority side of a partition), the election
   retries every ``election_sweep`` seconds.
3. **Takeover epoch** — ``TokenManager.begin_takeover`` freezes the
   table: new grant RPCs park at the manager fence, in-flight acquires
   abort with :class:`~repro.core.tokens.ManagerMovedError` at their
   next fence, and shrinks no-op.
4. **Client replay** — the successor round-trips an announcement to
   every live registered client; each reply carries the client's held
   token ranges (its mirror). The union rebuilds ``_held`` exactly, and
   is verified against a ghost snapshot taken at takeover start: rebuilt
   state must equal the ghost minus tokens held by nodes that cannot
   reply. Any difference increments ``rebuild_mismatches`` (0 in every
   healthy run — the property suite pins this).
5. **Re-arm** — the lease detector re-points at the successor and grants
   live nodes fresh leases; ``Filesystem.move_manager`` re-targets
   metadata RPCs and the gateway lease server; leases are conservatively
   invalidated for every inode with a surviving ``rw`` token or written
   during the outage window; finally ``complete_takeover`` bumps the
   epoch and releases parked grants, which redirect to the new node.

Takeover latency (detection → grants flowing again) is bounded by the
election sweep plus the replay fan-out RTT; add the lease duration and
you have the full client-visible outage — the bound E16 asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.tokens import RW, HeldToken
from repro.obs.registry import OBS
from repro.sim.kernel import Interrupt, Process, Simulation
from repro.sim.trace import TRACE

#: Announcement request / replay reply sizes, bytes. The reply carries
#: the client's held-range list — small (ranges, not data) but bigger
#: than a bare ack.
ANNOUNCE_BYTES = 128.0
REPLAY_BYTES = 512.0


def _token_key(token: HeldToken) -> Tuple[str, str, int, int]:
    return (token.holder, token.mode, token.start, token.end)


def _table_keys(held: Dict[int, List[HeldToken]]) -> Dict[int, set]:
    return {ino: {_token_key(t) for t in toks} for ino, toks in held.items() if toks}


class RecoveryManager:
    """Watches the token manager's node and runs takeover when it dies."""

    def __init__(
        self,
        sim: Simulation,
        fs,
        detector,
        health,
        quorum,
        election_sweep: float = 0.25,
    ) -> None:
        if election_sweep <= 0:
            raise ValueError(
                f"election_sweep must be positive, got {election_sweep}"
            )
        self.sim = sim
        self.fs = fs
        self.tm = fs.token_manager
        self.detector = detector
        self.health = health
        self.quorum = quorum
        self.election_sweep = election_sweep
        #: (old node, new node, t_detect, t_complete) per takeover.
        self.takeovers: List[Tuple[str, str, float, float]] = []
        self.elections = 0
        self.election_retries = 0
        self.rebuild_mismatches = 0
        self.rebuilt_tokens = 0
        self.replayed_clients = 0
        self.lease_invalidated_inos = 0
        self._proc: Optional[Process] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RecoveryManager":
        if self._proc is not None:
            raise RuntimeError("recovery manager already started")
        self._proc = self.sim.process(self._run(), name="recovery-manager")
        return self

    def stop(self) -> None:
        if self._proc is not None and not self._proc.triggered:
            self._proc.interrupt("recovery manager stopped")

    # -- the watch/takeover loop ---------------------------------------------

    def _run(self):
        try:
            while True:
                manager = self.tm.node
                yield self.detector.declared_dead(manager)
                if self.health.is_up(manager):
                    # Stale declaration (node already restarted between
                    # the declaration and this wakeup): nothing to do.
                    yield self.sim.timeout(self.election_sweep)
                    continue
                yield from self._take_over(manager)
        except Interrupt:
            return

    def _elect(self, dead: str):
        """Deterministic election: lowest-id live quorum-holding member."""
        while True:
            self.elections += 1
            for candidate in sorted(self.quorum.member_nodes()):
                if candidate == dead:
                    continue
                if self.health.is_up(candidate) and self.quorum.has_quorum(
                    candidate
                ):
                    return candidate
            # No live majority-side candidate right now (e.g. the other
            # servers sit on the minority side of a partition): sweep
            # again — takeover waits, it never gives up.
            self.election_retries += 1
            yield self.sim.timeout(self.election_sweep)

    def _take_over(self, dead: str):
        t_detect = self.sim.now
        t_crash = self.health.crash_time(dead)
        t_crash = t_detect if t_crash is None else t_crash
        successor = yield from self._elect(dead)
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "tokens.takeover.begin", cat="fault.control",
                lane="faults", dead=dead, successor=successor,
            )
        tm = self.tm
        tm.begin_takeover()
        # Ghost snapshot: the table as the cluster last agreed on it.
        # The replay rebuild must reproduce it minus the tokens of nodes
        # that cannot answer — anything else is a recovery bug.
        ghost = {ino: list(toks) for ino, toks in tm._held.items() if toks}
        # Announcement fan-out: successor → every live registered client,
        # each reply carrying that client's held ranges. This (plus the
        # election sweep) is the takeover-latency budget.
        clients = [
            c for c in sorted(tm.registered_clients()) if self.health.is_up(c)
        ]
        rtts = [
            self.fs.messages.round_trip(
                successor, client,
                request_bytes=ANNOUNCE_BYTES, reply_bytes=REPLAY_BYTES,
            )
            for client in clients
        ]
        if rtts:
            yield self.sim.all_of(rtts)
        self.replayed_clients += len(clients)
        rebuilt = tm.rebuild_from_replay(clients)
        self.rebuilt_tokens += sum(len(toks) for toks in rebuilt.values())
        self._verify_rebuild(ghost, rebuilt)
        # Control-plane relocation: metadata RPCs, the control-outage
        # marker set, and the gateway lease server follow the manager.
        self.fs.move_manager(successor)
        self.detector.rearm(successor)
        self._invalidate_leases(rebuilt, t_crash)
        tm.complete_takeover(successor)
        t_done = self.sim.now
        self.takeovers.append((dead, successor, t_detect, t_done))
        if OBS.enabled:
            OBS.observe("tokens.takeover_latency", t_done - t_detect)
            OBS.observe("tokens.takeover_mttr", t_done - t_crash)
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "tokens.takeover.complete", cat="fault.control",
                lane="faults", dead=dead, successor=successor,
                latency=t_done - t_detect,
            )

    # -- verification & lease hygiene ----------------------------------------

    def _verify_rebuild(
        self,
        ghost: Dict[int, List[HeldToken]],
        rebuilt: Dict[int, List[HeldToken]],
    ) -> None:
        """Rebuilt table == ghost minus unreachable holders, conflict-free."""
        expected = {
            ino: [t for t in toks if self.health.is_up(t.holder)]
            for ino, toks in ghost.items()
        }
        if _table_keys(expected) != _table_keys(rebuilt):
            self.rebuild_mismatches += 1
        for toks in rebuilt.values():
            for i, a in enumerate(toks):
                for b in toks[i + 1:]:
                    if a.conflicts_with(b.holder, b.mode, b.start, b.end):
                        self.rebuild_mismatches += 1

    def _invalidate_leases(
        self, rebuilt: Dict[int, List[HeldToken]], t_crash: float
    ) -> None:
        """Replay ``on_grant`` registrations into the gateway lease layer.

        Conservative rule: any inode a survivor still holds ``rw`` on, or
        whose mtime falls inside the outage window, may have changed
        without the (dead) lease server pushing an invalidation — bump
        its version and break live edge leases.
        """
        lease_server = getattr(self.fs, "_gateway_lease_server", None)
        if lease_server is None:
            return
        inos = {
            ino
            for ino, toks in rebuilt.items()
            if any(t.mode == RW for t in toks)
        }
        for ino, inode in self.fs.inodes._inodes.items():
            if inode.mtime >= t_crash:
                inos.add(ino)
        if inos:
            self.lease_invalidated_inos += len(inos)
            lease_server.replay_after_takeover(inos)

    # -- metrics -------------------------------------------------------------

    def takeover_latencies(self) -> List[float]:
        return [done - detect for _, _, detect, done in self.takeovers]

    def metrics(self) -> Dict[str, float]:
        lat = self.takeover_latencies()
        out: Dict[str, float] = {
            "manager_takeovers": float(len(self.takeovers)),
            "manager_elections": float(self.elections),
            "election_retries": float(self.election_retries),
            "rebuild_mismatches": float(self.rebuild_mismatches),
            "rebuilt_tokens": float(self.rebuilt_tokens),
            "replayed_clients": float(self.replayed_clients),
            "lease_invalidated_inos": float(self.lease_invalidated_inos),
            "manager_redirects": float(self.tm.redirects),
        }
        if lat:
            out["takeover_latency_mean"] = sum(lat) / len(lat)
            out["takeover_latency_max"] = max(lat)
        return out
