"""Attach subsystems to the global metrics registry.

Each ``attach_*`` function registers scrape-time callbacks over counters
the subsystem already maintains — attaching changes nothing about how
the simulation runs, it only makes existing state scrapeable. Call sites
(`Gfs.__init__`, ``mmcrfs``, Scrubber/HsmManager constructors) guard
with ``OBS.enabled`` so a disabled registry costs one attribute check.

Naming conventions (the families ``repro health`` rolls up live in
:mod:`repro.obs.health`):

* ``kernel.*{sim=<pid>}`` — event churn, heap depth, timeout pool;
* ``flow.*`` / ``fairshare.*`` — recomputes, completed flows, solves;
* ``net.link.utilization{link=...}`` — per-link used fraction;
* ``nsd.*{fs=...}`` — service counters; RPC latency histograms are
  recorded inline by the service (``nsd.rpc.latency{op=...}``);
* ``scrub.*{fs=...}`` / ``tokens.*{fs=...}`` / ``hsm.*{fs=...}``;
* ``faults.*`` — detections, recoveries (latency histograms inline).
"""

from __future__ import annotations

from repro.obs.metrics import canonical_key
from repro.obs.registry import OBS, _pid


def attach_gfs(gfs, interval: float = None) -> None:
    """Wire one :class:`~repro.core.cluster.Gfs` universe + its collector."""
    sim = gfs.sim
    engine = gfs.engine
    pid = str(_pid(sim))

    def kernel_multi() -> dict:
        # Deliberately NOT exported: kernel.timeout_pool_hits and the pool
        # depth. Recycling is gated on ``sys.getrefcount(t) == 2``, and a
        # timeout caught in a reference cycle stays above that until the
        # cyclic GC happens to run — a process-global, allocation-driven
        # trigger. The counters are faithful but not same-seed
        # deterministic, and exports promise bit-identical artifacts;
        # ``--profile`` still surfaces them as diagnostics.
        return {
            "counters": {
                canonical_key("kernel.events", {"sim": pid}):
                    float(sim._seq),
            },
            "gauges": {
                canonical_key("kernel.queue_depth", {"sim": pid}):
                    float(len(sim._heap) + len(sim._fifo)),
            },
        }

    def engine_multi() -> dict:
        state = engine._state
        sim_l = {"sim": pid}
        counters = {
            canonical_key("flow.bytes_moved", sim_l): engine.bytes_moved,
            canonical_key("flow.completed", sim_l):
                float(engine.completed_flows),
            canonical_key("flow.recomputes", sim_l):
                float(engine.recomputes),
            canonical_key("flow.rate_changes", sim_l):
                float(engine.rate_changes),
            canonical_key("fairshare.solves", sim_l): float(state.solves),
            canonical_key("fairshare.solved_rows", sim_l):
                float(state.solved_rows),
            canonical_key("fairshare.single_flow_solves", sim_l):
                float(state.single_flow_solves),
            canonical_key("flowengine.class_joins", sim_l):
                float(engine.class_joins),
            canonical_key("fairshare.weight_changes", sim_l):
                float(state.weight_changes),
        }
        ncols, nmembers = state.class_stats()
        gauges = {
            canonical_key("flow.active", sim_l): float(engine.active_count),
            canonical_key("flowengine.classes", sim_l):
                float(engine.class_count()),
            canonical_key("fairshare.class_cols", sim_l): float(ncols),
            canonical_key("flowengine.aggregation_ratio", sim_l):
                (nmembers / ncols) if ncols else 1.0,
        }
        for link, frac in engine.link_utilization().items():
            gauges[
                canonical_key("net.link.utilization", {"link": link, "sim": pid})
            ] = frac
        return {"counters": counters, "gauges": gauges}

    OBS.register_multi(kernel_multi)
    OBS.register_multi(engine_multi)

    from repro.obs.collect import Collector

    Collector(sim, OBS, interval).start()


def attach_service(service, fs: str = "") -> None:
    """Wire an :class:`~repro.core.nsd.NsdService`'s counters."""
    labels = {"fs": fs} if fs else {}
    for family, attr in (
        ("nsd.blocks_read", "blocks_read"),
        ("nsd.blocks_written", "blocks_written"),
        ("nsd.failovers", "failovers"),
        ("nsd.retries", "retries"),
        ("nsd.rpc_timeouts", "rpc_timeouts"),
        ("nsd.checksum_failures", "checksum_failures"),
        ("nsd.checksum_verifications", "checksum_verifications"),
        ("nsd.partition_parked", "partition_parked"),
    ):
        OBS.register_callback(
            family,
            (lambda s=service, a=attr: float(getattr(s, a))),
            kind="counter",
            **labels,
        )
    OBS.register_callback(
        "nsd.down_nodes",
        lambda s=service: float(len(s.down_nodes)),
        kind="gauge",
        **labels,
    )
    OBS.register_callback(
        "nsd.inflight_rpcs",
        lambda s=service: float(s.inflight),
        kind="gauge",
        **labels,
    )


def attach_filesystem(fs) -> None:
    """Wire a filesystem's token manager (labels by device name)."""
    tm = fs.token_manager
    labels = {"fs": fs.name}
    for family, attr in (
        ("tokens.grants", "grants"),
        ("tokens.revokes", "revokes"),
        ("tokens.dead_holder_releases", "dead_holder_releases"),
        ("tokens.quorum_parked_grants", "quorum_parked_grants"),
    ):
        OBS.register_callback(
            family,
            (lambda t=tm, a=attr: float(getattr(t, a))),
            kind="counter",
            **labels,
        )


def attach_scrubber(scrubber) -> None:
    labels = {"fs": scrubber.fs.name}
    for family, attr in (
        ("scrub.sweeps", "sweeps"),
        ("scrub.blocks_scanned", "blocks_scanned"),
        ("scrub.rot_found", "rot_found"),
        ("scrub.repairs", "repairs"),
        ("scrub.repair_failures", "repair_failures"),
        ("scrub.bytes_read", "bytes_read"),
    ):
        OBS.register_callback(
            family,
            (lambda s=scrubber, a=attr: float(getattr(s, a))),
            kind="counter",
            **labels,
        )


def attach_hsm(manager) -> None:
    labels = {"fs": manager.fs.name}
    for family, attr in (
        ("hsm.migrated_files", "migrated_files"),
        ("hsm.recalled_files", "recalled_files"),
        ("hsm.migrated_bytes", "migrated_bytes"),
        ("hsm.recalled_bytes", "recalled_bytes"),
    ):
        OBS.register_callback(
            family,
            (lambda m=manager, a=attr: float(getattr(m, a))),
            kind="counter",
            **labels,
        )


def attach_pagepool(mount) -> None:
    """Wire one mount's :class:`~repro.core.pagepool.PagePool`.

    The ``m`` label is the mount's serial within its filesystem, so an
    experiment that remounts the same node (restart scenarios) never
    collides on the registry's duplicate-key check.
    """
    labels = {
        "client": mount.node,
        "fs": mount.fs.name,
        "m": str(len(mount.fs.mounts)),
    }
    pool = mount.pool
    for family, attr in (
        ("client.pagepool.hits", "hits"),
        ("client.pagepool.misses", "misses"),
        ("client.pagepool.evictions", "evictions"),
    ):
        OBS.register_callback(
            family,
            (lambda p=pool, a=attr: float(getattr(p, a))),
            kind="counter",
            **labels,
        )
    for family, attr in (
        ("client.pagepool.used", "used"),
        ("client.pagepool.capacity", "capacity"),
        ("client.pagepool.hit_ratio", "hit_ratio"),
    ):
        OBS.register_callback(
            family,
            (lambda p=pool, a=attr: float(getattr(p, a))),
            kind="gauge",
            **labels,
        )


def attach_gateway(gateway) -> None:
    """Wire a :class:`~repro.cache.gateway.CacheGateway` and its cache.

    Hit/miss/staleness histograms are recorded inline on the gateway's
    read/write paths; the callbacks here expose the running totals and
    derived gauges (hit ratio, origin offload).
    """
    labels = {"gw": gateway.name, "fs": gateway.fs.name}
    cache = gateway.cache
    for family, attr in (
        ("cache.hits", "hits"),
        ("cache.misses", "misses"),
        ("cache.evictions", "evictions"),
        ("cache.inserts", "inserts"),
        ("cache.invalidations", "invalidations"),
    ):
        OBS.register_callback(
            family,
            (lambda c=cache, a=attr: float(getattr(c, a))),
            kind="counter",
            **labels,
        )
    for family, attr in (
        ("gateway.served_bytes", "served_bytes"),
        ("gateway.origin_bytes", "origin_bytes"),
        ("gateway.write_acks", "write_acks"),
        ("gateway.writes_flushed", "writes_flushed"),
        ("gateway.writeback_stalls", "writeback_stalls"),
        ("gateway.lease_renewals", "lease_renewals"),
        ("gateway.lease_breaks", "lease_breaks"),
        ("gateway.conflicts", "conflicts"),
    ):
        OBS.register_callback(
            family,
            (lambda g=gateway, a=attr: float(getattr(g, a))),
            kind="counter",
            **labels,
        )
    OBS.register_callback(
        "cache.hit_ratio",
        lambda c=cache: c.hit_ratio,
        kind="gauge",
        **labels,
    )
    OBS.register_callback(
        "cache.used_blocks",
        lambda c=cache: float(c.used_blocks),
        kind="gauge",
        **labels,
    )
    OBS.register_callback(
        "cache.dirty_blocks",
        lambda c=cache: float(c.dirty_blocks),
        kind="gauge",
        **labels,
    )
    OBS.register_callback(
        "gateway.origin_offload",
        lambda g=gateway: g.origin_offload,
        kind="gauge",
        **labels,
    )
    OBS.register_callback(
        "gateway.dirty_queue",
        lambda g=gateway: float(g.dirty_queue_depth),
        kind="gauge",
        **labels,
    )


def attach_detector(detector) -> None:
    """Wire a :class:`~repro.faults.detector.DiskLeaseDetector`.

    Detection-latency and MTTR histograms are recorded inline by the
    detector at declare/recover time; the callbacks here expose the
    running totals.
    """
    OBS.register_callback(
        "faults.detections",
        lambda d=detector: float(len(d.detections)),
        kind="counter",
    )
    OBS.register_callback(
        "faults.recoveries",
        lambda d=detector: float(len(d.recoveries)),
        kind="counter",
    )
    OBS.register_callback(
        "faults.detected_down",
        lambda d=detector: float(len(d.detected_down)),
        kind="gauge",
    )
