"""Tests for the NSD block allocators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationMap, NsdAllocator, OutOfSpaceError


class TestNsdAllocator:
    def test_alloc_unique(self):
        a = NsdAllocator(0, 10)
        blocks = [a.alloc() for _ in range(10)]
        assert len(set(blocks)) == 10

    def test_enospc(self):
        a = NsdAllocator(0, 2)
        a.alloc()
        a.alloc()
        with pytest.raises(OutOfSpaceError):
            a.alloc()

    def test_free_and_reuse(self):
        a = NsdAllocator(0, 2)
        b0 = a.alloc()
        a.alloc()
        a.free(b0)
        assert a.alloc() == b0

    def test_free_never_allocated(self):
        a = NsdAllocator(0, 10)
        with pytest.raises(ValueError):
            a.free(5)

    def test_counters(self):
        a = NsdAllocator(0, 10)
        a.alloc()
        assert a.allocated == 1
        assert a.free_blocks == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            NsdAllocator(0, 0)


class TestAllocationMap:
    def test_totals(self):
        m = AllocationMap({0: 10, 1: 20})
        assert m.total_blocks == 30
        assert m.free_blocks == 30
        m.alloc_on(0)
        assert m.allocated_blocks == 1
        assert m.utilization() == pytest.approx(1 / 30)

    def test_per_nsd_isolation(self):
        m = AllocationMap({0: 1, 1: 10})
        m.alloc_on(0)
        with pytest.raises(OutOfSpaceError):
            m.alloc_on(0)
        m.alloc_on(1)  # other NSD unaffected

    def test_unknown_nsd(self):
        m = AllocationMap({0: 1})
        with pytest.raises(KeyError):
            m.alloc_on(7)
        with pytest.raises(KeyError):
            m.free_on(7, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AllocationMap({})


@settings(max_examples=100, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_alloc_free_invariants(ops):
    """Random alloc/free sequence: no double allocation, counts consistent."""
    a = NsdAllocator(0, 64)
    live = set()
    for do_alloc in ops:
        if do_alloc and a.free_blocks > 0:
            b = a.alloc()
            assert b not in live
            live.add(b)
        elif live:
            b = live.pop()
            a.free(b)
        assert a.allocated == len(live)
        assert a.free_blocks == 64 - len(live)
