"""SC'03: the first native WAN-GPFS demonstration (paper §3, Figs 4–5).

The central GFS lived in the SDSC booth on the Phoenix show floor: 40
two-processor IA64 nodes, each with one FC HBA and GbE, serving a
pre-release WAN-enabled GPFS through a single SciNet 10 GbE uplink to the
TeraGrid backbone. SDSC wrote Enzo data to the floor and both SDSC (32
IA64 visualization nodes) and NCSA read it back. Peak observed: 8.96 Gb/s
on the 10 GbE; >1 GB/s sustained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.client import MountedFs
from repro.core.cluster import Cluster, Gfs, NsdSpec
from repro.core.filesystem import Filesystem
from repro.net.tcp import TUNED_2005
from repro.storage.array import make_fastt600
from repro.storage.san import Hba
from repro.topology.teragrid import add_teragrid_backbone
from repro.util.units import Gbps, MiB

#: one-way show floor → TeraGrid LA hub delay (Phoenix)
FLOOR_DELAY = 0.004


@dataclass
class Sc03Scenario:
    gfs: Gfs
    floor: Cluster
    sdsc: Cluster
    ncsa: Cluster
    fs: Filesystem
    sdsc_mounts: List[MountedFs] = field(default_factory=list)
    ncsa_mounts: List[MountedFs] = field(default_factory=list)
    writer_mount: MountedFs = None


def build_sc03(
    nsd_servers: int = 40,
    sdsc_viz_nodes: int = 32,
    ncsa_viz_nodes: int = 8,
    block_size: int = MiB(1),
    blocks_per_nsd: int = 4096,
    store_data: bool = False,
    with_disks: bool = True,
    seed: int = 0,
) -> Sc03Scenario:
    """The Fig 4 configuration, scaled by the given node counts."""
    g = Gfs(seed=seed, default_tcp=TUNED_2005)
    net = g.network
    add_teragrid_backbone(net, sites=("sdsc", "ncsa"))
    # the show floor: one switch, one 10 GbE SciNet uplink to the LA hub
    net.add_node("floor-sw", site="floor", kind="switch")
    net.add_link("floor-sw", "la-hub", Gbps(10), delay=FLOOR_DELAY, efficiency=0.94)

    floor = g.add_cluster("floor", site="floor")
    specs = []
    for i in range(nsd_servers):
        name = f"flr-nsd{i:02d}"
        net.add_host(name, "floor-sw", Gbps(1), site="floor")
        floor.add_node(name)
        lun = None
        hba = None
        if with_disks:
            array = make_fastt600(g.sim, f"flr-st{i:02d}")
            lun = array.luns[0]
            hba = Hba(g.sim)
        specs.append(
            NsdSpec(server=name, blocks=blocks_per_nsd, lun=lun, hba=hba)
        )
    fs = floor.mmcrfs("gpfs-sc03", specs, block_size=block_size, store_data=store_data)

    sdsc = g.add_cluster("sdsc", site="sdsc")
    sdsc_nodes = []
    for i in range(sdsc_viz_nodes):
        name = f"sdsc-viz{i:02d}"
        net.add_host(name, "sdsc-sw", Gbps(1), site="sdsc")
        sdsc.add_node(name)
        sdsc_nodes.append(name)
    # the DataStar writer that copies Enzo output to the floor
    net.add_host("sdsc-datastar", "sdsc-sw", Gbps(10), site="sdsc")
    sdsc.add_node("sdsc-datastar")

    ncsa = g.add_cluster("ncsa", site="ncsa")
    ncsa_nodes = []
    for i in range(ncsa_viz_nodes):
        name = f"ncsa-viz{i:02d}"
        net.add_host(name, "ncsa-sw", Gbps(1), site="ncsa")
        ncsa.add_node(name)
        ncsa_nodes.append(name)

    # pre-release software: the multi-cluster auth of GPFS 2.3 GA did not
    # exist yet — EMPTY cipher, rsh-style trust (§6.2's starting point)
    floor_pub = floor.mmauth_genkey()
    for importer in (sdsc, ncsa):
        pub = importer.mmauth_genkey()
        floor.mmauth_add(importer.name, pub)
        floor.mmauth_grant(importer.name, "gpfs-sc03", "rw")
        importer.mmremotecluster_add("floor", floor_pub, contact_nodes=[specs[0].server])
        importer.mmremotefs_add("gpfs-sc03", "floor", "gpfs-sc03")

    scenario = Sc03Scenario(gfs=g, floor=floor, sdsc=sdsc, ncsa=ncsa, fs=fs)
    scenario.writer_mount = g.run(
        until=sdsc.mmmount("gpfs-sc03", "sdsc-datastar",
                           tags=("sc03", "sdsc-write"), pagepool_bytes=MiB(512))
    )
    # Read-ahead depth scales with the bandwidth-delay product, as GPFS's
    # prefetch threads do: a GbE client needs RTT * rate / block_size blocks
    # in flight to stay line-rate over the WAN.
    for name in sdsc_nodes:
        scenario.sdsc_mounts.append(
            g.run(until=sdsc.mmmount("gpfs-sc03", name, tags=("sc03", "sdsc-read"),
                                     readahead=12))
        )
    for name in ncsa_nodes:
        scenario.ncsa_mounts.append(
            g.run(until=ncsa.mmmount("gpfs-sc03", name, tags=("sc03", "ncsa-read"),
                                     readahead=24))
        )
    return scenario
