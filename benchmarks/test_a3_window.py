"""A3 benchmark — ablation: TCP window vs rate at the SC'02 RTT."""

import pytest

from repro.experiments.ablations import run_a3_window
from repro.util.units import Gbps, KiB


def test_a3_window(run_experiment):
    result = run_experiment(run_a3_window)
    # small windows: rate ~= window / RTT (the 2005 default-stack problem)
    assert result.metric("single_64k") == pytest.approx(
        KiB(64) / 0.080, rel=0.1
    )
    # windows scale single-stream rate linearly until the link binds
    assert result.metric("single_1024k") == pytest.approx(
        16 * result.metric("single_64k"), rel=0.1
    )
    # 32 streams multiply the per-window rate ~32x below saturation...
    assert result.metric("parallel32_256k") > 25 * result.metric("single_256k")
    # ...and reach line rate once windows hit a few MiB
    assert result.metric("parallel32_4096k") > Gbps(9)
