"""Visualization readers: streaming, network-limited, restartable.

The SC'03/'04 demonstrations visualized Enzo output at SDSC and NCSA; the
Fig 5 trace shows a characteristic dip where "the visualization application
terminat[ed] normally as it ran out of data and was restarted". ``VizReader``
reproduces that: stream a file, optionally exit at a given simulation time
and restart after a pause.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.kernel import Event
from repro.workloads.base import WorkloadResult


class VizReader:
    """Streams a file as fast as the path allows."""

    def __init__(
        self,
        mount,
        path: str,
        chunk: int = 0,
        restart_at: Optional[float] = None,
        restart_pause: float = 10.0,
        passes: int = 1,
    ) -> None:
        if passes < 1:
            raise ValueError("passes must be >= 1")
        self.mount = mount
        self.path = path
        self.chunk = chunk or mount.fs.block_size * 2
        self.restart_at = restart_at
        self.restart_pause = restart_pause
        self.passes = passes

    def run(self) -> Event:
        return self.mount.sim.process(self._run(), name=f"viz:{self.path}")

    def _run(self) -> Generator[Event, None, WorkloadResult]:
        sim = self.mount.sim
        t0 = sim.now
        result = WorkloadResult(name="viz")
        restarted = False
        for _pass in range(self.passes):
            handle = yield self.mount.open(self.path, "r")
            size = handle.inode.size
            pos = 0
            while pos < size:
                if (
                    self.restart_at is not None
                    and not restarted
                    and sim.now >= self.restart_at
                ):
                    # application exits normally and is restarted (Fig 5 dip)
                    restarted = True
                    yield self.mount.close(handle)
                    yield sim.timeout(self.restart_pause)
                    handle = yield self.mount.open(self.path, "r")
                    handle.seek(pos)
                n = min(self.chunk, size - pos)
                data = yield self.mount.pread(handle, pos, n)
                got = len(data) if isinstance(data, (bytes, bytearray)) else n
                result.bytes_read += got
                result.ops += 1
                pos += n
            yield self.mount.close(handle)
            # fresh pass must re-read from the NSDs, not the page pool
            self.mount.pool.invalidate(handle.inode.ino)
        result.elapsed = sim.now - t0
        result.extra["restarted"] = 1.0 if restarted else 0.0
        return result
