"""Declarative fault schedules.

A :class:`FaultSchedule` is data, not behaviour: an ordered list of
:class:`FaultAction` records ("at t=2.0 crash nsd01", "at t=5.0 run
chi-hub->anl-sw at 2% capacity"), built with fluent helpers and executed
by :class:`repro.faults.injector.FaultInjector`. Keeping schedules
declarative keeps chaos runs reproducible and serializable — E13 can
print its schedule next to its metrics, and two runs of the same
schedule on the same seed are bit-for-bit identical.

Helpers that describe a fault *window* (``flap_link``, ``brownout_link``,
``loss_burst``) expand into an explicit start action and an explicit
restore action, so the injector stays a dumb, deterministic replayer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping

#: Action kinds the injector knows how to apply.
KINDS = frozenset(
    {
        "node_crash",
        "node_restart",
        "crash_manager",
        "link_down",
        "link_brownout",
        "link_restore",
        "loss_burst",
        "loss_clear",
        "disk_fail",
        "corrupt_block",
        "partition",
        "partition_heal",
    }
)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: when, what, to whom, with what parameters."""

    at: float
    kind: str
    target: str
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at}")
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {sorted(KINDS)}"
            )
        if not self.target:
            raise ValueError("fault target must be non-empty")

    def to_dict(self) -> Dict:
        return {
            "at": self.at,
            "kind": self.kind,
            "target": self.target,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "FaultAction":
        return cls(
            at=float(doc["at"]),
            kind=str(doc["kind"]),
            target=str(doc["target"]),
            params=dict(doc.get("params", {})),
        )


class FaultSchedule:
    """An ordered script of :class:`FaultAction` records.

    Fluent builders return ``self`` so schedules read as one expression::

        FaultSchedule().crash_node(2.0, "nsd01").restart_node(8.0, "nsd01")
    """

    def __init__(self, actions: Iterable[FaultAction] = ()) -> None:
        self._actions: List[FaultAction] = list(actions)

    # -- builders -------------------------------------------------------------

    def add(self, action: FaultAction) -> "FaultSchedule":
        if not isinstance(action, FaultAction):
            raise TypeError(f"expected a FaultAction, got {type(action).__name__}")
        self._actions.append(action)
        return self

    def crash_node(self, at: float, node: str) -> "FaultSchedule":
        """Kill ``node`` at ``at``: it stops answering RPCs and renewing
        its disk lease; only the lease detector may declare it down."""
        return self.add(FaultAction(at, "node_crash", node))

    def restart_node(self, at: float, node: str) -> "FaultSchedule":
        """Bring a crashed ``node`` back; its next lease renewal marks it up."""
        return self.add(FaultAction(at, "node_restart", node))

    def crash_manager(self, at: float, node: str) -> "FaultSchedule":
        """Kill the filesystem/token manager ``node`` at ``at``.

        Ground-truth effect is identical to :meth:`crash_node`; the
        distinct kind records *intent* (a control-plane fault), arms the
        harness's recovery manager, and lets traces and the fuzzer tell
        manager takeovers apart from ordinary NSD failovers. Restart with
        :meth:`restart_node` — the token-manager role does not fail back.
        """
        return self.add(FaultAction(at, "crash_manager", node))

    def flap_link(self, at: float, link: str, down_for: float) -> "FaultSchedule":
        """Take ``link`` administratively down for ``down_for`` seconds."""
        if down_for <= 0:
            raise ValueError(f"down_for must be positive, got {down_for}")
        self.add(FaultAction(at, "link_down", link))
        return self.add(FaultAction(at + down_for, "link_restore", link))

    def brownout_link(
        self,
        at: float,
        link: str,
        factor: float,
        duration: float | None = None,
    ) -> "FaultSchedule":
        """Run ``link`` at ``factor`` of its capacity (optionally restoring
        after ``duration`` seconds)."""
        if not 0 < factor < 1:
            raise ValueError(f"brownout factor must be in (0, 1), got {factor}")
        self.add(FaultAction(at, "link_brownout", link, {"factor": factor}))
        if duration is not None:
            if duration <= 0:
                raise ValueError(f"duration must be positive, got {duration}")
            self.add(FaultAction(at + duration, "link_restore", link))
        return self

    def loss_burst(self, at: float, loss: float, duration: float) -> "FaultSchedule":
        """Raise the engine's default TCP loss rate to ``loss`` for
        ``duration`` seconds (flows *created* during the burst carry the
        lossy Mathis cap — matching how a real burst punishes new
        connections hardest)."""
        if not 0 < loss < 1:
            raise ValueError(f"loss must be in (0, 1), got {loss}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.add(FaultAction(at, "loss_burst", "default", {"loss": loss}))
        return self.add(FaultAction(at + duration, "loss_clear", "default"))

    def fail_disk(self, at: float, array: str, lun: int = 0) -> "FaultSchedule":
        """Kill one drive in ``array``'s ``lun``-th RAID set; a hot spare
        (when available) triggers a background rebuild whose traffic
        steals controller bandwidth."""
        if lun < 0:
            raise ValueError(f"lun index must be non-negative, got {lun}")
        return self.add(FaultAction(at, "disk_fail", array, {"lun": lun}))

    def corrupt_block(
        self,
        at: float,
        nsd: str,
        phys: int | None = None,
        index: int = 0,
    ) -> "FaultSchedule":
        """Silent bit-rot on one replica: flip a stored byte of a block on
        NSD ``nsd`` *without* touching its checksum. ``phys`` pins the
        physical block; omitting it lets the injector pick the
        ``index``-th written block at injection time (still deterministic
        — the write history is seeded)."""
        if phys is not None:
            if phys < 0:
                raise ValueError(f"phys must be non-negative, got {phys}")
            return self.add(FaultAction(at, "corrupt_block", nsd, {"phys": phys}))
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        return self.add(FaultAction(at, "corrupt_block", nsd, {"index": index}))

    def partition(
        self, at: float, minority: Iterable[str], duration: float
    ) -> "FaultSchedule":
        """Cut ``minority`` off from the rest of the network for
        ``duration`` seconds: messages and block RPCs across the cut park
        (TCP stalls, not drops) and resume at heal; the quorum gate keeps
        the minority side from granting tokens or declaring deaths."""
        nodes = [n for n in minority if n]
        if not nodes:
            raise ValueError("partition needs at least one minority node")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        target = ",".join(nodes)
        self.add(FaultAction(at, "partition", target))
        return self.add(FaultAction(at + duration, "partition_heal", target))

    # -- views ----------------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self._actions

    @property
    def end_time(self) -> float:
        """Time of the last scheduled action (0.0 when empty)."""
        return max((a.at for a in self._actions), default=0.0)

    def ordered(self) -> List[FaultAction]:
        """Actions in firing order (time, then insertion order)."""
        return sorted(self._actions, key=lambda a: a.at)

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self) -> Iterator[FaultAction]:
        return iter(self._actions)

    # -- serialization --------------------------------------------------------

    def to_dicts(self) -> List[Dict]:
        return [a.to_dict() for a in self._actions]

    @classmethod
    def from_dicts(cls, docs: Iterable[Mapping]) -> "FaultSchedule":
        return cls(FaultAction.from_dict(d) for d in docs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultSchedule {len(self._actions)} actions>"
