"""E12 — §1's extreme case: a 250 TB SCEC run on the production GFS.

Paper: "the Southern California Earthquake Center (SCEC) simulations may
write close to 250 Terabytes in a single run" — half the production
filesystem's raw capacity. The experiment measures the achievable
aggregate write rate with a scaled run, projects the full 250 TB drain
time, and checks the capacity story: the run only fits if the HSM has been
keeping occupancy down (the §8 "integral part of a HSM" argument).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.topology.sdsc2005 import build_sdsc2005
from repro.util.tables import Table
from repro.util.units import MB, MiB, TB, fmt_bytes, fmt_rate, fmt_time
from repro.workloads.scec import ScecRun

FULL_RUN_BYTES = TB(250)


def run_e12_scec(
    ranks: int = 32,
    scaled_bytes: float = MB(128) * 32,
    nsd_servers: int = 64,
    ds4100_count: int = 32,
    resident_other_data: float = TB(250),
) -> ExperimentResult:
    scenario = build_sdsc2005(
        nsd_servers=nsd_servers,
        ds4100_count=ds4100_count,
        sdsc_clients=ranks,
        anl_clients=0,
        ncsa_clients=0,
        store_data=False,
    )
    g = scenario.gfs
    mounts = scenario.mount_clients("sdsc")
    run = ScecRun(mounts, "/scec", total_bytes=scaled_bytes, chunk=MiB(4))
    res = g.run(until=run.run())
    rate = res.bytes_written / res.elapsed

    fs_capacity = scenario.fs.capacity
    # capacity accounting at full scale (pure arithmetic on measured rate)
    drain_time = FULL_RUN_BYTES / rate
    fits_empty = FULL_RUN_BYTES <= fs_capacity
    free_with_other = fs_capacity - resident_other_data
    fits_with_other = FULL_RUN_BYTES <= free_with_other
    hsm_must_free = max(0.0, FULL_RUN_BYTES - free_with_other)

    result = ExperimentResult(
        exp_id="E12",
        title="§1 extreme case: a 250 TB SCEC run on the 0.5 PB GFS",
        paper_claim="SCEC 'may write close to 250 Terabytes in a single run'",
    )
    result.metrics["write_rate"] = rate
    result.metrics["drain_days"] = drain_time / 86400.0
    result.metrics["fits_empty"] = 1.0 if fits_empty else 0.0
    result.metrics["fits_with_resident_data"] = 1.0 if fits_with_other else 0.0
    result.metrics["hsm_must_free"] = hsm_must_free
    table = Table(["quantity", "value"], title="SCEC capacity planning")
    table.add_row(["measured aggregate write rate", fmt_rate(rate)])
    table.add_row(["full 250 TB drain time", fmt_time(drain_time)])
    table.add_row(["filesystem capacity", fmt_bytes(fs_capacity)])
    table.add_row(["fits on an empty filesystem", "yes" if fits_empty else "NO"])
    table.add_row(
        [f"fits with {fmt_bytes(resident_other_data)} resident",
         "yes" if fits_with_other else "NO"],
    )
    table.add_row(["HSM must migrate first", fmt_bytes(hsm_must_free)])
    result.table = table
    result.notes = (
        f"rate measured with a {fmt_bytes(scaled_bytes)} scaled run over "
        f"{ranks} writer ranks; projection is arithmetic on the measured rate"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e12_scec()))
