"""Mounted filesystem instances and file handles.

A :class:`MountedFs` is what a node gets from ``mmmount``: a POSIX-ish API
whose every operation is a simulation process (returns an event). The data
path implements the GPFS client behaviours the paper's throughput depends
on:

* **striping fan-out** — consecutive blocks live on different NSDs, so one
  streaming file produces flows to many servers at once;
* **write-behind** — writes land in the page pool and are flushed by a
  bounded pool of concurrent flushers (durability via ``fsync``/``close``);
* **read-ahead** — sequential reads prefetch upcoming blocks;
* **token caching** — byte-range tokens are acquired once and kept until a
  conflicting client forces a revoke, which flushes and invalidates the
  affected cache range (close-to-open coherence across sites);
* **transfer coalescing** (opt-in, ``max_coalesce > 1``) — contiguous
  same-server physical block runs from reads/read-ahead and write-behind
  are planned by :func:`plan_transfers` and moved through one
  scatter-gather RPC (``NsdService.read_blocks``/``write_blocks``)
  instead of per-block round trips. Off by default (``max_coalesce=1``)
  the data path is byte-for-byte the legacy per-block code, so calibrated
  experiment shapes are untouched; replicated filesystems always use the
  legacy path (replica fan-out stays per block).

Identity: each mount carries an :class:`Identity` (numeric uid/gid plus
optional GSI DN). Files record both; permission checks prefer the DN when
present (§6's extension).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.filesystem import Filesystem
from repro.core.inode import Inode
from repro.core.namespace import (
    IsADirectory,
    NoSuchFile,
    PermissionDenied,
)
from repro.core.pagepool import PagePool
from repro.core.tokens import RO, RW, ManagerMovedError, TokenClient
from repro.obs.registry import OBS
from repro.sim.kernel import Event, Simulation
from repro.sim.resources import Resource
from repro.util.units import MiB


@dataclass(frozen=True)
class Identity:
    """Who is doing IO: numeric ids plus optional GSI DN."""

    uid: int
    gid: int = 100
    dn: Optional[str] = None
    username: str = ""

    @property
    def is_root(self) -> bool:
        return self.uid == 0


ROOT = Identity(uid=0, gid=0, username="root")

#: Sentinel end offset for whole-file desired token ranges.
WHOLE_FILE = 1 << 62


@dataclass(frozen=True)
class TransferRun:
    """One planned scatter-gather RPC: contiguous physical blocks of one NSD.

    ``phys`` and ``blocks`` are parallel: ``phys[i]`` is the physical block
    backing logical block index ``blocks[i]``.
    """

    nsd_id: int
    phys: Tuple[int, ...]
    blocks: Tuple[int, ...]


def plan_transfers(
    placed: "List[Tuple[int, int, int]]", max_coalesce: int
) -> "List[TransferRun]":
    """Group ``(nsd_id, phys, block_index)`` triples into coalesced runs.

    Triples are sorted by ``(nsd_id, phys)`` so a striped file's blocks
    regroup into per-server sequential runs; a run breaks on an NSD
    change, a physical-address gap, or reaching ``max_coalesce`` blocks.
    Deterministic: equal inputs always yield identical plans.
    """
    runs: List[TransferRun] = []
    if not placed:
        return runs
    chunk: List[Tuple[int, int, int]] = []
    for item in sorted(placed):
        if chunk and (
            item[0] != chunk[-1][0]
            or item[1] != chunk[-1][1] + 1
            or len(chunk) >= max_coalesce
        ):
            runs.append(
                TransferRun(
                    nsd_id=chunk[0][0],
                    phys=tuple(p for _, p, _ in chunk),
                    blocks=tuple(b for _, _, b in chunk),
                )
            )
            chunk = []
        chunk.append(item)
    runs.append(
        TransferRun(
            nsd_id=chunk[0][0],
            phys=tuple(p for _, p, _ in chunk),
            blocks=tuple(b for _, _, b in chunk),
        )
    )
    return runs


class FileHandle:
    """An open file."""

    def __init__(self, mount: "MountedFs", inode: Inode, path: str, mode: str) -> None:
        self.mount = mount
        self.inode = inode
        self.path = path
        self.mode = mode
        self.pos = 0
        self.open = True
        self._last_block = -2  # sequentiality detector for read-ahead
        self._ra_edge = -1  # highest block index already prefetched
        self._token_run = 0  # current token request span (doubles on misses)

    @property
    def readable(self) -> bool:
        return "r" in self.mode or "+" in self.mode

    @property
    def writable(self) -> bool:
        return any(c in self.mode for c in "wa+")

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise ValueError("cannot seek before start of file")
        self.pos = offset


class MountedFs:
    """One node's mount of a :class:`Filesystem`."""

    def __init__(
        self,
        fs: Filesystem,
        node: str,
        identity: Identity = ROOT,
        access: str = "rw",
        pagepool_bytes: int = MiB(256),
        readahead: int = 8,
        writebehind: int = 8,
        max_coalesce: int = 1,
        tags: Tuple[str, ...] = (),
    ) -> None:
        if access not in ("ro", "rw"):
            raise ValueError("access must be 'ro' or 'rw'")
        if readahead < 0 or writebehind < 1:
            raise ValueError("readahead must be >=0 and writebehind >=1")
        if max_coalesce < 1:
            raise ValueError("max_coalesce must be >=1")
        self.fs = fs
        self.sim: Simulation = fs.sim
        self.node = node
        self.identity = identity
        self.access = access
        self.tags = tags
        self.pool = PagePool(int(pagepool_bytes), fs.block_size)
        self.readahead = readahead
        self.max_coalesce = max_coalesce
        self.tokens = TokenClient(fs.token_manager, node, self._revoke_flush)
        self._flush_slots = Resource(self.sim, capacity=writebehind, name=f"{node}-flush")
        self._flushing: Dict[Tuple[int, int], Event] = {}
        self._fetching: Dict[Tuple[int, int], Event] = {}
        # Writeback errors held for fsync: a background flush that fails
        # (server crash, replica quorum lost) records its error here and
        # the next fsync on the inode raises it — POSIX EIO semantics, so
        # "fsync returned" really means "data is on stable storage".
        self._flush_errors: Dict[int, BaseException] = {}
        self.flush_failures = 0
        self.bytes_read = 0
        self.bytes_written = 0
        fs.mounts.append(self)
        # Dirty throttle: block writers once half the pool is dirty.
        self._max_dirty_blocks = max(1, int(pagepool_bytes // fs.block_size // 2))
        if OBS.enabled:
            from repro.obs.wire import attach_pagepool

            attach_pagepool(self)

    # ==================== public API (each returns an event) ====================

    def open(self, path: str, mode: str = "r", create: bool = False) -> Event:
        """Open ``path``; the event's value is a :class:`FileHandle`."""
        if not any(c in mode for c in "rwa+"):
            raise ValueError(f"bad open mode {mode!r}")
        return self.sim.process(self._open(path, mode, create), name=f"open:{path}")

    def read(self, handle: FileHandle, length: int) -> Event:
        """Sequential read at the handle position; value is ``bytes``."""
        evt = self.pread(handle, handle.pos, length)

        def _advance(e: Event) -> None:
            if e.ok:
                handle.pos += len(e.value)

        evt.callbacks.append(_advance)
        return evt

    def pread(self, handle: FileHandle, offset: int, length: int) -> Event:
        """Positional read; value is ``bytes`` (short at EOF)."""
        self._check_handle(handle, want_read=True)
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be non-negative")
        gen = self._pread(handle, offset, length)
        if OBS.enabled:
            gen = self._obs_pread(gen)
        return self.sim.process(gen, name="pread")

    def _obs_pread(self, gen):
        """Telemetry wrapper: client-visible read latency + ok/error counts.

        ``yield from`` adds no events, so the wrapped read is
        event-for-event identical to the bare one.
        """
        t0 = self.sim.now
        try:
            data = yield from gen
        except BaseException:
            OBS.inc("client.read.errors", client=self.node)
            raise
        OBS.observe("client.read.latency", self.sim.now - t0, client=self.node)
        OBS.inc("client.read.ok", client=self.node)
        return data

    def write(self, handle: FileHandle, data: "bytes | int") -> Event:
        """Sequential write at the handle position (write-behind)."""
        length = data if isinstance(data, int) else len(data)
        evt = self.pwrite(handle, handle.pos, data)

        def _advance(e: Event) -> None:
            if e.ok:
                handle.pos += length

        evt.callbacks.append(_advance)
        return evt

    def pwrite(self, handle: FileHandle, offset: int, data: "bytes | int") -> Event:
        """Positional write. ``data`` may be a length in size-only mode.

        Returns when the data is accepted into the page pool (write-behind);
        durability requires :meth:`fsync` or :meth:`close`.
        """
        self._check_handle(handle, want_write=True)
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if isinstance(data, int):
            if data < 0:
                raise ValueError("length must be non-negative")
            if self.fs.store_data:
                raise ValueError("size-only writes need a store_data=False filesystem")
        return self.sim.process(self._pwrite(handle, offset, data), name="pwrite")

    def fsync(self, handle: FileHandle) -> Event:
        """Flush every dirty block of the file to its NSDs."""
        self._check_handle(handle)
        return self.sim.process(self._fsync(handle.inode.ino), name="fsync")

    def close(self, handle: FileHandle) -> Event:
        """fsync + release the handle."""
        self._check_handle(handle)
        return self.sim.process(self._close(handle), name="close")

    # -- metadata ops ------------------------------------------------------------

    def mkdir(self, path: str) -> Event:
        return self.sim.process(self._meta_mkdir(path), name=f"mkdir:{path}")

    def listdir(self, path: str) -> Event:
        return self.sim.process(self._meta_listdir(path), name=f"ls:{path}")

    def stat(self, path: str) -> Event:
        return self.sim.process(self._meta_stat(path), name=f"stat:{path}")

    def unlink(self, path: str) -> Event:
        return self.sim.process(self._meta_unlink(path), name=f"rm:{path}")

    def rename(self, old: str, new: str) -> Event:
        return self.sim.process(self._meta_rename(old, new), name="rename")

    def truncate(self, handle: FileHandle, size: int) -> Event:
        self._check_handle(handle, want_write=True)
        if size < 0:
            raise ValueError("size must be non-negative")
        return self.sim.process(self._truncate(handle, size), name="truncate")

    # ==================== permission & validation helpers ====================

    def _check_handle(self, handle: FileHandle, want_read: bool = False,
                      want_write: bool = False) -> None:
        if handle.mount is not self:
            raise ValueError("handle belongs to a different mount")
        if not handle.open:
            raise ValueError(f"handle for {handle.path!r} is closed")
        if want_read and not handle.readable:
            raise PermissionDenied(f"{handle.path!r} not open for reading")
        if want_write and not handle.writable:
            raise PermissionDenied(f"{handle.path!r} not open for writing")

    def _may(self, inode: Inode, want: str) -> bool:
        ident = self.identity
        if ident.is_root:
            return True
        if inode.owner_matches(ident.uid, ident.dn):
            return True
        bit = {"r": 0o4, "w": 0o2}[want]
        if inode.gid == ident.gid and inode.mode & (bit << 3):
            return True
        return bool(inode.mode & bit)

    def _meta_rtt(self) -> Event:
        """One metadata round trip to the filesystem manager node."""
        return self.fs.messages.round_trip(self.node, self.fs.manager_node,
                                           request_bytes=256, reply_bytes=256)

    #: Token request spans start here and double on every miss, so a
    #: streaming client pays O(log(file size)) token round trips even when
    #: another holder blocks the whole-file desired range.
    TOKEN_RUN_MIN = 8
    TOKEN_RUN_MAX_BLOCKS = 512

    def _ensure_token(self, handle: FileHandle, offset: int, length: int, mode: str) -> Event:
        """Token acquisition with whole-file desired range + run doubling.

        Ranges are rounded outward to block boundaries: the page pool caches
        whole blocks, so a finer-grained token would let a neighbour's write
        to the same block bypass our revoke-and-invalidate and leave a stale
        cached copy (GPFS likewise locks at block granularity).
        """
        bs = self.fs.block_size
        ino = handle.inode.ino
        start = (offset // bs) * bs
        end = ((offset + length + bs - 1) // bs) * bs
        if self.tokens.has(ino, start, end, mode):
            return self.tokens.ensure(ino, start, end, mode)  # cached, instant
        if handle._token_run == 0:
            handle._token_run = self.TOKEN_RUN_MIN * bs
        else:
            handle._token_run = min(
                handle._token_run * 2, self.TOKEN_RUN_MAX_BLOCKS * bs
            )
        span_end = max(end, start + handle._token_run)
        return self.tokens.ensure(
            ino, start, span_end, mode, desired=(0, WHOLE_FILE)
        )

    def _token_fenced(self, handle: FileHandle, offset: int, length: int, mode: str):
        """``yield from`` wrapper: re-issue token RPCs across takeovers.

        :class:`~repro.core.tokens.TokenClient` already redirects a
        bounded number of times; this outer loop keeps an IO alive across
        back-to-back manager moves instead of surfacing a spurious error
        to the application. ``yield from`` adds no events, so the armed
        and unarmed paths are event-for-event identical.
        """
        while True:
            try:
                yield self._ensure_token(handle, offset, length, mode)
            except ManagerMovedError:
                continue
            return

    # ==================== processes ====================

    def _open(self, path, mode, create):
        yield self._meta_rtt()
        ns = self.fs.namespace
        wants_write = any(c in mode for c in "wa+")
        if wants_write and self.access == "ro":
            raise PermissionDenied(
                f"filesystem {self.fs.name!r} is mounted read-only on {self.node}"
            )
        try:
            inode = ns.resolve(path)
        except NoSuchFile:
            if not (create or mode.startswith("w") or mode.startswith("a")):
                raise
            if self.access == "ro":
                raise PermissionDenied(f"read-only mount cannot create {path!r}")
            inode = ns.create_file(
                path,
                self.sim.now,
                uid=self.identity.uid,
                gid=self.identity.gid,
                owner_dn=self.identity.dn,
            )
        if inode.is_dir:
            raise IsADirectory(path)
        if "r" in mode or "+" in mode:
            if not self._may(inode, "r"):
                raise PermissionDenied(f"{path!r}: read permission denied")
        if wants_write:
            if not self._may(inode, "w"):
                raise PermissionDenied(f"{path!r}: write permission denied")
        handle = FileHandle(self, inode, path, mode)
        if mode.startswith("w") and inode.size > 0:
            yield self.sim.process(self._truncate(handle, 0), name="otrunc")
        if mode.startswith("a"):
            handle.pos = inode.size
        inode.atime = self.sim.now
        return handle

    def _pwrite(self, handle: FileHandle, offset: int, data):
        inode = handle.inode
        length = data if isinstance(data, int) else len(data)
        if length == 0:
            yield self.sim.timeout(0.0)
            return 0
        yield from self._token_fenced(handle, offset, length, RW)
        geometry = self.fs.geometry
        for piece in geometry.split(offset, length):
            # Allocate now so ENOSPC surfaces at write() (as POSIX expects),
            # not inside an asynchronous flusher.
            self.fs.ensure_block(inode, piece.block_index)
            # Dirty throttle: wait for flushers before adding more dirty data.
            while self.pool.total_dirty_blocks >= self._max_dirty_blocks:
                self._kick_flushes(inode.ino)
                pending = list(self._flushing.values())
                if not pending:
                    break
                yield self.sim.any_of(pending)
            partial = not (piece.offset == 0 and piece.length == geometry.block_size)
            key = (inode.ino, piece.block_index)
            if partial and key not in self.pool and self.fs.lookup_block(
                inode, piece.block_index
            ) is not None:
                # read-modify-write: fetch the existing block first
                yield self._fetch_block(inode, piece.block_index)
            if isinstance(data, int):
                chunk = None
            else:
                lo, _ = geometry.span_bytes(piece)
                rel = lo - offset
                chunk = data[rel : rel + piece.length]
            self.pool.write(inode.ino, piece.block_index, piece.offset, chunk, piece.length)
        inode.size = max(inode.size, offset + length)
        inode.mtime = self.sim.now
        self.bytes_written += length
        self._kick_flushes(inode.ino)
        return length

    def _pread(self, handle: FileHandle, offset: int, length: int):
        inode = handle.inode
        length = min(length, max(0, inode.size - offset))
        if length == 0:
            yield self.sim.timeout(0.0)
            return b""
        yield from self._token_fenced(handle, offset, length, RO)
        geometry = self.fs.geometry
        pieces = geometry.split(offset, length)
        first_block = pieces[0].block_index
        last_block = pieces[-1].block_index
        # Read-ahead on sequential access: keep the prefetch window issued
        # *before* blocking on this read's own blocks, and anchor it at the
        # per-handle edge so the window stays `readahead` blocks deep no
        # matter how fast the application drains the cache. (Issuing it
        # after the wait collapses the pipeline to the read size and costs
        # a full WAN RTT per read.)
        sequential = first_block in (handle._last_block, handle._last_block + 1)
        ahead: List[int] = []
        if self.readahead and sequential:
            max_block = (max(0, inode.size - 1)) // geometry.block_size
            edge_end = min(last_block + self.readahead, max_block)
            for nxt in range(max(last_block + 1, handle._ra_edge + 1), edge_end + 1):
                if self.pool.peek(inode.ino, nxt) is None:
                    ahead.append(nxt)
            handle._ra_edge = max(handle._ra_edge, edge_end)
        need = [
            piece.block_index
            for piece in pieces
            if self.pool.peek(inode.ino, piece.block_index) is None
        ]
        if self._coalescing:
            # One transfer plan over the read's own misses *and* the
            # read-ahead window: striped neighbours regroup into
            # per-server scatter-gather runs. Await only the read's own
            # blocks; the rest of each run completes asynchronously.
            events = self._fetch_blocks(inode, need + ahead)
            fetches = [events[b] for b in need]
        else:
            for nxt in ahead:
                self._fetch_block(inode, nxt)  # async, not awaited
            # fetch every missing block of the read itself in parallel
            fetches = [self._fetch_block(inode, b) for b in need]
        if fetches:
            yield self.sim.all_of(fetches)
        handle._last_block = last_block
        # assemble; a block may have been evicted between its fetch and this
        # point when the read is larger than the page pool — re-fetch it
        # (bounded, so a broken pool cannot livelock the read)
        out: List["bytes | memoryview | int"] = []
        have_data = False
        for piece in pieces:
            entry = self.pool.get(inode.ino, piece.block_index)
            attempts = 0
            while entry is None and attempts < 8:
                yield self._fetch_block(inode, piece.block_index)
                entry = self.pool.get(inode.ino, piece.block_index)
                attempts += 1
            if entry is None:
                raise MemoryError(
                    f"page pool cannot hold block {piece.block_index} long "
                    "enough to assemble a read (pool too small?)"
                )
            if entry.data is None:
                # Size-only cache entry: defer the zero-fill (int marker)
                # so an all-zeros read collapses to one allocation below.
                out.append(piece.length)
            else:
                # Zero-copy slice: cached blobs are immutable bytes (pool
                # writes replace the object, never mutate it), so a view
                # stays valid across the loop and join() copies each piece
                # exactly once instead of twice.
                have_data = True
                blob = entry.data
                end = piece.offset + piece.length
                piece_data = memoryview(blob)[piece.offset : end]
                if len(piece_data) < piece.length:
                    piece_data = bytes(piece_data) + b"\x00" * (
                        piece.length - len(piece_data)
                    )
                out.append(piece_data)
        inode.atime = self.sim.now
        self.bytes_read += length
        if not have_data:
            # Size-only filesystem: the pieces tile [offset, offset+length)
            # exactly, so this equals the join of their zero blobs.
            return bytes(length)
        return b"".join(
            bytes(part) if type(part) is int else part for part in out
        )

    def _remote_read_event(self, inode: Inode, block_index: int,
                           nsd_id: int, phys: int) -> Event:
        """One block's remote read; subclasses reroute (caching gateway)."""
        if self.fs.replication.active:
            # Replicated path: cheapest replica, end-to-end verify,
            # failover + read-repair on rot (repro.core.replication).
            return self.fs.integrity.read_block(
                self.node,
                self.fs.replica_placements(inode, block_index),
                tags=self.tags + ("read",),
            )
        return self.fs.service.read_block(
            self.node,
            nsd_id,
            phys,
            0,
            self.fs.block_size,
            tags=self.tags + ("read",),
        )

    def _remote_write_event(self, inode: Inode, block: int, nsd_id: int,
                            phys: int, lo: int, payload: "bytes | int") -> Event:
        """One block's remote write; subclasses reroute (caching gateway)."""
        if self.fs.replication.active:
            # Fan out to every replica; completes at the ack quorum.
            return self.fs.integrity.write_block(
                self.node,
                self.fs.replica_placements(inode, block),
                lo,
                payload,
                tags=self.tags + ("write",),
            )
        return self.fs.service.write_block(
            self.node,
            nsd_id,
            phys,
            lo,
            payload,
            tags=self.tags + ("write",),
        )

    def _fetch_block(self, inode: Inode, block_index: int) -> Event:
        """Fetch one block into the pool (deduplicated across callers)."""
        key = (inode.ino, block_index)
        inflight = self._fetching.get(key)
        if inflight is not None:
            return inflight
        done = self.sim.event(name=f"fetch:{key}")
        placed = self.fs.lookup_block(inode, block_index)

        def _proc():
            if placed is None:
                # sparse: zero-fill without touching the network
                yield self.sim.timeout(0.0)
                data = bytes(self.fs.block_size) if self.fs.store_data else None
            else:
                evt = self._remote_read_event(inode, block_index, *placed)
                try:
                    data = yield evt
                except BaseException as exc:
                    # Throw into every waiter instead of leaving them
                    # parked forever; an unawaited read-ahead fetch just
                    # drops its failure (defused) and a later read retries.
                    del self._fetching[key]
                    done._defused = True
                    done.fail(exc)
                    return
                if not self.fs.store_data:
                    data = None
            if self.pool.peek(*key) is None:
                self.pool.put_clean(key[0], key[1], data, self.fs.block_size)
            del self._fetching[key]
            done.succeed()

        self._fetching[key] = done
        self.sim.process(_proc(), name=f"fetchp:{key}")
        return done

    @property
    def _coalescing(self) -> bool:
        """Scatter-gather transfers on? (Replication keeps per-block fan-out.)"""
        return self.max_coalesce > 1 and not self.fs.replication.active

    def _fetch_blocks(self, inode: Inode, indices: List[int]) -> Dict[int, Event]:
        """Fetch several blocks, coalescing contiguous same-NSD runs.

        Returns ``{block_index: done_event}`` so the caller can await any
        subset. Blocks already in flight reuse their existing event; sparse
        or lone blocks take the per-block path.
        """
        events: Dict[int, Event] = {}
        todo: List[Tuple[int, int, int]] = []
        for block in indices:
            inflight = self._fetching.get((inode.ino, block))
            if inflight is not None:
                events[block] = inflight
                continue
            placed = self.fs.lookup_block(inode, block)
            if placed is None:  # sparse: zero-fill, no RPC to merge
                events[block] = self._fetch_block(inode, block)
                continue
            todo.append((placed[0], placed[1], block))
        for run in plan_transfers(todo, self.max_coalesce):
            if len(run.blocks) == 1:
                events[run.blocks[0]] = self._fetch_block(inode, run.blocks[0])
            else:
                events.update(self._fetch_run(inode, run))
        return events

    def _fetch_run(self, inode: Inode, run: TransferRun) -> Dict[int, Event]:
        """One scatter-gather read RPC filling every block of ``run``."""
        ino = inode.ino
        dones: Dict[int, Event] = {}
        for block in run.blocks:
            done = self.sim.event(name=f"fetch:{(ino, block)}")
            self._fetching[(ino, block)] = done
            dones[block] = done

        def _proc():
            datas = yield self.fs.service.read_blocks(
                self.node, run.nsd_id, run.phys, tags=self.tags + ("read",)
            )
            for block, data in zip(run.blocks, datas):
                if not self.fs.store_data:
                    data = None
                if self.pool.peek(ino, block) is None:
                    self.pool.put_clean(ino, block, data, self.fs.block_size)
                del self._fetching[(ino, block)]
                dones[block].succeed()

        self.sim.process(
            _proc(), name=f"fetchr:{ino}:{run.blocks[0]}+{len(run.blocks)}"
        )
        return dones

    # -- write-behind -----------------------------------------------------------

    def _kick_flushes(self, ino: int) -> None:
        if self._coalescing:
            self._kick_flushes_coalesced(ino)
            return
        for block in self.pool.dirty_blocks(ino):
            key = (ino, block)
            if key not in self._flushing:
                done = self.sim.event(name=f"flush:{key}")
                self._flushing[key] = done
                self.sim.process(self._flush_block(key, done), name=f"flushp:{key}")

    def _kick_flushes_coalesced(self, ino: int) -> None:
        """Plan dirty blocks into scatter-gather flush runs.

        Each block still gets its own done event in ``self._flushing`` so
        ``_fsync``/``_revoke_flush`` wait exactly as in the legacy path.
        """
        inode = self.fs.inodes.get(ino)
        todo: List[Tuple[int, int, int]] = []
        for block in self.pool.dirty_blocks(ino):
            if (ino, block) in self._flushing:
                continue
            nsd_id, phys = self.fs.ensure_block(inode, block)
            todo.append((nsd_id, phys, block))
        for run in plan_transfers(todo, self.max_coalesce):
            if len(run.blocks) == 1:
                key = (ino, run.blocks[0])
                done = self.sim.event(name=f"flush:{key}")
                self._flushing[key] = done
                self.sim.process(self._flush_block(key, done), name=f"flushp:{key}")
                continue
            dones: Dict[int, Event] = {}
            for block in run.blocks:
                key = (ino, block)
                done = self.sim.event(name=f"flush:{key}")
                self._flushing[key] = done
                dones[block] = done
            self.sim.process(
                self._flush_run(ino, run, dones),
                name=f"flushr:{ino}:{run.blocks[0]}+{len(run.blocks)}",
            )

    def _flush_run(self, ino: int, run: TransferRun, dones: Dict[int, Event]):
        """Flush a planned run through one ``write_blocks`` RPC.

        Holds one flush slot for the whole run (one RPC, one slot) and
        re-checks dirtiness per block once the slot is granted — a block
        cleaned in the meantime just drops out of the run.
        """
        try:
            with self._flush_slots.request() as slot:
                yield slot
                items: List[Tuple[int, int, "bytes | int"]] = []
                for phys, block in zip(run.phys, run.blocks):
                    entry = self.pool.peek(ino, block)
                    if entry is None or not entry.dirty:
                        continue
                    lo, hi = entry.dirty_lo, entry.dirty_hi
                    if entry.data is not None:
                        payload: "bytes | int" = entry.data[lo:hi]
                        if len(payload) < hi - lo:
                            payload = payload + b"\x00" * (hi - lo - len(payload))
                    else:
                        payload = hi - lo
                    self.pool.mark_clean(ino, block)  # rewrites re-dirty
                    items.append((phys, lo, payload))
                if items:
                    try:
                        yield self.fs.service.write_blocks(
                            self.node, run.nsd_id, items, tags=self.tags + ("write",)
                        )
                    except OSError as exc:
                        self.flush_failures += 1
                        self._flush_errors.setdefault(ino, exc)
        finally:
            for block in run.blocks:
                del self._flushing[(ino, block)]
                dones[block].succeed()

    def _flush_block(self, key: Tuple[int, int], done: Event):
        ino, block = key
        try:
            with self._flush_slots.request() as slot:
                yield slot
                entry = self.pool.peek(ino, block)
                if entry is None or not entry.dirty:
                    return
                inode = self.fs.inodes.get(ino)
                nsd_id, phys = self.fs.ensure_block(inode, block)
                lo, hi = entry.dirty_lo, entry.dirty_hi
                if entry.data is not None:
                    payload: "bytes | int" = entry.data[lo:hi]
                    if len(payload) < hi - lo:
                        payload = payload + b"\x00" * (hi - lo - len(payload))
                else:
                    payload = hi - lo
                self.pool.mark_clean(ino, block)  # rewrites re-dirty and re-flush
                try:
                    yield self._remote_write_event(inode, block, nsd_id, phys, lo, payload)
                except OSError as exc:
                    self.flush_failures += 1
                    self._flush_errors.setdefault(ino, exc)
        finally:
            del self._flushing[key]
            done.succeed()

    def _fsync(self, ino: int):
        # Loop: new writes may dirty blocks while earlier flushes drain.
        while True:
            self._kick_flushes(ino)
            pending = [evt for key, evt in self._flushing.items() if key[0] == ino]
            if not pending:
                break
            yield self.sim.all_of(pending)
        yield self.sim.timeout(0.0)
        error = self._flush_errors.pop(ino, None)
        if error is not None:
            # Surface the writeback failure exactly once (EIO semantics);
            # the caller must not treat this write as durable.
            raise error

    def _close(self, handle: FileHandle):
        yield self.sim.process(self._fsync(handle.inode.ino), name="close-fsync")
        handle.open = False
        return None

    def _revoke_flush(self, ino: int, lo: int, hi: int):
        """Token revoke: flush dirty data in range, drop cached blocks."""
        blocks = self.pool.dirty_blocks(ino, lo, hi)
        for block in blocks:
            key = (ino, block)
            if key not in self._flushing:
                done = self.sim.event(name=f"rflush:{key}")
                self._flushing[key] = done
                self.sim.process(self._flush_block(key, done), name=f"rflushp:{key}")
        pending = [
            evt
            for key, evt in self._flushing.items()
            if key[0] == ino and key[1] in set(blocks)
        ]
        if pending:
            yield self.sim.all_of(pending)
        else:
            yield self.sim.timeout(0.0)
        # coherence: drop (now clean) cache entries in the revoked range
        bs = self.fs.block_size
        for block in range(lo // bs, (max(lo, hi - 1)) // bs + 1):
            self.pool.invalidate(ino, block)

    # -- metadata processes -------------------------------------------------------

    def _meta_mkdir(self, path):
        yield self._meta_rtt()
        if self.access == "ro":
            raise PermissionDenied("read-only mount")
        return self.fs.namespace.mkdir(
            path,
            self.sim.now,
            uid=self.identity.uid,
            gid=self.identity.gid,
            owner_dn=self.identity.dn,
        )

    def _meta_listdir(self, path):
        yield self._meta_rtt()
        return self.fs.namespace.listdir(path)

    def _meta_stat(self, path):
        yield self._meta_rtt()
        return self.fs.namespace.resolve(path)

    def _meta_unlink(self, path):
        yield self._meta_rtt()
        if self.access == "ro":
            raise PermissionDenied("read-only mount")
        inode = self.fs.namespace.resolve(path)
        if not (self.identity.is_root or inode.owner_matches(self.identity.uid, self.identity.dn)):
            raise PermissionDenied(f"{path!r}: not the owner")
        inode = self.fs.namespace.unlink(path, self.sim.now)
        if inode.nlink <= 0:
            self.fs.free_file_blocks(inode)
            self.fs.inodes.drop(inode.ino)
            self.tokens.release_all(inode.ino)
        return None

    def _meta_rename(self, old, new):
        yield self._meta_rtt()
        if self.access == "ro":
            raise PermissionDenied("read-only mount")
        self.fs.namespace.rename(old, new, self.sim.now)
        return None

    def _truncate(self, handle: FileHandle, size: int):
        inode = handle.inode
        bs = self.fs.block_size
        yield from self._token_fenced(handle, 0, max(size, inode.size) + 1, RW)
        keep_blocks = (size + bs - 1) // bs
        self.fs.free_file_blocks(inode, from_block=keep_blocks)
        # drop cache beyond the new size
        for key in list(self.pool._entries):
            if key[0] == inode.ino and key[1] >= keep_blocks:
                entry = self.pool._entries[key]
                entry.dirty = False
                self.pool.mark_clean(inode.ino, key[1])
                self.pool.invalidate(inode.ino, key[1])
        # zero the tail of a retained partial block: bytes beyond the new
        # size must read back as zeros if the file is later re-extended
        if size % bs:
            tail_block = size // bs
            keep = size % bs
            self.pool.trim_block(inode.ino, tail_block, keep)
            placed = self.fs.lookup_block(inode, tail_block)
            if placed is not None:
                for nsd_id, phys in self.fs.replica_placements(inode, tail_block):
                    self.fs.nsds[nsd_id].trim(phys, keep)
        inode.size = min(inode.size, size)
        inode.mtime = self.sim.now
        return None
