"""E12 benchmark — the 250 TB SCEC run on the production GFS."""

from repro.experiments.e12_scec import run_e12_scec
from repro.util.units import GB, TB


def test_e12_scec(run_experiment):
    result = run_experiment(run_e12_scec)
    # the production write path sustains ~1 GB/s for a 32-rank run
    assert GB(0.5) < result.metric("write_rate") < GB(4)
    # a full 250 TB run drains in days, not hours or months
    assert 1 < result.metric("drain_days") < 10
    # capacity: fits empty, does NOT fit alongside 250 TB of resident data
    assert result.metric("fits_empty") == 1.0
    assert result.metric("fits_with_resident_data") == 0.0
    assert result.metric("hsm_must_free") > TB(10)
