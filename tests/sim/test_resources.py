"""Tests for sim resources (Resource, PriorityResource, Store, Container)."""

import pytest

from repro.sim import Container, PriorityResource, Resource, Simulation, Store
from repro.sim.kernel import SimulationError


class TestResource:
    def test_capacity_one_serializes(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        log = []

        def user(sim, tag, hold):
            req = res.request()
            yield req
            log.append((tag, "in", sim.now))
            yield sim.timeout(hold)
            res.release(req)
            log.append((tag, "out", sim.now))

        sim.process(user(sim, "a", 2.0))
        sim.process(user(sim, "b", 1.0))
        sim.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 3.0),
        ]

    def test_capacity_n_parallel(self):
        sim = Simulation()
        res = Resource(sim, capacity=3)
        done = []

        def user(sim, i):
            with res.request() as req:
                yield req
                yield sim.timeout(1.0)
                done.append((i, sim.now))

        for i in range(6):
            sim.process(user(sim, i))
        sim.run()
        # two waves of 3
        assert [t for _, t in done] == [1.0] * 3 + [2.0] * 3

    def test_context_manager_releases(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)

        def user(sim):
            with res.request() as req:
                yield req
            return res.count

        p = sim.process(user(sim))
        sim.run()
        assert p.value == 0

    def test_release_queued_request(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        held = res.request()  # granted immediately
        queued = res.request()
        assert not queued.triggered
        res.release(queued)  # cancel while queued
        res.release(held)
        assert res.count == 0

    def test_release_unknown_raises(self):
        sim = Simulation()
        r1 = Resource(sim, capacity=1)
        r2 = Resource(sim, capacity=1)
        req = r1.request()
        with pytest.raises(SimulationError):
            r2.release(req)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulation(), capacity=0)


class TestPriorityResource:
    def test_lower_priority_number_first(self):
        sim = Simulation()
        res = PriorityResource(sim, capacity=1)
        order = []

        def user(sim, tag, prio, t_start):
            yield sim.timeout(t_start)
            req = res.request(priority=prio)
            yield req
            order.append(tag)
            yield sim.timeout(1.0)
            res.release(req)

        sim.process(user(sim, "holder", 0, 0.0))
        sim.process(user(sim, "low", 5, 0.1))
        sim.process(user(sim, "high", 1, 0.2))
        sim.run()
        assert order == ["holder", "high", "low"]

    def test_fifo_within_priority(self):
        sim = Simulation()
        res = PriorityResource(sim, capacity=1)
        order = []

        def user(sim, tag, t_start):
            yield sim.timeout(t_start)
            req = res.request(priority=1)
            yield req
            order.append(tag)
            yield sim.timeout(1.0)
            res.release(req)

        sim.process(user(sim, "first", 0.0))
        sim.process(user(sim, "second", 0.1))
        sim.process(user(sim, "third", 0.2))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_cancel_queued(self):
        sim = Simulation()
        res = PriorityResource(sim, capacity=1)
        held = res.request()
        queued = res.request(priority=2)
        res.release(queued)
        res.release(held)
        assert res.count == 0


class TestStore:
    def test_put_get_fifo(self):
        sim = Simulation()
        store = Store(sim)

        def producer(sim):
            for item in ["a", "b"]:
                yield store.put(item)

        def consumer(sim):
            x = yield store.get()
            y = yield store.get()
            return [x, y]

        sim.process(producer(sim))
        p = sim.process(consumer(sim))
        sim.run()
        assert p.value == ["a", "b"]

    def test_get_blocks_until_put(self):
        sim = Simulation()
        store = Store(sim)

        def consumer(sim):
            item = yield store.get()
            return (item, sim.now)

        def producer(sim):
            yield sim.timeout(5)
            yield store.put("late")

        p = sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert p.value == ("late", 5.0)

    def test_bounded_put_blocks(self):
        sim = Simulation()
        store = Store(sim, capacity=1)
        times = []

        def producer(sim):
            yield store.put(1)
            times.append(sim.now)
            yield store.put(2)
            times.append(sim.now)

        def consumer(sim):
            yield sim.timeout(3)
            yield store.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert times == [0.0, 3.0]

    def test_len(self):
        sim = Simulation()
        store = Store(sim)
        store.put("x")
        assert len(store) == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Store(Simulation(), capacity=0)


class TestContainer:
    def test_level_tracking(self):
        sim = Simulation()
        c = Container(sim, capacity=100, init=50)
        assert c.level == 50

        def proc(sim):
            yield c.get(20)
            yield c.put(5)

        sim.process(proc(sim))
        sim.run()
        assert c.level == 35

    def test_get_blocks_until_available(self):
        sim = Simulation()
        c = Container(sim, capacity=100, init=0)

        def getter(sim):
            yield c.get(10)
            return sim.now

        def putter(sim):
            yield sim.timeout(4)
            yield c.put(10)

        g = sim.process(getter(sim))
        sim.process(putter(sim))
        sim.run()
        assert g.value == 4.0

    def test_put_blocks_at_capacity(self):
        sim = Simulation()
        c = Container(sim, capacity=10, init=10)

        def putter(sim):
            yield c.put(5)
            return sim.now

        def getter(sim):
            yield sim.timeout(2)
            yield c.get(7)

        p = sim.process(putter(sim))
        sim.process(getter(sim))
        sim.run()
        assert p.value == 2.0

    def test_validation(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            Container(sim, capacity=0)
        with pytest.raises(ValueError):
            Container(sim, capacity=10, init=20)
        c = Container(sim, capacity=10)
        with pytest.raises(ValueError):
            c.get(20)
        with pytest.raises(ValueError):
            c.put(-1)
        with pytest.raises(ValueError):
            c.get(-1)
