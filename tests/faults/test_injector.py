"""Tests for the fault injector: link, loss, and disk actions."""

import pytest

from repro.faults import FaultInjector, FaultSchedule, NodeHealth
from repro.net import FlowEngine, Network, TcpModel
from repro.sim import Simulation
from repro.storage import make_ds4100
from repro.storage.raid import RaidState
from repro.util.units import GB, MB


def line(rate=MB(100)):
    net = Network()
    net.add_node("a")
    net.add_node("b")
    link, _ = net.add_link("a", "b", rate, efficiency=1.0)
    sim = Simulation()
    engine = FlowEngine(sim, net, default_tcp=TcpModel(window=GB(1)))
    return sim, net, engine, link


class TestLinkFaults:
    def test_brownout_and_restore_no_poke_needed(self):
        # 100 MB at 100 MB/s; brownout to 25 MB/s during [0.5, 1.5).
        # 50 MB + 25 MB + 25 MB => finish at 1.75 s. The injector never
        # calls engine.poke(): Link.set_rate triggers the recompute.
        sim, net, engine, link = line()
        schedule = FaultSchedule().brownout_link(
            0.5, "a->b", factor=0.25, duration=1.0
        )
        FaultInjector(sim, schedule, network=net, engine=engine).start()
        evt = engine.transfer("a", "b", MB(100))
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.75)
        assert link.rate == pytest.approx(MB(100))  # restored exactly

    def test_link_down_starves_flow(self):
        sim, net, engine, link = line()
        schedule = FaultSchedule().flap_link(0.5, "a->b", down_for=1.0)
        injector = FaultInjector(sim, schedule, network=net, engine=engine)
        injector.start()
        evt = engine.transfer("a", "b", MB(100))
        sim.run(until=evt)
        # 50 MB before the flap, ~nothing during it, 50 MB after.
        assert sim.now == pytest.approx(2.0, rel=1e-3)
        assert link.rate == pytest.approx(MB(100))
        assert [k for _, k, _ in injector.log] == ["link_down", "link_restore"]

    def test_bidirectional_target(self):
        sim, net, engine, link = line()
        schedule = FaultSchedule().brownout_link(
            0.0, "a<->b", factor=0.5, duration=1.0
        )
        injector = FaultInjector(sim, schedule, network=net, engine=engine)
        injector.start()
        sim.run(until=sim.timeout(0.5))
        for lk in net.links:
            assert lk.rate == pytest.approx(MB(50))
        sim.run(until=sim.timeout(1.0))
        for lk in net.links:
            assert lk.rate == pytest.approx(MB(100))


class TestLossBurst:
    def test_default_tcp_swapped_and_restored(self):
        sim, net, engine, link = line()
        original = engine.default_tcp
        schedule = FaultSchedule().loss_burst(0.5, loss=1e-3, duration=1.0)
        FaultInjector(sim, schedule, network=net, engine=engine).start()
        sim.run(until=sim.timeout(1.0))
        assert engine.default_tcp.loss == pytest.approx(1e-3)
        sim.run(until=sim.timeout(1.0))
        assert engine.default_tcp is original


class TestDiskFail:
    def test_rebuild_steals_controller_bandwidth(self):
        sim = Simulation()
        array = make_ds4100(sim, "ds4100-00")
        schedule = FaultSchedule().fail_disk(0.0, "ds4100-00", lun=0)
        injector = FaultInjector(sim, schedule, arrays={"ds4100-00": array})
        injector.start()
        sim.run(until=sim.timeout(0.1))
        assert array.luns[0].raid.state is RaidState.REBUILDING
        # A sibling LUN on the same controller reads slower than one on
        # the other controller while rebuild traffic flows (luns alternate
        # controllers, so lun 2 shares lun 0's controller; lun 1 does not).
        t0 = sim.now
        sim.run(until=array.luns[2].io("read", MB(64)))
        shared = sim.now - t0
        t0 = sim.now
        sim.run(until=array.luns[1].io("read", MB(64)))
        unshared = sim.now - t0
        assert shared > unshared

    def test_spare_consumed(self):
        sim = Simulation()
        array = make_ds4100(sim, "ds4100-00")
        spares = array.hot_spares
        schedule = FaultSchedule().fail_disk(0.0, "ds4100-00")
        FaultInjector(sim, schedule, arrays={"ds4100-00": array}).start()
        sim.run(until=sim.timeout(0.1))
        assert array.hot_spares == spares - 1


class TestValidation:
    def test_unknown_link_rejected_at_start(self):
        sim, net, engine, link = line()
        schedule = FaultSchedule().flap_link(1.0, "nope->nada", down_for=1.0)
        with pytest.raises(ValueError, match="no link matching"):
            FaultInjector(sim, schedule, network=net, engine=engine).start()

    def test_node_crash_requires_health(self):
        sim, net, engine, link = line()
        schedule = FaultSchedule().crash_node(1.0, "a")
        with pytest.raises(ValueError, match="NodeHealth"):
            FaultInjector(sim, schedule, network=net, engine=engine).start()

    def test_unknown_array_rejected(self):
        sim = Simulation()
        schedule = FaultSchedule().fail_disk(1.0, "ds9")
        with pytest.raises(ValueError, match="unknown storage array"):
            FaultInjector(sim, schedule, arrays={}).start()

    def test_crash_restart_round_trip(self):
        sim, net, engine, link = line()
        health = NodeHealth(sim)
        schedule = (
            FaultSchedule().crash_node(0.5, "a").restart_node(1.0, "a")
        )
        injector = FaultInjector(sim, schedule, health=health)
        injector.start()
        sim.run(until=sim.timeout(0.75))
        assert not health.is_up("a")
        sim.run(until=sim.timeout(0.5))
        assert health.is_up("a")
        assert injector.done
