"""E5 — §5 in-text: remote production mounts at ANL.

Paper: "We have some preliminary performance numbers, at ANL the maximum
rates are approximately 1.2 GB/s to all 32 nodes" — all 32 ANL nodes
mounting the SDSC filesystem over the TeraGrid (56 ms RTT in our map).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.topology.sdsc2005 import build_sdsc2005
from repro.util.tables import Table
from repro.util.units import MB, MiB, fmt_rate
from repro.workloads.viz import VizReader


def run_e5_anl(
    anl_nodes: int = 32,
    per_node_bytes: float = MB(256),
    readahead: int = 7,
) -> ExperimentResult:
    """``readahead=7`` reflects the preliminary, lightly-tuned state of the
    early-2005 remote mounts (the paper calls its numbers preliminary and
    says no remote site could yet stress the filesystem); deeper prefetch
    raises the aggregate well past 2 GB/s (see A1/A2)."""
    scenario = build_sdsc2005(
        nsd_servers=64,
        ds4100_count=32,
        sdsc_clients=1,
        anl_clients=anl_nodes,
        ncsa_clients=0,
        store_data=False,
    )
    g = scenario.gfs
    stage_mount = scenario.mount_clients("sdsc", 1, pagepool_bytes=MiB(512))[0]

    def stage():
        for i in range(anl_nodes):
            handle = yield stage_mount.open(f"/nvo{i:03d}", "w", create=True)
            yield stage_mount.write(handle, int(per_node_bytes))
            yield stage_mount.close(handle)

    g.run(until=g.sim.process(stage(), name="stage"))
    mounts = scenario.mount_clients("anl", anl_nodes, readahead=readahead)
    t0 = g.sim.now
    readers = [
        VizReader(m, f"/nvo{i:03d}", chunk=MiB(2)).run()
        for i, m in enumerate(mounts)
    ]
    g.run(until=g.sim.all_of(readers))
    elapsed = g.sim.now - t0
    aggregate = anl_nodes * per_node_bytes / elapsed

    result = ExperimentResult(
        exp_id="E5",
        title="§5: remote GFS reads at ANL (all 32 nodes)",
        paper_claim="max rates approximately 1.2 GB/s to all 32 nodes",
    )
    result.metrics["aggregate_rate"] = aggregate
    result.metrics["per_node_rate"] = aggregate / anl_nodes
    result.metrics["rtt"] = scenario.gfs.network.rtt("nsd00", "anl-n000")
    table = Table(["metric", "value"], title="ANL remote mount")
    table.add_row(["nodes", anl_nodes])
    table.add_row(["aggregate", fmt_rate(aggregate)])
    table.add_row(["per node", fmt_rate(aggregate / anl_nodes)])
    table.add_row(["WAN RTT (ms)", result.metrics["rtt"] * 1e3])
    result.table = table
    result.notes = (
        f"readahead={readahead} blocks/client over the {result.metrics['rtt']*1e3:.0f} ms "
        "TeraGrid path; the paper's 1.2 GB/s reflects early, lightly-tuned mounts"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e5_anl()))
