"""Tests for KeyStore and cipherList policies."""

import numpy as np
import pytest

from repro.auth.cipher import CIPHERS, CipherPolicy, cipher
from repro.auth.keys import KeyStore, fingerprint
from repro.auth.rsa import generate_keypair


def kp(seed):
    return generate_keypair(bits=128, rng=np.random.default_rng(seed))


class TestKeyStore:
    def test_own_key_lifecycle(self):
        store = KeyStore("sdsc")
        assert not store.has_own
        with pytest.raises(KeyError, match="mmauth genkey"):
            _ = store.own
        store.set_own(kp(1))
        assert store.has_own
        assert store.own.n > 0

    def test_import_and_lookup(self):
        store = KeyStore("sdsc")
        ncsa_key = kp(2)
        store.import_public("ncsa", ncsa_key.public)
        assert store.knows("ncsa")
        assert store.public_of("ncsa") == ncsa_key.public

    def test_unknown_cluster(self):
        store = KeyStore("sdsc")
        assert not store.knows("anl")
        with pytest.raises(KeyError):
            store.public_of("anl")

    def test_revoke(self):
        store = KeyStore("sdsc")
        store.import_public("ncsa", kp(2).public)
        store.revoke("ncsa")
        assert not store.knows("ncsa")
        store.revoke("ncsa")  # idempotent

    def test_fingerprint_stable_and_distinct(self):
        a, b = kp(1).public, kp(2).public
        assert fingerprint(a) == fingerprint(a)
        assert fingerprint(a) != fingerprint(b)
        assert len(fingerprint(a)) == 16


class TestCipher:
    def test_registry_contents(self):
        assert set(CIPHERS) == {"EMPTY", "AUTHONLY", "AES128", "AES256", "3DES"}

    def test_empty_no_auth(self):
        pol = cipher("EMPTY")
        assert not pol.requires_auth and not pol.encrypts
        assert pol.throughput_factor == 1.0

    def test_authonly_full_speed(self):
        pol = cipher("AUTHONLY")
        assert pol.requires_auth and not pol.encrypts
        assert pol.throughput_factor == 1.0

    def test_encryption_taxes_throughput(self):
        assert cipher("AES128").throughput_factor < 1.0
        assert cipher("3DES").throughput_factor < cipher("AES128").throughput_factor

    def test_unknown_cipher(self):
        with pytest.raises(KeyError, match="AUTHONLY"):
            cipher("ROT13")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CipherPolicy("x", requires_auth=True, encrypts=True, throughput_factor=0)
        with pytest.raises(ValueError):
            CipherPolicy("x", requires_auth=False, encrypts=True, throughput_factor=0.5)

    def test_crypto_rate_required_iff_encrypting(self):
        with pytest.raises(ValueError, match="crypto_rate"):
            CipherPolicy("x", requires_auth=True, encrypts=True,
                         throughput_factor=0.5)  # missing crypto_rate
        with pytest.raises(ValueError, match="crypto_rate"):
            CipherPolicy("x", requires_auth=True, encrypts=False,
                         throughput_factor=1.0, crypto_rate=1e6)

    def test_registry_crypto_rates_ordered_by_strength(self):
        assert (
            CIPHERS["AES128"].crypto_rate
            > CIPHERS["AES256"].crypto_rate
            > CIPHERS["3DES"].crypto_rate
        )
        assert CIPHERS["AUTHONLY"].crypto_rate is None
        assert CIPHERS["EMPTY"].crypto_rate is None
