"""End-to-end IO tests on the mounted filesystem (data integrity + semantics)."""

import hashlib

import pytest

from repro.core.client import Identity
from repro.core.namespace import NoSuchFile, PermissionDenied

from tests.core.testbed import mounted, run_io, small_gfs


@pytest.fixture()
def bed():
    g, cluster, fs, clients = small_gfs()
    m = mounted(g, cluster, node="c0")
    return g, cluster, fs, m


def patterned(n, seed=7):
    """Deterministic non-trivial bytes."""
    out = bytearray()
    h = hashlib.sha256(str(seed).encode()).digest()
    while len(out) < n:
        out.extend(h)
        h = hashlib.sha256(h).digest()
    return bytes(out[:n])


class TestRoundtrip:
    def test_small_file(self, bed):
        g, _, _, m = bed

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, b"hello")
            yield m.close(h)
            h = yield m.open("/f", "r")
            data = yield m.read(h, 100)
            return data

        assert run_io(g, io()) == b"hello"

    def test_multi_block_integrity(self, bed):
        g, _, fs, m = bed
        payload = patterned(int(3.5 * fs.block_size))

        def io():
            h = yield m.open("/big", "w", create=True)
            yield m.write(h, payload)
            yield m.close(h)
            h = yield m.open("/big", "r")
            data = yield m.read(h, len(payload) + 10)
            return data

        assert run_io(g, io()) == payload

    def test_data_lands_on_multiple_nsds(self, bed):
        g, _, fs, m = bed
        payload = patterned(4 * fs.block_size)

        def io():
            h = yield m.open("/spread", "w", create=True)
            yield m.write(h, payload)
            yield m.close(h)

        run_io(g, io())
        inode = fs.namespace.resolve("/spread")
        nsd_ids = {placement[0] for placement in inode.blocks.values()}
        assert len(nsd_ids) == 4  # striped across all NSDs

    def test_overwrite_middle(self, bed):
        g, _, fs, m = bed
        payload = patterned(2 * fs.block_size)

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, payload)
            yield m.fsync(h)
            yield m.pwrite(h, 1000, b"X" * 50)
            yield m.close(h)
            h = yield m.open("/f", "r")
            return (yield m.read(h, len(payload)))

        expected = payload[:1000] + b"X" * 50 + payload[1050:]
        assert run_io(g, io()) == expected

    def test_rmw_partial_block_after_remount_cache_cold(self, bed):
        g, cluster, fs, m = bed
        payload = patterned(fs.block_size)

        def write_io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, payload)
            yield m.close(h)

        run_io(g, write_io())
        # second client with a cold cache partially overwrites the block
        m2 = mounted(g, cluster, node="c1")

        def rmw_io():
            h = yield m2.open("/f", "r+")
            yield m2.pwrite(h, 100, b"Y" * 10)
            yield m2.close(h)
            h = yield m2.open("/f", "r")
            return (yield m2.read(h, fs.block_size))

        expected = payload[:100] + b"Y" * 10 + payload[110:]
        assert run_io(g, rmw_io()) == expected

    def test_sparse_read_returns_zeros(self, bed):
        g, _, fs, m = bed

        def io():
            h = yield m.open("/sparse", "w", create=True)
            yield m.pwrite(h, 2 * fs.block_size, b"end")
            yield m.close(h)
            h = yield m.open("/sparse", "r")
            return (yield m.read(h, 2 * fs.block_size + 3))

        data = run_io(g, io())
        assert data[: 2 * fs.block_size] == bytes(2 * fs.block_size)
        assert data[-3:] == b"end"

    def test_read_past_eof_short(self, bed):
        g, _, _, m = bed

        def io():
            h = yield m.open("/f", "w+", create=True)
            yield m.write(h, b"12345")
            yield m.fsync(h)
            return (yield m.pread(h, 3, 100))

        assert run_io(g, io()) == b"45"

    def test_read_empty_file(self, bed):
        g, _, _, m = bed

        def io():
            h = yield m.open("/f", "w", create=True)
            h2 = yield m.open("/f", "r")
            return (yield m.read(h2, 10))

        assert run_io(g, io()) == b""

    def test_append_mode(self, bed):
        g, _, _, m = bed

        def io():
            h = yield m.open("/log", "w", create=True)
            yield m.write(h, b"one")
            yield m.close(h)
            h = yield m.open("/log", "a")
            yield m.write(h, b"two")
            yield m.close(h)
            h = yield m.open("/log", "r")
            return (yield m.read(h, 100))

        assert run_io(g, io()) == b"onetwo"

    def test_w_mode_truncates(self, bed):
        g, _, _, m = bed

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, b"long old content")
            yield m.close(h)
            h = yield m.open("/f", "w")
            yield m.write(h, b"new")
            yield m.close(h)
            h = yield m.open("/f", "r")
            return (yield m.read(h, 100))

        assert run_io(g, io()) == b"new"


class TestDurabilityAndCache:
    def test_write_is_write_behind(self, bed):
        g, _, fs, m = bed

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, patterned(fs.block_size))
            return fs.service.blocks_written

        # at the instant write() returns, the flush may not have finished
        written_at_return = run_io(g, io())
        g.run()  # drain
        assert fs.service.blocks_written >= 1
        assert written_at_return <= fs.service.blocks_written

    def test_fsync_forces_durability(self, bed):
        g, _, fs, m = bed

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, patterned(2 * fs.block_size))
            yield m.fsync(h)
            return fs.service.blocks_written

        assert run_io(g, io()) == 2

    def test_second_read_hits_cache(self, bed):
        g, _, fs, m = bed
        payload = patterned(fs.block_size)

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, payload)
            yield m.close(h)
            h = yield m.open("/f", "r")
            yield m.read(h, fs.block_size)
            before = fs.service.blocks_read
            h.seek(0)
            yield m.read(h, fs.block_size)
            return before, fs.service.blocks_read

        before, after = run_io(g, io())
        assert after == before  # no new NSD reads

    def test_closed_handle_rejected(self, bed):
        g, _, _, m = bed

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.close(h)
            return h

        h = run_io(g, io())
        with pytest.raises(ValueError, match="closed"):
            m.read(h, 1)


class TestCrossClientCoherence:
    def test_reader_sees_writer_update(self, bed):
        g, cluster, fs, m_writer = bed
        m_reader = mounted(g, cluster, node="c1")
        payload1 = patterned(fs.block_size, seed=1)
        payload2 = patterned(fs.block_size, seed=2)

        def io():
            h = yield m_writer.open("/shared", "w", create=True)
            yield m_writer.write(h, payload1)
            yield m_writer.fsync(h)
            # reader caches version 1
            hr = yield m_reader.open("/shared", "r")
            v1 = yield m_reader.read(hr, fs.block_size)
            # writer overwrites → revokes reader's token, invalidates cache
            yield m_writer.pwrite(h, 0, payload2)
            yield m_writer.fsync(h)
            # reader re-reads: must see version 2
            hr.seek(0)
            v2 = yield m_reader.read(hr, fs.block_size)
            return v1, v2

        v1, v2 = run_io(g, io())
        assert v1 == payload1
        assert v2 == payload2

    def test_write_write_last_writer_wins(self, bed):
        g, cluster, fs, m0 = bed
        m1 = mounted(g, cluster, node="c1")

        def io():
            h0 = yield m0.open("/f", "w", create=True)
            yield m0.write(h0, b"A" * 100)
            yield m0.fsync(h0)
            h1 = yield m1.open("/f", "r+")
            yield m1.pwrite(h1, 0, b"B" * 100)
            yield m1.fsync(h1)
            hr = yield m0.open("/f", "r")
            return (yield m0.read(hr, 100))

        assert run_io(g, io()) == b"B" * 100


class TestPermissions:
    def test_ro_mount_cannot_write(self, bed):
        g, cluster, fs, m = bed
        m_ro = mounted(g, cluster, node="c1", access="ro")

        def create_io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, b"x")
            yield m.close(h)

        run_io(g, create_io())

        def ro_io():
            try:
                yield m_ro.open("/f", "w")
            except PermissionDenied:
                return "denied"

        assert run_io(g, ro_io()) == "denied"

    def test_ro_mount_can_read(self, bed):
        g, cluster, fs, m = bed

        def create_io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, b"data")
            yield m.close(h)

        run_io(g, create_io())
        m_ro = mounted(g, cluster, node="c1", access="ro")

        def ro_io():
            h = yield m_ro.open("/f", "r")
            return (yield m_ro.read(h, 10))

        assert run_io(g, ro_io()) == b"data"

    def test_other_user_mode_bits(self, bed):
        g, cluster, fs, m = bed
        alice = Identity(uid=500, username="alice")
        bob = Identity(uid=501, username="bob")
        m_alice = mounted(g, cluster, node="c1", identity=alice)

        def create_io():
            h = yield m_alice.open("/private", "w", create=True)
            yield m_alice.write(h, b"secret")
            yield m_alice.close(h)

        run_io(g, create_io())
        fs.namespace.resolve("/private").mode = 0o600
        m_bob = mounted(g, cluster, node="c0", identity=bob)

        def bob_io():
            try:
                yield m_bob.open("/private", "r")
            except PermissionDenied:
                return "denied"

        assert run_io(g, bob_io()) == "denied"

        def owner_io():
            h = yield m_alice.open("/private", "r")
            return (yield m_alice.read(h, 10))

        assert run_io(g, owner_io()) == b"secret"


class TestMetadataOps:
    def test_mkdir_listdir(self, bed):
        g, _, _, m = bed

        def io():
            yield m.mkdir("/data")
            h = yield m.open("/data/f1", "w", create=True)
            yield m.close(h)
            return (yield m.listdir("/data"))

        assert run_io(g, io()) == ["f1"]

    def test_stat(self, bed):
        g, _, _, m = bed

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, b"x" * 123)
            yield m.close(h)
            return (yield m.stat("/f"))

        inode = run_io(g, io())
        assert inode.size == 123

    def test_unlink_frees_space(self, bed):
        g, _, fs, m = bed

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, patterned(2 * fs.block_size))
            yield m.close(h)
            used = fs.used_bytes
            yield m.unlink("/f")
            return used, fs.used_bytes

        used_before, used_after = run_io(g, io())
        assert used_before == 2 * fs.block_size
        assert used_after == 0

    def test_unlink_missing(self, bed):
        g, _, _, m = bed

        def io():
            try:
                yield m.unlink("/ghost")
            except NoSuchFile:
                return "missing"

        assert run_io(g, io()) == "missing"

    def test_rename(self, bed):
        g, _, _, m = bed

        def io():
            h = yield m.open("/old", "w", create=True)
            yield m.write(h, b"content")
            yield m.close(h)
            yield m.rename("/old", "/new")
            h = yield m.open("/new", "r")
            return (yield m.read(h, 10))

        assert run_io(g, io()) == b"content"

    def test_truncate(self, bed):
        g, _, fs, m = bed

        def io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, patterned(3 * fs.block_size))
            yield m.fsync(h)
            yield m.truncate(h, 100)
            st = yield m.stat("/f")
            return st.size, len(st.blocks)

        size, nblocks = run_io(g, io())
        assert size == 100
        assert nblocks == 1
