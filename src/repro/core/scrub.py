"""Background scrubber: sweep replicas at rest and repair latent rot.

Read-repair only heals rot that a reader happens to trip over; a cold
replica can stay rotten until the *other* copy fails — at which point
the data is gone. The scrubber closes that window: a low-priority
service sweeps every allocated replica on a cadence, verifies the
at-rest contents against the stored checksum, and rebuilds bad replicas
from a good copy.

Scrub I/O is real traffic, not bookkeeping: each verification pays a
disk read at the replica's NSD server (sharing the HBA/LUN with client
I/O), throttled to ``rate`` bytes/sec so a sweep cannot starve the
foreground workload; each repair pays a network block read from the
good replica's server to the bad one's, then a disk write.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.nsd import ChecksumError
from repro.sim.kernel import Interrupt, Simulation
from repro.sim.trace import TRACE
from repro.util.units import MiB


class Scrubber:
    """Cadenced at-rest verification + repair for one filesystem."""

    def __init__(
        self,
        sim: Simulation,
        fs,
        interval: float = 5.0,
        rate: float = 64 * MiB(1),
        tags: Tuple[str, ...] = ("scrub",),
    ) -> None:
        if interval <= 0 or rate <= 0:
            raise ValueError("interval and rate must be positive")
        self.sim = sim
        self.fs = fs
        self.interval = float(interval)
        self.rate = float(rate)
        self.tags = tags
        self.sweeps = 0
        self.blocks_scanned = 0
        self.rot_found = 0
        self.repairs = 0
        self.repair_failures = 0
        self.bytes_read = 0.0
        self._proc = None
        from repro.obs.registry import OBS

        if OBS.enabled:
            from repro.obs.wire import attach_scrubber

            attach_scrubber(self)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Scrubber":
        if self._proc is not None:
            raise RuntimeError("scrubber already started")
        self._proc = self.sim.process(self._run(), name="scrubber")
        return self

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("scrubber stopped")
        self._proc = None

    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.interval)
                yield from self._sweep()
                self.sweeps += 1
        except Interrupt:
            return

    # -- one sweep ------------------------------------------------------------

    def _placement_lists(self) -> List[List[Tuple[int, int]]]:
        """Replica sets of every allocated logical block, in sweep order."""
        out = []
        for inode in self.fs.inodes:
            for block_index in sorted(inode.blocks):
                out.append(self.fs.replica_placements(inode, block_index))
        return out

    def _sweep(self):
        bs = self.fs.block_size
        service = self.fs.service
        for placements in self._placement_lists():
            rotten: List[Tuple[int, int]] = []
            good: Optional[Tuple[int, int]] = None
            for nsd_id, phys in placements:
                server = service.servers.get(nsd_id)
                if server is None or server.node in service.down_nodes:
                    continue  # cannot scrub behind a dead server
                nsd = self.fs.nsds[nsd_id]
                if nsd.checksum(phys) is None and phys not in nsd._poisoned:
                    continue  # never written — nothing to verify
                # The at-rest verification pays a real (throttled) disk read.
                yield server.disk_io(self.sim, nsd, "read", bs, sequential=True)
                yield self.sim.timeout(bs / self.rate)
                self.blocks_scanned += 1
                self.bytes_read += bs
                if nsd.verify_full(phys):
                    if good is None:
                        good = (nsd_id, phys)
                else:
                    rotten.append((nsd_id, phys))
            if rotten and good is None and not self.fs.store_data:
                # Size-only mode records no checksums, so clean replicas
                # are skipped by the scan above; any live, unpoisoned
                # replica is by definition good — heal from the first.
                for nsd_id, phys in placements:
                    server = service.servers.get(nsd_id)
                    if server is None or server.node in service.down_nodes:
                        continue
                    if (nsd_id, phys) not in rotten:
                        good = (nsd_id, phys)
                        break
            for victim in rotten:
                self.rot_found += 1
                if TRACE.enabled:
                    TRACE.instant(
                        self.sim, "scrub.rot_found", cat="fault.integrity",
                        lane="scrub", nsd=victim[0], phys=victim[1],
                    )
                if good is None:
                    self.repair_failures += 1  # no clean copy left to heal from
                    continue
                yield from self._repair(victim, good, bs)

    def _repair(self, victim: Tuple[int, int], good: Tuple[int, int], bs: int):
        """Rebuild one rotten replica from a verified good copy.

        The rebuild runs *at the bad replica's server*: a network block
        read from the good replica's server, then a local full-block
        write — the same traffic a GPFS restripe would generate.
        """
        service = self.fs.service
        bad_nsd, bad_phys = victim
        good_nsd, good_phys = good
        home = service.servers[bad_nsd].node
        try:
            data = yield service.read_block(
                home, good_nsd, good_phys, 0, bs,
                sequential=True, tags=self.tags, verify=True,
            )
            yield service.write_block(
                home, bad_nsd, bad_phys, 0, data,
                sequential=True, tags=self.tags,
            )
        except (ConnectionError, ChecksumError):
            self.repair_failures += 1
            return
        self.repairs += 1
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "scrub.repaired", cat="fault.integrity",
                lane="scrub", nsd=bad_nsd, phys=bad_phys,
            )

    # -- reporting ------------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        return {
            "scrub_sweeps": float(self.sweeps),
            "scrub_blocks_scanned": float(self.blocks_scanned),
            "scrub_rot_found": float(self.rot_found),
            "scrub_repairs": float(self.repairs),
            "scrub_repair_failures": float(self.repair_failures),
            "scrub_bytes_read": self.bytes_read,
        }
