"""Tests for the HSM manager and archive replication."""

import pytest

from repro.hsm.manager import HsmError, HsmManager, MigrationPolicy
from repro.hsm.replicate import ArchiveReplicator
from repro.hsm.tape import LTO2, TapeLibrary, TapeSpec

from tests.core.testbed import mounted, run_io, small_gfs

# fast tape for tests: no robot/seek stalls unless a test wants them
FAST_TAPE = TapeSpec("fast", capacity=LTO2.capacity, rate=LTO2.rate,
                     load_time=0.0, seek_time=0.0)


def hsm_bed(blocks_per_nsd=64, policy=None, tape_spec=FAST_TAPE):
    g, cluster, fs, _ = small_gfs(blocks_per_nsd=blocks_per_nsd)
    m = mounted(g, cluster, node="c0")
    library = TapeLibrary(g.sim, spec=tape_spec, drives=2, cartridges=50)
    hsm = HsmManager(m, library, policy=policy)
    return g, fs, m, hsm


def write_file(g, m, path, payload):
    def io():
        h = yield m.open(path, "w", create=True)
        yield m.write(h, payload)
        yield m.close(h)

    run_io(g, io())


class TestMigrateRecall:
    def test_migrate_frees_disk(self):
        g, fs, m, hsm = hsm_bed()
        payload = bytes(range(256)) * 1024  # 256 KiB
        write_file(g, m, "/cold", payload)
        used_before = fs.used_bytes
        g.run(until=hsm.migrate("/cold"))
        assert fs.used_bytes < used_before
        assert hsm.is_offline("/cold")
        assert hsm.migrated_files == 1
        assert hsm.library.used == len(payload)

    def test_recall_restores_exact_data(self):
        g, fs, m, hsm = hsm_bed()
        payload = bytes([i % 251 for i in range(300_000)])
        write_file(g, m, "/cold", payload)
        g.run(until=hsm.migrate("/cold"))
        g.run(until=hsm.recall("/cold"))
        assert not hsm.is_offline("/cold")

        def read_io():
            h = yield m.open("/cold", "r")
            return (yield m.read(h, len(payload)))

        assert run_io(g, read_io()) == payload

    def test_recall_resident_file_noop(self):
        g, fs, m, hsm = hsm_bed()
        write_file(g, m, "/hot", b"hot data")
        assert g.run(until=hsm.recall("/hot")) is False
        assert hsm.recalled_files == 0

    def test_recall_pays_tape_latency(self):
        g, fs, m, hsm = hsm_bed(tape_spec=LTO2)
        write_file(g, m, "/cold", b"z" * 100_000)
        g.run(until=hsm.migrate("/cold"))
        t0 = g.sim.now
        g.run(until=hsm.recall("/cold"))
        assert g.sim.now - t0 >= LTO2.seek_time  # tape positioning dominates

    def test_double_migrate_rejected(self):
        g, fs, m, hsm = hsm_bed()
        write_file(g, m, "/f", b"data")
        g.run(until=hsm.migrate("/f"))
        evt = hsm.migrate("/f")
        with pytest.raises(HsmError, match="already offline"):
            g.run(until=evt)

    def test_migrate_directory_rejected(self):
        g, fs, m, hsm = hsm_bed()
        run_io(g, iter_mkdir(m))
        evt = hsm.migrate("/d")
        with pytest.raises(HsmError):
            g.run(until=evt)

    def test_migrate_empty_rejected(self):
        g, fs, m, hsm = hsm_bed()
        write_file(g, m, "/empty", b"")
        evt = hsm.migrate("/empty")
        with pytest.raises(HsmError):
            g.run(until=evt)


def iter_mkdir(m):
    yield m.mkdir("/d")


class TestPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            MigrationPolicy(low_water=0.9, high_water=0.8)
        with pytest.raises(ValueError):
            MigrationPolicy(min_age=-1)

    def test_no_migration_below_high_water(self):
        g, fs, m, hsm = hsm_bed(policy=MigrationPolicy(min_age=0.0))
        write_file(g, m, "/f", b"x" * 1000)
        migrated = g.run(until=hsm.run_policy())
        assert migrated == []

    def test_policy_migrates_oldest_until_low_water(self):
        policy = MigrationPolicy(min_age=0.0, high_water=0.5, low_water=0.2)
        g, fs, m, hsm = hsm_bed(blocks_per_nsd=2, policy=policy)
        # 4 NSDs x 2 blocks x 256 KiB = 8 blocks total capacity
        bs = fs.block_size

        def make(path, age_order):
            write_file(g, m, path, b"d" * bs)
            fs.namespace.resolve(path).atime = float(age_order)

        for i in range(5):  # 5 of 8 blocks used = 62% > high water
            make(f"/f{i}", age_order=i)
        migrated = g.run(until=hsm.run_policy())
        assert migrated  # something moved
        # oldest atime first
        assert migrated == [f"/f{i}" for i in range(len(migrated))]
        assert hsm.resident_fraction() <= 0.5

    def test_min_age_respected(self):
        policy = MigrationPolicy(min_age=1e9, high_water=0.01, low_water=0.005)
        g, fs, m, hsm = hsm_bed(blocks_per_nsd=2, policy=policy)
        write_file(g, m, "/young", b"x" * fs.block_size)
        migrated = g.run(until=hsm.run_policy())
        assert migrated == []  # too young to migrate

    def test_pinned_paths_skipped(self):
        policy = MigrationPolicy(
            min_age=0.0, high_water=0.01, low_water=0.005, pin_paths=("/pinned",)
        )
        g, fs, m, hsm = hsm_bed(blocks_per_nsd=2, policy=policy)
        write_file(g, m, "/pinned", b"x" * fs.block_size)
        assert hsm.eligible_files() == []


class TestReplication:
    def make(self):
        g, fs, m, hsm = hsm_bed()
        remote_lib = TapeLibrary(g.sim, spec=FAST_TAPE, drives=2, cartridges=50,
                                 name="psc")
        # reuse two existing hosts as archive endpoints
        repl = ArchiveReplicator(
            g.sim, g.engine, hsm.library, remote_lib, "nsd0", "c1"
        )
        return g, m, hsm, remote_lib, repl

    def test_replicate_all(self):
        g, m, hsm, remote, repl = self.make()
        write_file(g, m, "/a", b"a" * 100_000)
        write_file(g, m, "/b", b"b" * 50_000)
        g.run(until=hsm.migrate("/a"))
        g.run(until=hsm.migrate("/b"))
        assert len(repl.pending()) == 2
        count = g.run(until=repl.replicate_all())
        assert count == 2
        assert repl.pending() == []
        assert remote.used == 150_000

    def test_restore_from_partner(self):
        g, m, hsm, remote, repl = self.make()
        write_file(g, m, "/a", b"precious" * 1000)
        token = g.run(until=hsm.migrate("/a"))
        g.run(until=repl.replicate(token))
        payload, length = g.run(until=repl.restore(token))
        assert payload == b"precious" * 1000

    def test_replicate_validation(self):
        g, m, hsm, remote, repl = self.make()
        with pytest.raises(KeyError):
            repl.replicate("ghost")
        write_file(g, m, "/a", b"x" * 1000)
        token = g.run(until=hsm.migrate("/a"))
        g.run(until=repl.replicate(token))
        with pytest.raises(ValueError):
            repl.replicate(token)
        with pytest.raises(KeyError):
            repl.restore("ghost")
