"""Shared testbed builders for core tests."""

from __future__ import annotations

from repro.core.cluster import Gfs, NsdSpec
from repro.util.units import Gbps, KiB


def small_gfs(
    nsd_servers: int = 4,
    clients: int = 2,
    block_size: int = KiB(256),
    nic_rate: float = Gbps(1),
    blocks_per_nsd: int = 4096,
    seed: int = 0,
    **fs_kwargs,
):
    """One cluster, one switch, diskless NSDs (network-only data path).

    Extra keyword arguments (``store_data``, ``replication``, ...) are
    forwarded to ``mmcrfs``.
    """
    g = Gfs(seed=seed)
    net = g.network
    net.add_node("sw", kind="switch")
    server_names = [f"nsd{i}" for i in range(nsd_servers)]
    client_names = [f"c{i}" for i in range(clients)]
    for name in server_names + client_names:
        net.add_host(name, "sw", nic_rate, site="sdsc")
    cluster = g.add_cluster("sdsc")
    cluster.add_nodes(server_names + client_names)
    fs = cluster.mmcrfs(
        "gpfs0",
        [NsdSpec(server=s, blocks=blocks_per_nsd) for s in server_names],
        block_size=block_size,
        **fs_kwargs,
    )
    return g, cluster, fs, client_names


def mounted(g, cluster, device="gpfs0", node="c0", **kw):
    """Synchronously mount and return the MountedFs."""
    evt = cluster.mmmount(device, node, **kw)
    return g.run(until=evt)


def run_io(g, gen):
    """Run a generator of FS events to completion, returning its value."""
    proc = g.sim.process(gen)
    return g.run(until=proc)
