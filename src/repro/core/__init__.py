"""The Global File System core: a GPFS-like parallel file system.

Architecture (paper Fig 3): file data is striped in fixed-size blocks
across Network Shared Disks (NSDs); each NSD is backed by a SAN LUN and
fronted by an NSD *server* node; *client* nodes reach NSD servers over
TCP/IP — the "switching fabric" that the paper stretches from a machine
room interconnect to the TeraGrid WAN.

Layers:

* :mod:`repro.core.blocks`     — stripe geometry (pure math)
* :mod:`repro.core.allocation` — per-NSD physical block allocator
* :mod:`repro.core.inode`      — inodes & metadata
* :mod:`repro.core.namespace`  — directories, path resolution
* :mod:`repro.core.nsd`        — NSDs, backing stores, the block data plane
* :mod:`repro.core.tokens`     — distributed byte-range lock tokens
* :mod:`repro.core.pagepool`   — client cache: write-behind & read-ahead
* :mod:`repro.core.filesystem` — the Filesystem object (mkfs-level)
* :mod:`repro.core.client`     — mounted instances and file handles
* :mod:`repro.core.cluster`    — GPFS clusters, config servers, mm* commands
* :mod:`repro.core.multicluster` — cross-cluster export/mount with RSA auth
"""

from repro.core.blocks import StripeGeometry, BlockRange
from repro.core.filesystem import Filesystem
from repro.core.cluster import Cluster, Gfs
from repro.core.client import MountedFs, FileHandle
from repro.core.nsd import Nsd, NsdServer

__all__ = [
    "StripeGeometry",
    "BlockRange",
    "Filesystem",
    "Cluster",
    "Gfs",
    "MountedFs",
    "FileHandle",
    "Nsd",
    "NsdServer",
]
